#include "dpc/proxy.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "common/strings.h"

namespace dynaprox::dpc {
namespace {

// An origin stub that serves SETs on first sight of a key and GETs after,
// mimicking the BEM contract, including the refresh protocol.
class FakeOrigin {
 public:
  http::Response Handle(const http::Request& request) {
    ++requests_;
    if (auto refresh = request.headers.Get(bem::kRefreshHeader);
        refresh.has_value()) {
      for (std::string_view key_hex : StrSplit(*refresh, ',')) {
        known_.erase(static_cast<bem::DpcKey>(*ParseHex(key_hex)));
      }
    }
    std::string body = "<page>";
    for (bem::DpcKey key : {bem::DpcKey{0}, bem::DpcKey{1}}) {
      if (known_.count(key)) {
        bem::TagCodec::AppendGet(key, body);
      } else {
        bem::TagCodec::AppendSet(key, "frag" + std::to_string(key), body);
        known_.insert(key);
      }
    }
    body += "</page>";
    http::Response response = http::Response::MakeOk(std::move(body));
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  }

  net::Handler AsHandler() {
    return [this](const http::Request& r) { return Handle(r); };
  }

  int requests() const { return requests_; }

 private:
  std::set<bem::DpcKey> known_;
  int requests_ = 0;
};

ProxyOptions SmallProxy() {
  ProxyOptions options;
  options.capacity = 8;
  return options;
}

TEST(DpcProxyTest, AssemblesTemplateResponses) {
  FakeOrigin origin;
  net::DirectTransport upstream(origin.AsHandler());
  DpcProxy proxy(&upstream, SmallProxy());

  http::Request request;
  http::Response first = proxy.Handle(request);
  EXPECT_EQ(first.status_code, 200);
  EXPECT_EQ(first.BodyText(), "<page>frag0frag1</page>");
  EXPECT_FALSE(first.headers.Has(bem::kTemplateHeader));

  http::Response second = proxy.Handle(request);
  EXPECT_EQ(second.BodyText(), first.BodyText());
  EXPECT_EQ(proxy.stats().assembled, 2u);
  EXPECT_EQ(proxy.stats().passthrough, 0u);
}

TEST(DpcProxyTest, SecondResponseTravelsSmaller) {
  FakeOrigin origin;
  net::DirectTransport upstream(origin.AsHandler());
  DpcProxy proxy(&upstream, SmallProxy());
  http::Request request;
  proxy.Handle(request);
  uint64_t after_first = proxy.stats().bytes_from_upstream;
  proxy.Handle(request);
  uint64_t second_transfer = proxy.stats().bytes_from_upstream - after_first;
  EXPECT_LT(second_transfer, after_first);
  // Clients always receive the full page.
  EXPECT_EQ(proxy.stats().bytes_to_clients,
            2 * std::string("<page>frag0frag1</page>").size());
}

TEST(DpcProxyTest, NonTemplateResponsesPassThrough) {
  net::DirectTransport upstream([](const http::Request&) {
    return http::Response::MakeOk("static file");
  });
  DpcProxy proxy(&upstream, SmallProxy());
  http::Response response = proxy.Handle(http::Request{});
  EXPECT_EQ(response.body, "static file");
  EXPECT_EQ(proxy.stats().passthrough, 1u);
  EXPECT_EQ(proxy.stats().assembled, 0u);
}

TEST(DpcProxyTest, ColdCacheRecoveryViaRefreshHeader) {
  FakeOrigin origin;
  net::DirectTransport upstream(origin.AsHandler());
  DpcProxy proxy(&upstream, SmallProxy());
  http::Request request;
  proxy.Handle(request);   // Fragments now cached, origin will emit GETs.
  proxy.ClearCache();      // Simulated DPC restart.
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.BodyText(), "<page>frag0frag1</page>");
  EXPECT_EQ(proxy.stats().recoveries, 1u);
  // One original + one refresh round trip for the recovered request.
  EXPECT_EQ(origin.requests(), 3);
}

TEST(DpcProxyTest, UnrecoverableMissYields502) {
  // Origin always emits GETs for a key it never SETs.
  net::DirectTransport upstream([](const http::Request&) {
    std::string body;
    bem::TagCodec::AppendGet(5, body);
    http::Response response = http::Response::MakeOk(std::move(body));
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  });
  DpcProxy proxy(&upstream, SmallProxy());
  http::Response response = proxy.Handle(http::Request{});
  EXPECT_EQ(response.status_code, 502);
}

TEST(DpcProxyTest, CorruptTemplateYields502) {
  net::DirectTransport upstream([](const http::Request&) {
    http::Response response = http::Response::MakeOk("\x02" "broken");
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  });
  DpcProxy proxy(&upstream, SmallProxy());
  http::Response response = proxy.Handle(http::Request{});
  EXPECT_EQ(response.status_code, 502);
  EXPECT_EQ(proxy.stats().template_errors, 1u);
}

TEST(DpcProxyTest, UpstreamFailureYields502) {
  class FailingTransport : public net::Transport {
   public:
    Result<http::Response> RoundTrip(const http::Request&) override {
      return Status::IoError("origin down");
    }
  };
  FailingTransport upstream;
  DpcProxy proxy(&upstream, SmallProxy());
  http::Response response = proxy.Handle(http::Request{});
  EXPECT_EQ(response.status_code, 502);
  EXPECT_EQ(proxy.stats().upstream_errors, 1u);
}

TEST(DpcProxyTest, OversizedTemplateRejected) {
  net::DirectTransport upstream([](const http::Request&) {
    std::string body;
    bem::TagCodec::AppendSet(0, std::string(10'000, 'x'), body);
    http::Response response = http::Response::MakeOk(std::move(body));
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  });
  ProxyOptions options = SmallProxy();
  options.max_template_bytes = 1000;
  DpcProxy proxy(&upstream, options);
  http::Response response = proxy.Handle(http::Request{});
  EXPECT_EQ(response.status_code, 502);
  EXPECT_EQ(proxy.stats().template_errors, 1u);
  // Raise the limit: same origin now acceptable.
  ProxyOptions relaxed = SmallProxy();
  relaxed.max_template_bytes = 100'000;
  DpcProxy relaxed_proxy(&upstream, relaxed);
  EXPECT_EQ(relaxed_proxy.Handle(http::Request{}).status_code, 200);
}

TEST(DpcProxyTest, DebugHeaderWhenEnabled) {
  FakeOrigin origin;
  net::DirectTransport upstream(origin.AsHandler());
  ProxyOptions options = SmallProxy();
  options.add_debug_header = true;
  DpcProxy proxy(&upstream, options);
  http::Response response = proxy.Handle(http::Request{});
  ASSERT_TRUE(response.headers.Has(kDebugHeader));
  EXPECT_EQ(*response.headers.Get(kDebugHeader), "sets=2;gets=0");
}

}  // namespace
}  // namespace dynaprox::dpc
