#ifndef DYNAPROX_DPC_KMP_H_
#define DYNAPROX_DPC_KMP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dynaprox::dpc {

// Knuth-Morris-Pratt exact string matcher (the linear-time algorithm the
// paper cites [18] when arguing that DPC template scanning costs the same
// order as firewall packet scanning). Preprocessing is O(|pattern|); each
// search is O(|text|).
class KmpMatcher {
 public:
  explicit KmpMatcher(std::string pattern);

  // Returns the index of the first occurrence at or after `from`, or npos.
  size_t FindFirst(std::string_view text, size_t from = 0) const;

  // Returns all (possibly overlapping) match positions.
  std::vector<size_t> FindAll(std::string_view text) const;

  // Counts occurrences without materializing positions.
  size_t CountOccurrences(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  static constexpr size_t npos = static_cast<size_t>(-1);

 private:
  std::string pattern_;
  std::vector<size_t> failure_;  // Classic KMP failure function.
};

// Naive O(n*m) matcher with the same interface, for the scanner ablation.
size_t NaiveFindFirst(std::string_view text, std::string_view pattern,
                      size_t from = 0);

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_KMP_H_
