file(REMOVE_RECURSE
  "libdynaprox_analytical.a"
)
