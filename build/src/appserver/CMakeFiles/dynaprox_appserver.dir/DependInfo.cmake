
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appserver/origin_server.cc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/origin_server.cc.o" "gcc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/origin_server.cc.o.d"
  "/root/repo/src/appserver/personalization.cc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/personalization.cc.o" "gcc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/personalization.cc.o.d"
  "/root/repo/src/appserver/script_context.cc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/script_context.cc.o" "gcc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/script_context.cc.o.d"
  "/root/repo/src/appserver/script_registry.cc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/script_registry.cc.o" "gcc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/script_registry.cc.o.d"
  "/root/repo/src/appserver/session.cc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/session.cc.o" "gcc" "src/appserver/CMakeFiles/dynaprox_appserver.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
