#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   1. plain build + the full ctest suite (includes the docs-link check
#      and the gcc fuzz-smoke corpus tests)
#   2. AddressSanitizer+UBSan over the memory-sensitive suites
#   3. ThreadSanitizer over the threaded server/integration suites
#   4. a fixed-seed chaos smoke: dynaprox_chaos under ASan, invariants
#      must hold (docs/failure-modes.md, "Chaos layer")
#
# Sanitizer passes run on suite subsets so the script stays usable on
# small (single-core) hosts; JOBS=<n> overrides the parallelism.
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

echo "== tier1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

# The streaming suites (dpc/streaming_scanner_test, http/streaming_reader
# _test, net/streaming_test, dpc/proxy_streaming_test, and the chunking
# fuzz smoke) live inside these binaries, so split-boundary state and the
# chunk framing run under both sanitizers.
echo "== tier1: ASan+UBSan (common/http/net/dpc/integration/fuzz) =="
cmake -B build-asan -S . -DDYNAPROX_SANITIZE=address >/dev/null
cmake --build build-asan -j"$JOBS" --target \
  common_test http_test net_test dpc_test integration_test \
  fuzz_smoke_template_chunking
ctest --test-dir build-asan --output-on-failure \
  -R '^(common_test|http_test|net_test|dpc_test|integration_test|fuzz_smoke_template_chunking)$'

# common_test carries the thread-pool suite, bem_test the striped
# directory/free-list/monitor hammers (plus the push scheduler), and
# appserver_test the parallel block-execution equivalence suite (pool
# sizes 0/1/4) — together with the multi-worker servers in net_test/
# integration_test and the edge-cluster peer channel in edge_test these
# are the concurrency surfaces of the block-execution and edge-tier work.
echo "== tier1: TSan (common/bem/appserver/net/edge/integration) =="
cmake -B build-tsan -S . -DDYNAPROX_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS" --target \
  common_test bem_test appserver_test net_test edge_test integration_test
ctest --test-dir build-tsan --output-on-failure \
  -R '^(common_test|bem_test|appserver_test|net_test|edge_test|integration_test)$'

# Deterministic chaos smoke: the seeded storm arms fault points across
# every in-process layer and checks the four chaos invariants
# (byte-identity, clean failures, conservation, recovery). Fixed seed,
# so a failure here reproduces exactly with the same command.
echo "== tier1: chaos smoke (fixed seed, ASan) =="
cmake --build build-asan -j"$JOBS" --target dynaprox_chaos
./build-asan/tools/dynaprox_chaos --seed=42 --requests=600

echo "== tier1: all green =="
