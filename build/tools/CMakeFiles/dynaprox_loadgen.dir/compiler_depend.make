# Empty compiler generated dependencies file for dynaprox_loadgen.
# This may be replaced when dependencies are built.
