#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dynaprox {

Rng::Rng(uint64_t seed) : seed_(seed), state_(seed ? seed : 1) {}

uint64_t Rng::Next() {
  // xorshift64* (Vigna); passes BigCrush on the high bits.
  uint64_t x = state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double alpha) : alpha_(alpha), cdf_(n) {
  assert(n > 0);
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha) / total;
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // Guard against floating-point undershoot.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace dynaprox
