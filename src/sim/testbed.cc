#include "sim/testbed.h"

#include <algorithm>

namespace dynaprox::sim {

Result<std::unique_ptr<Testbed>> Testbed::Create(TestbedConfig config) {
  std::unique_ptr<Testbed> testbed(new Testbed(std::move(config)));
  DYNAPROX_RETURN_IF_ERROR(testbed->Init());
  return testbed;
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)),
      request_meter_(config_.link_model),
      response_meter_(config_.link_model) {}

Status Testbed::Init() {
  const analytical::ModelParams& params = config_.params;
  site_ = std::make_unique<workload::SyntheticSite>(
      params, config_.seed, &repository_, &registry_);

  if (config_.with_cache) {
    bem::BemOptions bem_options;
    bem_options.capacity = config_.capacity;
    if (bem_options.capacity == 0) {
      // Working set = one live version per cacheable fragment slot; leave
      // generous headroom so replacement only reclaims dead versions.
      uint64_t slots = static_cast<uint64_t>(params.num_pages) *
                       static_cast<uint64_t>(params.fragments_per_page);
      bem_options.capacity =
          static_cast<bem::DpcKey>(std::max<uint64_t>(256, slots * 8));
    }
    bem_options.replacement_policy = config_.replacement_policy;
    DYNAPROX_ASSIGN_OR_RETURN(monitor_,
                              bem::BackEndMonitor::Create(bem_options));
    monitor_->AttachRepository(&repository_);
  }

  appserver::OriginOptions origin_options;
  origin_options.pad_headers_to_bytes =
      static_cast<size_t>(params.header_size);
  origin_ = std::make_unique<appserver::OriginServer>(
      &registry_, &repository_, monitor_.get(), origin_options);

  origin_link_ = std::make_unique<net::MeteredTransport>(
      std::make_unique<net::DirectTransport>(origin_->AsHandler()),
      &request_meter_, &response_meter_);

  // The firewall (when enabled) sits just inside the metering point, so it
  // scans exactly the traffic the meters count.
  net::Transport* upstream = origin_link_.get();
  if (config_.with_firewall) {
    firewall_ = std::make_unique<firewall::ScanningFirewall>(
        origin_link_.get(),
        std::vector<std::string>{"__dynaprox_attack_signature__"});
    upstream = firewall_.get();
  }

  if (config_.with_cache) {
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = monitor_->capacity();
    proxy_ = std::make_unique<dpc::DpcProxy>(upstream, proxy_options);
    client_edge_ =
        std::make_unique<net::DirectTransport>(proxy_->AsHandler());
  } else {
    client_edge_ = std::make_unique<net::DirectTransport>(
        [upstream](const http::Request& request) {
          Result<http::Response> response = upstream->RoundTrip(request);
          // DirectTransport handlers are infallible; surface transport
          // errors as 502 like a real front end would.
          if (!response.ok()) {
            return http::Response::MakeError(502, "Bad Gateway",
                                             response.status().ToString());
          }
          return std::move(*response);
        });
  }

  stream_ = std::make_unique<workload::RequestStream>(
      params.num_pages, params.zipf_alpha, config_.seed + 1);
  return Status::Ok();
}

workload::DriverStats Testbed::Run(uint64_t count) {
  workload::DriverStats stats =
      workload::RunWorkload(*client_edge_, *stream_, count);
  requests_total_ += count;
  return stats;
}

void Testbed::BeginMeasurement() {
  request_snapshot_ = {request_meter_.messages(),
                       request_meter_.payload_bytes(),
                       request_meter_.wire_bytes()};
  response_snapshot_ = {response_meter_.messages(),
                        response_meter_.payload_bytes(),
                        response_meter_.wire_bytes()};
  requests_snapshot_ = requests_total_;
  if (monitor_ != nullptr) {
    bem::DirectoryStats stats = monitor_->stats();
    hits_snapshot_ = stats.hits;
    misses_snapshot_ = stats.misses;
  }
  if (firewall_ != nullptr) {
    firewall_scanned_snapshot_ = firewall_->stats().bytes_scanned;
  }
  if (proxy_ != nullptr) {
    dpc_scanned_snapshot_ = proxy_->stats().bytes_from_upstream;
  }
}

Measurement Testbed::Collect() const {
  Measurement m;
  m.requests = requests_total_ - requests_snapshot_;
  m.response_payload_bytes =
      response_meter_.payload_bytes() - response_snapshot_.payload_bytes;
  m.response_wire_bytes =
      response_meter_.wire_bytes() - response_snapshot_.wire_bytes;
  m.response_messages =
      response_meter_.messages() - response_snapshot_.messages;
  m.request_payload_bytes =
      request_meter_.payload_bytes() - request_snapshot_.payload_bytes;
  m.request_wire_bytes =
      request_meter_.wire_bytes() - request_snapshot_.wire_bytes;
  if (monitor_ != nullptr) {
    bem::DirectoryStats stats = monitor_->stats();
    m.fragment_hits = stats.hits - hits_snapshot_;
    m.fragment_misses = stats.misses - misses_snapshot_;
  }
  if (firewall_ != nullptr) {
    m.firewall_scanned_bytes =
        firewall_->stats().bytes_scanned - firewall_scanned_snapshot_;
  }
  if (proxy_ != nullptr) {
    // The DPC scans every byte it receives from the origin (the template
    // scan of Section 5's z-per-byte term).
    m.dpc_scanned_bytes =
        proxy_->stats().bytes_from_upstream - dpc_scanned_snapshot_;
  }
  return m;
}

}  // namespace dynaprox::sim
