#include "net/fault_injection.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bem/protocol.h"

namespace dynaprox::net {
namespace {

http::Response Echo(const http::Request& request) {
  return http::Response::MakeOk("echo:" + std::string(request.Path()));
}

TEST(FaultInjectionTest, PassesThroughWithNoFaultsConfigured) {
  DirectTransport inner(Echo);
  FaultInjectingTransport transport(&inner);
  for (int i = 0; i < 50; ++i) {
    Result<http::Response> r = transport.RoundTrip(http::Request{});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->body, "echo:/");
  }
  FaultInjectionStats stats = transport.stats();
  EXPECT_EQ(stats.passed, 50u);
  EXPECT_EQ(stats.injected_errors, 0u);
}

TEST(FaultInjectionTest, InjectsErrorsAtConfiguredRate) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.error_probability = 0.5;
  options.seed = 7;
  FaultInjectingTransport transport(&inner, options);
  int failures = 0;
  for (int i = 0; i < 400; ++i) {
    if (!transport.RoundTrip(http::Request{}).ok()) ++failures;
  }
  FaultInjectionStats stats = transport.stats();
  EXPECT_EQ(stats.injected_errors, static_cast<uint64_t>(failures));
  // Loose bounds: deterministic given the seed, but robust to reseeding.
  EXPECT_GT(failures, 120);
  EXPECT_LT(failures, 280);
}

TEST(FaultInjectionTest, SameSeedReplaysSameFaultSequence) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.error_probability = 0.3;
  options.seed = 99;
  auto run = [&] {
    FaultInjectingTransport transport(&inner, options);
    std::vector<bool> outcomes;
    for (int i = 0; i < 100; ++i) {
      outcomes.push_back(transport.RoundTrip(http::Request{}).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectionTest, DownSwitchBlackHolesEverything) {
  DirectTransport inner(Echo);
  FaultInjectingTransport transport(&inner);
  ASSERT_TRUE(transport.RoundTrip(http::Request{}).ok());
  transport.set_down(true);
  for (int i = 0; i < 5; ++i) {
    Result<http::Response> r = transport.RoundTrip(http::Request{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  EXPECT_EQ(transport.stats().down_failures, 5u);
  transport.set_down(false);
  EXPECT_TRUE(transport.RoundTrip(http::Request{}).ok());
  // The inner transport never saw the 5 down-failures.
  EXPECT_EQ(transport.stats().passed, 2u);
}

TEST(FaultInjectionTest, GarbageResponsesCarryTemplateHeader) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.garbage_probability = 1.0;
  FaultInjectingTransport transport(&inner, options);
  Result<http::Response> r = transport.RoundTrip(http::Request{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status_code, 200);
  EXPECT_TRUE(r->headers.Has(bem::kTemplateHeader));
  EXPECT_NE(r->body, "echo:/");
  EXPECT_EQ(transport.stats().injected_garbage, 1u);
}

TEST(FaultInjectionTest, DelayForwardsToInner) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.delay_probability = 1.0;
  options.delay_micros = 1;  // Keep the test fast.
  FaultInjectingTransport transport(&inner, options);
  Result<http::Response> r = transport.RoundTrip(http::Request{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "echo:/");
  FaultInjectionStats stats = transport.stats();
  EXPECT_EQ(stats.injected_delays, 1u);
  EXPECT_EQ(stats.passed, 1u);
}

// Inner transport whose streaming path is observably different from its
// buffered path: streaming yields the body in two chunks, and marks the
// head so a test can tell which entry point actually ran.
class TwoChunkTransport : public Transport {
 public:
  Result<http::Response> RoundTrip(const http::Request&) override {
    return http::Response::MakeOk("buffered-path");
  }

  Result<StreamingResponse> RoundTripStreaming(
      const http::Request&) override {
    StreamingResponse streaming;
    streaming.head = http::Response::MakeOk("");
    streaming.head.body.clear();
    streaming.head.headers.Set("X-Test-Streamed", "1");
    streaming.body = std::make_unique<TwoChunkBody>();
    return streaming;
  }

 private:
  class TwoChunkBody : public http::BodyStream {
   public:
    Result<common::BufferChain> Next() override {
      common::BufferChain chunk;
      if (calls_ == 0) chunk.Append(common::MakeBuffer("chunk-one "));
      if (calls_ == 1) chunk.Append(common::MakeBuffer("chunk-two"));
      ++calls_;
      return chunk;  // Third call: empty = end of body.
    }

   private:
    int calls_ = 0;
  };
};

// Regression: without a RoundTripStreaming override the base-class
// adapter buffers the whole body via RoundTrip, so streamed requests
// never reach the inner transport's streaming path at all.
TEST(FaultInjectionTest, StreamingForwardsToInnerStreamingPath) {
  TwoChunkTransport inner;
  FaultInjectingTransport transport(&inner);
  Result<StreamingResponse> r =
      transport.RoundTripStreaming(http::Request{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->head.headers.Has("X-Test-Streamed"));
  Result<common::BufferChain> first = r->body->Next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Flatten(), "chunk-one ");
  Result<common::BufferChain> second = r->body->Next();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->Flatten(), "chunk-two");
}

// Regression companion: streamed requests observe injected faults and
// draw from the same replayable decision stream as buffered ones.
TEST(FaultInjectionTest, StreamingObservesInjectedFaults) {
  TwoChunkTransport inner;
  FaultInjectionOptions options;
  options.error_probability = 1.0;
  FaultInjectingTransport transport(&inner, options);
  Result<StreamingResponse> r =
      transport.RoundTripStreaming(http::Request{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(transport.stats().injected_errors, 1u);

  transport.set_down(true);
  EXPECT_FALSE(transport.RoundTripStreaming(http::Request{}).ok());
  EXPECT_EQ(transport.stats().down_failures, 1u);
}

TEST(FaultInjectionTest, StreamingGarbageArrivesAsTemplateBody) {
  TwoChunkTransport inner;
  FaultInjectionOptions options;
  options.garbage_probability = 1.0;
  FaultInjectingTransport transport(&inner, options);
  Result<StreamingResponse> r =
      transport.RoundTripStreaming(http::Request{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->head.headers.Has(bem::kTemplateHeader));
  Result<common::BufferChain> body = r->body->Next();
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(body->Flatten().empty());
  EXPECT_EQ(transport.stats().injected_garbage, 1u);
}

TEST(FaultInjectionTest, BlackHoleFailsAfterSimulatedTimeout) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.black_hole_probability = 1.0;
  options.black_hole_micros = 1;
  FaultInjectingTransport transport(&inner, options);
  Result<http::Response> r = transport.RoundTrip(http::Request{});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("timeout"), std::string::npos);
  EXPECT_EQ(transport.stats().injected_black_holes, 1u);
}

}  // namespace
}  // namespace dynaprox::net
