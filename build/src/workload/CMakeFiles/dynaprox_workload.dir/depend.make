# Empty dependencies file for dynaprox_workload.
# This may be replaced when dependencies are built.
