# Empty compiler generated dependencies file for bench_fig2b_savings_vs_hitratio.
# This may be replaced when dependencies are built.
