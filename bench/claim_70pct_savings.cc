// Headline claim check (Sections 1/5): "more than 70% savings in bytes
// transmitted through the network" at favorable settings, and substantial
// savings at the Table 2 baseline. Runs the full simulated system.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "sim/experiment.h"

namespace {

int RunPoint(const char* label, dynaprox::analytical::ModelParams params) {
  dynaprox::sim::ExperimentConfig config;
  config.params = params;
  config.warmup_requests = 2000;
  config.measured_requests = 16000;
  dynaprox::Result<dynaprox::sim::ExperimentResult> result =
      dynaprox::sim::RunBytesExperiment(config);
  if (!result.ok()) {
    std::printf("%s failed: %s\n", label,
                result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%-24s analytic=%6.2f%%  payload=%6.2f%%  wire=%6.2f%%  (B_NC=%.0f "
      "B_C=%.0f)\n",
      label, result->analytic_savings_percent,
      result->measured_payload_savings_percent,
      result->measured_wire_savings_percent, result->measured_payload_nc,
      result->measured_payload_c);
  return 0;
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams table2 = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Claim check", ">70% bandwidth savings on the site infrastructure",
      table2);

  int failures = 0;
  failures += RunPoint("table2-baseline", table2);

  ModelParams favorable = ModelParams::PaperFigureSettings();
  favorable.hit_ratio = 0.95;
  failures += RunPoint("favorable (x=.8 h=.95)", favorable);

  ModelParams deployment = ModelParams::PaperFigureSettings();
  deployment.hit_ratio = 1.0;
  failures += RunPoint("steady-state (x=.8 h=1)", deployment);
  std::printf(
      "paper claim: favorable/steady-state settings exceed 70%% savings\n");
  dynaprox::benchutil::PrintFooter();
  return failures == 0 ? 0 : 1;
}
