#include "dpc/static_cache.h"

#include <gtest/gtest.h>

namespace dynaprox::dpc {
namespace {

http::Response CacheableResponse(const std::string& body,
                                 const std::string& cache_control =
                                     "public, max-age=60") {
  http::Response response = http::Response::MakeOk(body);
  response.headers.Set("Cache-Control", cache_control);
  return response;
}

class StaticCacheTest : public ::testing::Test {
 protected:
  StaticCache MakeCache(size_t capacity = 8) {
    StaticCacheOptions options;
    options.capacity = capacity;
    options.clock = &clock_;
    return StaticCache(options);
  }
  SimClock clock_;
};

TEST_F(StaticCacheTest, StoresAndServesFreshContent) {
  StaticCache cache = MakeCache();
  EXPECT_TRUE(cache.Store("/logo.png", CacheableResponse("PNG")));
  auto hit = cache.Lookup("/logo.png");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->body, "PNG");
  EXPECT_EQ(*hit->headers.Get("Age"), "0");
}

TEST_F(StaticCacheTest, AgeHeaderAdvances) {
  StaticCache cache = MakeCache();
  cache.Store("/x", CacheableResponse("x"));
  clock_.AdvanceSeconds(42);
  auto hit = cache.Lookup("/x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->headers.Get("Age"), "42");
}

TEST_F(StaticCacheTest, ExpiresAfterMaxAge) {
  StaticCache cache = MakeCache();
  cache.Store("/x", CacheableResponse("x", "max-age=10"));
  clock_.AdvanceSeconds(11);
  EXPECT_FALSE(cache.Lookup("/x").has_value());
  // The stale entry is retained for serve-stale-on-error (RFC 9111
  // §4.2.4); only the capacity LRU drops it.
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(StaticCacheTest, LookupStaleServesExpiredEntryWithAge) {
  StaticCache cache = MakeCache();
  cache.Store("/x", CacheableResponse("x", "max-age=10"));
  clock_.AdvanceSeconds(25);
  ASSERT_FALSE(cache.Lookup("/x").has_value());  // Stale for Lookup...
  auto stale = cache.LookupStale("/x");          // ...but servable on error.
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(stale->body, "x");
  EXPECT_EQ(*stale->headers.Get("Age"), "25");
  EXPECT_EQ(cache.stats().stale_served, 1u);
}

TEST_F(StaticCacheTest, LookupStaleMissesUnknownUrl) {
  StaticCache cache = MakeCache();
  EXPECT_FALSE(cache.LookupStale("/never-seen").has_value());
}

TEST_F(StaticCacheTest, RefusesUncacheableResponses) {
  StaticCache cache = MakeCache();
  EXPECT_FALSE(cache.Store("/a", http::Response::MakeOk("no header")));
  EXPECT_FALSE(
      cache.Store("/b", CacheableResponse("x", "private, max-age=60")));
  EXPECT_FALSE(cache.Store("/c", CacheableResponse("x", "no-store")));
  http::Response error =
      http::Response::MakeError(404, "Not Found", "nope");
  error.headers.Set("Cache-Control", "max-age=60");
  EXPECT_FALSE(cache.Store("/d", error));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(StaticCacheTest, SMaxageGovernsProxyFreshness) {
  StaticCache cache = MakeCache();
  cache.Store("/x", CacheableResponse("x", "max-age=5, s-maxage=100"));
  clock_.AdvanceSeconds(50);
  EXPECT_TRUE(cache.Lookup("/x").has_value());
}

TEST_F(StaticCacheTest, LruEviction) {
  StaticCache cache = MakeCache(2);
  cache.Store("/a", CacheableResponse("a"));
  cache.Store("/b", CacheableResponse("b"));
  cache.Lookup("/a");  // /b becomes LRU.
  cache.Store("/c", CacheableResponse("c"));
  EXPECT_TRUE(cache.Lookup("/a").has_value());
  EXPECT_FALSE(cache.Lookup("/b").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(StaticCacheTest, ClearEmpties) {
  StaticCache cache = MakeCache();
  cache.Store("/a", CacheableResponse("a"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("/a").has_value());
}

}  // namespace
}  // namespace dynaprox::dpc
