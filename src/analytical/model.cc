#include "analytical/model.h"

#include <cmath>

namespace dynaprox::analytical {
namespace {

// Cost contributed by one cacheable fragment of size `s`:
// hit -> one GET tag (g); miss -> content wrapped in SET framing (s + 2g).
double CacheableFragmentCost(double s, double h, double g) {
  return h * g + (1.0 - h) * (s + 2.0 * g);
}

}  // namespace

double ResponseSizeNoCache(const ModelParams& params) {
  return params.fragments_per_page * params.fragment_size +
         params.header_size;
}

double ResponseSizeWithCache(const ModelParams& params) {
  double per_fragment =
      params.cacheability * CacheableFragmentCost(params.fragment_size,
                                                  params.hit_ratio,
                                                  params.tag_size) +
      (1.0 - params.cacheability) * params.fragment_size;
  return params.fragments_per_page * per_fragment + params.header_size;
}

double ExpectedBytesNoCache(const ModelParams& params) {
  return params.requests * ResponseSizeNoCache(params);
}

double ExpectedBytesWithCache(const ModelParams& params) {
  return params.requests * ResponseSizeWithCache(params);
}

double BytesRatio(const ModelParams& params) {
  return ExpectedBytesWithCache(params) / ExpectedBytesNoCache(params);
}

double SavingsPercent(const ModelParams& params) {
  double nc = ExpectedBytesNoCache(params);
  return (nc - ExpectedBytesWithCache(params)) / nc * 100.0;
}

double FirewallSavingsPercent(const ModelParams& params) {
  return (1.0 - 2.0 * BytesRatio(params)) * 100.0;
}

SiteSpec SiteSpec::Uniform(const ModelParams& params) {
  SiteSpec site;
  site.header_size = params.header_size;
  site.tag_size = params.tag_size;
  site.pages.resize(params.num_pages);
  // Largest-remainder assignment so the site-wide cacheable fraction tracks
  // params.cacheability even when cacheability * fragments_per_page is not
  // integral.
  long long assigned = 0;
  long long seen = 0;
  for (int i = 0; i < params.num_pages; ++i) {
    PageSpec& page = site.pages[i];
    page.fragments.resize(params.fragments_per_page);
    for (FragmentSpec& fragment : page.fragments) {
      ++seen;
      long long target = std::llround(params.cacheability *
                                      static_cast<double>(seen));
      fragment.size = params.fragment_size;
      fragment.cacheable = target > assigned;
      if (fragment.cacheable) ++assigned;
    }
  }
  return site;
}

double PageSizeNoCache(const PageSpec& page, const SiteSpec& site) {
  double total = site.header_size;
  for (const FragmentSpec& fragment : page.fragments) total += fragment.size;
  return total;
}

double PageSizeWithCache(const PageSpec& page, const SiteSpec& site,
                         double hit_ratio) {
  double total = site.header_size;
  for (const FragmentSpec& fragment : page.fragments) {
    total += fragment.cacheable
                 ? CacheableFragmentCost(fragment.size, hit_ratio,
                                         site.tag_size)
                 : fragment.size;
  }
  return total;
}

std::vector<double> ZipfProbabilities(int n, double alpha) {
  std::vector<double> probabilities(n);
  double total = 0;
  for (int i = 0; i < n; ++i) {
    probabilities[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    total += probabilities[i];
  }
  for (double& p : probabilities) p /= total;
  return probabilities;
}

double ExpectedBytes(const SiteSpec& site,
                     const std::vector<double>& page_probabilities,
                     double requests, double hit_ratio, bool with_cache) {
  double expected = 0;
  for (size_t i = 0; i < site.pages.size(); ++i) {
    double size = with_cache
                      ? PageSizeWithCache(site.pages[i], site, hit_ratio)
                      : PageSizeNoCache(site.pages[i], site);
    expected += page_probabilities[i] * size;
  }
  return requests * expected;
}

}  // namespace dynaprox::analytical
