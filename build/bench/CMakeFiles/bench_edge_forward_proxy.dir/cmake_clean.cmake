file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_forward_proxy.dir/edge_forward_proxy.cc.o"
  "CMakeFiles/bench_edge_forward_proxy.dir/edge_forward_proxy.cc.o.d"
  "bench_edge_forward_proxy"
  "bench_edge_forward_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_forward_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
