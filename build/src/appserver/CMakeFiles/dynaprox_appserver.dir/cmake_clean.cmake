file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_appserver.dir/origin_server.cc.o"
  "CMakeFiles/dynaprox_appserver.dir/origin_server.cc.o.d"
  "CMakeFiles/dynaprox_appserver.dir/personalization.cc.o"
  "CMakeFiles/dynaprox_appserver.dir/personalization.cc.o.d"
  "CMakeFiles/dynaprox_appserver.dir/script_context.cc.o"
  "CMakeFiles/dynaprox_appserver.dir/script_context.cc.o.d"
  "CMakeFiles/dynaprox_appserver.dir/script_registry.cc.o"
  "CMakeFiles/dynaprox_appserver.dir/script_registry.cc.o.d"
  "CMakeFiles/dynaprox_appserver.dir/session.cc.o"
  "CMakeFiles/dynaprox_appserver.dir/session.cc.o.d"
  "libdynaprox_appserver.a"
  "libdynaprox_appserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_appserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
