// Status (observability) endpoints on the origin and the DPC.

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/connection_pool.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

class StatusEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterOrReplace(
        "/page", [](appserver::ScriptContext& context) {
          return context.CacheableBlock(bem::FragmentId("f"),
                                        [](appserver::ScriptContext& ctx) {
                                          ctx.Emit("body");
                                          return Status::Ok();
                                        });
        });
    bem::BemOptions bem_options;
    bem_options.capacity = 8;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);

    appserver::OriginOptions origin_options;
    origin_options.enable_status = true;
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get(), origin_options);
    upstream_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());

    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 8;
    proxy_options.enable_status = true;
    proxy_options.enable_static_cache = true;
    proxy_ = std::make_unique<dpc::DpcProxy>(upstream_.get(), proxy_options);
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> upstream_;
  std::unique_ptr<dpc::DpcProxy> proxy_;
};

TEST_F(StatusEndpointTest, OriginStatusReportsCounters) {
  origin_->Handle(Get("/page"));
  origin_->Handle(Get("/page"));
  http::Response status = origin_->Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_EQ(*status.headers.Get("Content-Type"), "application/json");
  EXPECT_NE(status.body.find("\"component\":\"origin\""),
            std::string::npos);
  EXPECT_NE(status.body.find("\"requests\":2"), std::string::npos);
  EXPECT_NE(status.body.find("\"caching_enabled\":true"),
            std::string::npos);
  // Directory block present with one miss + one hit, and the cached
  // fragment listed in the sample.
  EXPECT_NE(status.body.find("\"directory\":{"), std::string::npos);
  EXPECT_NE(status.body.find("\"hit_ratio\":0.5"), std::string::npos);
  EXPECT_NE(status.body.find("\"sample_entries\":[{\"fragment\":\"f\""),
            std::string::npos);
}

TEST_F(StatusEndpointTest, StatusRequestsNotCountedAsTraffic) {
  origin_->Handle(Get("/_dynaprox/status"));
  http::Response status = origin_->Handle(Get("/_dynaprox/status"));
  EXPECT_NE(status.body.find("\"requests\":0"), std::string::npos);
}

TEST_F(StatusEndpointTest, ProxyStatusServedLocally) {
  proxy_->Handle(Get("/page"));
  http::Response status = proxy_->Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_NE(status.body.find("\"component\":\"dpc\""), std::string::npos);
  EXPECT_NE(status.body.find("\"assembled\":1"), std::string::npos);
  EXPECT_NE(status.body.find("\"store\":{"), std::string::npos);
  EXPECT_NE(status.body.find("\"occupied_slots\":1"), std::string::npos);
  EXPECT_NE(status.body.find("\"static_cache\":{"), std::string::npos);
  // The proxy answered locally: only /page reached the origin.
  EXPECT_EQ(origin_->stats().requests, 1u);
}

TEST_F(StatusEndpointTest, ProxyStatusExposesUpstreamPoolGauges) {
  net::TcpServer origin_server(
      [](const http::Request&) { return http::Response::MakeOk("hi"); });
  ASSERT_TRUE(origin_server.Start().ok());
  net::PooledClientTransport upstream("127.0.0.1", origin_server.port());

  dpc::ProxyOptions options;
  options.capacity = 8;
  options.enable_status = true;
  options.upstream_pool = &upstream.pool();
  dpc::DpcProxy proxy(&upstream, options);

  proxy.Handle(Get("/page"));
  http::Response status = proxy.Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_NE(status.body.find("\"upstream_pool\":{"), std::string::npos);
  EXPECT_NE(status.body.find("\"open_connections\":1"), std::string::npos);
  EXPECT_NE(status.body.find("\"checkouts\":1"), std::string::npos);
  EXPECT_NE(status.body.find("\"reconnects\":0"), std::string::npos);
  EXPECT_NE(status.body.find("\"wait_queue_depth\":0"), std::string::npos);
  EXPECT_NE(status.body.find("\"wait_micros\":{"), std::string::npos);
  origin_server.Stop();
}

TEST_F(StatusEndpointTest, DisabledByDefaultPathFallsThrough) {
  appserver::OriginServer plain(&registry_, &repository_, nullptr);
  EXPECT_EQ(plain.Handle(Get("/_dynaprox/status")).status_code, 404);
}

TEST_F(StatusEndpointTest, CustomStatusPath) {
  appserver::OriginOptions options;
  options.enable_status = true;
  options.status_path = "/healthz";
  appserver::OriginServer origin(&registry_, &repository_, nullptr,
                                 options);
  EXPECT_EQ(origin.Handle(Get("/healthz")).status_code, 200);
  EXPECT_EQ(origin.Handle(Get("/_dynaprox/status")).status_code, 404);
}

}  // namespace
}  // namespace dynaprox
