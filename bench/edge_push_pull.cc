// Edge-tier extension bench: push-based refresh vs pull-through recovery
// on a 3-node DPC cluster (docs/edge-tier.md).
//
// Sweeps update locality (updates hitting hot vs cold fragments) against
// three refresh configs:
//   pull       — paper behaviour: invalidations wait for client demand
//   push(k=4)  — control channel with popularity*update-rate admission
//   push(all)  — control channel with no admission filter
//
// Staleness is measured identically in every config through the shared
// invalidate->reinsert histogram (appserver::PushEngine::staleness), so
// the regimes are directly comparable: push wins when updates land on hot
// fragments (staleness collapses, origin bytes drop because the refreshed
// directory entry spares the full-template SET miss); pull wins bytes
// when updates land on cold fragments nobody re-reads (push(all) ships
// bodies no client ever asks for, while admission tracks pull).

#include <cstdio>
#include <memory>
#include <string>

#include "appserver/origin_server.h"
#include "appserver/push_engine.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "edge/cluster.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"

namespace {

using namespace dynaprox;  // Bench binary: brevity over style here.

constexpr int kPages = 50;
constexpr int kRequests = 3000;
constexpr int kUpdateEvery = 5;   // One data-source update per 5 requests.
constexpr int kClients = 32;
constexpr double kZipfAlpha = 1.0;

struct Config {
  const char* name;
  double min_score;  // Push admission threshold; huge == pull-only.
  bool drain;        // Whether the BEM drains the push queue.
};

struct Outcome {
  uint64_t origin_bytes = 0;
  uint64_t peer_bytes = 0;
  uint64_t pushes = 0;
  uint64_t skipped_cold = 0;
  uint64_t recoveries = 0;
  uint64_t closed_windows = 0;
  double staleness_p50 = 0;
  double staleness_p99 = 0;
  int errors = 0;
};

Outcome Run(const Config& config, bool hot_updates) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* rows = repository.GetOrCreateTable("rows");
  for (int i = 0; i < kPages; ++i) {
    rows->Upsert("r" + std::to_string(i),
                 {{"v", storage::Value(static_cast<double>(i))}});
  }

  appserver::ScriptRegistry registry;
  const std::string padding(600, 'x');
  for (int i = 0; i < kPages; ++i) {
    std::string row_key = "r" + std::to_string(i);
    registry.RegisterOrReplace(
        "/p" + std::to_string(i),
        [i, row_key, &padding](appserver::ScriptContext& context) {
          return context.CacheableBlock(
              bem::FragmentId("frag" + std::to_string(i)),
              [&](appserver::ScriptContext& ctx) {
                storage::Row row =
                    *(*ctx.repository()->GetTable("rows"))->Get(row_key);
                ctx.DeclareDependency("rows", row_key);
                ctx.Emit(storage::ValueToString(row.at("v")) + padding);
                return Status::Ok();
              });
        });
  }

  bem::BemOptions bem_options;
  bem_options.capacity = 256;
  bem_options.clock = &clock;
  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);

  bem::PushPolicy policy;
  policy.min_score = config.min_score;
  appserver::PushEngine engine(policy, &clock);
  monitor->SetObserver(&engine.scheduler());

  appserver::OriginOptions origin_options;
  origin_options.clock = &clock;
  origin_options.push_engine = &engine;
  appserver::OriginServer server(&registry, &repository, monitor.get(),
                                 origin_options);
  engine.AttachOrigin(&server);

  net::ByteMeter origin_meter, peer_meter;
  auto origin_direct =
      std::make_unique<net::DirectTransport>(server.AsHandler());
  net::MeteredTransport origin_link(std::move(origin_direct), nullptr,
                                    &origin_meter);

  edge::EdgeClusterOptions cluster_options;
  cluster_options.proxy.capacity = 256;
  cluster_options.proxy.clock = &clock;
  cluster_options.peer_meter = &peer_meter;
  edge::EdgeCluster cluster(&origin_link, cluster_options);
  for (const char* node : {"edge-us", "edge-eu", "edge-ap"}) {
    if (!cluster.AddEdge(node).ok()) return {};
  }
  engine.set_sink([&cluster](const std::string&, bem::DpcKey key,
                             const std::string& body, MicroTime age) {
    return cluster.ApplyPush(key, body, age);
  });

  ZipfSampler pages(kPages, kZipfAlpha);
  Rng rng(42);
  Outcome outcome;
  double version = 1000.0;
  for (int i = 0; i < kRequests; ++i) {
    clock.AdvanceMicros(20000);  // 20 ms between request arrivals.
    if (i % kUpdateEvery == 0 && i > 0) {
      // Hot regime: updates follow request popularity. Cold regime:
      // updates hit the anti-popular tail.
      size_t rank = pages.Sample(rng);
      if (!hot_updates) rank = kPages - 1 - rank;
      rows->Upsert("r" + std::to_string(rank),
                   {{"v", storage::Value(version += 1.0)}});
      if (config.drain) {
        // The BEM-side drain runs off-request (timer); give it a realistic
        // 5 ms lag behind the invalidation.
        clock.AdvanceMicros(5000);
        (void)engine.Drain();
      }
    }
    http::Request request;
    request.target = "/p" + std::to_string(pages.Sample(rng));
    request.headers.Add(
        "X-Client",
        "client" + std::to_string(rng.NextBounded(kClients)));
    if (cluster.Handle(request).status_code != 200) ++outcome.errors;
  }

  outcome.origin_bytes = origin_meter.payload_bytes();
  outcome.peer_bytes = peer_meter.payload_bytes();
  outcome.pushes = engine.stats().pushed;
  outcome.skipped_cold = engine.scheduler().stats().skipped_cold;
  for (const char* node : {"edge-us", "edge-eu", "edge-ap"}) {
    outcome.recoveries += (*cluster.NodeProxy(node))->stats().recoveries;
  }
  metrics::LatencyHistogram::Snapshot staleness =
      engine.staleness().snapshot();
  outcome.closed_windows = staleness.count;
  outcome.staleness_p50 = staleness.Percentile(0.5);
  outcome.staleness_p99 = staleness.Percentile(0.99);
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "=== Edge extension: push vs pull refresh on a 3-node cluster ===\n");
  std::printf(
      "pages=%d requests=%d update_every=%d zipf_alpha=%.1f "
      "(staleness over closed invalidate->reinsert windows only)\n\n",
      kPages, kRequests, kUpdateEvery, kZipfAlpha);
  const Config kConfigs[] = {
      {"pull", 1e18, false},
      {"push(k=4)", 4.0, true},
      {"push(all)", 0.0, true},
  };
  int errors = 0;
  for (bool hot : {true, false}) {
    std::printf("-- updates hit %s fragments --\n", hot ? "hot" : "cold");
    std::printf("%-10s %10s %10s %10s %7s %8s %8s %10s %10s\n", "config",
                "originB", "peerB", "totalB", "pushes", "skipped",
                "windows", "stale_p50s", "stale_p99s");
    for (const Config& config : kConfigs) {
      Outcome outcome = Run(config, hot);
      errors += outcome.errors;
      std::printf(
          "%-10s %10llu %10llu %10llu %7llu %8llu %8llu %10.3f %10.3f\n",
          config.name,
          static_cast<unsigned long long>(outcome.origin_bytes),
          static_cast<unsigned long long>(outcome.peer_bytes),
          static_cast<unsigned long long>(outcome.origin_bytes +
                                          outcome.peer_bytes),
          static_cast<unsigned long long>(outcome.pushes),
          static_cast<unsigned long long>(outcome.skipped_cold),
          static_cast<unsigned long long>(outcome.closed_windows),
          outcome.staleness_p50, outcome.staleness_p99);
    }
    std::printf("\n");
  }
  benchutil::PrintFooter();
  return errors == 0 ? 0 : 1;
}
