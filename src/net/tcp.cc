#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/fault_point.h"
#include "common/logging.h"
#include "common/strings.h"
#include "http/parser.h"
#include "net/idempotency.h"
#include "net/socket_util.h"

namespace dynaprox::net {
namespace {

Status Errno(const char* what) { return ErrnoStatus(what); }

constexpr auto kRelaxed = std::memory_order_relaxed;

// Deadline-check granularity for connections with timing limits. Coarse on
// purpose: deadlines are hundreds of milliseconds and the tick only runs
// while a connection is quiet.
constexpr int kDeadlineTickMs = 25;

// Poll granularity when no timing limits apply. A connection thread still
// has to notice Stop(drain) while parked on a quiet socket, so the wait
// can never be unbounded; a coarse tick keeps the idle wakeup cost noise.
constexpr int kIdleTickMs = 100;

// Sends a streamed response: chunked head first, then one chunk frame per
// body pull, so head bytes hit the socket while the tail is still being
// produced. SO_SNDTIMEO (write-stall deadline) bounds every send exactly
// as on the buffered path; stall closes are counted here. A body-stream
// error aborts without the final chunk frame — the truncated chunked
// framing is what tells the client the response went bad.
Status SendStreamedResponse(int fd, const http::Response& response,
                            IngressCounters& counters) {
  common::BufferChain out;
  out.Append(common::MakeBuffer(http::SerializeStreamingHead(response)));
  for (;;) {
    Status sent = SendChain(fd, out);
    if (!sent.ok()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        counters.write_stall_closes.fetch_add(1, kRelaxed);
      }
      return sent;
    }
    out.Clear();
    Result<common::BufferChain> chunk = response.body_stream->Next();
    if (!chunk.ok()) return chunk.status();
    if (chunk->empty()) break;
    http::AppendChunkFrame(out, std::move(*chunk));
  }
  http::AppendFinalChunkFrame(out);
  Status sent = SendChain(fd, out);
  if (!sent.ok() && (errno == EAGAIN || errno == EWOULDBLOCK)) {
    counters.write_stall_closes.fetch_add(1, kRelaxed);
  }
  return sent;
}

}  // namespace

TcpServer::TcpServer(Handler handler, uint16_t port, ServerLimits limits)
    : handler_(std::move(handler)),
      port_(port),
      limits_(limits),
      counters_(limits.counters != nullptr ? limits.counters
                                           : &own_counters_) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread(&TcpServer::AcceptLoop, this);
  return Status::Ok();
}

void TcpServer::Stop(MicroTime drain_timeout_micros) {
  if (drain_timeout_micros <= 0) {
    Stop();
    return;
  }
  if (!running_.load()) return;
  draining_.store(true);
  // Stop accepting: shutting the listener down unblocks accept() with an
  // error, which ends AcceptLoop without flipping running_ — connection
  // threads keep serving what they already have.
  ::shutdown(listen_fd_, SHUT_RDWR);
  const Clock& clock = *SystemClock::Default();
  const MicroTime deadline = clock.NowMicros() + drain_timeout_micros;
  while (clock.NowMicros() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (active_fds_.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Stop();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listening socket down to unblock accept(). The fd variable
  // itself is only reset after the accept thread joins — AcceptLoop still
  // reads it until then.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::map<std::thread::id, std::thread> live;
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    live.swap(connection_threads_);
    finished.swap(finished_threads_);
    // Unblock connection threads parked in recv() on live keep-alive
    // connections; they observe EOF and exit.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& [id, t] : live) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
  active_fds_.clear();
}

size_t TcpServer::connection_thread_handles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connection_threads_.size() + finished_threads_.size();
}

void TcpServer::ReapFinishedThreads() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_threads_);
  }
  // Joins are near-instant: each thread parked its handle as its last
  // locked action before returning.
  for (std::thread& t : finished) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNABORTED) continue;  // Peer gave up; next one.
      if (errno == EMFILE || errno == ENFILE) {
        // Fd exhaustion is an episode, not a fatal listener error: keep
        // the accept loop alive, log/count once per episode, and back off
        // so a sustained outage doesn't spin the thread.
        if (!fd_exhausted_) {
          fd_exhausted_ = true;
          counters_->accept_fd_exhaustion_episodes.fetch_add(1, kRelaxed);
          DYNAPROX_LOG(kError, "tcp")
              << "accept: " << std::strerror(errno)
              << " (fd limit reached; dropping new connections)";
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // Listener closed by Stop().
    }
    if (fd_exhausted_) {
      // Accept works again: re-arm per-episode logging.
      fd_exhausted_ = false;
      DYNAPROX_LOG(kInfo, "tcp") << "accept: fd exhaustion cleared";
    }
    // Join connection threads that finished since the last accept; handles
    // must not pile up for the lifetime of the server.
    ReapFinishedThreads();
    // Enforce the cap against this server's own count, not the exported
    // gauge: ServerLimits::counters may be shared across servers, and a
    // shared gauge would count foreign connections toward our cap.
    if (limits_.max_connections > 0 &&
        live_connections_.load(kRelaxed) >= limits_.max_connections) {
      counters_->connection_limit_rejections.fetch_add(1, kRelaxed);
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    counters_->accepted_total.fetch_add(1, kRelaxed);
    counters_->open_connections.fetch_add(1, kRelaxed);
    live_connections_.fetch_add(1, kRelaxed);
    active_fds_.push_back(fd);
    // The new thread deregisters itself under mu_ (held here), so the
    // handle is always in the map before the thread can try to remove it.
    std::thread thread(&TcpServer::ServeConnection, this, fd);
    std::thread::id id = thread.get_id();
    connection_threads_.emplace(id, std::move(thread));
  }
}

void TcpServer::ServeConnection(int fd) {
  http::RequestReader reader;
  reader.set_limits({limits_.max_header_bytes, limits_.max_body_bytes});
  if (limits_.write_stall_micros > 0) {
    // A client that stops reading its response stalls send(); bound it so
    // the thread (and its response buffer) cannot be held hostage.
    timeval tv{};
    tv.tv_sec = limits_.write_stall_micros / kMicrosPerSecond;
    tv.tv_usec = limits_.write_stall_micros % kMicrosPerSecond;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  const Clock& clock = *SystemClock::Default();
  const bool timed = limits_.header_timeout_micros > 0 ||
                     limits_.idle_timeout_micros > 0;
  char buf[16 * 1024];
  bool keep_alive = true;
  bool served_while_draining = false;
  // 0 = no request in progress; otherwise when its first bytes arrived.
  MicroTime read_start = 0;
  MicroTime last_activity = clock.NowMicros();
  while (keep_alive && running_.load()) {
    const bool draining = draining_.load();
    if (draining && read_start == 0) {
      // Drain with no request in progress: nothing left to finish.
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    int ready =
        ::poll(&pfd, 1, (timed || draining) ? kDeadlineTickMs : kIdleTickMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const MicroTime now = clock.NowMicros();
    if (ready == 0) {
      if (read_start != 0 && limits_.header_timeout_micros > 0 &&
          now - read_start >= limits_.header_timeout_micros) {
        counters_->header_timeouts.fetch_add(1, kRelaxed);
        break;  // Slowloris: started a request, never finished it.
      }
      if (read_start == 0 && limits_.idle_timeout_micros > 0 &&
          now - last_activity >= limits_.idle_timeout_micros) {
        counters_->idle_timeouts.fetch_add(1, kRelaxed);
        break;
      }
      continue;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // Peer closed or error.
    }
    last_activity = now;
    if (read_start == 0) read_start = now;
    reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    bool completed_request = false;
    while (auto next = reader.Next()) {
      if (!next->ok()) {
        http::Response bad = ResponseForReaderError(
            reader.limit_violation(), next->status(), *counters_);
        (void)SendAll(fd, bad.Serialize());
        keep_alive = false;
        break;
      }
      const http::Request& request = next->value();
      completed_request = true;
      http::Response response =
          DispatchAdmitted(handler_, request, limits_, *counters_);
      if (draining_.load()) {
        // Finish this response, then close: new work goes elsewhere.
        keep_alive = false;
        served_while_draining = true;
      }
      if (auto connection = request.headers.Get("Connection");
          connection.has_value() && EqualsIgnoreCase(*connection, "close")) {
        keep_alive = false;
      }
      if (!keep_alive) response.headers.Set("Connection", "close");
      if (response.body_stream != nullptr) {
        // Streamed body: chunked framing, flushed chunk by chunk (stall
        // accounting happens inside).
        if (!SendStreamedResponse(fd, response, *counters_).ok()) {
          keep_alive = false;
          break;
        }
      } else if (!SendChain(fd, response.SerializeToChain()).ok()) {
        // Vectored write: headers in one owned buffer, body as shared
        // slices — assembled pages go to the kernel without flattening.
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          counters_->write_stall_closes.fetch_add(1, kRelaxed);
        }
        keep_alive = false;
        break;
      }
    }
    // The header deadline bounds total time from a message's first byte
    // to its completion, so a partial message must keep its original
    // read_start — restarting the clock per recv would let a slowloris
    // drip one byte per tick forever. The clock resets only on a clean
    // boundary, or restarts at `now` when leftover bytes begin a new
    // pipelined message (those bytes arrived in this recv).
    if (reader.buffered_bytes() == 0) {
      read_start = 0;
    } else if (completed_request) {
      read_start = now;
    }
  }
  if (served_while_draining) {
    counters_->drained_connections.fetch_add(1, kRelaxed);
  }
  {
    // Deregister before closing so Stop() never shuts down a reused fd.
    std::lock_guard<std::mutex> lock(mu_);
    active_fds_.erase(
        std::remove(active_fds_.begin(), active_fds_.end(), fd),
        active_fds_.end());
    // Park this thread's own handle for the accept loop (or Stop) to
    // join; keeping it in the live map would leak one dead handle per
    // connection ever served.
    auto self = connection_threads_.find(std::this_thread::get_id());
    if (self != connection_threads_.end()) {
      finished_threads_.push_back(std::move(self->second));
      connection_threads_.erase(self);
    }
  }
  counters_->open_connections.fetch_sub(1, kRelaxed);
  live_connections_.fetch_sub(1, kRelaxed);
  ::close(fd);
}

TcpClientTransport::TcpClientTransport(std::string host, uint16_t port,
                                       TcpClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

TcpClientTransport::~TcpClientTransport() { CloseConnection(); }

Status TcpClientTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  Result<int> fd = DialTcp(host_, port_, options_.io_timeout_micros);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::Ok();
}

void TcpClientTransport::CloseConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<http::Response> TcpClientTransport::RoundTrip(
    const http::Request& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string wire = request.Serialize();
  for (int attempt = 0; attempt < 2; ++attempt) {
    DYNAPROX_RETURN_IF_ERROR(EnsureConnected());
    size_t sent = 0;
    Status write_status =
        chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.write"));
    if (write_status.ok()) write_status = SendAll(fd_, wire, &sent);
    if (!write_status.ok()) {
      // Likely a stale keep-alive connection — but some request bytes may
      // have reached the origin, so only re-send when that cannot
      // duplicate a side effect.
      CloseConnection();
      if (attempt == 0 &&
          SafeToRetry(request, sent, options_.non_idempotent_headers)) {
        continue;
      }
      return write_status;
    }
    http::ResponseReader reader;
    char buf[16 * 1024];
    for (;;) {
      if (auto next = reader.Next()) {
        if (!next->ok()) {
          CloseConnection();
          return next->status();
        }
        return std::move(*next);
      }
      if (Status injected =
              chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.read"));
          !injected.ok()) {
        CloseConnection();
        return injected;
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // SO_RCVTIMEO elapsed: fail fast, don't retry into another stall.
        CloseConnection();
        return Status::IoError("receive timeout");
      }
      if (n <= 0) {
        CloseConnection();
        if (n == 0 && reader.buffered_bytes() == 0 && attempt == 0 &&
            SafeToRetry(request, wire.size(),
                        options_.non_idempotent_headers)) {
          break;  // Keep-alive closed before the response; safe to resend.
        }
        return Status::IoError("connection closed mid-response");
      }
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }
  return Status::IoError("could not complete round trip");
}

// Body stream over the transport's single connection. Holds the
// serialization lock for its whole lifetime, so the connection cannot be
// reused (or reconnected) under a half-read body. Draining to end-of-body
// keeps the connection for the next round trip; abandoning the stream —
// or any read error — closes it, because the framing state is unknown.
class TcpClientTransport::StreamingBody : public http::BodyStream {
 public:
  StreamingBody(TcpClientTransport* transport,
                std::unique_lock<std::mutex> lock,
                http::StreamingResponseReader reader, bool reusable)
      : transport_(transport),
        lock_(std::move(lock)),
        reader_(std::move(reader)),
        reusable_(reusable) {}

  ~StreamingBody() override {
    if (!finished_) {
      transport_->CloseConnection();
    }
  }

  Result<common::BufferChain> Next() override {
    if (finished_) return common::BufferChain();
    char buf[16 * 1024];
    for (;;) {
      std::string bytes = reader_.TakeBody();
      if (!bytes.empty()) {
        if (reader_.body_complete()) Finish();
        common::BufferChain out;
        out.Append(common::MakeBuffer(std::move(bytes)));
        return out;
      }
      if (reader_.body_complete()) {
        Finish();
        return common::BufferChain();
      }
      if (Status injected =
              chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.read"));
          !injected.ok()) {
        return Abort(injected);
      }
      ssize_t n = ::recv(transport_->fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return Abort(Status::IoError("receive timeout"));
      }
      if (n < 0) return Abort(ErrnoStatus("recv"));
      if (n == 0) {
        return Abort(Status::IoError("connection closed mid-response"));
      }
      reader_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (reader_.failed()) return Abort(reader_.status());
    }
  }

 private:
  void Finish() {
    finished_ = true;
    if (!reusable_ || reader_.excess_bytes() != 0) {
      transport_->CloseConnection();
    }
    lock_.unlock();
  }

  Status Abort(Status status) {
    finished_ = true;
    transport_->CloseConnection();
    lock_.unlock();
    return status;
  }

  TcpClientTransport* transport_;
  std::unique_lock<std::mutex> lock_;
  http::StreamingResponseReader reader_;
  bool reusable_;
  bool finished_ = false;
};

Result<StreamingResponse> TcpClientTransport::RoundTripStreaming(
    const http::Request& request) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::string wire = request.Serialize();
  for (int attempt = 0; attempt < 2; ++attempt) {
    DYNAPROX_RETURN_IF_ERROR(EnsureConnected());
    size_t sent = 0;
    Status write_status =
        chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.write"));
    if (write_status.ok()) write_status = SendAll(fd_, wire, &sent);
    if (!write_status.ok()) {
      CloseConnection();
      if (attempt == 0 &&
          SafeToRetry(request, sent, options_.non_idempotent_headers)) {
        continue;
      }
      return write_status;
    }
    http::StreamingResponseReader reader;
    char buf[16 * 1024];
    bool retry = false;
    while (!retry) {
      if (auto head = reader.NextHead()) {
        if (!head->ok()) {
          CloseConnection();
          return head->status();
        }
        bool reusable = true;
        if (auto connection = head->value().headers.Get("Connection");
            connection.has_value() &&
            EqualsIgnoreCase(*connection, "close")) {
          reusable = false;
        }
        StreamingResponse streaming;
        streaming.head = std::move(head->value());
        streaming.body = std::make_unique<StreamingBody>(
            this, std::move(lock), std::move(reader), reusable);
        return streaming;
      }
      if (Status injected =
              chaos::InjectStatus(DYNAPROX_FAULT_POINT("net.read"));
          !injected.ok()) {
        CloseConnection();
        return injected;
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        CloseConnection();
        return Status::IoError("receive timeout");
      }
      if (n < 0) {
        CloseConnection();
        return ErrnoStatus("recv");
      }
      if (n == 0) {
        CloseConnection();
        // Head bytes not yet started + idempotent: one fresh retry, same
        // as the buffered path's stale keep-alive recovery.
        if (reader.buffered_bytes() == 0 && attempt == 0 &&
            SafeToRetry(request, wire.size(),
                        options_.non_idempotent_headers)) {
          retry = true;
          break;
        }
        return Status::IoError("connection closed mid-response");
      }
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }
  return Status::IoError("could not complete round trip");
}

}  // namespace dynaprox::net
