#ifndef DYNAPROX_FIREWALL_FIREWALL_H_
#define DYNAPROX_FIREWALL_FIREWALL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dpc/kmp.h"
#include "net/transport.h"

namespace dynaprox::firewall {

// Section 5's scan-cost model. Every byte crossing the firewall is scanned
// at cost y per byte; with the DPC in place the same bytes are scanned a
// second time by the template scanner, and since both scanners are
// linear-time string matchers the paper assumes z ~= y, giving
// scanCost_C = 2 * y * B_C (equations (1) and (2)).
struct ScanCostModel {
  double cost_per_byte = 1.0;  // y.

  double CostNoCache(double bytes_nc) const { return bytes_nc * cost_per_byte; }
  double CostWithCache(double bytes_c) const {
    return 2.0 * bytes_c * cost_per_byte;
  }
  // Percentage savings in scan cost; negative when caching scans more.
  double SavingsPercent(double bytes_nc, double bytes_c) const {
    double nc = CostNoCache(bytes_nc);
    return nc == 0 ? 0.0 : (nc - CostWithCache(bytes_c)) / nc * 100.0;
  }
  // Result 1: the DPC pays off when B_NC > 2 * B_C.
  bool CachePreferable(double bytes_nc, double bytes_c) const {
    return bytes_nc > 2.0 * bytes_c;
  }
};

struct FirewallStats {
  uint64_t messages = 0;
  uint64_t bytes_scanned = 0;
  uint64_t signature_hits = 0;
  uint64_t blocked = 0;
};

// A packet-filtering firewall stand-in: runs every request and response
// body through KMP signature matching (the real linear-time work the model
// charges y per byte for). Requests matching a signature are rejected with
// 403; response matches are counted but passed (IDS-style).
class ScanningFirewall : public net::Transport {
 public:
  // `inner` must outlive the firewall.
  ScanningFirewall(net::Transport* inner, std::vector<std::string> signatures);

  Result<http::Response> RoundTrip(const http::Request& request) override;

  const FirewallStats& stats() const { return stats_; }

 private:
  // Scans `data`, updating counters; returns true on any signature match.
  bool Scan(std::string_view data);

  net::Transport* inner_;
  std::vector<dpc::KmpMatcher> matchers_;
  FirewallStats stats_;
};

}  // namespace dynaprox::firewall

#endif  // DYNAPROX_FIREWALL_FIREWALL_H_
