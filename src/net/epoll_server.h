#ifndef DYNAPROX_NET_EPOLL_SERVER_H_
#define DYNAPROX_NET_EPOLL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "net/server_limits.h"
#include "net/transport.h"

namespace dynaprox::net {

// Event-driven (epoll, non-blocking) HTTP server: the nginx-style
// alternative to TcpServer's thread-per-connection model. `num_workers`
// event loops share the listening socket via EPOLLEXCLUSIVE; each loop
// owns its connections outright, so no per-connection locking is needed.
//
// The handler runs inline on the event loop. That is the right trade for
// origin-style handlers (fragment generation is CPU work); a handler that
// blocks on its own upstream I/O (e.g. DpcProxy over a slow origin) stalls
// one loop — size num_workers accordingly or use TcpServer there.
//
// A handler may return a streamed response (Response::body_stream): the
// head goes out chunked immediately and body chunks are pulled and
// flushed as the socket accepts them, with a 256 KiB per-connection
// high-water mark pausing the pull until EPOLLOUT drains the backlog.
// The pull itself runs inline, so the blocking caveat above applies to
// the stream's upstream too. A mid-body stream error aborts the
// connection (truncated chunked body), never a complete-looking response.
// Ingress protection (net/server_limits.h) mirrors TcpServer: connection
// cap at accept, in-flight shedding, header/idle/write-stall deadlines,
// request byte caps — all off by default — plus Stop(drain) for a
// graceful shutdown that finishes in-flight work first.
class EpollServer {
 public:
  // `port` 0 picks an ephemeral port (see port() after Start()).
  EpollServer(Handler handler, uint16_t port = 0, int num_workers = 1,
              ServerLimits limits = {});
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  // Binds, listens on 127.0.0.1, and spawns the worker loops.
  Status Start();

  // Stops all loops, closes all connections, joins. Aborts in-flight
  // work. Idempotent.
  void Stop();

  // Graceful drain: every worker deregisters the listener, closes idle
  // keep-alive connections, and finishes busy ones (responses carry
  // "Connection: close"). Connections still busy after
  // `drain_timeout_micros` are cut by the final Stop(). Stop(0) == Stop().
  void Stop(MicroTime drain_timeout_micros);

  uint16_t port() const { return port_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // Connections accepted over the server's lifetime (all workers).
  uint64_t connections_accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }

  // Ingress accounting: the ServerLimits::counters the caller supplied,
  // else an internal instance.
  const IngressCounters& ingress() const { return *counters_; }

 private:
  class Worker;

  Handler handler_;
  uint16_t port_;
  int requested_workers_;
  ServerLimits limits_;
  IngressCounters own_counters_;
  IngressCounters* counters_;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> accepted_{0};
  // This server's open connections, distinct from the (possibly shared)
  // IngressCounters gauge; Stop(drain) polls it to detect completion.
  std::atomic<int64_t> live_connections_{0};
  // Set by the first worker that hits EMFILE/ENFILE so one sustained
  // exhaustion is logged (and counted as an episode) once, not once per
  // accept round — and cleared again when any worker accepts
  // successfully, so the *next* outage is reported too.
  std::atomic<bool> accept_fd_exhausted_{false};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_EPOLL_SERVER_H_
