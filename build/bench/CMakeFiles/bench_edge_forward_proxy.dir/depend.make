# Empty dependencies file for bench_edge_forward_proxy.
# This may be replaced when dependencies are built.
