# Empty dependencies file for dynaprox_proxy.
# This may be replaced when dependencies are built.
