#ifndef DYNAPROX_BEM_TAG_CODEC_H_
#define DYNAPROX_BEM_TAG_CODEC_H_

#include <string>
#include <string_view>

#include "bem/types.h"

namespace dynaprox::bem {

// Frames SET/GET instructions inside a response template (paper 4.3.2).
// Wire grammar (STX = \x02, ETX = \x03):
//
//   set-open:  STX 'S' hex-key ETX        -- followed by fragment bytes
//   set-close: STX 'E' ETX
//   get:       STX 'G' hex-key ETX
//   literal:   STX 'L' ETX                -- one literal STX byte in content
//
// Everything outside tags is literal page text. Literal STX bytes in user
// content are escaped as STX 'L' ETX so the scanner never misparses content
// as a tag; ETX needs no escaping because it is only special after STX.
//
// The average framing overhead is ~10 bytes per cached fragment reference,
// matching the paper's Table 2 tag size g = 10.
class TagCodec {
 public:
  static constexpr char kStx = '\x02';
  static constexpr char kEtx = '\x03';

  // Appends an escaped literal run to `out`.
  static void AppendLiteral(std::string_view text, std::string& out);

  // Appends "store fragment under `key`" framing around escaped `content`.
  static void AppendSet(DpcKey key, std::string_view content,
                        std::string& out);

  // Appends "splice cached fragment `key` here".
  static void AppendGet(DpcKey key, std::string& out);

  // Bytes AppendGet would produce for `key` (the realized tag size g).
  static size_t GetTagSize(DpcKey key);

  // Bytes of framing overhead AppendSet adds beyond the escaped content.
  static size_t SetFramingSize(DpcKey key);
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_TAG_CODEC_H_
