# Empty dependencies file for bench_fig5_exp_savings_vs_hitratio.
# This may be replaced when dependencies are built.
