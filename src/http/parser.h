#ifndef DYNAPROX_HTTP_PARSER_H_
#define DYNAPROX_HTTP_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "http/message.h"

namespace dynaprox::http {

// Parses a complete request/response from `wire`. Fails with
// InvalidArgument on malformed input or if bytes remain unconsumed.
// "Transfer-Encoding: chunked" bodies are decoded: the parsed message
// carries the joined payload with Content-Length set and the
// Transfer-Encoding header removed.
Result<Request> ParseRequest(std::string_view wire);
Result<Response> ParseResponse(std::string_view wire);

// Serializes `response` with chunked transfer encoding, splitting the body
// into chunks of at most `chunk_size` bytes. (Requests stay
// Content-Length-framed; chunking is a response-streaming feature.)
std::string SerializeChunked(const Response& response, size_t chunk_size);

// Incremental reader for a byte stream carrying back-to-back HTTP messages
// (framing via Content-Length; chunked encoding is not used by dynaprox).
//
//   RequestReader reader;
//   reader.Feed(bytes);
//   while (auto req = reader.Next()) Handle(**req);  // Result<...> inside
//
// Next() returns std::nullopt when more bytes are needed; a Result carrying
// an error Status when the stream is corrupt (the reader then stays in the
// error state); and a parsed message otherwise.
//
// Optional byte caps (set_limits) bound the reader's memory against
// hostile peers: a header section that exceeds the header cap — whether
// terminated or still streaming — and a declared Content-Length (or
// accumulating chunked body) over the body cap both fail the stream with
// CapacityExceeded *before* the body is buffered. limit_violation() says
// which cap tripped so servers can answer 431 vs 413.
template <typename Message>
class MessageReader {
 public:
  struct Limits {
    size_t max_header_bytes = 0;  // 0 = unlimited.
    size_t max_body_bytes = 0;    // 0 = unlimited.
  };

  enum class LimitViolation { kNone, kHeaderBytes, kBodyBytes };

  // Appends raw bytes received from the transport.
  void Feed(std::string_view bytes);

  // Attempts to extract the next complete message. See class comment.
  std::optional<Result<Message>> Next();

  // Byte caps checked by Next(); set before feeding.
  void set_limits(Limits limits) { limits_ = limits; }

  // Bytes currently buffered and not yet consumed by Next().
  size_t buffered_bytes() const { return buffer_.size(); }

  bool failed() const { return failed_; }

  // Which cap (if any) put the reader into the failed state.
  LimitViolation limit_violation() const { return violation_; }

 private:
  Result<Message> FailLimit(LimitViolation violation, std::string message);

  std::string buffer_;
  Limits limits_;
  bool failed_ = false;
  LimitViolation violation_ = LimitViolation::kNone;
};

using RequestReader = MessageReader<Request>;
using ResponseReader = MessageReader<Response>;

}  // namespace dynaprox::http

#endif  // DYNAPROX_HTTP_PARSER_H_
