#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "net/idempotency.h"
#include "net/tcp.h"

namespace dynaprox::net {
namespace {

http::Response Echo(const http::Request& request) {
  http::Response response = http::Response::MakeOk("echo:" + request.target);
  return response;
}

TEST(DirectTransportTest, InvokesHandler) {
  DirectTransport transport(Echo);
  http::Request request;
  request.target = "/abc";
  Result<http::Response> response = transport.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "echo:/abc");
}

TEST(MeteredTransportTest, CountsBothDirections) {
  ByteMeter request_meter{ProtocolModel::PayloadOnly()};
  ByteMeter response_meter{ProtocolModel::PayloadOnly()};
  MeteredTransport transport(std::make_unique<DirectTransport>(Echo),
                             &request_meter, &response_meter);
  http::Request request;
  request.target = "/x";
  Result<http::Response> response = transport.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(request_meter.messages(), 1u);
  EXPECT_EQ(request_meter.payload_bytes(), request.SerializedSize());
  EXPECT_EQ(response_meter.messages(), 1u);
  EXPECT_EQ(response_meter.payload_bytes(), response->SerializedSize());
}

TEST(MeteredTransportTest, NullMetersAreSkipped) {
  MeteredTransport transport(std::make_unique<DirectTransport>(Echo),
                             nullptr, nullptr);
  http::Request request;
  EXPECT_TRUE(transport.RoundTrip(request).ok());
}

TEST(IdempotencyTest, SafeToRetryRules) {
  http::Request get;
  http::Request post;
  post.method = "POST";
  // Nothing on the wire yet: any request may be retried.
  EXPECT_TRUE(SafeToRetry(post, 0, {}));
  // Bytes may have reached the server: only idempotent methods retry.
  EXPECT_TRUE(SafeToRetry(get, 10, {}));
  EXPECT_FALSE(SafeToRetry(post, 10, {}));
  // A configured header marks an otherwise-idempotent request unsafe.
  http::Request refresh_get;
  refresh_get.headers.Set(bem::kRefreshHeader, "a1,b2");
  EXPECT_FALSE(SafeToRetry(refresh_get, 10, {bem::kRefreshHeader}));
  EXPECT_TRUE(SafeToRetry(refresh_get, 0, {bem::kRefreshHeader}));
}

// Accepts connections one at a time; reads one request off each, closes
// the first `drop_count` without responding, and answers the rest.
// Simulates an origin that dies after receiving a request.
class DroppingServer {
 public:
  explicit DroppingServer(int drop_count) : drop_count_(drop_count) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~DroppingServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  int requests_received() const { return received_.load(); }

 private:
  void Serve() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // Listener closed by the destructor.
      char buf[4096];
      if (::recv(fd, buf, sizeof(buf), 0) > 0) {
        int index = received_.fetch_add(1);
        if (index >= drop_count_) {
          const char kResponse[] =
              "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
          (void)!::send(fd, kResponse, sizeof(kResponse) - 1, MSG_NOSIGNAL);
        }
      }
      ::close(fd);
    }
  }

  int drop_count_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> received_{0};
  std::thread thread_;
};

TEST(TcpClientRetryTest, NonIdempotentRequestIsNotDuplicated) {
  // The origin receives the POST, then dies without answering. The
  // request bytes reached the server, so the client must surface the
  // error instead of silently re-sending a possibly-executed request.
  DroppingServer server(/*drop_count=*/1);
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request post;
  post.method = "POST";
  post.target = "/charge";
  post.body = "amount=1";
  Result<http::Response> response = client.RoundTrip(post);
  EXPECT_FALSE(response.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(server.requests_received(), 1);
}

TEST(TcpClientRetryTest, IdempotentRequestIsRetriedOnce) {
  DroppingServer server(/*drop_count=*/1);
  TcpClientTransport client("127.0.0.1", server.port());
  http::Request get;
  get.target = "/page";
  Result<http::Response> response = client.RoundTrip(get);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "ok");
  EXPECT_EQ(server.requests_received(), 2);  // Dropped once, retried once.
}

TEST(TcpClientRetryTest, RefreshHeaderSuppressesRetry) {
  // A GET carrying the BEM refresh header triggers invalidations at the
  // origin; configured as non-idempotent it must not be re-sent either.
  DroppingServer server(/*drop_count=*/1);
  TcpClientOptions options;
  options.non_idempotent_headers = {bem::kRefreshHeader};
  TcpClientTransport client("127.0.0.1", server.port(), options);
  http::Request refresh_get;
  refresh_get.target = "/page";
  refresh_get.headers.Set(bem::kRefreshHeader, "a1,b2");
  Result<http::Response> response = client.RoundTrip(refresh_get);
  EXPECT_FALSE(response.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(server.requests_received(), 1);
}

}  // namespace
}  // namespace dynaprox::net
