// dynaprox_loadgen: WebLoad-style closed-loop load generator. Drives a
// Zipf page workload (or replays a trace) against a dynaprox_proxy or
// dynaprox_origin over TCP and reports throughput, status counts, and a
// wall-clock latency histogram.
//
//   ./dynaprox_loadgen --port=8080 --requests=10000 --pages=10
//       [--alpha=1.0] [--threads=4] [--trace=replay.txt]
//       [--record=out.txt] [--seed=1]

#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "net/tcp.h"
#include "workload/request_stream.h"
#include "workload/trace.h"

using namespace dynaprox;

namespace {

struct SharedResults {
  std::mutex mu;
  Histogram latency_ms;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t transport_errors = 0;
  uint64_t body_bytes = 0;
};

void RunWorker(const std::string& host, uint16_t port,
               std::vector<http::Request> requests, SharedResults* results) {
  net::TcpClientTransport client(host, port);
  SystemClock clock;
  Histogram local_latency;
  uint64_t ok = 0, errors = 0, transport_errors = 0, body_bytes = 0;
  for (const http::Request& request : requests) {
    MicroTime start = clock.NowMicros();
    Result<http::Response> response = client.RoundTrip(request);
    double elapsed_ms =
        static_cast<double>(clock.NowMicros() - start) / kMicrosPerMilli;
    local_latency.Record(elapsed_ms);
    if (!response.ok()) {
      ++transport_errors;
    } else if (response->status_code >= 200 &&
               response->status_code < 300) {
      ++ok;
      body_bytes += response->body.size();
    } else {
      ++errors;
    }
  }
  std::lock_guard<std::mutex> lock(results->mu);
  results->latency_ms.Merge(local_latency);
  results->ok += ok;
  results->errors += errors;
  results->transport_errors += transport_errors;
  results->body_bytes += body_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  Result<int64_t> port = flags->GetInt("port", 8080);
  Result<int64_t> requests = flags->GetInt("requests", 10'000);
  Result<int64_t> pages = flags->GetInt("pages", 10);
  Result<int64_t> threads = flags->GetInt("threads", 1);
  Result<int64_t> seed = flags->GetInt("seed", 1);
  Result<double> alpha = flags->GetDouble("alpha", 1.0);
  for (const auto* r : {&port, &requests, &pages, &threads, &seed}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  if (!alpha.ok() || *threads < 1 || *requests < 1) {
    std::fprintf(stderr, "bad --alpha/--threads/--requests\n");
    return 2;
  }
  std::string host = flags->GetString("host", "127.0.0.1");
  std::string trace_path = flags->GetString("trace");
  std::string record_path = flags->GetString("record");

  // Pre-generate the request list (so threads don't contend on the RNG
  // and a --record run captures exactly what was sent).
  std::vector<http::Request> all_requests;
  all_requests.reserve(static_cast<size_t>(*requests));
  if (!trace_path.empty()) {
    Result<std::vector<workload::TraceEntry>> trace =
        workload::LoadTrace(trace_path);
    if (!trace.ok()) {
      std::fprintf(stderr, "%s\n", trace.status().ToString().c_str());
      return 1;
    }
    workload::TraceStream stream(*trace, /*loop=*/true);
    for (int64_t i = 0; i < *requests; ++i) {
      Result<http::Request> request = stream.Next();
      if (!request.ok()) break;
      all_requests.push_back(std::move(*request));
    }
  } else {
    workload::RequestStream stream(static_cast<int>(*pages), *alpha,
                                   static_cast<uint64_t>(*seed));
    for (int64_t i = 0; i < *requests; ++i) {
      all_requests.push_back(stream.Next());
    }
  }
  if (!record_path.empty()) {
    std::vector<workload::TraceEntry> entries;
    entries.reserve(all_requests.size());
    for (const http::Request& request : all_requests) {
      entries.push_back(workload::TraceEntry::FromRequest(request));
    }
    Status saved = workload::SaveTrace(record_path, entries);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
  }

  // Shard across worker threads.
  SharedResults results;
  std::vector<std::thread> workers;
  size_t per_thread =
      (all_requests.size() + static_cast<size_t>(*threads) - 1) /
      static_cast<size_t>(*threads);
  SystemClock clock;
  MicroTime start = clock.NowMicros();
  for (int64_t t = 0; t < *threads; ++t) {
    size_t begin = static_cast<size_t>(t) * per_thread;
    if (begin >= all_requests.size()) break;
    size_t end = std::min(begin + per_thread, all_requests.size());
    workers.emplace_back(RunWorker, host, static_cast<uint16_t>(*port),
                         std::vector<http::Request>(
                             all_requests.begin() + begin,
                             all_requests.begin() + end),
                         &results);
  }
  for (std::thread& worker : workers) worker.join();
  double wall_seconds =
      static_cast<double>(clock.NowMicros() - start) / kMicrosPerSecond;

  std::printf("requests: %zu in %.2fs (%.0f req/s, %lld thread(s))\n",
              all_requests.size(), wall_seconds,
              all_requests.size() / std::max(wall_seconds, 1e-9),
              static_cast<long long>(*threads));
  std::printf("status: %llu ok, %llu http errors, %llu transport errors\n",
              static_cast<unsigned long long>(results.ok),
              static_cast<unsigned long long>(results.errors),
              static_cast<unsigned long long>(results.transport_errors));
  std::printf("bytes received: %llu\n",
              static_cast<unsigned long long>(results.body_bytes));
  std::printf("latency ms: mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
              results.latency_ms.mean(), results.latency_ms.Percentile(0.5),
              results.latency_ms.Percentile(0.95),
              results.latency_ms.Percentile(0.99), results.latency_ms.max());
  return results.transport_errors == 0 ? 0 : 1;
}
