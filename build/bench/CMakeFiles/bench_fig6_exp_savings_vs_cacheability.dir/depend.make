# Empty dependencies file for bench_fig6_exp_savings_vs_cacheability.
# This may be replaced when dependencies are built.
