// Deployment-claim bench: "order-of-magnitude reductions in ... end-to-end
// response times" (Sections 1/8). Prints the latency-model comparison of
// no-cache vs DPC response times across hit ratios, for both the
// server-side view (what the financial-institution deployment measured)
// and a WAN-inclusive end-user view.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "sim/latency.h"

namespace {

void PrintSeries(const char* label, dynaprox::sim::LatencyParams latency,
                 dynaprox::analytical::ModelParams params) {
  std::printf("--- %s ---\n", label);
  std::printf("%10s %14s %14s %10s %12s %12s\n", "hitRatio", "noCache(ms)",
              "withDpc(ms)", "speedup", "p50 speedup", "p99 speedup");
  for (double h : {0.0, 0.5, 0.8, 0.9, 0.95, 0.98, 1.0}) {
    params.hit_ratio = h;
    double no_cache =
        dynaprox::sim::ExpectedResponseTimeNoCacheMs(latency, params);
    double with_cache =
        dynaprox::sim::ExpectedResponseTimeWithCacheMs(latency, params);
    // Percentiles come from the same bucketed histograms the servers
    // export at /_dynaprox/metrics, so a bench speedup and a PromQL
    // histogram_quantile() ratio are computed the same way.
    dynaprox::metrics::LatencyHistogram no_cache_hist(
        dynaprox::benchutil::LatencyMsBounds());
    dynaprox::metrics::LatencyHistogram with_cache_hist(
        dynaprox::benchutil::LatencyMsBounds());
    dynaprox::sim::SampleResponseTimesInto(latency, params, 20000, 42,
                                           &no_cache_hist, &with_cache_hist);
    auto no_cache_snap = no_cache_hist.snapshot();
    auto with_cache_snap = with_cache_hist.snapshot();
    std::printf("%10.2f %14.2f %14.2f %9.1fx %11.1fx %11.1fx\n", h,
                no_cache, with_cache, no_cache / with_cache,
                no_cache_snap.Percentile(0.5) /
                    with_cache_snap.Percentile(0.5),
                no_cache_snap.Percentile(0.99) /
                    with_cache_snap.Percentile(0.99));
  }
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams params = ModelParams::Table2Baseline();
  params.cacheability = 1.0;  // The deployment tagged its whole page set.
  dynaprox::benchutil::PrintHeader(
      "Response-time claim",
      "End-to-end latency, no-cache vs DPC (latency model)", params);

  dynaprox::sim::LatencyParams server_side;
  server_side.wan_rtt_ms = 0;
  server_side.wan_bytes_per_ms = 0;
  PrintSeries("server-side latency (deployment metric)", server_side,
              params);

  dynaprox::sim::LatencyParams end_user;  // Defaults include the WAN leg.
  PrintSeries("end-user latency (reverse proxy: WAN leg unchanged)",
              end_user, params);

  std::printf(
      "expectation: server-side speedup exceeds 10x as h -> 1; end-user "
      "speedup is WAN-bounded (the paper's motivation for forward-proxy "
      "mode, Section 7)\n");
  dynaprox::benchutil::PrintFooter();
  return 0;
}
