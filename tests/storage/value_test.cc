#include "storage/value.h"

#include <gtest/gtest.h>

namespace dynaprox::storage {
namespace {

TEST(ValueTest, ToStringFormatsEachAlternative) {
  EXPECT_EQ(ValueToString(Value(int64_t{42})), "42");
  EXPECT_EQ(ValueToString(Value(19.5)), "19.50");
  EXPECT_EQ(ValueToString(Value(std::string("abc"))), "abc");
}

TEST(ValueTest, TypedGettersWithFallbacks) {
  Row row;
  row["count"] = int64_t{7};
  row["price"] = 12.25;
  row["name"] = std::string("Widget");

  EXPECT_EQ(GetInt(row, "count"), 7);
  EXPECT_EQ(GetInt(row, "missing", -1), -1);
  EXPECT_EQ(GetInt(row, "name", -1), -1);  // Wrong type.

  EXPECT_DOUBLE_EQ(GetDouble(row, "price"), 12.25);
  EXPECT_DOUBLE_EQ(GetDouble(row, "count"), 7.0);  // Int promotes.
  EXPECT_DOUBLE_EQ(GetDouble(row, "missing", 3.5), 3.5);

  EXPECT_EQ(GetString(row, "name"), "Widget");
  EXPECT_EQ(GetString(row, "count", "fallback"), "fallback");
  EXPECT_EQ(GetString(row, "missing", "fallback"), "fallback");
}

}  // namespace
}  // namespace dynaprox::storage
