#include "dpc/fragment_store.h"

#include <gtest/gtest.h>

namespace dynaprox::dpc {
namespace {

TEST(FragmentStoreTest, SetGetRoundTrip) {
  FragmentStore store(4);
  ASSERT_TRUE(store.Set(2, "hello").ok());
  Result<dpc::FragmentRef> content = store.Get(2);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(**content, "hello");
}

TEST(FragmentStoreTest, GetEmptySlotIsNotFound) {
  FragmentStore store(4);
  Result<dpc::FragmentRef> content = store.Get(1);
  EXPECT_TRUE(content.status().IsNotFound());
  EXPECT_EQ(store.stats().get_misses, 1u);
}

TEST(FragmentStoreTest, OutOfRangeKeysRejected) {
  FragmentStore store(2);
  EXPECT_TRUE(store.Set(2, "x").IsInvalidArgument());
  EXPECT_TRUE(store.Get(2).status().IsInvalidArgument());
}

TEST(FragmentStoreTest, OverwriteReplacesContentAndAccounting) {
  FragmentStore store(2);
  ASSERT_TRUE(store.Set(0, "12345").ok());
  EXPECT_EQ(store.content_bytes(), 5u);
  EXPECT_EQ(store.occupied_slots(), 1u);
  ASSERT_TRUE(store.Set(0, "ab").ok());
  EXPECT_EQ(store.content_bytes(), 2u);
  EXPECT_EQ(store.occupied_slots(), 1u);
  EXPECT_EQ(**store.Get(0), "ab");
}

TEST(FragmentStoreTest, EmptyContentIsStillOccupied) {
  // An empty fragment (e.g. a conditional section that rendered nothing)
  // is a valid cached value, distinct from "never set".
  FragmentStore store(2);
  ASSERT_TRUE(store.Set(0, "").ok());
  Result<dpc::FragmentRef> content = store.Get(0);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ((*content)->size(), 0u);
  EXPECT_EQ(store.occupied_slots(), 1u);
}

TEST(FragmentStoreTest, ClearEmptiesEverything) {
  FragmentStore store(3);
  ASSERT_TRUE(store.Set(0, "a").ok());
  ASSERT_TRUE(store.Set(1, "b").ok());
  store.Clear();
  EXPECT_EQ(store.occupied_slots(), 0u);
  EXPECT_EQ(store.content_bytes(), 0u);
  EXPECT_TRUE(store.Get(0).status().IsNotFound());
}

TEST(FragmentStoreTest, StatsCountOperations) {
  FragmentStore store(2);
  ASSERT_TRUE(store.Set(0, "x").ok());
  (void)store.Get(0);
  (void)store.Get(0);
  (void)store.Get(1);
  EXPECT_EQ(store.stats().sets, 1u);
  EXPECT_EQ(store.stats().gets, 3u);
  EXPECT_EQ(store.stats().get_misses, 1u);
}

TEST(FragmentStoreTest, ZeroCapacityStore) {
  FragmentStore store(0);
  EXPECT_EQ(store.capacity(), 0u);
  EXPECT_TRUE(store.Set(0, "x").IsInvalidArgument());
}

}  // namespace
}  // namespace dynaprox::dpc
