# Empty dependencies file for dynaprox_baseline.
# This may be replaced when dependencies are built.
