#ifndef DYNAPROX_NET_TRANSPORT_H_
#define DYNAPROX_NET_TRANSPORT_H_

#include <functional>
#include <memory>

#include "common/result.h"
#include "http/message.h"
#include "net/byte_meter.h"

namespace dynaprox::net {

// A request handler: the server side of a transport endpoint.
using Handler = std::function<http::Response(const http::Request&)>;

// A round trip that returned as soon as the response head was parsed; the
// body is still (possibly) in flight and arrives by pulling `body`.
struct StreamingResponse {
  // Status line + headers; its body members are empty.
  http::Response head;
  // Never null on success. Pulling it to end-of-body is what lets a
  // keep-alive/pooled upstream connection be reused; destroying it early
  // closes that connection instead.
  std::unique_ptr<http::BodyStream> body;
};

// Client view of a request/response channel. Implementations: in-process
// direct dispatch (deterministic simulation) and TCP (real deployment).
class Transport {
 public:
  virtual ~Transport() = default;

  // Sends `request` and waits for the response.
  virtual Result<http::Response> RoundTrip(const http::Request& request) = 0;

  // Streaming variant: returns once the response head is parsed, with the
  // body arriving through the returned stream. The base implementation
  // adapts RoundTrip — the whole body is buffered and delivered as one
  // chunk — so only transports with a real wire gain time-to-first-byte
  // by overriding it. Decorators must override to forward, or they
  // silently degrade the inner transport to the buffered adapter.
  virtual Result<StreamingResponse> RoundTripStreaming(
      const http::Request& request);
};

// BodyStream over an already-complete body: the default RoundTripStreaming
// adapter and the degenerate case of streamed serving.
class BufferedBodyStream : public http::BodyStream {
 public:
  explicit BufferedBodyStream(common::BufferChain chain)
      : chain_(std::move(chain)) {}

  Result<common::BufferChain> Next() override {
    common::BufferChain out = std::move(chain_);
    chain_.Clear();
    return out;  // Second call: empty = end of body.
  }

 private:
  common::BufferChain chain_;
};

inline Result<StreamingResponse> Transport::RoundTripStreaming(
    const http::Request& request) {
  Result<http::Response> response = RoundTrip(request);
  if (!response.ok()) return response.status();
  common::BufferChain body;
  if (!response->body_chain.empty()) {
    body = std::move(response->body_chain);
  } else if (!response->body.empty()) {
    body.Append(common::MakeBuffer(std::move(response->body)));
  }
  StreamingResponse streaming;
  streaming.head = std::move(*response);
  streaming.head.body.clear();
  streaming.head.body_chain.Clear();
  streaming.body = std::make_unique<BufferedBodyStream>(std::move(body));
  return streaming;
}

// In-process transport that invokes a Handler directly. Used by the
// simulation testbed so byte accounting is exact and runs are deterministic.
class DirectTransport : public Transport {
 public:
  explicit DirectTransport(Handler handler) : handler_(std::move(handler)) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    return handler_(request);
  }

 private:
  Handler handler_;
};

// Decorator that meters the serialized size of every request and response
// crossing the wrapped transport. `request_meter`/`response_meter` may be
// null; metering then is skipped for that direction.
class MeteredTransport : public Transport {
 public:
  MeteredTransport(std::unique_ptr<Transport> inner, ByteMeter* request_meter,
                   ByteMeter* response_meter)
      : inner_(std::move(inner)),
        request_meter_(request_meter),
        response_meter_(response_meter) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    if (request_meter_ != nullptr) {
      request_meter_->RecordMessage(request.SerializedSize());
    }
    Result<http::Response> response = inner_->RoundTrip(request);
    if (response.ok() && response_meter_ != nullptr) {
      response_meter_->RecordMessage(response->SerializedSize());
    }
    return response;
  }

  // Forwards so the inner transport's streaming stays live. The head is
  // metered as one message; body bytes are metered per pulled chunk.
  Result<StreamingResponse> RoundTripStreaming(
      const http::Request& request) override {
    if (request_meter_ != nullptr) {
      request_meter_->RecordMessage(request.SerializedSize());
    }
    Result<StreamingResponse> response = inner_->RoundTripStreaming(request);
    if (response.ok() && response_meter_ != nullptr) {
      response_meter_->RecordMessage(response->head.SerializedSize());
      response->body = std::make_unique<MeteredBodyStream>(
          std::move(response->body), response_meter_);
    }
    return response;
  }

 private:
  class MeteredBodyStream : public http::BodyStream {
   public:
    MeteredBodyStream(std::unique_ptr<http::BodyStream> inner,
                      ByteMeter* meter)
        : inner_(std::move(inner)), meter_(meter) {}

    Result<common::BufferChain> Next() override {
      Result<common::BufferChain> chunk = inner_->Next();
      if (chunk.ok()) meter_->RecordBytes(chunk->size());
      return chunk;
    }

   private:
    std::unique_ptr<http::BodyStream> inner_;
    ByteMeter* meter_;
  };

  std::unique_ptr<Transport> inner_;
  ByteMeter* request_meter_;
  ByteMeter* response_meter_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_TRANSPORT_H_
