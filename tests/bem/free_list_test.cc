#include "bem/free_list.h"

#include <gtest/gtest.h>

namespace dynaprox::bem {
namespace {

TEST(FreeListTest, StartsFullWithSequentialKeys) {
  FreeList list(4);
  EXPECT_EQ(list.free_count(), 4u);
  EXPECT_EQ(list.capacity(), 4u);
  for (DpcKey expected = 0; expected < 4; ++expected) {
    Result<DpcKey> key = list.Allocate();
    ASSERT_TRUE(key.ok());
    EXPECT_EQ(*key, expected);
  }
  EXPECT_TRUE(list.empty());
}

TEST(FreeListTest, AllocateOnEmptyFails) {
  FreeList list(1);
  ASSERT_TRUE(list.Allocate().ok());
  Result<DpcKey> key = list.Allocate();
  EXPECT_FALSE(key.ok());
  EXPECT_TRUE(key.status().IsCapacityExceeded());
}

TEST(FreeListTest, ReleaseAppendsAtTailFifo) {
  FreeList list(3);
  ASSERT_TRUE(list.Allocate().ok());  // 0
  ASSERT_TRUE(list.Allocate().ok());  // 1
  ASSERT_TRUE(list.Release(0).ok());
  // Order now: 2 (never allocated), then released 0.
  EXPECT_EQ(*list.Allocate(), 2u);
  EXPECT_EQ(*list.Allocate(), 0u);
}

TEST(FreeListTest, ReleaseOutOfRangeFails) {
  FreeList list(2);
  ASSERT_TRUE(list.Allocate().ok());
  EXPECT_TRUE(list.Release(7).IsInvalidArgument());
}

TEST(FreeListTest, ReleaseBeyondCapacityFails) {
  // The paper requires the freeList be at least as large as the cache; a
  // double release would overflow that bound and is rejected.
  FreeList list(2);
  EXPECT_EQ(list.Release(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(list.Allocate().ok());
  ASSERT_TRUE(list.Release(0).ok());
  EXPECT_EQ(list.Release(1).code(), StatusCode::kFailedPrecondition);
}

TEST(FreeListTest, ReleaseFrontIsReusedByNextAllocate) {
  FreeList list(3);
  ASSERT_TRUE(list.Allocate().ok());  // 0
  ASSERT_TRUE(list.Allocate().ok());  // 1
  ASSERT_TRUE(list.ReleaseFront(1).ok());
  // The pinned key jumps ahead of the never-allocated 2.
  EXPECT_EQ(*list.Allocate(), 1u);
  EXPECT_EQ(*list.Allocate(), 2u);
}

TEST(FreeListTest, ReleaseFrontRejectsBadKeys) {
  FreeList list(2);
  EXPECT_TRUE(list.ReleaseFront(7).IsInvalidArgument());
  EXPECT_EQ(list.ReleaseFront(0).code(), StatusCode::kFailedPrecondition);
}

TEST(FreeListTest, ZeroCapacityAlwaysExhausted) {
  FreeList list(0);
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.Allocate().ok());
}

}  // namespace
}  // namespace dynaprox::bem
