
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpc/assembler.cc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/assembler.cc.o" "gcc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/assembler.cc.o.d"
  "/root/repo/src/dpc/fragment_store.cc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/fragment_store.cc.o" "gcc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/fragment_store.cc.o.d"
  "/root/repo/src/dpc/kmp.cc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/kmp.cc.o" "gcc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/kmp.cc.o.d"
  "/root/repo/src/dpc/proxy.cc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/proxy.cc.o" "gcc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/proxy.cc.o.d"
  "/root/repo/src/dpc/static_cache.cc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/static_cache.cc.o" "gcc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/static_cache.cc.o.d"
  "/root/repo/src/dpc/tag_scanner.cc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/tag_scanner.cc.o" "gcc" "src/dpc/CMakeFiles/dynaprox_dpc.dir/tag_scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
