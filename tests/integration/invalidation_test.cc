// Reproduces the paper's stock-quote invalidation-granularity example
// (Section 3.2.1): price quotes change every few seconds, headlines every
// thirty minutes, historical data monthly. Fragment-level caching avoids
// regenerating slow-moving fragments when fast-moving ones invalidate.

#include <memory>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

namespace dynaprox {
namespace {

class InvalidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* quotes = repository_.GetOrCreateTable("quotes");
    quotes->Upsert("IBM", {{"price", storage::Value(100.0)}});
    storage::Table* headlines = repository_.GetOrCreateTable("headlines");
    headlines->Upsert("h1", {{"text", storage::Value(std::string(
                                          "IBM ships quantum toaster"))}});
    storage::Table* historical = repository_.GetOrCreateTable("historical");
    historical->Upsert("IBM", {{"pe", storage::Value(24.5)}});

    registry_.RegisterOrReplace(
        "/stock", [this](appserver::ScriptContext& context) {
          auto sym = context.request().QueryParams()["sym"];
          DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
              bem::FragmentId("quote", {{"sym", sym}}),
              [&](appserver::ScriptContext& ctx) {
                ++quote_generations_;
                storage::Row row =
                    *(*ctx.repository()->GetTable("quotes"))->Get(sym);
                ctx.DeclareDependency("quotes", sym);
                ctx.Emit("<b>" + sym + ": " +
                         storage::ValueToString(row.at("price")) + "</b>");
                return Status::Ok();
              }));
          DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
              bem::FragmentId("headlines"),
              [&](appserver::ScriptContext& ctx) {
                ++headline_generations_;
                ctx.DeclareDependency("headlines");
                std::string html = "<ul>";
                for (const auto& [key, row] :
                     (*ctx.repository()->GetTable("headlines"))
                         ->Scan(nullptr)) {
                  html += "<li>" + storage::GetString(row, "text") + "</li>";
                }
                ctx.Emit(html + "</ul>");
                return Status::Ok();
              }));
          DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
              bem::FragmentId("historical", {{"sym", sym}}),
              [&](appserver::ScriptContext& ctx) {
                ++historical_generations_;
                storage::Row row =
                    *(*ctx.repository()->GetTable("historical"))->Get(sym);
                ctx.DeclareDependency("historical", sym);
                ctx.Emit("<i>P/E " +
                         storage::ValueToString(row.at("pe")) + "</i>");
                return Status::Ok();
              }));
          return Status::Ok();
        });

    bem::BemOptions bem_options;
    bem_options.capacity = 32;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    monitor_->AttachRepository(&repository_);
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
    upstream_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 32;
    dpc_ = std::make_unique<dpc::DpcProxy>(upstream_.get(), proxy_options);
  }

  http::Response FetchStock() {
    http::Request request;
    request.target = "/stock?sym=IBM";
    return dpc_->Handle(request);
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> upstream_;
  std::unique_ptr<dpc::DpcProxy> dpc_;

  int quote_generations_ = 0;
  int headline_generations_ = 0;
  int historical_generations_ = 0;
};

TEST_F(InvalidationTest, QuoteUpdateRegeneratesOnlyQuoteFragment) {
  FetchStock();
  EXPECT_EQ(quote_generations_, 1);
  EXPECT_EQ(headline_generations_, 1);
  EXPECT_EQ(historical_generations_, 1);

  // Ten price ticks, a page fetch after each.
  for (int tick = 1; tick <= 10; ++tick) {
    (*repository_.GetTable("quotes"))
        ->Upsert("IBM", {{"price", storage::Value(100.0 + tick)}});
    http::Response response = FetchStock();
    EXPECT_NE(response.BodyText().find(
                  "IBM: " + storage::ValueToString(
                                storage::Value(100.0 + tick))),
              std::string::npos);
  }
  EXPECT_EQ(quote_generations_, 11);
  // The page-level strawman would have regenerated these 11 times too.
  EXPECT_EQ(headline_generations_, 1);
  EXPECT_EQ(historical_generations_, 1);
}

TEST_F(InvalidationTest, HeadlineUpdateLeavesQuoteCached) {
  FetchStock();
  (*repository_.GetTable("headlines"))
      ->Upsert("h2", {{"text", storage::Value(std::string(
                                   "Cache stocks soar"))}});
  http::Response response = FetchStock();
  EXPECT_NE(response.BodyText().find("Cache stocks soar"), std::string::npos);
  EXPECT_EQ(quote_generations_, 1);
  EXPECT_EQ(headline_generations_, 2);
}

TEST_F(InvalidationTest, TtlTiersExpireIndependently) {
  // Re-register with TTLs mirroring the paper's cadence (scaled down):
  // quotes 2s, headlines 60s, historical 3600s.
  registry_.RegisterOrReplace(
      "/tiered", [this](appserver::ScriptContext& context) {
        DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
            bem::FragmentId("t-quote"), 2 * kMicrosPerSecond,
            [&](appserver::ScriptContext& ctx) {
              ++quote_generations_;
              ctx.Emit("q");
              return Status::Ok();
            }));
        DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
            bem::FragmentId("t-headlines"), 60 * kMicrosPerSecond,
            [&](appserver::ScriptContext& ctx) {
              ++headline_generations_;
              ctx.Emit("h");
              return Status::Ok();
            }));
        DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
            bem::FragmentId("t-historical"), 3600 * kMicrosPerSecond,
            [&](appserver::ScriptContext& ctx) {
              ++historical_generations_;
              ctx.Emit("p");
              return Status::Ok();
            }));
        return Status::Ok();
      });

  http::Request request;
  request.target = "/tiered";
  // Fetch every second for two simulated minutes.
  for (int second = 0; second < 120; ++second) {
    ASSERT_EQ(dpc_->Handle(request).BodyText(), "qhp");
    clock_.AdvanceSeconds(1);
  }
  // Quotes regenerate about every 2s, headlines about every 60s,
  // historical once.
  EXPECT_NEAR(quote_generations_, 60, 2);
  EXPECT_NEAR(headline_generations_, 2, 1);
  EXPECT_EQ(historical_generations_, 1);
}

TEST_F(InvalidationTest, ExplicitInvalidateForcesRefresh) {
  FetchStock();
  ASSERT_TRUE(
      monitor_->Invalidate(bem::FragmentId("headlines")).ok());
  FetchStock();
  EXPECT_EQ(headline_generations_, 2);
  EXPECT_EQ(quote_generations_, 1);
}

}  // namespace
}  // namespace dynaprox
