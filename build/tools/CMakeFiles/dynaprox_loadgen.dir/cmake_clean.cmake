file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_loadgen.dir/dynaprox_loadgen.cc.o"
  "CMakeFiles/dynaprox_loadgen.dir/dynaprox_loadgen.cc.o.d"
  "dynaprox_loadgen"
  "dynaprox_loadgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_loadgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
