#include "edge/edge_fleet.h"

#include "common/strings.h"

namespace dynaprox::edge {

EdgeFleet::EdgeFleet(net::Transport* origin, EdgeFleetOptions options)
    : origin_(origin), options_(options) {}

Status EdgeFleet::AddNode(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  DYNAPROX_RETURN_IF_ERROR(ring_.AddNode(node, options_.ring_vnodes));
  Node entry;
  entry.upstream = std::make_unique<HeaderStampTransport>(
      origin_, kEdgeHeader, node);
  entry.proxy = std::make_unique<dpc::DpcProxy>(entry.upstream.get(),
                                                options_.proxy_options);
  nodes_.emplace(node, std::move(entry));
  return Status::Ok();
}

Status EdgeFleet::MarkDown(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.MarkDown(node);
}

Status EdgeFleet::MarkUp(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.MarkUp(node);
}

FleetStats EdgeFleet::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string EdgeFleet::ClientKey(const http::Request& request) {
  if (auto client = request.headers.Get("X-Client"); client.has_value()) {
    return std::string(*client);
  }
  auto params = request.QueryParams();
  if (auto it = params.find("sid"); it != params.end() && !it->second.empty()) {
    return it->second;
  }
  return std::string(request.Path());
}

Result<std::string> EdgeFleet::RouteFor(const http::Request& request) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.Route(ClientKey(request));
}

http::Response EdgeFleet::Handle(const http::Request& request) {
  dpc::DpcProxy* proxy = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    Result<std::string> node = ring_.Route(ClientKey(request));
    if (!node.ok()) {
      ++stats_.routing_failures;
      return http::Response::MakeError(503, "Service Unavailable",
                                       node.status().ToString());
    }
    proxy = nodes_.at(*node).proxy.get();
  }
  // Serve outside the routing lock; node proxies are thread-safe and are
  // never removed once added.
  return proxy->Handle(request);
}

net::Handler EdgeFleet::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

Result<const dpc::DpcProxy*> EdgeFleet::NodeProxy(
    const std::string& node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status::NotFound("unknown node: " + node);
  }
  return static_cast<const dpc::DpcProxy*>(it->second.proxy.get());
}

}  // namespace dynaprox::edge
