# Empty dependencies file for dynaprox_storage.
# This may be replaced when dependencies are built.
