# Empty compiler generated dependencies file for dynaprox_http.
# This may be replaced when dependencies are built.
