#include "bem/sweeper.h"

#include <chrono>

namespace dynaprox::bem {

PeriodicSweeper::PeriodicSweeper(BackEndMonitor* monitor,
                                 MicroTime interval_micros)
    : monitor_(monitor), interval_micros_(interval_micros) {}

PeriodicSweeper::~PeriodicSweeper() { Stop(); }

void PeriodicSweeper::Start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread(&PeriodicSweeper::Loop, this);
}

void PeriodicSweeper::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PeriodicSweeper::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, std::chrono::microseconds(interval_micros_),
                     [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    size_t swept = monitor_->SweepExpired();
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    invalidated_.fetch_add(swept, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace dynaprox::bem
