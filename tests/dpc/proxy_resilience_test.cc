// DpcProxy degraded mode: serve-stale on origin failure, 503 + Retry-After
// when nothing stale exists, breaker-rejection accounting, and
// serve-stale-on-error for upstream 5xx answers.

#include <optional>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/circuit_breaker.h"

namespace dynaprox::dpc {
namespace {

// A togglable origin: serves one-fragment templates per URL while up;
// fails at the transport level (or answers 500) while down.
class FlakyOrigin : public net::Transport {
 public:
  Result<http::Response> RoundTrip(const http::Request& request) override {
    ++round_trips_;
    if (transport_error_) return Status::IoError("origin down");
    if (answer_500_) {
      return http::Response::MakeError(500, "Internal Server Error",
                                       "backend exploded");
    }
    std::string url(request.target);
    if (auto refresh = request.headers.Get(bem::kRefreshHeader);
        refresh.has_value()) {
      known_.clear();  // Simplest BEM: invalidate everything.
    }
    bem::DpcKey key = static_cast<bem::DpcKey>(url.size() % 8);
    std::string body = "<" + url + ">";
    if (known_.count(key)) {
      bem::TagCodec::AppendGet(key, body);
    } else {
      bem::TagCodec::AppendSet(key, "frag" + std::to_string(key), body);
      known_.insert(key);
    }
    body += "</page>";
    http::Response response = http::Response::MakeOk(std::move(body));
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  }

  bool transport_error_ = false;
  bool answer_500_ = false;
  int round_trips_ = 0;

 private:
  std::set<bem::DpcKey> known_;
};

class ProxyResilienceTest : public ::testing::Test {
 protected:
  ProxyOptions StaleOptions() {
    ProxyOptions options;
    options.capacity = 8;
    options.serve_stale = true;
    options.stale_cache.clock = &clock_;
    options.retry_after_seconds = 7;
    return options;
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  SimClock clock_;
  FlakyOrigin origin_;
};

TEST_F(ProxyResilienceTest, ServesStalePageWhenOriginFails) {
  DpcProxy proxy(&origin_, StaleOptions());
  http::Response warm = proxy.Handle(Get("/a"));
  ASSERT_EQ(warm.status_code, 200);

  origin_.transport_error_ = true;
  clock_.AdvanceSeconds(30);
  http::Response degraded = proxy.Handle(Get("/a"));
  EXPECT_EQ(degraded.status_code, 200);
  EXPECT_EQ(degraded.BodyText(), warm.BodyText());
  EXPECT_EQ(*degraded.headers.Get("Warning"), kStaleWarning);
  EXPECT_EQ(*degraded.headers.Get("Age"), "30");
  ProxyStats stats = proxy.stats();
  EXPECT_EQ(stats.stale_served, 1u);
  EXPECT_EQ(stats.upstream_errors, 1u);
  EXPECT_EQ(stats.breaker_rejections, 0u);
}

TEST_F(ProxyResilienceTest, UnseenUrlGets503WithRetryAfter) {
  DpcProxy proxy(&origin_, StaleOptions());
  proxy.Handle(Get("/a"));
  origin_.transport_error_ = true;
  http::Response degraded = proxy.Handle(Get("/never-seen"));
  EXPECT_EQ(degraded.status_code, 503);
  EXPECT_EQ(*degraded.headers.Get("Retry-After"), "7");
  EXPECT_EQ(proxy.stats().degraded_503s, 1u);
  EXPECT_EQ(proxy.stats().stale_served, 0u);
}

TEST_F(ProxyResilienceTest, WithoutServeStaleLegacy502IsPreserved) {
  ProxyOptions options;
  options.capacity = 8;
  DpcProxy proxy(&origin_, options);
  proxy.Handle(Get("/a"));
  origin_.transport_error_ = true;
  EXPECT_EQ(proxy.Handle(Get("/a")).status_code, 502);
  EXPECT_EQ(proxy.stats().degraded_503s, 0u);
}

TEST_F(ProxyResilienceTest, BreakerRejectionCountedSeparately) {
  net::CircuitBreakerTransportOptions breaker_options;
  breaker_options.breaker.window = 4;
  breaker_options.breaker.min_samples = 2;
  breaker_options.breaker.clock = &clock_;
  net::CircuitBreakerTransport guarded(&origin_, breaker_options);

  ProxyOptions options = StaleOptions();
  options.upstream_breaker = &guarded.breaker();
  DpcProxy proxy(&guarded, options);

  proxy.Handle(Get("/a"));  // Warm.
  origin_.transport_error_ = true;
  // Trip the breaker, then keep hammering.
  for (int i = 0; i < 6; ++i) proxy.Handle(Get("/a"));
  ProxyStats stats = proxy.stats();
  EXPECT_EQ(guarded.breaker().state(), net::BreakerState::kOpen);
  EXPECT_GT(stats.breaker_rejections, 0u);
  EXPECT_GT(stats.upstream_errors, 0u);
  EXPECT_EQ(stats.breaker_rejections + stats.upstream_errors, 6u);
  // Every degraded request still served the stale page.
  EXPECT_EQ(stats.stale_served, 6u);
}

TEST_F(ProxyResilienceTest, BreakerRejectionWithoutStaleIs503Not502) {
  net::CircuitBreakerTransportOptions breaker_options;
  breaker_options.breaker.window = 4;
  breaker_options.breaker.min_samples = 2;
  breaker_options.breaker.clock = &clock_;
  net::CircuitBreakerTransport guarded(&origin_, breaker_options);

  ProxyOptions options;  // serve_stale off: breaker alone drives the 503.
  options.capacity = 8;
  DpcProxy proxy(&guarded, options);

  origin_.transport_error_ = true;
  for (int i = 0; i < 2; ++i) proxy.Handle(Get("/a"));  // Trip.
  ASSERT_EQ(guarded.breaker().state(), net::BreakerState::kOpen);
  http::Response rejected = proxy.Handle(Get("/a"));
  EXPECT_EQ(rejected.status_code, 503);
  EXPECT_TRUE(rejected.headers.Has("Retry-After"));
}

TEST_F(ProxyResilienceTest, MaxStaleAgeBoundsDegradedServing) {
  ProxyOptions options = StaleOptions();
  options.max_stale_micros = 60 * kMicrosPerSecond;
  DpcProxy proxy(&origin_, options);
  proxy.Handle(Get("/a"));
  origin_.transport_error_ = true;
  clock_.AdvanceSeconds(120);  // Older than max_stale.
  http::Response degraded = proxy.Handle(Get("/a"));
  EXPECT_EQ(degraded.status_code, 503);
  EXPECT_EQ(proxy.stats().stale_served, 0u);
}

TEST_F(ProxyResilienceTest, StaleCacheIsBoundedLru) {
  ProxyOptions options = StaleOptions();
  options.stale_cache.capacity = 2;
  DpcProxy proxy(&origin_, options);
  proxy.Handle(Get("/a"));
  proxy.Handle(Get("/b"));
  proxy.Handle(Get("/c"));  // Evicts /a.
  ASSERT_NE(proxy.stale_cache(), nullptr);
  EXPECT_EQ(proxy.stale_cache()->size(), 2u);
  EXPECT_EQ(proxy.stale_cache()->stats().evictions, 1u);

  origin_.transport_error_ = true;
  EXPECT_EQ(proxy.Handle(Get("/a")).status_code, 503);  // Evicted.
  EXPECT_EQ(proxy.Handle(Get("/b")).status_code, 200);  // Retained.
}

TEST_F(ProxyResilienceTest, PassthroughPagesAreAlsoRemembered) {
  net::DirectTransport upstream([](const http::Request&) {
    return http::Response::MakeOk("plain body");
  });
  ProxyOptions options = StaleOptions();
  DpcProxy proxy(&upstream, options);
  proxy.Handle(Get("/plain"));
  ASSERT_NE(proxy.stale_cache(), nullptr);
  EXPECT_EQ(proxy.stale_cache()->size(), 1u);
}

TEST_F(ProxyResilienceTest, PostRequestsNeverServeStale) {
  DpcProxy proxy(&origin_, StaleOptions());
  proxy.Handle(Get("/a"));
  origin_.transport_error_ = true;
  http::Request post = Get("/a");
  post.method = "POST";
  http::Response degraded = proxy.Handle(post);
  EXPECT_EQ(degraded.status_code, 503);
  EXPECT_EQ(proxy.stats().stale_served, 0u);
}

TEST_F(ProxyResilienceTest, Upstream5xxAnswerServesStaleInstead) {
  DpcProxy proxy(&origin_, StaleOptions());
  http::Response warm = proxy.Handle(Get("/a"));
  ASSERT_EQ(warm.status_code, 200);
  origin_.answer_500_ = true;
  http::Response degraded = proxy.Handle(Get("/a"));
  EXPECT_EQ(degraded.status_code, 200);
  EXPECT_EQ(degraded.BodyText(), warm.BodyText());
  EXPECT_EQ(*degraded.headers.Get("Warning"), kStaleWarning);
  // The 500 is an HTTP answer, not a transport failure.
  EXPECT_EQ(proxy.stats().upstream_errors, 0u);
  EXPECT_EQ(proxy.stats().stale_served, 1u);
}

TEST_F(ProxyResilienceTest, Upstream5xxWithoutStalePassesThrough) {
  DpcProxy proxy(&origin_, StaleOptions());
  origin_.answer_500_ = true;
  http::Response response = proxy.Handle(Get("/a"));
  EXPECT_EQ(response.status_code, 500);  // Nothing stale: honest answer.
}

TEST_F(ProxyResilienceTest, StatusExposesDegradationCounters) {
  ProxyOptions options = StaleOptions();
  options.enable_status = true;
  DpcProxy proxy(&origin_, options);
  proxy.Handle(Get("/a"));
  origin_.transport_error_ = true;
  proxy.Handle(Get("/a"));          // stale_served.
  proxy.Handle(Get("/unseen"));     // degraded_503.
  http::Response status = proxy.Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_NE(status.body.find("\"stale_served\":1"), std::string::npos);
  EXPECT_NE(status.body.find("\"degraded_503s\":1"), std::string::npos);
  EXPECT_NE(status.body.find("\"breaker_rejections\":0"),
            std::string::npos);
  EXPECT_NE(status.body.find("\"stale_pages\":{"), std::string::npos);
}

TEST_F(ProxyResilienceTest, ClearCacheDropsStalePages) {
  DpcProxy proxy(&origin_, StaleOptions());
  proxy.Handle(Get("/a"));
  proxy.ClearCache();
  origin_.transport_error_ = true;
  EXPECT_EQ(proxy.Handle(Get("/a")).status_code, 503);
}

}  // namespace
}  // namespace dynaprox::dpc
