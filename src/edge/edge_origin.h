#ifndef DYNAPROX_EDGE_EDGE_ORIGIN_H_
#define DYNAPROX_EDGE_EDGE_ORIGIN_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox::edge {

// Request header naming the edge DPC a request was served through. The
// origin keeps one cache directory per edge so the BEM's directory always
// mirrors the *specific* proxy that will assemble the response — the
// reproduction's answer to Section 7's "Cache Coherency" question.
inline constexpr char kEdgeHeader[] = "X-DPC-Edge";

// Origin-side fan-out for forward-proxy mode: dispatches each request to a
// per-edge (BackEndMonitor, OriginServer) pair sharing one script registry
// and one content repository. Because every per-edge monitor subscribes to
// the repository's update bus, a data-source mutation invalidates the
// fragment in *every* edge directory — the invalidation broadcast of
// Section 7's "Cache Management" challenge.
class EdgeOrigin {
 public:
  EdgeOrigin(const appserver::ScriptRegistry* registry,
             storage::ContentRepository* repository,
             bem::BemOptions bem_options,
             appserver::OriginOptions origin_options = {});

  // Registers an edge; AlreadyExists on duplicates.
  Status AddEdge(const std::string& edge_id);

  // Serves a request; requests without (or with an unknown) kEdgeHeader
  // get 400, since forward-proxy traffic must identify its edge.
  http::Response Handle(const http::Request& request);

  net::Handler AsHandler();

  // Per-edge introspection.
  Result<const bem::BackEndMonitor*> MonitorFor(
      const std::string& edge_id) const;
  Result<appserver::OriginStats> StatsFor(const std::string& edge_id) const;
  size_t edge_count() const { return edges_.size(); }
  // Requests 400-rejected for a missing or unknown kEdgeHeader — the
  // signal that an edge is misconfigured or was never registered.
  uint64_t rejected_total() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  // Fan-out-level metrics (dynaprox_edge_rejected_total); the per-edge
  // origin servers each expose their own registry.
  const metrics::Registry& metrics_registry() const { return registry_mx_; }

 private:
  struct Edge {
    std::unique_ptr<bem::BackEndMonitor> monitor;
    std::unique_ptr<appserver::OriginServer> server;
  };

  // Rejects `request` with 400, counting it and writing an access-log
  // line (outcome "edge_rejected") so misrouted traffic is visible.
  http::Response Reject(const http::Request& request, std::string detail);

  const appserver::ScriptRegistry* registry_;
  storage::ContentRepository* repository_;
  bem::BemOptions bem_options_;
  appserver::OriginOptions origin_options_;
  std::map<std::string, Edge> edges_;
  std::atomic<uint64_t> rejected_{0};
  metrics::Registry registry_mx_;
};

}  // namespace dynaprox::edge

#endif  // DYNAPROX_EDGE_EDGE_ORIGIN_H_
