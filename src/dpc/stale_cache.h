#ifndef DYNAPROX_DPC_STALE_CACHE_H_
#define DYNAPROX_DPC_STALE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"
#include "http/message.h"

namespace dynaprox::dpc {

struct StalePageCacheOptions {
  size_t capacity = 256;         // Pages; LRU beyond.
  const Clock* clock = nullptr;  // Defaults to SystemClock.
};

// A last-known-good page with its age at lookup time.
struct StalePage {
  http::Response response;
  MicroTime age_micros = 0;
};

struct StalePageCacheStats {
  uint64_t remembers = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

// Bounded LRU of the last successfully assembled (or passed-through) page
// per URL, kept so the DPC can degrade to last-known-good content when the
// origin is unavailable instead of failing closed. Unlike StaticCache this
// ignores Cache-Control entirely: entries here are only ever served on the
// degraded path, explicitly marked stale (Warning: 110). Thread-safe.
class StalePageCache {
 public:
  explicit StalePageCache(StalePageCacheOptions options);

  // Snapshots `response` as the last-known-good page for `url`.
  void Remember(const std::string& url, const http::Response& response);

  // Returns the remembered page and its age. `max_stale_micros` > 0 bounds
  // how old a page may be served (older entries are dropped).
  std::optional<StalePage> Lookup(const std::string& url,
                                  MicroTime max_stale_micros);

  void Clear();

  size_t size() const;
  StalePageCacheStats stats() const;

 private:
  struct Entry {
    http::Response response;
    MicroTime stored_at;
    std::list<std::string>::iterator lru_position;
  };

  StalePageCacheOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recent.
  StalePageCacheStats stats_;
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_STALE_CACHE_H_
