#ifndef DYNAPROX_WORKLOAD_TRACE_H_
#define DYNAPROX_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "http/message.h"
#include "net/transport.h"

namespace dynaprox::workload {

// A recorded request: enough to replay a GET workload faithfully
// (method, target, optional session cookie).
struct TraceEntry {
  std::string method = "GET";
  std::string target;
  std::string session;  // "sid" cookie value, empty if anonymous.

  http::Request ToRequest() const;
  static TraceEntry FromRequest(const http::Request& request);
};

// Text trace format, one entry per line:
//   METHOD <sp> TARGET [<sp> sid=SESSION]
// Lines starting with '#' and blank lines are ignored on load.
Status SaveTrace(const std::string& path,
                 const std::vector<TraceEntry>& entries);
Result<std::vector<TraceEntry>> LoadTrace(const std::string& path);

// Transport decorator that records every request passing through it.
class RecordingTransport : public net::Transport {
 public:
  explicit RecordingTransport(net::Transport* inner) : inner_(inner) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    entries_.push_back(TraceEntry::FromRequest(request));
    return inner_->RoundTrip(request);
  }

  const std::vector<TraceEntry>& entries() const { return entries_; }
  Status Save(const std::string& path) const {
    return SaveTrace(path, entries_);
  }

 private:
  net::Transport* inner_;
  std::vector<TraceEntry> entries_;
};

// Replays a loaded trace in order; Next() wraps around when `loop` is set,
// otherwise fails with FailedPrecondition past the end.
class TraceStream {
 public:
  explicit TraceStream(std::vector<TraceEntry> entries, bool loop = false)
      : entries_(std::move(entries)), loop_(loop) {}

  Result<http::Request> Next();

  bool exhausted() const {
    return !loop_ && position_ >= entries_.size();
  }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<TraceEntry> entries_;
  bool loop_;
  size_t position_ = 0;
};

}  // namespace dynaprox::workload

#endif  // DYNAPROX_WORKLOAD_TRACE_H_
