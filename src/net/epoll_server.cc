#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <vector>

#include "common/buffer_chain.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"
#include "http/parser.h"

namespace dynaprox::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int fl = ::fcntl(fd, F_GETFL, 0);
  if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    return Errno("fcntl");
  }
  return Status::Ok();
}

constexpr auto kRelaxed = std::memory_order_relaxed;

// epoll_wait timeout used when any deadline limit is configured (or a
// drain is in progress); otherwise the loop blocks indefinitely as before.
constexpr int kDeadlineTickMs = 25;

}  // namespace

// One event loop: owns an epoll instance and every connection accepted on
// it. Single-threaded by construction.
class EpollServer::Worker {
 public:
  Worker(EpollServer* server, int listen_fd)
      : server_(server), listen_fd_(listen_fd) {}

  ~Worker() {
    for (auto& [fd, conn] : connections_) {
      server_->live_connections_.fetch_sub(1, kRelaxed);
      server_->counters_->open_connections.fetch_sub(1, kRelaxed);
      ::close(fd);
    }
    if (drain_fd_ >= 0) ::close(drain_fd_);
    if (stop_fd_ >= 0) ::close(stop_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(0);
    if (epoll_fd_ < 0) return Errno("epoll_create1");
    stop_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (stop_fd_ < 0) return Errno("eventfd");
    drain_fd_ = ::eventfd(0, EFD_NONBLOCK);
    if (drain_fd_ < 0) return Errno("eventfd");

    epoll_event listen_event{};
    listen_event.events = EPOLLIN | EPOLLEXCLUSIVE;
    listen_event.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event) <
        0) {
      return Errno("epoll_ctl(listen)");
    }
    epoll_event stop_event{};
    stop_event.events = EPOLLIN;
    stop_event.data.fd = stop_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, stop_fd_, &stop_event) < 0) {
      return Errno("epoll_ctl(stop)");
    }
    epoll_event drain_event{};
    drain_event.events = EPOLLIN;
    drain_event.data.fd = drain_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, drain_fd_, &drain_event) < 0) {
      return Errno("epoll_ctl(drain)");
    }
    return Status::Ok();
  }

  void RequestStop() {
    uint64_t one = 1;
    ssize_t n = ::write(stop_fd_, &one, sizeof(one));
    (void)n;
  }

  void RequestDrain() {
    uint64_t one = 1;
    ssize_t n = ::write(drain_fd_, &one, sizeof(one));
    (void)n;
  }

  void Run() {
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    const ServerLimits& limits = server_->limits_;
    const bool timed = limits.header_timeout_micros > 0 ||
                       limits.idle_timeout_micros > 0 ||
                       limits.write_stall_micros > 0;
    for (;;) {
      int timeout_ms = (timed || draining_) ? kDeadlineTickMs : -1;
      int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == stop_fd_) return;
        if (fd == drain_fd_) {
          BeginDrain();
          continue;
        }
        if (fd == listen_fd_) {
          AcceptReady();
        } else {
          OnConnectionEvent(fd, events[i].events);
        }
      }
      if (timed) SweepDeadlines();
      if (draining_ && connections_.empty()) return;
    }
  }

 private:
  struct Connection {
    http::RequestReader reader;
    common::BufferChain out;  // Slices pending write (shared buffers).
    size_t out_offset = 0;    // Bytes of `out` already sent.
    bool want_write = false;  // EPOLLOUT armed.
    bool close_after_flush = false;
    bool served_during_drain = false;
    // Active streamed response body; while set, the head is already in
    // `out` and further pipelined dispatch waits for the stream to end.
    std::shared_ptr<http::BodyStream> stream;
    // 0 = no request in progress; otherwise when its first bytes arrived.
    MicroTime read_start = 0;
    MicroTime last_activity = 0;
    // 0 = nothing pending; otherwise when conn.out started waiting.
    MicroTime write_start = 0;
  };

  // Unsent bytes queued while pumping a stream beyond which the pump
  // pauses until EPOLLOUT drains the backlog: a client reading slowly
  // must not make the server buffer the whole streamed page after all.
  static constexpr size_t kStreamHighWater = 256 * 1024;

  void AcceptReady() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;  // Interrupted: retry the accept.
        if (errno == ECONNABORTED) continue;  // Peer gave up; next one.
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // Drained.
        if (errno == EMFILE || errno == ENFILE) {
          // Fd exhaustion persists across accept rounds; log and count it
          // once per *episode* — the flag re-arms on the next successful
          // accept, so a later outage is reported again rather than
          // silenced for the rest of the server's life.
          if (!server_->accept_fd_exhausted_.exchange(true)) {
            server_->counters_->accept_fd_exhaustion_episodes.fetch_add(
                1, kRelaxed);
            DYNAPROX_LOG(kError, "epoll")
                << "accept4: " << std::strerror(errno)
                << " (fd limit reached; dropping new connections)";
          }
          return;
        }
        DYNAPROX_LOG(kWarning, "epoll")
            << "accept4: " << std::strerror(errno);
        return;
      }
      // Accept works again: re-arm per-episode exhaustion reporting. The
      // load screens out the common case so the hot path stays write-free;
      // the exchange makes sure only one worker logs the recovery.
      if (server_->accept_fd_exhausted_.load(kRelaxed) &&
          server_->accept_fd_exhausted_.exchange(false)) {
        DYNAPROX_LOG(kInfo, "epoll") << "accept4: fd exhaustion cleared";
      }
      IngressCounters& counters = *server_->counters_;
      const ServerLimits& limits = server_->limits_;
      if (limits.max_connections > 0 &&
          server_->live_connections_.load(kRelaxed) >=
              limits.max_connections) {
        counters.connection_limit_rejections.fetch_add(1, kRelaxed);
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) < 0) {
        ::close(fd);
        continue;
      }
      Connection& conn = connections_[fd];
      conn.reader.set_limits(
          {limits.max_header_bytes, limits.max_body_bytes});
      conn.last_activity = SystemClock::Default()->NowMicros();
      server_->accepted_.fetch_add(1, std::memory_order_relaxed);
      counters.accepted_total.fetch_add(1, kRelaxed);
      counters.open_connections.fetch_add(1, kRelaxed);
      server_->live_connections_.fetch_add(1, kRelaxed);
    }
  }

  void CloseConnection(int fd) {
    auto it = connections_.find(fd);
    if (it != connections_.end() && it->second.served_during_drain) {
      server_->counters_->drained_connections.fetch_add(1, kRelaxed);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    if (connections_.erase(fd) > 0) {
      server_->counters_->open_connections.fetch_sub(1, kRelaxed);
      server_->live_connections_.fetch_sub(1, kRelaxed);
    }
  }

  // Drain: stop accepting on this loop, reap idle keep-alive connections,
  // and let busy ones run to completion (their next response closes them).
  void BeginDrain() {
    uint64_t value = 0;
    ssize_t n = ::read(drain_fd_, &value, sizeof(value));
    (void)n;
    if (draining_) return;
    draining_ = true;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    std::vector<int> idle;
    for (auto& [fd, conn] : connections_) {
      const bool busy = !conn.out.empty() || conn.stream != nullptr ||
                        conn.reader.buffered_bytes() > 0 ||
                        conn.read_start != 0;
      if (!busy) {
        idle.push_back(fd);
      } else if (!conn.out.empty() || conn.stream != nullptr) {
        // Response already queued (or streaming): close once it flushes —
        // Flush() defers the close until an active stream has ended. A
        // connection mid-request instead closes after its response is
        // dispatched (the draining_ check in OnConnectionEvent).
        conn.close_after_flush = true;
      }
    }
    for (int fd : idle) CloseConnection(fd);
  }

  // Enforces the header, idle, and write-stall deadlines across this
  // loop's connections. Runs at most every kDeadlineTickMs.
  void SweepDeadlines() {
    const ServerLimits& limits = server_->limits_;
    const MicroTime now = SystemClock::Default()->NowMicros();
    std::vector<int> doomed;
    IngressCounters& counters = *server_->counters_;
    for (auto& [fd, conn] : connections_) {
      if (conn.read_start != 0 && limits.header_timeout_micros > 0 &&
          now - conn.read_start >= limits.header_timeout_micros) {
        counters.header_timeouts.fetch_add(1, kRelaxed);
        doomed.push_back(fd);
        continue;
      }
      if (conn.read_start == 0 && limits.idle_timeout_micros > 0 &&
          conn.out.empty() &&
          now - conn.last_activity >= limits.idle_timeout_micros) {
        counters.idle_timeouts.fetch_add(1, kRelaxed);
        doomed.push_back(fd);
        continue;
      }
      if (conn.write_start != 0 && limits.write_stall_micros > 0 &&
          now - conn.write_start >= limits.write_stall_micros) {
        counters.write_stall_closes.fetch_add(1, kRelaxed);
        doomed.push_back(fd);
      }
    }
    for (int fd : doomed) CloseConnection(fd);
  }

  // Flushes as much of conn.out as the socket accepts; rearms EPOLLOUT as
  // needed. Returns false if the connection died. Vectored: the chain's
  // slices are re-exported from the current byte offset on every call, so
  // a short write that stops mid-slice resumes at the exact byte.
  bool Flush(int fd, Connection& conn) {
    constexpr size_t kMaxIovecs = 64;  // Under any sane IOV_MAX.
    struct iovec iov[kMaxIovecs];
    while (conn.out_offset < conn.out.size()) {
      size_t n_iov = conn.out.FillIovecs(conn.out_offset, iov, kMaxIovecs);
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = n_iov;
      ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_offset += static_cast<size_t>(n);
        conn.write_start = 0;  // Progress: restart the stall clock.
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (conn.write_start == 0) {
          conn.write_start = SystemClock::Default()->NowMicros();
        }
        if (!conn.want_write) {
          epoll_event event{};
          event.events = EPOLLIN | EPOLLOUT;
          event.data.fd = fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
          conn.want_write = true;
        }
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      CloseConnection(fd);
      return false;
    }
    // Fully flushed: drop the slices (and their buffer references).
    conn.out.Clear();
    conn.out_offset = 0;
    conn.write_start = 0;
    if (conn.want_write) {
      epoll_event event{};
      event.events = EPOLLIN;
      event.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
      conn.want_write = false;
    }
    if (conn.close_after_flush && conn.stream == nullptr) {
      // An active stream owns the close: its remaining chunks still have
      // to go out before close_after_flush may act.
      CloseConnection(fd);
      return false;
    }
    return true;
  }

  // Advances an active streamed response: pulls body chunks and flushes
  // between pulls, so head bytes reach the socket while the tail is still
  // being produced upstream. Pauses (returning true with conn.stream
  // still set) once the unsent backlog passes kStreamHighWater; EPOLLOUT
  // resumes it. Returns false if the connection died. Note the pull runs
  // inline on the event loop, so a stream blocked on its upstream stalls
  // this worker exactly like a blocking handler does.
  bool PumpStream(int fd, Connection& conn) {
    while (conn.stream != nullptr) {
      if (!Flush(fd, conn)) return false;
      if (conn.out.size() - conn.out_offset >= kStreamHighWater) {
        return true;
      }
      Result<common::BufferChain> chunk = conn.stream->Next();
      if (!chunk.ok()) {
        // Mid-body failure: abort so the client sees a truncated chunked
        // body, never a complete-looking response.
        CloseConnection(fd);
        return false;
      }
      if (chunk->empty()) {
        http::AppendFinalChunkFrame(conn.out);
        conn.stream.reset();
        break;
      }
      http::AppendChunkFrame(conn.out, std::move(*chunk));
    }
    return Flush(fd, conn);
  }

  // Serves everything currently serviceable on the connection: buffered
  // pipelined requests, then the active stream, repeating until
  // backpressure pauses the stream or nothing is left. Returns false if
  // the connection died.
  bool Service(int fd, Connection& conn) {
    for (;;) {
      if (conn.stream == nullptr) DispatchBuffered(conn);
      if (conn.stream != nullptr) {
        if (!PumpStream(fd, conn)) return false;
        if (conn.stream != nullptr) return true;  // Paused on backpressure.
        continue;  // Stream done; more pipelined requests may be buffered.
      }
      return Flush(fd, conn);
    }
  }

  // Dispatches every complete buffered request (pipelining supported)
  // until a streamed response pauses the pipeline or the requests run
  // out. Once close_after_flush is set nothing more may be dispatched —
  // in particular a failed reader must not be polled again, or every
  // later packet would re-count the same limit violation and queue a
  // duplicate error response.
  void DispatchBuffered(Connection& conn) {
    bool completed_request = false;
    while (!conn.close_after_flush && conn.stream == nullptr) {
      auto next = conn.reader.Next();
      if (!next.has_value()) break;
      if (!next->ok()) {
        http::Response bad = ResponseForReaderError(
            conn.reader.limit_violation(), next->status(),
            *server_->counters_);
        conn.out.Append(bad.SerializeToChain());
        conn.close_after_flush = true;
        break;
      }
      const http::Request& request = next->value();
      completed_request = true;
      http::Response response = DispatchAdmitted(
          server_->handler_, request, server_->limits_,
          *server_->counters_);
      if (draining_) {
        conn.close_after_flush = true;
        conn.served_during_drain = true;
      }
      if (auto connection = request.headers.Get("Connection");
          connection.has_value() &&
          EqualsIgnoreCase(*connection, "close")) {
        conn.close_after_flush = true;
      }
      if (conn.close_after_flush) {
        response.headers.Set("Connection", "close");
      }
      if (response.body_stream != nullptr) {
        // Streamed response: queue the chunked head now; body chunks are
        // pumped by PumpStream. Later pipelined requests stay buffered
        // until the stream ends (responses must not interleave).
        conn.out.Append(
            common::MakeBuffer(http::SerializeStreamingHead(response)));
        conn.stream = std::move(response.body_stream);
        continue;
      }
      conn.out.Append(response.SerializeToChain());
    }
    // The header deadline bounds total time from a message's first byte
    // to its completion, so a partial message must keep its original
    // read_start — restarting the clock per packet would let a slowloris
    // drip one byte per tick forever. The clock resets only on a clean
    // boundary, or restarts when leftover bytes begin a new pipelined
    // message.
    if (conn.reader.buffered_bytes() == 0) {
      conn.read_start = 0;
    } else if (completed_request) {
      conn.read_start = SystemClock::Default()->NowMicros();
    }
  }

  void OnConnectionEvent(int fd, uint32_t events) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& conn = it->second;

    if (events & (EPOLLHUP | EPOLLERR)) {
      CloseConnection(fd);
      return;
    }
    if (events & EPOLLOUT) {
      if (!Flush(fd, conn)) return;
      // A drained backlog lets a paused stream (and any pipelined
      // requests parked behind it) resume.
      if (conn.stream != nullptr && !Service(fd, conn)) return;
    }
    if ((events & EPOLLIN) == 0) return;

    bool peer_eof = false;
    bool got_bytes = false;
    char buf[16 * 1024];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        // A connection already marked close-after-flush (limit violation
        // or Connection: close) answers nothing further: drain and drop
        // the bytes so the dead reader's buffer cannot grow.
        if (!conn.close_after_flush) {
          conn.reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
          got_bytes = true;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) {
        // Half-close: the client is done sending but may still be
        // reading. Serve the buffered pipelined requests and flush
        // conn.out before closing instead of discarding them.
        peer_eof = true;
        break;
      }
      CloseConnection(fd);  // Hard error.
      return;
    }
    if (got_bytes) {
      conn.last_activity = SystemClock::Default()->NowMicros();
      if (conn.read_start == 0) conn.read_start = conn.last_activity;
    }

    DispatchBuffered(conn);
    if (peer_eof) conn.close_after_flush = true;
    if (Service(fd, conn) && peer_eof) {
      // Still draining (a backlog or paused stream remains). EOF keeps
      // the fd readable (level-triggered), so watch only EPOLLOUT to
      // avoid spinning until the flush finishes.
      epoll_event event{};
      event.events = EPOLLOUT;
      event.data.fd = fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event);
    }
  }

  EpollServer* server_;
  int listen_fd_;
  int epoll_fd_ = -1;
  int stop_fd_ = -1;
  int drain_fd_ = -1;
  bool draining_ = false;  // Only touched by this worker's thread.
  std::map<int, Connection> connections_;
};

EpollServer::EpollServer(Handler handler, uint16_t port, int num_workers,
                         ServerLimits limits)
    : handler_(std::move(handler)),
      port_(port),
      requested_workers_(num_workers < 1 ? 1 : num_workers),
      limits_(limits),
      counters_(limits.counters != nullptr ? limits.counters
                                           : &own_counters_) {}

EpollServer::~EpollServer() { Stop(); }

Status EpollServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 256) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  DYNAPROX_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  running_.store(true);
  for (int i = 0; i < requested_workers_; ++i) {
    auto worker = std::make_unique<Worker>(this, listen_fd_);
    DYNAPROX_RETURN_IF_ERROR(worker->Init());
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()] { w->Run(); });
  }
  return Status::Ok();
}

void EpollServer::Stop(MicroTime drain_timeout_micros) {
  if (drain_timeout_micros <= 0) {
    Stop();
    return;
  }
  if (!running_.load()) return;
  for (auto& worker : workers_) worker->RequestDrain();
  const Clock& clock = *SystemClock::Default();
  const MicroTime deadline = clock.NowMicros() + drain_timeout_micros;
  while (clock.NowMicros() < deadline &&
         live_connections_.load(std::memory_order_relaxed) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Stop();
}

void EpollServer::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& worker : workers_) worker->RequestStop();
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace dynaprox::net
