file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_baseline.dir/esi.cc.o"
  "CMakeFiles/dynaprox_baseline.dir/esi.cc.o.d"
  "CMakeFiles/dynaprox_baseline.dir/page_cache.cc.o"
  "CMakeFiles/dynaprox_baseline.dir/page_cache.cc.o.d"
  "libdynaprox_baseline.a"
  "libdynaprox_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
