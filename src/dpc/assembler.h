#ifndef DYNAPROX_DPC_ASSEMBLER_H_
#define DYNAPROX_DPC_ASSEMBLER_H_

#include <string>
#include <vector>

#include "bem/types.h"
#include "common/clock.h"
#include "common/result.h"
#include "dpc/fragment_store.h"
#include "dpc/tag_scanner.h"

namespace dynaprox::dpc {

// Result of assembling one response template.
struct AssembledPage {
  std::string page;
  size_t set_count = 0;
  size_t get_count = 0;
  // dpcKeys whose GET found an empty slot (cold cache). When non-empty the
  // page is incomplete; the proxy triggers miss recovery.
  std::vector<bem::DpcKey> missing_keys;

  bool complete() const { return missing_keys.empty(); }
};

// Stage timing of one AssemblePage call, for the proxy's per-stage
// latency histograms. Three clock reads per page — one per stage
// boundary — so the instrumentation cost is independent of page size.
struct AssemblyTiming {
  MicroTime scan_micros = 0;    // Template scan (ParseTemplate).
  MicroTime splice_micros = 0;  // SET stores + GET splices + literal copy.
};

// Assembles a final page from a BEM template (paper 4.3.2): stores SET
// payloads into `store`, splices GET payloads out of it. Fails only on a
// corrupt template; cold-cache GET misses are reported via `missing_keys`.
// When `clock` and `timing` are both non-null, reports per-stage wall
// time into `timing`.
Result<AssembledPage> AssemblePage(
    std::string_view wire, FragmentStore& store,
    ScanStrategy strategy = ScanStrategy::kMemchr,
    const Clock* clock = nullptr, AssemblyTiming* timing = nullptr);

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_ASSEMBLER_H_
