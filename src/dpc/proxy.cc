#include "dpc/proxy.h"

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "net/circuit_breaker.h"
#include "net/connection_pool.h"

namespace dynaprox::dpc {
namespace {

// Hop-by-hop fields (RFC 7230 §6.1) must not travel past an intermediary.
constexpr const char* kHopByHopHeaders[] = {
    "Connection", "Keep-Alive", "Proxy-Connection", "TE",
    "Trailer",    "Upgrade",
};

void StripHopByHop(http::HeaderMap& headers) {
  for (const char* name : kHopByHopHeaders) headers.Remove(name);
}

void AppendVia(http::HeaderMap& headers, const std::string& token) {
  if (auto existing = headers.Get("Via"); existing.has_value()) {
    headers.Set("Via", std::string(*existing) + ", " + token);
  } else {
    headers.Add("Via", token);
  }
}

void Bump(std::atomic<uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

void Add(std::atomic<uint64_t>& counter, uint64_t delta) {
  counter.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace

DpcProxy::DpcProxy(net::Transport* upstream, ProxyOptions options)
    : upstream_(upstream), options_(options), store_(options.capacity) {
  if (options_.enable_static_cache) {
    static_cache_ = std::make_unique<StaticCache>(options_.static_cache);
  }
  if (options_.serve_stale) {
    stale_cache_ = std::make_unique<StalePageCache>(options_.stale_cache);
  }
}

net::Handler DpcProxy::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

ProxyStats DpcProxy::stats() const {
  ProxyStats snapshot;
  auto load = [](const std::atomic<uint64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  snapshot.requests = load(counters_.requests);
  snapshot.passthrough = load(counters_.passthrough);
  snapshot.assembled = load(counters_.assembled);
  snapshot.recoveries = load(counters_.recoveries);
  snapshot.upstream_errors = load(counters_.upstream_errors);
  snapshot.template_errors = load(counters_.template_errors);
  snapshot.static_hits = load(counters_.static_hits);
  snapshot.static_revalidations = load(counters_.static_revalidations);
  snapshot.stale_served = load(counters_.stale_served);
  snapshot.breaker_rejections = load(counters_.breaker_rejections);
  snapshot.degraded_503s = load(counters_.degraded_503s);
  snapshot.bytes_from_upstream = load(counters_.bytes_from_upstream);
  snapshot.bytes_to_clients = load(counters_.bytes_to_clients);
  return snapshot;
}

http::Response DpcProxy::BuildAssembledResponse(
    const http::Request& request, const http::Response& upstream,
    AssembledPage page) {
  http::Response response = upstream;
  response.headers.Remove(bem::kTemplateHeader);
  response.headers.Remove("Content-Length");
  if (options_.proxy_headers) {
    AppendVia(response.headers, options_.via_token);
  }
  if (options_.add_debug_header) {
    response.headers.Set(
        kDebugHeader, "sets=" + std::to_string(page.set_count) +
                          ";gets=" + std::to_string(page.get_count));
  }
  response.body = std::move(page.page);
  if (stale_cache_ != nullptr && request.method == "GET" &&
      response.status_code == 200) {
    stale_cache_->Remember(request.target, response);
  }
  Bump(counters_.assembled);
  Add(counters_.bytes_to_clients, response.body.size());
  return response;
}

std::optional<http::Response> DpcProxy::LookupAnyStale(
    const std::string& url) {
  std::optional<http::Response> stale;
  if (stale_cache_ != nullptr) {
    if (std::optional<StalePage> page =
            stale_cache_->Lookup(url, options_.max_stale_micros)) {
      stale = std::move(page->response);
      stale->headers.Set(
          "Age", std::to_string(page->age_micros / kMicrosPerSecond));
    }
  }
  if (!stale.has_value() && static_cache_ != nullptr) {
    stale = static_cache_->LookupStale(url);  // Sets Age itself.
  }
  if (!stale.has_value()) return std::nullopt;
  stale->headers.Set("Warning", kStaleWarning);
  if (options_.proxy_headers) {
    AppendVia(stale->headers, options_.via_token);
  }
  Bump(counters_.stale_served);
  Add(counters_.bytes_to_clients, stale->body.size());
  return stale;
}

http::Response DpcProxy::ServeDegraded(const http::Request& request,
                                       const Status& failure,
                                       bool breaker_rejected) {
  if (request.method == "GET") {
    if (std::optional<http::Response> stale =
            LookupAnyStale(request.target)) {
      return std::move(*stale);
    }
  }
  if (options_.serve_stale || breaker_rejected) {
    Bump(counters_.degraded_503s);
    http::Response response = http::Response::MakeError(
        503, "Service Unavailable",
        "origin unavailable: " + failure.ToString());
    response.headers.Set("Retry-After",
                         std::to_string(options_.retry_after_seconds));
    return response;
  }
  // Legacy fail-closed behaviour when degradation is not configured.
  return http::Response::MakeError(
      502, "Bad Gateway", "upstream error: " + failure.ToString());
}

http::Response DpcProxy::RenderStatus() const {
  ProxyStats snapshot = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("component").String("dpc");
  json.Key("requests").Uint(snapshot.requests);
  json.Key("assembled").Uint(snapshot.assembled);
  json.Key("passthrough").Uint(snapshot.passthrough);
  json.Key("recoveries").Uint(snapshot.recoveries);
  json.Key("upstream_errors").Uint(snapshot.upstream_errors);
  json.Key("template_errors").Uint(snapshot.template_errors);
  json.Key("stale_served").Uint(snapshot.stale_served);
  json.Key("breaker_rejections").Uint(snapshot.breaker_rejections);
  json.Key("degraded_503s").Uint(snapshot.degraded_503s);
  json.Key("bytes_from_upstream").Uint(snapshot.bytes_from_upstream);
  json.Key("bytes_to_clients").Uint(snapshot.bytes_to_clients);
  json.Key("store").BeginObject();
  StoreStats store_stats = store_.stats();
  json.Key("capacity").Uint(store_.capacity());
  json.Key("occupied_slots").Uint(store_.occupied_slots());
  json.Key("content_bytes").Uint(store_.content_bytes());
  json.Key("sets").Uint(store_stats.sets);
  json.Key("gets").Uint(store_stats.gets);
  json.Key("get_misses").Uint(store_stats.get_misses);
  json.EndObject();
  if (options_.upstream_breaker != nullptr) {
    net::CircuitBreakerStats breaker = options_.upstream_breaker->stats();
    json.Key("breaker").BeginObject();
    json.Key("state").String(std::string(BreakerStateName(breaker.state)));
    json.Key("rejections").Uint(breaker.rejections);
    json.Key("opens").Uint(breaker.opens);
    json.Key("closes").Uint(breaker.closes);
    json.Key("probes").Uint(breaker.probes);
    json.Key("window_samples").Int(breaker.window_samples);
    json.Key("window_error_rate").Double(breaker.window_error_rate);
    json.EndObject();
  }
  if (stale_cache_ != nullptr) {
    StalePageCacheStats stale_stats = stale_cache_->stats();
    json.Key("stale_pages").BeginObject();
    json.Key("entries").Uint(stale_cache_->size());
    json.Key("remembers").Uint(stale_stats.remembers);
    json.Key("hits").Uint(stale_stats.hits);
    json.Key("misses").Uint(stale_stats.misses);
    json.Key("evictions").Uint(stale_stats.evictions);
    json.EndObject();
  }
  if (options_.upstream_pool != nullptr) {
    net::PoolStats pool = options_.upstream_pool->stats();
    json.Key("upstream_pool").BeginObject();
    json.Key("open_connections").Int(pool.open_connections);
    json.Key("idle_connections").Int(pool.idle_connections);
    json.Key("wait_queue_depth").Int(pool.wait_queue_depth);
    json.Key("checkouts").Uint(pool.checkouts);
    json.Key("connects").Uint(pool.connects);
    json.Key("reconnects").Uint(pool.reconnects);
    json.Key("stale_closed").Uint(pool.stale_closed);
    json.Key("idle_reaped").Uint(pool.idle_reaped);
    json.Key("waiter_timeouts").Uint(pool.waiter_timeouts);
    json.Key("waiter_rejections").Uint(pool.waiter_rejections);
    json.Key("connect_failures").Uint(pool.connect_failures);
    json.Key("wait_micros").BeginObject();
    json.Key("count").Uint(pool.wait_micros.count());
    json.Key("p50").Double(pool.wait_micros.Percentile(0.5));
    json.Key("p99").Double(pool.wait_micros.Percentile(0.99));
    json.Key("max").Double(pool.wait_micros.count() == 0
                               ? 0.0
                               : pool.wait_micros.max());
    json.EndObject();
    json.EndObject();
  }
  if (static_cache_ != nullptr) {
    StaticCacheStats static_stats = static_cache_->stats();
    json.Key("static_cache").BeginObject();
    json.Key("entries").Uint(static_cache_->size());
    json.Key("hits").Uint(static_stats.hits);
    json.Key("misses").Uint(static_stats.misses);
    json.Key("stores").Uint(static_stats.stores);
    json.Key("revalidations").Uint(static_stats.revalidations);
    json.Key("stale_served").Uint(static_stats.stale_served);
    json.Key("evictions").Uint(static_stats.evictions);
    json.EndObject();
  }
  json.EndObject();
  return http::Response::MakeOk(json.TakeString(), "application/json");
}

http::Response DpcProxy::Handle(const http::Request& request) {
  if (options_.enable_status && request.Path() == options_.status_path) {
    return RenderStatus();
  }
  Bump(counters_.requests);
  bool revalidating = false;
  http::Request upstream_request = request;
  if (options_.proxy_headers) {
    StripHopByHop(upstream_request.headers);
    AppendVia(upstream_request.headers, options_.via_token);
  }
  if (static_cache_ != nullptr && request.method == "GET") {
    if (std::optional<http::Response> cached =
            static_cache_->Lookup(request.target)) {
      Bump(counters_.static_hits);
      Add(counters_.bytes_to_clients, cached->body.size());
      return std::move(*cached);
    }
    // Stale entry with an ETag: try a conditional request.
    if (std::optional<std::string> etag =
            static_cache_->StaleEtag(request.target)) {
      upstream_request.headers.Set("If-None-Match", *etag);
      revalidating = true;
    }
  }
  for (int attempt = 0; attempt <= options_.max_recovery_attempts;
       ++attempt) {
    Result<http::Response> upstream_response =
        upstream_->RoundTrip(upstream_request);
    if (!upstream_response.ok()) {
      bool breaker_rejected =
          net::IsBreakerRejection(upstream_response.status());
      if (breaker_rejected) {
        Bump(counters_.breaker_rejections);
      } else {
        Bump(counters_.upstream_errors);
      }
      return ServeDegraded(request, upstream_response.status(),
                           breaker_rejected);
    }
    Add(counters_.bytes_from_upstream, upstream_response->body.size());

    if (revalidating && upstream_response->status_code == 304) {
      if (std::optional<http::Response> refreshed =
              static_cache_->Revalidate(request.target,
                                        *upstream_response)) {
        Bump(counters_.static_revalidations);
        Add(counters_.bytes_to_clients, refreshed->body.size());
        return std::move(*refreshed);
      }
      // Entry vanished (evicted between the stale check and the 304):
      // retry unconditionally.
      revalidating = false;
      upstream_request = request;
      if (options_.proxy_headers) {
        StripHopByHop(upstream_request.headers);
        AppendVia(upstream_request.headers, options_.via_token);
      }
      continue;
    }

    // Serve-stale-on-error (RFC 9111 §4.2.4): a 5xx answer must not
    // displace a still-usable stale copy — serve the copy instead.
    if (upstream_response->status_code >= 500 && request.method == "GET") {
      if (std::optional<http::Response> stale =
              LookupAnyStale(request.target)) {
        return std::move(*stale);
      }
    }

    if (!upstream_response->headers.Has(bem::kTemplateHeader)) {
      if (static_cache_ != nullptr && request.method == "GET") {
        static_cache_->Store(request.target, *upstream_response);
      }
      if (stale_cache_ != nullptr && request.method == "GET" &&
          upstream_response->status_code == 200) {
        stale_cache_->Remember(request.target, *upstream_response);
      }
      if (options_.proxy_headers) {
        AppendVia(upstream_response->headers, options_.via_token);
      }
      Bump(counters_.passthrough);
      Add(counters_.bytes_to_clients, upstream_response->body.size());
      return std::move(*upstream_response);
    }

    if (options_.max_template_bytes != 0 &&
        upstream_response->body.size() > options_.max_template_bytes) {
      Bump(counters_.template_errors);
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template exceeds limit: " +
              std::to_string(upstream_response->body.size()) + " > " +
              std::to_string(options_.max_template_bytes));
    }

    Result<AssembledPage> assembled =
        AssemblePage(upstream_response->body, store_, options_.scan_strategy);
    if (!assembled.ok()) {
      Bump(counters_.template_errors);
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template error: " + assembled.status().ToString());
    }
    if (assembled->complete()) {
      return BuildAssembledResponse(request, *upstream_response,
                                    std::move(*assembled));
    }

    // Cold-cache recovery: ask the origin to invalidate the missing keys so
    // the retried response carries fresh SETs.
    Bump(counters_.recoveries);
    std::string refresh;
    for (bem::DpcKey key : assembled->missing_keys) {
      if (!refresh.empty()) refresh += ',';
      refresh += ToHex(key);
    }
    DYNAPROX_LOG(kInfo, "dpc")
        << "cold-cache recovery for keys [" << refresh << "]";
    upstream_request = request;
    if (options_.proxy_headers) {
      StripHopByHop(upstream_request.headers);
      AppendVia(upstream_request.headers, options_.via_token);
    }
    upstream_request.headers.Set(bem::kRefreshHeader, refresh);
  }
  Bump(counters_.template_errors);
  return http::Response::MakeError(502, "Bad Gateway",
                                   "unrecoverable missing fragments");
}

}  // namespace dynaprox::dpc
