#include "net/circuit_breaker.h"

#include <algorithm>

#include "common/logging.h"

namespace dynaprox::net {

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

namespace {

CircuitBreakerOptions Sanitize(CircuitBreakerOptions options) {
  options.window = std::max(options.window, 1);
  options.min_samples = std::clamp(options.min_samples, 1, options.window);
  options.half_open_probes = std::max(options.half_open_probes, 1);
  options.close_after = std::max(options.close_after, 1);
  if (options.cooldown.max_attempts < 1) options.cooldown.max_attempts = 1;
  return options;
}

MicroTime CapCooldown(const RetryOptions& cooldown) {
  MicroTime cap = cooldown.initial_backoff_micros;
  for (int i = 1; i < cooldown.max_attempts; ++i) cap *= 2;
  return cap;
}

}  // namespace

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(Sanitize(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : SystemClock::Default()),
      max_cooldown_(CapCooldown(options_.cooldown)),
      outcomes_(static_cast<size_t>(options_.window), 0) {}

double CircuitBreaker::ErrorRateLocked() const {
  return samples_ == 0 ? 0.0
                       : static_cast<double>(errors_) /
                             static_cast<double>(samples_);
}

void CircuitBreaker::OpenLocked(MicroTime now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  cooldown_ = options_.cooldown.initial_backoff_micros;
  for (int i = 0; i < consecutive_opens_ && cooldown_ < max_cooldown_; ++i) {
    cooldown_ *= 2;
  }
  cooldown_ = std::min(cooldown_, max_cooldown_);
  ++consecutive_opens_;
  ++opens_;
  inflight_probes_ = 0;
  probe_successes_ = 0;
  DYNAPROX_LOG(kWarning, "breaker")
      << "opened (error rate " << ErrorRateLocked() << " over " << samples_
      << " samples), cooldown " << cooldown_ / kMicrosPerMilli << " ms";
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (clock_->NowMicros() - opened_at_ < cooldown_) {
        ++rejections_;
        return false;
      }
      // Cooldown over: admit the first probe.
      state_ = BreakerState::kHalfOpen;
      probe_successes_ = 0;
      inflight_probes_ = 1;
      ++probes_;
      return true;
    case BreakerState::kHalfOpen:
      if (inflight_probes_ >= options_.half_open_probes) {
        ++rejections_;
        return false;
      }
      ++inflight_probes_;
      ++probes_;
      return true;
  }
  return true;
}

void CircuitBreaker::Record(bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kOpen:
      // A straggler from before the trip; the window restarts on close.
      return;
    case BreakerState::kClosed: {
      uint8_t evicted = outcomes_[next_slot_];
      uint8_t fresh = success ? 0 : 1;
      outcomes_[next_slot_] = fresh;
      next_slot_ = (next_slot_ + 1) % outcomes_.size();
      if (samples_ < static_cast<int>(outcomes_.size())) {
        ++samples_;
        errors_ += fresh;
      } else {
        errors_ += fresh - evicted;
      }
      if (samples_ >= options_.min_samples &&
          ErrorRateLocked() >= options_.error_threshold) {
        OpenLocked(clock_->NowMicros());
      }
      return;
    }
    case BreakerState::kHalfOpen:
      if (inflight_probes_ > 0) --inflight_probes_;
      if (!success) {
        OpenLocked(clock_->NowMicros());
        return;
      }
      if (++probe_successes_ >= options_.close_after) {
        state_ = BreakerState::kClosed;
        consecutive_opens_ = 0;
        std::fill(outcomes_.begin(), outcomes_.end(), 0);
        next_slot_ = 0;
        samples_ = 0;
        errors_ = 0;
        ++closes_;
        DYNAPROX_LOG(kInfo, "breaker") << "closed after successful probes";
      }
      return;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

CircuitBreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CircuitBreakerStats snapshot;
  snapshot.state = state_;
  snapshot.rejections = rejections_;
  snapshot.opens = opens_;
  snapshot.closes = closes_;
  snapshot.probes = probes_;
  snapshot.window_samples = samples_;
  snapshot.window_error_rate = ErrorRateLocked();
  return snapshot;
}

CircuitBreakerTransport::CircuitBreakerTransport(
    Transport* inner, CircuitBreakerTransportOptions options)
    : inner_(inner), options_(options), breaker_(options.breaker) {}

Result<http::Response> CircuitBreakerTransport::RoundTrip(
    const http::Request& request) {
  if (!breaker_.Allow()) {
    return Status::FailedPrecondition(
        std::string(kBreakerOpenMessage) + ": upstream unavailable");
  }
  Result<http::Response> response = inner_->RoundTrip(request);
  bool success = response.ok() && (!options_.count_http_5xx ||
                                   response->status_code < 500);
  breaker_.Record(success);
  return response;
}

}  // namespace dynaprox::net
