file(REMOVE_RECURSE
  "CMakeFiles/net_test.dir/net/byte_meter_test.cc.o"
  "CMakeFiles/net_test.dir/net/byte_meter_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/epoll_server_test.cc.o"
  "CMakeFiles/net_test.dir/net/epoll_server_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/retry_test.cc.o"
  "CMakeFiles/net_test.dir/net/retry_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/tcp_test.cc.o"
  "CMakeFiles/net_test.dir/net/tcp_test.cc.o.d"
  "CMakeFiles/net_test.dir/net/transport_test.cc.o"
  "CMakeFiles/net_test.dir/net/transport_test.cc.o.d"
  "net_test"
  "net_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
