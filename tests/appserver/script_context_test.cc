#include "appserver/script_context.h"

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "common/clock.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"

namespace dynaprox::appserver {
namespace {

std::unique_ptr<bem::BackEndMonitor> MakeMonitor(const Clock* clock) {
  bem::BemOptions options;
  options.capacity = 16;
  options.clock = clock;
  return *bem::BackEndMonitor::Create(options);
}

http::Request SimpleRequest() {
  http::Request request;
  request.target = "/page";
  return request;
}

TEST(ScriptContextTest, WithoutMonitorEmitsPlainPage) {
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, nullptr);
  context.Emit("<p>");
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("f"),
                                  [](ScriptContext& ctx) {
                                    ctx.Emit("block");
                                    return Status::Ok();
                                  })
                  .ok());
  context.Emit("</p>");
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  EXPECT_EQ(response.body, "<p>block</p>");
  EXPECT_FALSE(response.headers.Has(bem::kTemplateHeader));
  EXPECT_EQ(context.fragment_stats().uncacheable, 1u);
}

TEST(ScriptContextTest, MissEmitsSetAndRegisters) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("f"),
                                  [](ScriptContext& ctx) {
                                    ctx.Emit("content");
                                    return Status::Ok();
                                  })
                  .ok());
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  EXPECT_TRUE(response.headers.Has(bem::kTemplateHeader));
  EXPECT_EQ(context.fragment_stats().misses, 1u);

  // The template assembles to the raw content and stores the fragment.
  dpc::FragmentStore store(16);
  Result<dpc::AssembledPage> page = dpc::AssemblePage(response.body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "content");
  EXPECT_EQ(page->set_count, 1u);
  EXPECT_TRUE(monitor->LookupFragment(bem::FragmentId("f")).hit());
}

TEST(ScriptContextTest, HitEmitsGetWithoutRunningGenerator) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  bem::DpcKey key = *monitor->InsertFragment(bem::FragmentId("f"));

  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  bool generator_ran = false;
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("f"),
                                  [&](ScriptContext&) {
                                    generator_ran = true;
                                    return Status::Ok();
                                  })
                  .ok());
  EXPECT_FALSE(generator_ran);
  EXPECT_EQ(context.fragment_stats().hits, 1u);

  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  dpc::FragmentStore store(16);
  ASSERT_TRUE(store.Set(key, "cached-content").ok());
  Result<dpc::AssembledPage> page = dpc::AssemblePage(response.body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "cached-content");
  EXPECT_EQ(page->get_count, 1u);
}

TEST(ScriptContextTest, GeneratorFailurePropagatesAndCachesNothing) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  Status status = context.CacheableBlock(
      bem::FragmentId("f"), [](ScriptContext& ctx) {
        ctx.Emit("partial output");
        return Status::IoError("db down");
      });
  EXPECT_TRUE(status.code() == StatusCode::kIoError);
  EXPECT_FALSE(monitor->LookupFragment(bem::FragmentId("f")).hit());
  // No partial content leaked into the template.
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  EXPECT_EQ(response.body, "");
}

TEST(ScriptContextTest, NestedBlocksRejected) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  Status status = context.CacheableBlock(
      bem::FragmentId("outer"), [](ScriptContext& ctx) {
        return ctx.CacheableBlock(bem::FragmentId("inner"),
                                  [](ScriptContext&) {
                                    return Status::Ok();
                                  });
      });
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(ScriptContextTest, LiteralStxSurvivesEndToEnd) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  std::string tricky = std::string("pre\x02post");
  context.Emit(tricky);
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("f"),
                                  [&](ScriptContext& ctx) {
                                    ctx.Emit(tricky);
                                    return Status::Ok();
                                  })
                  .ok());
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  dpc::FragmentStore store(16);
  Result<dpc::AssembledPage> page = dpc::AssemblePage(response.body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), tricky + tricky);
  EXPECT_EQ(**store.Get(*monitor->directory().KeyOf(bem::FragmentId("f"))),
            tricky);
}

TEST(ScriptContextTest, DependencyDeclaredInsideBlockReachesMonitor) {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* table = repository.GetOrCreateTable("products");
  auto monitor = MakeMonitor(&clock);
  monitor->AttachRepository(&repository);

  http::Request request = SimpleRequest();
  ScriptContext context(request, &repository, monitor.get());
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("f"),
                                  [](ScriptContext& ctx) {
                                    ctx.DeclareDependency("products", "p1");
                                    ctx.Emit("x");
                                    return Status::Ok();
                                  })
                  .ok());
  ASSERT_TRUE(monitor->LookupFragment(bem::FragmentId("f")).hit());
  table->Upsert("p1", {});
  EXPECT_FALSE(monitor->LookupFragment(bem::FragmentId("f")).hit());
}

TEST(ScriptContextTest, DependencyOutsideBlockIsIgnored) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  context.DeclareDependency("products", "p1");  // No-op at top level.
  EXPECT_EQ(monitor->dependencies().fragment_count(), 0u);
}

TEST(ScriptContextTest, CapacityExhaustionDegradesToUncached) {
  SimClock clock;
  bem::BemOptions options;
  options.capacity = 1;
  options.clock = &clock;
  auto monitor = *bem::BackEndMonitor::Create(options);
  // Occupy the only key with a fragment the policy cannot evict... it can
  // evict it, actually. So exhaust by making PickVictim fail: invalidate
  // directly so the policy has no candidates while the free list is empty.
  // Easiest real-world equivalent: capacity 1, two blocks in one request.
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, monitor.get());
  auto emit_block = [](ScriptContext& ctx) {
    ctx.Emit("z");
    return Status::Ok();
  };
  ASSERT_TRUE(
      context.CacheableBlock(bem::FragmentId("a"), emit_block).ok());
  ASSERT_TRUE(
      context.CacheableBlock(bem::FragmentId("b"), emit_block).ok());
  // Both blocks emitted; the second evicted the first (LRU) rather than
  // degrading, which is also acceptable: page must still assemble fully.
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  dpc::FragmentStore store(1);
  Result<dpc::AssembledPage> page = dpc::AssemblePage(response.body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "zz");
}

TEST(ScriptContextTest, ResponseMetadata) {
  http::Request request = SimpleRequest();
  ScriptContext context(request, nullptr, nullptr);
  context.SetStatus(404);
  context.SetHeader("X-Extra", "1");
  context.Emit("gone");
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  EXPECT_EQ(response.status_code, 404);
  EXPECT_EQ(response.reason, "Not Found");
  EXPECT_EQ(*response.headers.Get("X-Extra"), "1");
  EXPECT_EQ(*response.headers.Get("Content-Type"), "text/html");
}

}  // namespace
}  // namespace dynaprox::appserver
