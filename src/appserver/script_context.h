#ifndef DYNAPROX_APPSERVER_SCRIPT_CONTEXT_H_
#define DYNAPROX_APPSERVER_SCRIPT_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bem/monitor.h"
#include "bem/types.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "http/message.h"
#include "storage/table.h"

namespace dynaprox::appserver {

// Per-request fragment accounting, mirrored into OriginStats.
struct RequestFragmentStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t uncacheable = 0;  // Blocks run without BEM involvement.
};

// BEM-stage latency hooks, shared by every context the origin creates.
// Timing happens only when `clock` and the target histogram are both
// non-null, so the baseline path costs nothing. The histograms are
// relaxed-atomic, so contexts on different threads may share one struct.
struct ScriptMetrics {
  const Clock* clock = nullptr;
  // One observation per CacheableBlock: the directory LookupFragment call.
  metrics::LatencyHistogram* directory_lookup = nullptr;
  // One observation per executed generator (miss path, or every block in
  // baseline mode). Hits skip the generator and observe nothing.
  metrics::LatencyHistogram* block_execution = nullptr;
  // One observation per SET/GET tag written into the template.
  metrics::LatencyHistogram* tag_emission = nullptr;
};

// The environment a dynamic script runs in. This is the reproduction of the
// paper's tagging API (4.3.1): a script emits page text with Emit() and
// wraps cacheable code blocks in CacheableBlock().
//
// With a BEM attached the context produces a *template*: literal text plus
// SET/GET instructions. Without a BEM (the no-cache baseline) the exact
// same script produces the full page — CacheableBlock simply runs the
// generator inline. This symmetry is what lets the benches compare B_C and
// B_NC on identical workloads.
//
// Not thread-safe; one context serves one request.
class ScriptContext {
 public:
  // `repository` may be null for scripts that don't touch the data layer;
  // `monitor` null selects the no-cache baseline behaviour. `metrics` may
  // be null (no stage timing); when set it must outlive the context.
  ScriptContext(const http::Request& request,
                storage::ContentRepository* repository,
                bem::BackEndMonitor* monitor,
                const ScriptMetrics* metrics = nullptr);

  const http::Request& request() const { return request_; }
  storage::ContentRepository* repository() { return repository_; }
  bool caching_enabled() const { return monitor_ != nullptr; }

  // Appends literal page text (escaped into the template as needed).
  void Emit(std::string_view text);

  // A cacheable code block (paper 4.3.1: "inserting APIs around the code
  // block"). On a directory hit the generator is *not executed* and a GET
  // tag is emitted; on a miss the generator runs, its output is wrapped in
  // a SET tag, and the fragment is registered with the BEM.
  //
  // `ttl_micros` < 0 uses the BEM default. Nested cacheable blocks are
  // rejected with FailedPrecondition (the paper's fragments are flat).
  // If the directory cannot accept the fragment the content is emitted
  // uncached — correctness degrades gracefully to no-cache behaviour.
  using BlockFn = std::function<Status(ScriptContext&)>;
  Status CacheableBlock(const bem::FragmentId& id, MicroTime ttl_micros,
                        const BlockFn& generate);
  Status CacheableBlock(const bem::FragmentId& id, const BlockFn& generate) {
    return CacheableBlock(id, -1, generate);
  }

  // Declares that the fragment currently being generated depends on a
  // repository table (or row). Only meaningful inside a generating block;
  // outside one it is ignored (the page itself is not cached).
  void DeclareDependency(const std::string& table,
                         const std::string& row_key = "");

  // Response metadata.
  void SetStatus(int code);
  void SetHeader(std::string name, std::string value);

  const RequestFragmentStats& fragment_stats() const { return stats_; }

  // Finalizes the response. When a BEM is attached and at least one
  // cacheable block executed, the body is a template and the response is
  // marked with dpc::kTemplateHeader (via `template_header_name`).
  http::Response TakeResponse(const std::string& template_header_name);

 private:
  // Where Emit() currently writes: the top-level template or a fragment
  // buffer inside a generating block.
  std::string* sink();

  // Observes `micros` into `histogram` when this context is instrumented.
  void ObserveStage(metrics::LatencyHistogram* histogram,
                    MicroTime micros) const;
  bool timed() const {
    return metrics_ != nullptr && metrics_->clock != nullptr;
  }

  const http::Request& request_;
  storage::ContentRepository* repository_;
  bem::BackEndMonitor* monitor_;
  const ScriptMetrics* metrics_;

  std::string body_;            // Template (or plain page without BEM).
  bool used_tagging_ = false;   // Any SET/GET emitted.
  bool in_block_ = false;
  std::string block_buffer_;    // Raw content of the generating block.
  std::vector<std::pair<std::string, std::string>> pending_deps_;

  int status_code_ = 200;
  http::HeaderMap headers_;
  RequestFragmentStats stats_;
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_SCRIPT_CONTEXT_H_
