#include "http/parser.h"

#include "common/strings.h"

namespace dynaprox::http {
namespace {

// Splits "head\r\nbody" at the first blank line; returns npos if absent.
size_t FindHeaderEnd(std::string_view wire) {
  return wire.find("\r\n\r\n");
}

Status ParseHeaderFields(std::string_view block, HeaderMap& headers) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("header line missing ':'");
    }
    std::string_view name = StripWhitespace(line.substr(0, colon));
    std::string_view value = StripWhitespace(line.substr(colon + 1));
    if (name.empty()) {
      return Status::InvalidArgument("empty header field name");
    }
    headers.Add(std::string(name), std::string(value));
  }
  return Status::Ok();
}

Result<size_t> DeclaredBodyLength(const HeaderMap& headers) {
  auto field = headers.Get("Content-Length");
  if (!field.has_value()) return size_t{0};
  Result<uint64_t> parsed = ParseUint64(StripWhitespace(*field));
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad Content-Length: " +
                                   std::string(*field));
  }
  return static_cast<size_t>(*parsed);
}

bool IsChunked(const HeaderMap& headers) {
  auto field = headers.Get("Transfer-Encoding");
  return field.has_value() &&
         EqualsIgnoreCase(StripWhitespace(*field), "chunked");
}

// Attempts to decode a chunked body starting at `wire[offset]`.
// Returns:
//   ok(true)  — complete; `body` holds the joined payload and `consumed`
//               the total encoded length (incl. terminator and trailers).
//   ok(false) — more bytes needed; `body` holds the chunks decoded so
//               far and `pending_declared` the size of a declared but
//               not yet fully delivered chunk (0 if none), so callers
//               can enforce body caps on exactly the payload bytes the
//               stream is committed to.
//   error     — malformed framing.
Result<bool> TryDecodeChunked(std::string_view wire, size_t offset,
                              std::string& body, size_t& consumed,
                              size_t& pending_declared) {
  body.clear();
  pending_declared = 0;
  size_t pos = offset;
  for (;;) {
    size_t line_end = wire.find("\r\n", pos);
    if (line_end == std::string_view::npos) return false;
    std::string_view size_line = wire.substr(pos, line_end - pos);
    // Ignore chunk extensions (";...").
    if (size_t semicolon = size_line.find(';');
        semicolon != std::string_view::npos) {
      size_line = size_line.substr(0, semicolon);
    }
    Result<uint64_t> chunk_size = ParseHex(StripWhitespace(size_line));
    if (!chunk_size.ok()) {
      return Status::InvalidArgument("bad chunk size line");
    }
    pos = line_end + 2;
    if (*chunk_size == 0) {
      // Trailer section: zero or more header lines, then a blank line.
      for (;;) {
        size_t trailer_end = wire.find("\r\n", pos);
        if (trailer_end == std::string_view::npos) return false;
        if (trailer_end == pos) {  // Blank line: done.
          consumed = trailer_end + 2 - offset;
          return true;
        }
        pos = trailer_end + 2;
      }
    }
    if (wire.size() < pos + *chunk_size + 2) {
      pending_declared = static_cast<size_t>(*chunk_size);
      return false;
    }
    body.append(wire.substr(pos, *chunk_size));
    pos += *chunk_size;
    if (wire.compare(pos, 2, "\r\n") != 0) {
      return Status::InvalidArgument("chunk data not CRLF-terminated");
    }
    pos += 2;
  }
}

// Normalizes a dechunked message: body length becomes explicit.
void Dechunk(HeaderMap& headers, size_t body_size) {
  headers.Remove("Transfer-Encoding");
  headers.Set("Content-Length", std::to_string(body_size));
}

// Parses the head (start line + headers) of a request.
Status ParseRequestHead(std::string_view head, Request& request) {
  size_t eol = head.find("\r\n");
  std::string_view start_line = head.substr(0, eol);
  std::vector<std::string_view> parts = StrSplit(start_line, ' ');
  if (parts.size() != 3 || parts[0].empty() || parts[1].empty()) {
    return Status::InvalidArgument("malformed request line: " +
                                   std::string(start_line));
  }
  if (!StartsWith(parts[2], "HTTP/")) {
    return Status::InvalidArgument("bad HTTP version: " +
                                   std::string(parts[2]));
  }
  request.method = std::string(parts[0]);
  request.target = std::string(parts[1]);
  request.version = std::string(parts[2]);
  std::string_view fields =
      eol == std::string_view::npos ? std::string_view() : head.substr(eol + 2);
  return ParseHeaderFields(fields, request.headers);
}

Status ParseResponseHead(std::string_view head, Response& response) {
  size_t eol = head.find("\r\n");
  std::string_view start_line = head.substr(0, eol);
  // Status line: HTTP-version SP status-code SP [reason].
  size_t sp1 = start_line.find(' ');
  if (sp1 == std::string_view::npos) {
    return Status::InvalidArgument("malformed status line");
  }
  size_t sp2 = start_line.find(' ', sp1 + 1);
  std::string_view version = start_line.substr(0, sp1);
  std::string_view code_text =
      sp2 == std::string_view::npos
          ? start_line.substr(sp1 + 1)
          : start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (!StartsWith(version, "HTTP/")) {
    return Status::InvalidArgument("bad HTTP version: " +
                                   std::string(version));
  }
  Result<uint64_t> code = ParseUint64(code_text);
  if (!code.ok() || *code < 100 || *code > 999) {
    return Status::InvalidArgument("bad status code: " +
                                   std::string(code_text));
  }
  response.version = std::string(version);
  response.status_code = static_cast<int>(*code);
  response.reason = sp2 == std::string_view::npos
                        ? ""
                        : std::string(start_line.substr(sp2 + 1));
  std::string_view fields =
      eol == std::string_view::npos ? std::string_view() : head.substr(eol + 2);
  return ParseHeaderFields(fields, response.headers);
}

// Shared complete-buffer parse: head parse + exact body length check.
template <typename Message, typename HeadParser>
Result<Message> ParseComplete(std::string_view wire, HeadParser parse_head) {
  size_t header_end = FindHeaderEnd(wire);
  if (header_end == std::string_view::npos) {
    return Status::InvalidArgument("message head not terminated");
  }
  Message message;
  DYNAPROX_RETURN_IF_ERROR(parse_head(wire.substr(0, header_end), message));

  if (IsChunked(message.headers)) {
    size_t consumed = 0;
    size_t pending = 0;
    Result<bool> complete =
        TryDecodeChunked(wire, header_end + 4, message.body, consumed,
                         pending);
    if (!complete.ok()) return complete.status();
    if (!*complete || header_end + 4 + consumed != wire.size()) {
      return Status::InvalidArgument("chunked body truncated or trailing");
    }
    Dechunk(message.headers, message.body.size());
    return message;
  }

  size_t body_length = 0;
  DYNAPROX_ASSIGN_OR_RETURN(body_length,
                            DeclaredBodyLength(message.headers));
  std::string_view body = wire.substr(header_end + 4);
  if (body.size() != body_length) {
    return Status::InvalidArgument("body length mismatch: declared " +
                                   std::to_string(body_length) + ", have " +
                                   std::to_string(body.size()));
  }
  message.body = std::string(body);
  return message;
}

}  // namespace

Result<Request> ParseRequest(std::string_view wire) {
  return ParseComplete<Request>(wire, ParseRequestHead);
}

Result<Response> ParseResponse(std::string_view wire) {
  return ParseComplete<Response>(wire, ParseResponseHead);
}

template <typename Message>
void MessageReader<Message>::Feed(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

template <typename Message>
Result<Message> MessageReader<Message>::FailLimit(LimitViolation violation,
                                                  std::string message) {
  failed_ = true;
  violation_ = violation;
  buffer_.clear();  // The stream is dead; don't hold the hostile bytes.
  return Result<Message>(Status::CapacityExceeded(std::move(message)));
}

template <typename Message>
std::optional<Result<Message>> MessageReader<Message>::Next() {
  if (failed_) {
    return Result<Message>(Status::Corruption("reader in failed state"));
  }
  size_t header_end = FindHeaderEnd(buffer_);
  if (header_end == std::string::npos) {
    // An endless header section must not grow the buffer without bound:
    // once more than the cap is buffered with no terminator in sight, the
    // stream can never produce an acceptable message.
    if (limits_.max_header_bytes != 0 &&
        buffer_.size() > limits_.max_header_bytes) {
      return FailLimit(
          LimitViolation::kHeaderBytes,
          "header section exceeds " +
              std::to_string(limits_.max_header_bytes) + " bytes");
    }
    return std::nullopt;
  }
  if (limits_.max_header_bytes != 0 &&
      header_end > limits_.max_header_bytes) {
    return FailLimit(LimitViolation::kHeaderBytes,
                     "header section of " + std::to_string(header_end) +
                         " bytes exceeds " +
                         std::to_string(limits_.max_header_bytes));
  }

  Message message;
  Status head_status;
  if constexpr (std::is_same_v<Message, Request>) {
    head_status = ParseRequestHead(
        std::string_view(buffer_).substr(0, header_end), message);
  } else {
    head_status = ParseResponseHead(
        std::string_view(buffer_).substr(0, header_end), message);
  }
  if (!head_status.ok()) {
    failed_ = true;
    return Result<Message>(head_status);
  }
  if (IsChunked(message.headers)) {
    size_t consumed = 0;
    size_t pending = 0;
    Result<bool> complete = TryDecodeChunked(buffer_, header_end + 4,
                                             message.body, consumed, pending);
    if (!complete.ok()) {
      failed_ = true;
      return Result<Message>(complete.status());
    }
    if (limits_.max_body_bytes != 0) {
      // The cap applies to payload bytes the stream is committed to:
      // chunks decoded so far plus any declared-but-undelivered chunk.
      // Framing overhead (chunk-size lines, CRLFs) never counts, so a
      // legitimate under-cap body sent as many small chunks is never
      // rejected while incomplete. A generous raw backstop still bounds
      // buffer growth against framing that decodes to nothing (an
      // endless chunk-size line or trailer section); 8x covers the
      // worst legitimate expansion of 1-byte chunks (6 bytes each).
      size_t encoded = buffer_.size() - header_end - 4;
      if (message.body.size() + pending > limits_.max_body_bytes ||
          (!*complete && encoded > 8 * limits_.max_body_bytes + 4096)) {
        return FailLimit(LimitViolation::kBodyBytes,
                         "chunked body exceeds " +
                             std::to_string(limits_.max_body_bytes) +
                             " bytes");
      }
    }
    if (!*complete) return std::nullopt;  // Await more bytes.
    Dechunk(message.headers, message.body.size());
    buffer_.erase(0, header_end + 4 + consumed);
    return Result<Message>(std::move(message));
  }

  Result<size_t> body_length = DeclaredBodyLength(message.headers);
  if (!body_length.ok()) {
    failed_ = true;
    return Result<Message>(body_length.status());
  }
  // Reject an over-cap declaration before buffering the body: a single
  // "Content-Length: 999999999999" must not commit the reader to
  // gigabytes of allocation.
  if (limits_.max_body_bytes != 0 &&
      *body_length > limits_.max_body_bytes) {
    return FailLimit(LimitViolation::kBodyBytes,
                     "declared Content-Length " +
                         std::to_string(*body_length) + " exceeds " +
                         std::to_string(limits_.max_body_bytes));
  }
  size_t total = header_end + 4 + *body_length;
  if (buffer_.size() < total) return std::nullopt;
  message.body = buffer_.substr(header_end + 4, *body_length);
  buffer_.erase(0, total);
  return Result<Message>(std::move(message));
}

std::string SerializeStreamingHead(const Response& response) {
  std::string out;
  out += response.version;
  out += ' ';
  out += std::to_string(response.status_code);
  out += ' ';
  out += response.reason;
  out += "\r\n";
  for (const auto& [name, value] : response.headers.fields()) {
    if (EqualsIgnoreCase(name, "Content-Length") ||
        EqualsIgnoreCase(name, "Transfer-Encoding")) {
      continue;
    }
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Transfer-Encoding: chunked\r\n\r\n";
  return out;
}

std::string SerializeChunked(const Response& response, size_t chunk_size) {
  if (chunk_size == 0) chunk_size = 4096;
  std::string out = SerializeStreamingHead(response);
  std::string_view body(response.body);
  for (size_t offset = 0; offset < body.size(); offset += chunk_size) {
    std::string_view chunk = body.substr(offset, chunk_size);
    out += ToHex(chunk.size());
    out += "\r\n";
    out += chunk;
    out += "\r\n";
  }
  out += "0\r\n\r\n";
  return out;
}

namespace {

// Shared frame punctuation: one immortal buffer each, so per-chunk
// framing costs one small size-line allocation and refcount bumps.
const common::Buffer& CrlfBuffer() {
  static const common::Buffer buffer = common::MakeBuffer("\r\n");
  return buffer;
}

const common::Buffer& FinalChunkBuffer() {
  static const common::Buffer buffer = common::MakeBuffer("0\r\n\r\n");
  return buffer;
}

}  // namespace

void AppendChunkFrame(common::BufferChain& out, common::BufferChain payload) {
  if (payload.empty()) return;
  out.Append(common::MakeBuffer(ToHex(payload.size()) + "\r\n"));
  out.Append(std::move(payload));
  out.Append(CrlfBuffer());
}

void AppendFinalChunkFrame(common::BufferChain& out) {
  out.Append(FinalChunkBuffer());
}

Status StreamingResponseReader::Fail(Status status) {
  state_ = State::kFailed;
  status_ = status;
  buffer_.clear();
  decoded_.clear();
  return status_;
}

void StreamingResponseReader::Feed(std::string_view bytes) {
  if (state_ == State::kFailed) return;
  buffer_.append(bytes.data(), bytes.size());
  if (state_ != State::kHead) Pump();
}

std::optional<Result<Response>> StreamingResponseReader::NextHead() {
  if (state_ == State::kFailed) return Result<Response>(status_);
  if (state_ != State::kHead) {
    return Result<Response>(
        Fail(Status::Internal("response head already consumed")));
  }
  size_t header_end = FindHeaderEnd(buffer_);
  if (header_end == std::string::npos) return std::nullopt;
  Response response;
  Status head_status = ParseResponseHead(
      std::string_view(buffer_).substr(0, header_end), response);
  if (!head_status.ok()) return Result<Response>(Fail(head_status));
  if (IsChunked(response.headers)) {
    state_ = State::kChunkSize;
  } else {
    Result<size_t> length = DeclaredBodyLength(response.headers);
    if (!length.ok()) return Result<Response>(Fail(length.status()));
    remaining_ = *length;
    state_ = remaining_ == 0 ? State::kDone : State::kFixedBody;
  }
  buffer_.erase(0, header_end + 4);
  Pump();
  if (state_ == State::kFailed) return Result<Response>(status_);
  return Result<Response>(std::move(response));
}

std::string StreamingResponseReader::TakeBody() {
  std::string out = std::move(decoded_);
  decoded_.clear();
  return out;
}

void StreamingResponseReader::Pump() {
  // Bounds any single framing line (chunk size or trailer): a peer that
  // streams an endless line must not grow the buffer without limit.
  constexpr size_t kMaxFramingLine = 1024;
  for (;;) {
    switch (state_) {
      case State::kHead:
      case State::kDone:
      case State::kFailed:
        return;
      case State::kFixedBody:
      case State::kChunkData: {
        if (buffer_.empty()) return;
        size_t take = buffer_.size() < remaining_ ? buffer_.size() : remaining_;
        decoded_.append(buffer_, 0, take);
        buffer_.erase(0, take);
        remaining_ -= take;
        if (remaining_ != 0) return;
        state_ = state_ == State::kFixedBody ? State::kDone
                                             : State::kChunkDataCrlf;
        break;
      }
      case State::kChunkSize: {
        size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > kMaxFramingLine) {
            Fail(Status::InvalidArgument("bad chunk size line"));
          }
          return;
        }
        std::string_view line(buffer_.data(), eol);
        if (size_t semicolon = line.find(';');
            semicolon != std::string_view::npos) {
          line = line.substr(0, semicolon);  // Ignore chunk extensions.
        }
        Result<uint64_t> chunk_size = ParseHex(StripWhitespace(line));
        if (!chunk_size.ok()) {
          Fail(Status::InvalidArgument("bad chunk size line"));
          return;
        }
        size_t size = static_cast<size_t>(*chunk_size);
        buffer_.erase(0, eol + 2);
        if (size == 0) {
          state_ = State::kTrailer;
        } else {
          remaining_ = size;
          state_ = State::kChunkData;
        }
        break;
      }
      case State::kChunkDataCrlf: {
        if (buffer_.size() < 2) return;
        if (buffer_.compare(0, 2, "\r\n") != 0) {
          Fail(Status::InvalidArgument("chunk data not CRLF-terminated"));
          return;
        }
        buffer_.erase(0, 2);
        state_ = State::kChunkSize;
        break;
      }
      case State::kTrailer: {
        size_t eol = buffer_.find("\r\n");
        if (eol == std::string::npos) {
          if (buffer_.size() > kMaxFramingLine) {
            Fail(Status::InvalidArgument("bad trailer line"));
          }
          return;
        }
        buffer_.erase(0, eol + 2);
        if (eol == 0) state_ = State::kDone;  // Blank line: body over.
        break;
      }
    }
  }
}

template class MessageReader<Request>;
template class MessageReader<Response>;

}  // namespace dynaprox::http
