// End-to-end ingress hardening over real sockets: a TcpServer fronting
// the full DPC assembly stack must keep serving healthy clients while a
// slowloris flood holds connections open, surface shed 503s in the
// scraped metrics, and finish every in-flight response during a graceful
// drain (docs/failure-modes.md, "Ingress overload & slow clients").

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "http/parser.h"
#include "net/server_limits.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

// Raw loopback socket for speaking deliberately slow or partial HTTP.
class RawClient {
 public:
  explicit RawClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(std::string_view bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  std::string ReadUntilClose(MicroTime budget = 3 * kMicrosPerSecond) {
    timeval tv{};
    tv.tv_sec = budget / kMicrosPerSecond;
    tv.tv_usec = budget % kMicrosPerSecond;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  Result<http::Response> ReadResponse(
      MicroTime budget = 3 * kMicrosPerSecond) {
    timeval tv{};
    tv.tv_sec = budget / kMicrosPerSecond;
    tv.tv_usec = budget % kMicrosPerSecond;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    http::ResponseReader reader;
    char buf[4096];
    for (;;) {
      if (auto next = reader.Next()) {
        if (!next->ok()) return next->status();
        return std::move(*next);
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return Status::IoError("connection closed / timed out");
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string SimpleGet(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n";
}

// Full stack behind the listening socket: DPC proxy -> origin server ->
// BEM, with shared ingress counters exported through the proxy metrics.
class IngressHardeningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterOrReplace(
        "/page", [](appserver::ScriptContext& context) {
          context.Emit("<h1>page</h1>");
          return context.CacheableBlock(bem::FragmentId("frag"),
                                        [](appserver::ScriptContext& ctx) {
                                          ctx.Emit("fragment body");
                                          return Status::Ok();
                                        });
        });
    bem::BemOptions bem_options;
    bem_options.capacity = 8;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
    upstream_ = std::make_unique<net::DirectTransport>(origin_->AsHandler());
  }

  std::unique_ptr<dpc::DpcProxy> MakeProxy() {
    dpc::ProxyOptions options;
    options.capacity = 8;
    options.enable_metrics = true;
    options.ingress = &counters_;
    return std::make_unique<dpc::DpcProxy>(upstream_.get(), options);
  }

  net::IngressCounters counters_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> upstream_;
};

TEST_F(IngressHardeningTest, SlowlorisFloodDoesNotStarveHealthyClients) {
  auto proxy = MakeProxy();
  net::ServerLimits limits;
  limits.header_timeout_micros = 150 * kMicrosPerMilli;
  limits.counters = &counters_;
  net::TcpServer server(proxy->AsHandler(), 0, limits);
  ASSERT_TRUE(server.Start().ok());

  // Eight attackers each send a partial request line and then go silent.
  constexpr int kAttackers = 8;
  std::vector<std::unique_ptr<RawClient>> attackers;
  for (int i = 0; i < kAttackers; ++i) {
    attackers.push_back(std::make_unique<RawClient>(server.port()));
    ASSERT_TRUE(attackers.back()->connected());
    ASSERT_TRUE(attackers.back()->Send("GET /page HT"));
  }

  // Healthy clients keep getting fully assembled pages meanwhile.
  for (int i = 0; i < 4; ++i) {
    RawClient healthy(server.port());
    ASSERT_TRUE(healthy.connected());
    ASSERT_TRUE(healthy.Send(SimpleGet("/page")));
    Result<http::Response> response = healthy.ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
    EXPECT_NE(response->body.find("fragment body"), std::string::npos);
  }

  // Every attacker is disconnected at the header deadline, without a
  // response, and the closes are attributed to the right counter.
  for (auto& attacker : attackers) {
    EXPECT_EQ(attacker->ReadUntilClose(2 * kMicrosPerSecond), "");
  }
  EXPECT_GE(counters_.header_timeouts.load(), kAttackers);
  server.Stop();
}

TEST_F(IngressHardeningTest, Shed503IsCountedAndScrapable) {
  auto proxy = MakeProxy();
  net::ServerLimits limits;
  limits.max_inflight = 1;
  limits.retry_after_seconds = 3;
  limits.counters = &counters_;
  net::TcpServer server(proxy->AsHandler(), 0, limits);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the only admission slot externally (the counters are shared
  // state, so another server on the same limits would have this effect).
  counters_.inflight_requests.fetch_add(1);
  RawClient shed(server.port());
  ASSERT_TRUE(shed.connected());
  ASSERT_TRUE(shed.Send(SimpleGet("/page")));
  Result<http::Response> rejected = shed.ReadResponse();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status_code, 503);
  EXPECT_EQ(rejected->headers.Get("Retry-After").value_or(""), "3");
  counters_.inflight_requests.fetch_sub(1);

  // The shed is visible to a scraper hitting the same listening socket.
  RawClient scraper(server.port());
  ASSERT_TRUE(scraper.connected());
  ASSERT_TRUE(scraper.Send(SimpleGet("/_dynaprox/metrics")));
  Result<http::Response> metrics = scraper.ReadResponse();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->body.find("dynaprox_ingress_shed_503_total 1"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("# TYPE dynaprox_ingress_shed_503_total "
                               "counter"),
            std::string::npos);
  server.Stop();
}

TEST_F(IngressHardeningTest, GracefulDrainLosesNoInflightResponses) {
  auto proxy = MakeProxy();
  // Slow the full assembly path down so requests are genuinely in flight
  // when the drain starts.
  net::Handler handler = proxy->AsHandler();
  auto slow_handler = [handler](const http::Request& request) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return handler(request);
  };
  net::ServerLimits limits;
  limits.counters = &counters_;
  net::TcpServer server(slow_handler, 0, limits);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kInflight = 4;
  std::vector<std::unique_ptr<RawClient>> clients;
  for (int i = 0; i < kInflight; ++i) {
    clients.push_back(std::make_unique<RawClient>(server.port()));
    ASSERT_TRUE(clients.back()->connected());
    ASSERT_TRUE(clients.back()->Send(SimpleGet("/page")));
  }
  // Let the requests reach the handler, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.Stop(2 * kMicrosPerSecond);

  // Every response that was in flight arrives complete, marked final.
  for (auto& client : clients) {
    Result<http::Response> response = client->ReadResponse();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
    EXPECT_NE(response->body.find("fragment body"), std::string::npos);
    EXPECT_EQ(response->headers.Get("Connection").value_or(""), "close");
  }
  EXPECT_EQ(counters_.drained_connections.load(), kInflight);
  EXPECT_EQ(counters_.open_connections.load(), 0);

  // New connections are refused once the listener is gone.
  RawClient late(server.port());
  EXPECT_FALSE(late.connected() && late.Send(SimpleGet("/page")) &&
               late.ReadResponse().ok());
}

}  // namespace
}  // namespace dynaprox
