#ifndef DYNAPROX_EDGE_HASH_RING_H_
#define DYNAPROX_EDGE_HASH_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dynaprox::edge {

// 64-bit FNV-1a.
uint64_t Fnv1a(std::string_view data);

// Ring point for a string: FNV-1a followed by a splitmix64 finalizer. The
// finalizer matters: raw FNV of near-identical strings ("node#0".."node#39")
// differs only in low bits, which would cluster a node's vnodes instead of
// spreading them around the ring.
uint64_t RingPoint(std::string_view data);

// Consistent-hash ring for request routing across forward proxies
// (paper Section 7, "Request Routing"). Each node is placed at
// `vnodes` points; a key routes to the first node clockwise from its hash.
// Nodes can be marked down, in which case routing walks past them —
// the paper's "failover seamlessly to another proxy cache".
class HashRing {
 public:
  // Adds a node; AlreadyExists if present. `vnodes` must be > 0.
  Status AddNode(const std::string& node, int vnodes = 40);

  // Removes a node entirely; NotFound if absent.
  Status RemoveNode(const std::string& node);

  // Marks a node unavailable/available without moving ring positions.
  Status MarkDown(const std::string& node);
  Status MarkUp(const std::string& node);

  // Routes `key` to a live node. FailedPrecondition when the ring is
  // empty (misconfiguration); Unavailable when nodes exist but every one
  // is marked down (transient — retry after a MarkUp).
  Result<std::string> Route(std::string_view key) const;

  size_t node_count() const { return nodes_.size(); }
  size_t live_node_count() const;
  std::vector<std::string> Nodes() const;
  bool IsDown(const std::string& node) const {
    return down_.count(node) > 0;
  }

 private:
  std::map<uint64_t, std::string> ring_;  // hash point -> node.
  std::set<std::string> nodes_;
  std::set<std::string> down_;
};

}  // namespace dynaprox::edge

#endif  // DYNAPROX_EDGE_HASH_RING_H_
