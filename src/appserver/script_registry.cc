#include "appserver/script_registry.h"

namespace dynaprox::appserver {

Status ScriptRegistry::Register(const std::string& path, ScriptFn script) {
  auto [it, inserted] = scripts_.emplace(path, std::move(script));
  if (!inserted) {
    return Status::AlreadyExists("script already registered: " + path);
  }
  return Status::Ok();
}

void ScriptRegistry::RegisterOrReplace(const std::string& path,
                                       ScriptFn script) {
  scripts_[path] = std::move(script);
}

Result<const ScriptFn*> ScriptRegistry::Find(const std::string& path) const {
  auto it = scripts_.find(path);
  if (it == scripts_.end()) {
    return Status::NotFound("no script for path: " + path);
  }
  return &it->second;
}

std::vector<std::string> ScriptRegistry::Paths() const {
  std::vector<std::string> paths;
  paths.reserve(scripts_.size());
  for (const auto& [path, script] : scripts_) paths.push_back(path);
  return paths;
}

}  // namespace dynaprox::appserver
