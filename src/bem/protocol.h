#ifndef DYNAPROX_BEM_PROTOCOL_H_
#define DYNAPROX_BEM_PROTOCOL_H_

namespace dynaprox::bem {

// HTTP header names of the BEM<->DPC protocol. Beyond the SET/GET tags in
// response bodies (see TagCodec) these fields are the *only* runtime
// coupling between origin and proxy.

// Response header the origin sets when the body is a BEM template the DPC
// must assemble. Untagged responses pass through the DPC unchanged.
inline constexpr char kTemplateHeader[] = "X-DPC-Template";

// Request header carrying comma-separated hex dpcKeys whose GETs missed at
// the DPC (cold cache / restarted proxy). The BEM invalidates these so the
// retried response carries SETs instead of GETs.
inline constexpr char kRefreshHeader[] = "X-DPC-Refresh";

// Request/response header carrying the per-request id the DPC mints (or
// accepts from the client) and forwards to the origin, so one request's
// access-log lines can be joined across both tiers
// (docs/observability.md). Purely observational: neither side changes
// behaviour based on it.
inline constexpr char kRequestIdHeader[] = "X-DPC-Request-Id";

// Control-channel headers (docs/edge-tier.md). These extend the protocol
// beyond the paper's "no control messages" stance: when the BEM pushes a
// regenerated fragment body to the owning edge DPC, the request carries the
// fragment's dpcKey (hex) and the body's age in decimal microseconds (time
// already elapsed at the BEM between regeneration and the push leaving), so
// the receiving store can account Age correctly for serve-stale math.
inline constexpr char kPushKeyHeader[] = "X-DPC-Push-Key";
inline constexpr char kPushAgeHeader[] = "X-DPC-Push-Age";

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_PROTOCOL_H_
