#ifndef DYNAPROX_APPSERVER_PUSH_ENGINE_H_
#define DYNAPROX_APPSERVER_PUSH_ENGINE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>

#include "bem/push_scheduler.h"
#include "bem/types.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"

namespace dynaprox::appserver {

class OriginServer;

struct PushEngineStats {
  uint64_t pushed = 0;           // Fragments delivered through the sink.
  uint64_t push_failures = 0;    // Sink rejected (or no sink attached).
  uint64_t no_producer = 0;      // No request known to produce the fragment.
  uint64_t missing_capture = 0;  // Re-render did not regenerate it (hit).
};

// Drives push-based refresh on the origin side of the control channel
// (docs/edge-tier.md): the scheduler decides *what* is worth pushing from
// BEM directory events; this engine turns each admitted fragment back
// into bytes by re-rendering the request that produced it (with a
// ScriptContext fragment capture attached) and hands the captured body to
// the sink — the transport-specific sender that POSTs it to the owning
// edge's push endpoint.
//
// `missing_capture` drops are correct, not lost work: if a client request
// re-rendered the fragment between admission and Drain, the engine's
// re-render *hits* the directory, captures nothing — and the content has
// already reached the edge tier through that client response.
//
// Thread-safe. Never call Drain from inside a BEM event observer (it
// re-enters the monitor through the re-render); drain from a timer or a
// dedicated thread.
class PushEngine {
 public:
  explicit PushEngine(bem::PushPolicy policy, const Clock* clock = nullptr);

  // Attach to BackEndMonitor::SetObserver; also where tests inject events.
  bem::PushScheduler& scheduler() { return scheduler_; }
  const bem::PushScheduler& scheduler() const { return scheduler_; }

  // The origin used for re-renders. Must outlive the engine. (The engine
  // is constructed first so OriginOptions can carry its pointer; this
  // closes the loop.)
  void AttachOrigin(OriginServer* origin) { origin_ = origin; }

  // Delivers one captured fragment to the edge tier. `age_micros` is how
  // stale the body already is when handed over (0 for a fresh re-render).
  using PushSink = std::function<Status(
      const std::string& canonical, bem::DpcKey key, const std::string& body,
      MicroTime age_micros)>;
  void set_sink(PushSink sink);

  // Remembers that `target` produces `canonical` (last writer wins). The
  // origin calls this on every render; a fragment pushed before any client
  // ever requested its page counts as no_producer and degrades to pull.
  void RecordProducer(const std::string& canonical, const std::string& target);

  // Pops up to `max` admitted fragments (0 = all), re-renders their
  // producers, and pushes the captured bodies. Returns how many were
  // delivered.
  size_t Drain(size_t max = 0);

  PushEngineStats stats() const;

  // Invalidate→re-insert gap of every fragment, push-admitted or not;
  // the shared freshness measurement behind bench/edge_push_pull.
  const metrics::LatencyHistogram& staleness() const { return staleness_; }

 private:
  metrics::LatencyHistogram staleness_;
  bem::PushScheduler scheduler_;
  OriginServer* origin_ = nullptr;

  mutable std::mutex mu_;
  PushSink sink_;
  std::unordered_map<std::string, std::string> producers_;
  PushEngineStats stats_;
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_PUSH_ENGINE_H_
