#ifndef DYNAPROX_BEM_SWEEPER_H_
#define DYNAPROX_BEM_SWEEPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "bem/monitor.h"
#include "common/clock.h"

namespace dynaprox::bem {

// Proactive TTL sweeper: a background thread that periodically calls
// BackEndMonitor::SweepExpired so expired fragments release their dpcKeys
// even if never looked up again (paper 4.3.3's invalidation manager
// "monitors fragments to determine when they become invalid"). Lazy
// lookup-time expiry still applies; the sweeper just bounds how long dead
// entries can pin keys.
class PeriodicSweeper {
 public:
  // `monitor` must outlive the sweeper.
  PeriodicSweeper(BackEndMonitor* monitor, MicroTime interval_micros);
  ~PeriodicSweeper();

  PeriodicSweeper(const PeriodicSweeper&) = delete;
  PeriodicSweeper& operator=(const PeriodicSweeper&) = delete;

  // Starts the background thread; idempotent.
  void Start();
  // Stops and joins; idempotent, called by the destructor.
  void Stop();

  // Runs one sweep synchronously (also usable without Start()).
  size_t SweepNow() { return monitor_->SweepExpired(); }

  uint64_t sweeps_run() const {
    return sweeps_.load(std::memory_order_relaxed);
  }
  uint64_t total_invalidated() const {
    return invalidated_.load(std::memory_order_relaxed);
  }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  BackEndMonitor* monitor_;
  MicroTime interval_micros_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> sweeps_{0};
  std::atomic<uint64_t> invalidated_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // Guarded by mu_.
  std::thread thread_;
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_SWEEPER_H_
