// Bookstore: the paper's e-commerce scenario over real TCP sockets.
//
// An origin site (catalog + personalization, Section 2's dynamic-layout
// example) runs behind a DPC reverse proxy, each on its own loopback TCP
// server. A registered user (Bob) and an anonymous visitor (Alice) request
// the same URL and receive different pages — the case that breaks
// URL-keyed page caches and that the DPC handles correctly.
//
// Run: ./bookstore

#include <cstdio>
#include <memory>

#include "appserver/origin_server.h"
#include "appserver/personalization.h"
#include "appserver/script_registry.h"
#include "appserver/session.h"
#include "bem/monitor.h"
#include "dpc/proxy.h"
#include "net/tcp.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace dynaprox;

namespace {

void SeedCatalog(storage::ContentRepository& repository) {
  storage::Table* users = repository.GetOrCreateTable(appserver::kUsersTable);
  users->Upsert("bob",
                {{"name", storage::Value(std::string("Bob"))},
                 {"category", storage::Value(std::string("fiction"))},
                 {"layout", storage::Value(std::string(
                                "greeting,recommendations,catalog"))}});
  storage::Table* products =
      repository.GetOrCreateTable(appserver::kProductsTable);
  // The recommender filters by category on every cold fragment; index it.
  (void)products->CreateIndex("category");
  products->Upsert("b1",
                   {{"title", storage::Value(std::string("Dune"))},
                    {"category", storage::Value(std::string("fiction"))},
                    {"price", storage::Value(9.99)}});
  products->Upsert("b2",
                   {{"title", storage::Value(std::string("Hyperion"))},
                    {"category", storage::Value(std::string("fiction"))},
                    {"price", storage::Value(7.50)}});
  products->Upsert("b3",
                   {{"title", storage::Value(std::string("SICP"))},
                    {"category", storage::Value(std::string("tech"))},
                    {"price", storage::Value(39.99)}});
}

// The /store script. Layout is *dynamic*: a registered user's profile
// decides which fragments appear and in which order; anonymous visitors
// get the default. Fragments:
//   greeting         - per-user (cacheable, keyed by user)
//   recommendations  - per-category (cacheable, depends on products table)
//   catalog          - shared by everyone (cacheable)
Status StoreScript(appserver::SessionManager& sessions,
                   appserver::ScriptContext& ctx) {
  ctx.Emit("<html><body>");
  auto user = sessions.ResolveUser(ctx.request());

  appserver::UserProfile profile;
  if (user.has_value()) {
    auto loaded = appserver::LoadProfile(*ctx.repository(), *user);
    if (!loaded.ok()) return loaded.status();
    profile = *loaded;  // One profile object shared by all fragments
                        // below: the Section 3.2.2 interdependence that
                        // ESI-style factoring would have to recompute.
  } else {
    profile.layout = {"catalog"};
  }

  for (const std::string& section : profile.layout) {
    Status status;
    if (section == "greeting") {
      status = ctx.CacheableBlock(
          bem::FragmentId("greeting", {{"user", profile.user_id}}),
          [&](appserver::ScriptContext& block) {
            block.DeclareDependency(appserver::kUsersTable,
                                    profile.user_id);
            block.Emit("<h2>Hello, " + profile.display_name + "</h2>");
            return Status::Ok();
          });
    } else if (section == "recommendations") {
      status = ctx.CacheableBlock(
          bem::FragmentId("reco",
                          {{"cat", profile.preferred_category}}),
          [&](appserver::ScriptContext& block) {
            auto picks = appserver::RecommendProducts(*block.repository(),
                                                      profile, 5);
            if (!picks.ok()) return picks.status();
            block.DeclareDependency(appserver::kProductsTable);
            block.Emit("<h3>Recommended for you</h3><ul>");
            for (const appserver::ProductPick& pick : *picks) {
              char line[160];
              std::snprintf(line, sizeof(line), "<li>%s ($%.2f)</li>",
                            pick.title.c_str(), pick.price);
              block.Emit(line);
            }
            block.Emit("</ul>");
            return Status::Ok();
          });
    } else if (section == "catalog") {
      status = ctx.CacheableBlock(
          bem::FragmentId("catalog"),
          [](appserver::ScriptContext& block) {
            block.DeclareDependency(appserver::kProductsTable);
            block.Emit("<h3>Full catalog</h3><ol>");
            auto table =
                block.repository()->GetTable(appserver::kProductsTable);
            if (!table.ok()) return table.status();
            for (const auto& [key, row] : (*table)->Scan(nullptr)) {
              block.Emit("<li>" + storage::GetString(row, "title") +
                         "</li>");
            }
            block.Emit("</ol>");
            return Status::Ok();
          });
    }
    if (!status.ok()) return status;
  }
  ctx.Emit("</body></html>");
  return Status::Ok();
}

}  // namespace

int main() {
  storage::ContentRepository repository;
  SeedCatalog(repository);
  appserver::SessionManager sessions;

  appserver::ScriptRegistry registry;
  registry.RegisterOrReplace("/store",
                             [&](appserver::ScriptContext& ctx) {
                               return StoreScript(sessions, ctx);
                             });

  bem::BemOptions bem_options;
  bem_options.capacity = 256;
  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);
  appserver::OriginServer origin(&registry, &repository, monitor.get());

  // Origin on one TCP server...
  net::TcpServer origin_server(origin.AsHandler());
  if (!origin_server.Start().ok()) {
    std::printf("failed to start origin server\n");
    return 1;
  }
  // ...DPC reverse proxy on another, upstreaming over TCP.
  net::TcpClientTransport to_origin("127.0.0.1", origin_server.port());
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 256;
  dpc::DpcProxy proxy(&to_origin, proxy_options);
  net::TcpServer proxy_server(proxy.AsHandler());
  if (!proxy_server.Start().ok()) {
    std::printf("failed to start proxy server\n");
    return 1;
  }
  std::printf("origin on 127.0.0.1:%u, DPC reverse proxy on 127.0.0.1:%u\n",
              origin_server.port(), proxy_server.port());

  net::TcpClientTransport client("127.0.0.1", proxy_server.port());
  std::string bob_sid = sessions.Login("bob");

  auto fetch = [&](const std::string& label, const std::string& cookie) {
    http::Request request;
    request.target = "/store";
    if (!cookie.empty()) request.headers.Add("Cookie", "sid=" + cookie);
    auto response = client.RoundTrip(request);
    if (!response.ok()) {
      std::printf("%s: transport error %s\n", label.c_str(),
                  response.status().ToString().c_str());
      return std::string();
    }
    std::printf("%-18s -> %d, %4zuB, greeting=%s reco=%s\n", label.c_str(),
                response->status_code, response->body.size(),
                response->body.find("Hello, Bob") != std::string::npos
                    ? "yes"
                    : "no",
                response->body.find("Recommended") != std::string::npos
                    ? "yes"
                    : "no");
    return response->body;
  };

  std::printf("\n-- same URL, different visitors --\n");
  std::string bob_page = fetch("Bob (registered)", bob_sid);
  std::string alice_page = fetch("Alice (anonymous)", "");
  std::printf("pages differ: %s (a URL-keyed page cache would have served "
              "Bob's page to Alice)\n",
              bob_page != alice_page ? "yes" : "NO");

  std::printf("\n-- warm-cache requests --\n");
  fetch("Bob again", bob_sid);
  fetch("Alice again", "");
  std::printf("fragment directory: hits=%llu misses=%llu\n",
              static_cast<unsigned long long>(monitor->stats().hits),
              static_cast<unsigned long long>(monitor->stats().misses));

  std::printf("\n-- catalog update invalidates product fragments --\n");
  (*repository.GetTable(appserver::kProductsTable))
      ->Upsert("b4", {{"title", storage::Value(std::string(
                                    "Snow Crash"))},
                      {"category", storage::Value(std::string("fiction"))},
                      {"price", storage::Value(12.00)}});
  std::string updated = fetch("Bob after update", bob_sid);
  std::printf("new title visible: %s\n",
              updated.find("Snow Crash") != std::string::npos ? "yes"
                                                              : "NO");

  proxy_server.Stop();
  origin_server.Stop();
  return 0;
}
