#include "common/flags.h"

#include <cerrno>
#include <cstdlib>

#include "common/strings.h"

namespace dynaprox {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  bool flags_done = false;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (flags_done || !StartsWith(arg, "--")) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string_view body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      std::string_view name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag: " +
                                       std::string(arg));
      }
      flags.values_[std::string(name)] = std::string(body.substr(eq + 1));
      continue;
    }
    if (body.empty()) {
      return Status::InvalidArgument("malformed flag: " + std::string(arg));
    }
    // "--name value" when the next token isn't a flag; else boolean.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[std::string(body)] = argv[++i];
    } else {
      flags.values_[std::string(body)] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> Flags::GetInt(const std::string& name,
                              int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string_view value = it->second;
  bool negative = !value.empty() && value[0] == '-';
  if (negative) value.remove_prefix(1);
  Result<uint64_t> parsed = ParseUint64(value);
  if (!parsed.ok() || *parsed > static_cast<uint64_t>(INT64_MAX)) {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  int64_t magnitude = static_cast<int64_t>(*parsed);
  return negative ? -magnitude : magnitude;
}

Result<double> Flags::GetDouble(const std::string& name,
                                double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got '" +
                                   it->second + "'");
  }
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::string value = AsciiToLower(it->second);
  return value != "false" && value != "0" && value != "no";
}

std::vector<std::string> Flags::FlagNames() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

}  // namespace dynaprox
