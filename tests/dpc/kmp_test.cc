#include "dpc/kmp.h"

#include <gtest/gtest.h>

namespace dynaprox::dpc {
namespace {

TEST(KmpTest, FindsFirstOccurrence) {
  KmpMatcher matcher("abc");
  EXPECT_EQ(matcher.FindFirst("xxabcxx"), 2u);
  EXPECT_EQ(matcher.FindFirst("abc"), 0u);
  EXPECT_EQ(matcher.FindFirst("xyz"), KmpMatcher::npos);
}

TEST(KmpTest, FindFirstRespectsFrom) {
  KmpMatcher matcher("ab");
  EXPECT_EQ(matcher.FindFirst("ababab", 1), 2u);
  EXPECT_EQ(matcher.FindFirst("ababab", 5), KmpMatcher::npos);
}

TEST(KmpTest, SelfOverlappingPattern) {
  KmpMatcher matcher("aaa");
  std::vector<size_t> all = matcher.FindAll("aaaaa");
  ASSERT_EQ(all.size(), 3u);  // Positions 0, 1, 2 (overlapping).
  EXPECT_EQ(all[0], 0u);
  EXPECT_EQ(all[2], 2u);
  EXPECT_EQ(matcher.CountOccurrences("aaaaa"), 3u);
}

TEST(KmpTest, PeriodicPattern) {
  KmpMatcher matcher("abab");
  std::vector<size_t> all = matcher.FindAll("abababab");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[1], 2u);
}

TEST(KmpTest, EmptyPatternMatchesEverywhereByConvention) {
  KmpMatcher matcher("");
  EXPECT_EQ(matcher.FindFirst("abc"), 0u);
  EXPECT_EQ(matcher.FindFirst("abc", 3), 3u);
  EXPECT_EQ(matcher.FindFirst("abc", 4), KmpMatcher::npos);
  EXPECT_EQ(matcher.CountOccurrences("abc"), 0u);
}

TEST(KmpTest, PatternLongerThanText) {
  KmpMatcher matcher("abcdef");
  EXPECT_EQ(matcher.FindFirst("abc"), KmpMatcher::npos);
}

TEST(KmpTest, BinaryContent) {
  std::string pattern("\x00\x02\x00", 3);
  KmpMatcher matcher(pattern);
  std::string text = std::string("xx") + pattern + "yy";
  EXPECT_EQ(matcher.FindFirst(text), 2u);
}

TEST(KmpTest, AgreesWithNaiveOnRandomishInputs) {
  // Deterministic pseudo-random text over a tiny alphabet to force repeats.
  std::string text;
  uint64_t state = 12345;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    text += static_cast<char>('a' + (state >> 60) % 3);
  }
  for (const std::string pattern :
       {"ab", "aba", "abcab", "aaab", "cba", "aaaa"}) {
    KmpMatcher matcher(pattern);
    size_t from = 0;
    for (int step = 0; step < 5; ++step) {
      size_t kmp_pos = matcher.FindFirst(text, from);
      size_t naive_pos = NaiveFindFirst(text, pattern, from);
      ASSERT_EQ(kmp_pos, naive_pos) << pattern << " from " << from;
      if (kmp_pos == KmpMatcher::npos) break;
      from = kmp_pos + 1;
    }
  }
}

TEST(NaiveFindFirstTest, Basics) {
  EXPECT_EQ(NaiveFindFirst("hello", "ll"), 2u);
  EXPECT_EQ(NaiveFindFirst("hello", "z"), KmpMatcher::npos);
  EXPECT_EQ(NaiveFindFirst("hi", "long-pattern"), KmpMatcher::npos);
}

}  // namespace
}  // namespace dynaprox::dpc
