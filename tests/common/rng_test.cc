#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, ZeroSeedDoesNotDegenerate) {
  Rng rng(0);
  EXPECT_NE(rng.Next(), 0u);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(9);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) {
    ++seen[rng.NextBounded(8)];
  }
  for (int count : seen) {
    // Uniform expectation 500; allow wide slack.
    EXPECT_GT(count, 350);
    EXPECT_LT(count, 650);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.2)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.2, 0.02);
  EXPECT_FALSE(Rng(1).NextBool(0.0));
  EXPECT_TRUE(Rng(1).NextBool(1.0));
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(10, 1.0);
  double total = 0;
  double previous = 1.0;
  for (size_t i = 0; i < zipf.n(); ++i) {
    double p = zipf.Pmf(i);
    EXPECT_LE(p, previous + 1e-12);
    previous = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankOneTwiceAsLikelyAsRankTwoAtAlphaOne) {
  ZipfSampler zipf(100, 1.0);
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 2.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesTrackPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (size_t i = 0; i < 10; ++i) {
    double expected = zipf.Pmf(i) * kSamples;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 10);
  }
}

TEST(ZipfSamplerTest, AlphaZeroIsUniform) {
  ZipfSampler zipf(5, 0.0);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.2, 1e-9);
  }
}

}  // namespace
}  // namespace dynaprox
