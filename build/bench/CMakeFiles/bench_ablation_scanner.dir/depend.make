# Empty dependencies file for bench_ablation_scanner.
# This may be replaced when dependencies are built.
