// libFuzzer entry point for the streaming scanner's chunk-boundary state
// machine: any template, sliced at any byte boundaries, must agree with
// the buffered parse — same accept/reject, same segment stream (adjacent
// literals folded). The first bytes of the input seed the chunk sizes, so
// coverage-guided fuzzing explores boundary placements as well as
// template bytes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_chain.h"
#include "dpc/tag_scanner.h"

namespace {

using dynaprox::dpc::ParseTemplate;
using dynaprox::dpc::ScanStrategy;
using dynaprox::dpc::StreamingScanner;
using dynaprox::dpc::StreamSegment;
using dynaprox::dpc::TemplateSegment;
using Kind = TemplateSegment::Kind;

struct Norm {
  Kind kind;
  dynaprox::bem::DpcKey key;
  std::string text;

  bool operator==(const Norm& other) const {
    return kind == other.kind && key == other.key && text == other.text;
  }
};

void Fold(std::vector<Norm>& out, Kind kind, dynaprox::bem::DpcKey key,
          std::string text) {
  if (kind == Kind::kLiteral) {
    if (text.empty()) return;
    if (!out.empty() && out.back().kind == Kind::kLiteral) {
      out.back().text += text;
      return;
    }
  }
  out.push_back({kind, key, std::move(text)});
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // First byte (when present) seeds the chunk-size sequence; the rest is
  // the template.
  uint32_t seed = size > 0 ? data[0] : 0;
  std::string_view wire(reinterpret_cast<const char*>(data) + (size > 0),
                        size - (size > 0));

  auto buffered = ParseTemplate(wire, ScanStrategy::kMemchr);

  StreamingScanner scanner(ScanStrategy::kMemchr);
  std::vector<StreamSegment> streamed;
  dynaprox::Status status = dynaprox::Status::Ok();
  uint32_t state = seed * 2654435761u + 1;
  for (size_t at = 0; at < wire.size() && status.ok();) {
    state = state * 1664525u + 1013904223u;  // LCG: deterministic sizes.
    size_t take = 1 + state % 7;
    if (take > wire.size() - at) take = wire.size() - at;
    status = scanner.Feed(
        dynaprox::common::MakeBuffer(std::string(wire.substr(at, take))),
        streamed);
    at += take;
  }
  if (status.ok()) status = scanner.Finish(streamed);

  // Accept/reject must agree regardless of chunk placement.
  if (buffered.ok() != status.ok()) __builtin_trap();
  if (!buffered.ok()) return 0;

  std::vector<Norm> expect;
  for (const TemplateSegment& segment : *buffered) {
    Fold(expect, segment.kind, segment.key, segment.Text());
  }
  std::vector<Norm> got;
  for (const StreamSegment& segment : streamed) {
    Fold(got, segment.kind, segment.key, segment.Text());
  }
  if (!(expect == got)) __builtin_trap();
  return 0;
}
