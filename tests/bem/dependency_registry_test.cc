#include "bem/dependency_registry.h"

#include <gtest/gtest.h>

namespace dynaprox::bem {
namespace {

storage::UpdateEvent Event(const std::string& table, const std::string& key) {
  return {table, key, storage::UpdateKind::kUpdate};
}

TEST(DependencyRegistryTest, RowLevelDependency) {
  DependencyRegistry registry;
  registry.Add("frag1", "products", "p1");
  EXPECT_EQ(registry.Affected(Event("products", "p1")),
            std::vector<std::string>{"frag1"});
  EXPECT_TRUE(registry.Affected(Event("products", "p2")).empty());
  EXPECT_TRUE(registry.Affected(Event("users", "p1")).empty());
}

TEST(DependencyRegistryTest, TableLevelDependencyMatchesAnyRow) {
  DependencyRegistry registry;
  registry.Add("frag1", "products");  // Whole table.
  EXPECT_EQ(registry.Affected(Event("products", "anything")).size(), 1u);
  EXPECT_EQ(registry.Affected(Event("products", "")).size(), 1u);
}

TEST(DependencyRegistryTest, MultipleFragmentsOneSource) {
  DependencyRegistry registry;
  registry.Add("b-frag", "quotes", "IBM");
  registry.Add("a-frag", "quotes", "IBM");
  std::vector<std::string> affected = registry.Affected(Event("quotes", "IBM"));
  ASSERT_EQ(affected.size(), 2u);
  // Deterministic sorted order.
  EXPECT_EQ(affected[0], "a-frag");
  EXPECT_EQ(affected[1], "b-frag");
}

TEST(DependencyRegistryTest, RowAndTableDepsCombineWithoutDuplicates) {
  DependencyRegistry registry;
  registry.Add("frag", "products", "p1");
  registry.Add("frag", "products");  // Same fragment, table-level too.
  EXPECT_EQ(registry.Affected(Event("products", "p1")).size(), 1u);
}

TEST(DependencyRegistryTest, RemoveFragmentDropsAllItsDeps) {
  DependencyRegistry registry;
  registry.Add("frag", "products", "p1");
  registry.Add("frag", "users", "u1");
  registry.Add("other", "products", "p1");
  EXPECT_EQ(registry.fragment_count(), 2u);
  registry.RemoveFragment("frag");
  EXPECT_EQ(registry.fragment_count(), 1u);
  EXPECT_EQ(registry.Affected(Event("products", "p1")),
            std::vector<std::string>{"other"});
  EXPECT_TRUE(registry.Affected(Event("users", "u1")).empty());
}

TEST(DependencyRegistryTest, RemoveUnknownFragmentIsIgnored) {
  DependencyRegistry registry;
  registry.RemoveFragment("ghost");
  EXPECT_EQ(registry.fragment_count(), 0u);
}

TEST(DependencyRegistryTest, DuplicateAddIsIdempotent) {
  DependencyRegistry registry;
  registry.Add("frag", "t", "k");
  registry.Add("frag", "t", "k");
  EXPECT_EQ(registry.Affected(Event("t", "k")).size(), 1u);
  registry.RemoveFragment("frag");
  EXPECT_TRUE(registry.Affected(Event("t", "k")).empty());
}

}  // namespace
}  // namespace dynaprox::bem
