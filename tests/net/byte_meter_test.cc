#include "net/byte_meter.h"

#include <gtest/gtest.h>

namespace dynaprox::net {
namespace {

TEST(ProtocolModelTest, PayloadOnlyAddsNothing) {
  ProtocolModel model = ProtocolModel::PayloadOnly();
  EXPECT_EQ(model.WireBytes(0), 0u);
  EXPECT_EQ(model.WireBytes(5000), 5000u);
}

TEST(ProtocolModelTest, DefaultAddsPerPacketAndPerMessage) {
  ProtocolModel model;  // 40B headers, 1460 MSS, 120B per message.
  // Empty payload still costs one packet.
  EXPECT_EQ(model.WireBytes(0), 40u + 120u);
  // One full segment.
  EXPECT_EQ(model.WireBytes(1460), 1460u + 40u + 120u);
  // One byte over -> two packets.
  EXPECT_EQ(model.WireBytes(1461), 1461u + 80u + 120u);
  // 4.5KB -> four packets.
  EXPECT_EQ(model.WireBytes(4500), 4500u + 4 * 40u + 120u);
}

TEST(ProtocolModelTest, OverheadFractionShrinksWithSize) {
  ProtocolModel model;
  double small = static_cast<double>(model.WireBytes(100)) / 100;
  double large = static_cast<double>(model.WireBytes(100000)) / 100000;
  EXPECT_GT(small, large);
}

TEST(ByteMeterTest, AccumulatesMessages) {
  ByteMeter meter{ProtocolModel::PayloadOnly()};
  meter.RecordMessage(100);
  meter.RecordMessage(200);
  EXPECT_EQ(meter.messages(), 2u);
  EXPECT_EQ(meter.payload_bytes(), 300u);
  EXPECT_EQ(meter.wire_bytes(), 300u);
}

TEST(ByteMeterTest, WireBytesIncludeOverhead) {
  ByteMeter meter{ProtocolModel{40, 1460, 120}};
  meter.RecordMessage(1000);
  EXPECT_EQ(meter.payload_bytes(), 1000u);
  EXPECT_EQ(meter.wire_bytes(), 1000u + 40u + 120u);
}

TEST(ByteMeterTest, ResetClearsCounters) {
  ByteMeter meter;
  meter.RecordMessage(10);
  meter.Reset();
  EXPECT_EQ(meter.messages(), 0u);
  EXPECT_EQ(meter.payload_bytes(), 0u);
  EXPECT_EQ(meter.wire_bytes(), 0u);
}

}  // namespace
}  // namespace dynaprox::net
