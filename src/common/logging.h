#ifndef DYNAPROX_COMMON_LOGGING_H_
#define DYNAPROX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dynaprox {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Minimal leveled logger writing to stderr. Global level defaults to
// kWarning so library users and benches are quiet unless they opt in.
class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  // Emits one line: "[LEVEL module] message\n". Filtered by level().
  static void Log(LogLevel level, std::string_view module,
                  std::string_view message);
};

namespace internal {

// Stream-style log line builder used by the DYNAPROX_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view module)
      : level_(level), module_(module) {}
  ~LogMessage() { Logger::Log(level_, module_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string module_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dynaprox

// DYNAPROX_LOG(kInfo, "bem") << "inserted key " << key;
#define DYNAPROX_LOG(severity, module)                                     \
  if (::dynaprox::LogLevel::severity < ::dynaprox::Logger::level()) {      \
  } else                                                                   \
    ::dynaprox::internal::LogMessage(::dynaprox::LogLevel::severity,       \
                                     (module))

#endif  // DYNAPROX_COMMON_LOGGING_H_
