// Page-assembly cost with the zero-copy buffer chain (google-benchmark).
// A Zipf-popular population of large fragments is assembled into pages
// two ways: the chain path (literals and cached fragments referenced,
// only SET bodies materialized) and a flattening path that models the old
// contiguous-string assembler (every byte of every page copied). The
// AssembledPage byte accounting gives the exact copy reduction; the
// tentpole claim is >= 2x fewer bytes copied with no latency regression.

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "bem/tag_codec.h"
#include "common/buffer_chain.h"
#include "common/rng.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"

namespace {

using dynaprox::Rng;
using dynaprox::ZipfSampler;
using dynaprox::bem::TagCodec;
using dynaprox::common::Buffer;
using dynaprox::common::MakeBuffer;
using dynaprox::dpc::AssembledPage;
using dynaprox::dpc::AssemblePage;
using dynaprox::dpc::FragmentStore;

constexpr size_t kFragments = 64;       // Popularity ranks.
constexpr size_t kPages = 256;          // Distinct request targets.
constexpr int kFragmentsPerPage = 8;
constexpr double kZipfAlpha = 1.0;      // Classic web-trace fit.

// Large fragments: rank 0 is 32KB, sizes taper with rank so the hot
// fragments dominate page bytes (the case zero-copy splicing pays for).
size_t FragmentSize(size_t rank) { return 32768 / (1 + rank / 8); }

struct Workload {
  FragmentStore store{kFragments};
  std::vector<Buffer> templates;  // GET-heavy steady-state wires.

  Workload() {
    Rng rng(42);
    ZipfSampler sampler(kFragments, kZipfAlpha);
    for (size_t rank = 0; rank < kFragments; ++rank) {
      std::string body(FragmentSize(rank),
                       static_cast<char>('a' + rank % 26));
      if (!store.Set(static_cast<dynaprox::bem::DpcKey>(rank),
                     std::move(body))
               .ok()) {
        abort();
      }
    }
    for (size_t page = 0; page < kPages; ++page) {
      std::string wire = "<html>";
      for (int slot = 0; slot < kFragmentsPerPage; ++slot) {
        TagCodec::AppendLiteral("<div>", wire);
        TagCodec::AppendGet(
            static_cast<dynaprox::bem::DpcKey>(sampler.Sample(rng)), wire);
        TagCodec::AppendLiteral("</div>", wire);
      }
      wire += "</html>";
      templates.push_back(MakeBuffer(std::move(wire)));
    }
  }
};

Workload& SharedWorkload() {
  static Workload workload;
  return workload;
}

// Zero-copy path: the assembled page is a chain of references into the
// template wire and the fragment store. bytes_copied stays ~0.
void BM_AssembleChained(benchmark::State& state) {
  Workload& workload = SharedWorkload();
  Rng rng(7);
  ZipfSampler page_popularity(kPages, kZipfAlpha);
  uint64_t copied = 0, referenced = 0, pages = 0;
  for (auto _ : state) {
    const Buffer& wire =
        workload.templates[page_popularity.Sample(rng)];
    auto page = AssemblePage(wire, workload.store);
    if (!page.ok()) abort();
    benchmark::DoNotOptimize(page->body);
    copied += page->bytes_copied;
    referenced += page->bytes_referenced;
    ++pages;
  }
  state.counters["bytes_copied/page"] =
      static_cast<double>(copied) / static_cast<double>(pages);
  state.counters["bytes_referenced/page"] =
      static_cast<double>(referenced) / static_cast<double>(pages);
  state.SetBytesProcessed(
      static_cast<int64_t>(copied + referenced));
}

// Old contiguous path, modeled exactly: assemble, then materialize the
// page as one string. Every body byte is copied once per request.
void BM_AssembleFlattened(benchmark::State& state) {
  Workload& workload = SharedWorkload();
  Rng rng(7);
  ZipfSampler page_popularity(kPages, kZipfAlpha);
  uint64_t copied = 0, pages = 0;
  for (auto _ : state) {
    const Buffer& wire =
        workload.templates[page_popularity.Sample(rng)];
    auto page = AssemblePage(wire, workload.store);
    if (!page.ok()) abort();
    std::string flat = page->Text();
    benchmark::DoNotOptimize(flat);
    copied += page->bytes_copied + flat.size();
    ++pages;
  }
  state.counters["bytes_copied/page"] =
      static_cast<double>(copied) / static_cast<double>(pages);
  state.SetBytesProcessed(static_cast<int64_t>(copied));
}

// Cold pages: every fragment arrives inline in a SET block, the one case
// that must materialize (the copy is shared with the store). This bounds
// the accounting from the other side.
void BM_AssembleColdSets(benchmark::State& state) {
  FragmentStore store(kFragments);
  std::string wire;
  for (size_t rank = 0; rank < 8; ++rank) {
    TagCodec::AppendSet(static_cast<dynaprox::bem::DpcKey>(rank),
                        std::string(FragmentSize(rank), 'c'), wire);
  }
  Buffer shared_wire = MakeBuffer(std::move(wire));
  uint64_t copied = 0, referenced = 0, pages = 0;
  for (auto _ : state) {
    auto page = AssemblePage(shared_wire, store);
    if (!page.ok()) abort();
    benchmark::DoNotOptimize(page->body);
    copied += page->bytes_copied;
    referenced += page->bytes_referenced;
    ++pages;
  }
  state.counters["bytes_copied/page"] =
      static_cast<double>(copied) / static_cast<double>(pages);
  state.SetBytesProcessed(static_cast<int64_t>(copied + referenced));
}

// Streaming path: the same Zipf page mix fed 4KB at a time through
// StreamingAssembler, the way a template arrives off a socket. The copy
// accounting must match the buffered chain path; holdback_peak_bytes is
// the per-connection buffering bound (open SET body + partial tag),
// which stays chunk-sized no matter how large the page is.
void BM_AssembleStreaming(benchmark::State& state) {
  Workload& workload = SharedWorkload();
  Rng rng(7);
  ZipfSampler page_popularity(kPages, kZipfAlpha);
  constexpr size_t kChunkBytes = 4096;
  uint64_t copied = 0, referenced = 0, pages = 0, holdback_peak = 0;
  for (auto _ : state) {
    const Buffer& wire =
        workload.templates[page_popularity.Sample(rng)];
    dynaprox::dpc::StreamingAssembler assembler(workload.store);
    dynaprox::common::BufferChain out;
    std::string_view bytes(*wire);
    for (size_t at = 0; at < bytes.size(); at += kChunkBytes) {
      if (!assembler.Feed(wire, bytes.substr(at, kChunkBytes), out).ok()) {
        abort();
      }
      holdback_peak =
          std::max<uint64_t>(holdback_peak, assembler.buffered_bytes());
    }
    if (!assembler.Finish(out).ok()) abort();
    benchmark::DoNotOptimize(out);
    copied += assembler.progress().bytes_copied;
    referenced += assembler.progress().bytes_referenced;
    ++pages;
  }
  state.counters["bytes_copied/page"] =
      static_cast<double>(copied) / static_cast<double>(pages);
  state.counters["bytes_referenced/page"] =
      static_cast<double>(referenced) / static_cast<double>(pages);
  state.counters["holdback_peak_bytes"] =
      static_cast<double>(holdback_peak);
  state.SetBytesProcessed(static_cast<int64_t>(copied + referenced));
}

BENCHMARK(BM_AssembleChained);
BENCHMARK(BM_AssembleFlattened);
BENCHMARK(BM_AssembleColdSets);
BENCHMARK(BM_AssembleStreaming);

}  // namespace

BENCHMARK_MAIN();
