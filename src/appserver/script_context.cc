#include "appserver/script_context.h"

#include "bem/tag_codec.h"
#include "common/logging.h"

namespace dynaprox::appserver {

ScriptContext::ScriptContext(const http::Request& request,
                             storage::ContentRepository* repository,
                             bem::BackEndMonitor* monitor,
                             const ScriptMetrics* metrics)
    : request_(request),
      repository_(repository),
      monitor_(monitor),
      metrics_(metrics) {}

void ScriptContext::ObserveStage(metrics::LatencyHistogram* histogram,
                                 MicroTime micros) const {
  if (histogram == nullptr) return;
  histogram->Observe(static_cast<double>(micros) / kMicrosPerSecond);
}

std::string* ScriptContext::sink() {
  return in_block_ ? &block_buffer_ : &body_;
}

void ScriptContext::Emit(std::string_view text) {
  if (monitor_ != nullptr && !in_block_) {
    // Top-level text goes into the template escaped, so fragment content
    // containing the tag marker can never confuse the DPC scanner.
    bem::TagCodec::AppendLiteral(text, body_);
  } else {
    sink()->append(text);
  }
}

Status ScriptContext::CacheableBlock(const bem::FragmentId& id,
                                     MicroTime ttl_micros,
                                     const BlockFn& generate) {
  if (in_block_) {
    return Status::FailedPrecondition(
        "nested cacheable blocks are not supported (fragment " +
        id.Canonical() + ")");
  }

  const bool instrumented = timed();
  const Clock* clock = instrumented ? metrics_->clock : nullptr;

  if (monitor_ == nullptr) {
    // No-cache baseline: the block runs inline on every request. Still
    // timed so B_C and B_NC generator costs compare from one histogram.
    ++stats_.uncacheable;
    MicroTime start = instrumented ? clock->NowMicros() : 0;
    Status generated = generate(*this);
    if (instrumented) {
      ObserveStage(metrics_->block_execution, clock->NowMicros() - start);
    }
    return generated;
  }

  MicroTime lookup_start = instrumented ? clock->NowMicros() : 0;
  bem::LookupResult lookup = monitor_->LookupFragment(id);
  if (instrumented) {
    ObserveStage(metrics_->directory_lookup,
                 clock->NowMicros() - lookup_start);
  }
  if (lookup.hit()) {
    ++stats_.hits;
    used_tagging_ = true;
    MicroTime emit_start = instrumented ? clock->NowMicros() : 0;
    bem::TagCodec::AppendGet(lookup.key, body_);
    if (instrumented) {
      ObserveStage(metrics_->tag_emission, clock->NowMicros() - emit_start);
    }
    return Status::Ok();
  }

  // Miss path: run the code block first; only a successful generation is
  // registered in the directory.
  in_block_ = true;
  block_buffer_.clear();
  pending_deps_.clear();
  MicroTime generate_start = instrumented ? clock->NowMicros() : 0;
  Status generated = generate(*this);
  if (instrumented) {
    ObserveStage(metrics_->block_execution,
                 clock->NowMicros() - generate_start);
  }
  in_block_ = false;
  if (!generated.ok()) {
    block_buffer_.clear();
    pending_deps_.clear();
    return generated;
  }

  ++stats_.misses;
  Result<bem::DpcKey> key = monitor_->InsertFragment(id, ttl_micros);
  if (!key.ok()) {
    // Directory full and unevictable: degrade to uncached emission.
    DYNAPROX_LOG(kWarning, "appserver")
        << "fragment " << id.Canonical()
        << " not cached: " << key.status().ToString();
    ++stats_.uncacheable;
    bem::TagCodec::AppendLiteral(block_buffer_, body_);
    block_buffer_.clear();
    pending_deps_.clear();
    return Status::Ok();
  }
  for (const auto& [table, row_key] : pending_deps_) {
    monitor_->AddDependency(id, table, row_key);
  }
  used_tagging_ = true;
  MicroTime emit_start = instrumented ? clock->NowMicros() : 0;
  bem::TagCodec::AppendSet(*key, block_buffer_, body_);
  if (instrumented) {
    ObserveStage(metrics_->tag_emission, clock->NowMicros() - emit_start);
  }
  block_buffer_.clear();
  pending_deps_.clear();
  return Status::Ok();
}

void ScriptContext::DeclareDependency(const std::string& table,
                                      const std::string& row_key) {
  if (!in_block_ || monitor_ == nullptr) return;
  pending_deps_.emplace_back(table, row_key);
}

void ScriptContext::SetStatus(int code) { status_code_ = code; }

void ScriptContext::SetHeader(std::string name, std::string value) {
  headers_.Set(std::move(name), std::move(value));
}

http::Response ScriptContext::TakeResponse(
    const std::string& template_header_name) {
  http::Response response;
  response.status_code = status_code_;
  response.reason = std::string(http::CanonicalReason(status_code_));
  response.headers = std::move(headers_);
  if (!response.headers.Has("Content-Type")) {
    response.headers.Add("Content-Type", "text/html");
  }
  if (used_tagging_) {
    response.headers.Set(template_header_name, "1");
  }
  response.body = std::move(body_);
  return response;
}

}  // namespace dynaprox::appserver
