#include "http/cache_control.h"

#include "common/strings.h"

namespace dynaprox::http {
namespace {

std::optional<int64_t> ParseAge(std::string_view value) {
  Result<uint64_t> parsed = ParseUint64(value);
  if (!parsed.ok() || *parsed > INT64_MAX) return std::nullopt;
  return static_cast<int64_t>(*parsed);
}

}  // namespace

CacheControl ParseCacheControl(std::string_view value) {
  CacheControl control;
  for (std::string_view raw : StrSplit(value, ',')) {
    std::string directive = AsciiToLower(StripWhitespace(raw));
    if (directive == "no-store") {
      control.no_store = true;
    } else if (directive == "no-cache") {
      control.no_cache = true;
    } else if (directive == "private") {
      control.is_private = true;
    } else if (directive == "public") {
      control.is_public = true;
    } else if (StartsWith(directive, "max-age=")) {
      control.max_age_seconds = ParseAge(
          std::string_view(directive).substr(sizeof("max-age=") - 1));
    } else if (StartsWith(directive, "s-maxage=")) {
      control.s_maxage_seconds = ParseAge(
          std::string_view(directive).substr(sizeof("s-maxage=") - 1));
    }
  }
  return control;
}

CacheControl ResponseCacheControl(const Response& response) {
  auto header = response.headers.Get("Cache-Control");
  if (!header.has_value()) return CacheControl{};
  return ParseCacheControl(*header);
}

}  // namespace dynaprox::http
