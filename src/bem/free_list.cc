#include "bem/free_list.h"

namespace dynaprox::bem {

FreeList::FreeList(DpcKey capacity) : capacity_(capacity) {
  for (DpcKey key = 0; key < capacity; ++key) list_.push_back(key);
}

Result<DpcKey> FreeList::Allocate() {
  std::lock_guard<common::ContendedMutex> lock(mu_);
  if (list_.empty()) {
    return Status::CapacityExceeded("free list exhausted");
  }
  DpcKey key = list_.front();
  list_.pop_front();
  return key;
}

Status FreeList::Release(DpcKey key) {
  if (key >= capacity_) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  std::lock_guard<common::ContendedMutex> lock(mu_);
  if (list_.size() >= capacity_) {
    return Status::FailedPrecondition("free list already full");
  }
  list_.push_back(key);
  return Status::Ok();
}

Status FreeList::ReleaseFront(DpcKey key) {
  if (key >= capacity_) {
    return Status::InvalidArgument("dpcKey out of range: " +
                                   std::to_string(key));
  }
  std::lock_guard<common::ContendedMutex> lock(mu_);
  if (list_.size() >= capacity_) {
    return Status::FailedPrecondition("free list already full");
  }
  list_.push_front(key);
  return Status::Ok();
}

}  // namespace dynaprox::bem
