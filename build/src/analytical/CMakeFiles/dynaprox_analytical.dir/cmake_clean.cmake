file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_analytical.dir/model.cc.o"
  "CMakeFiles/dynaprox_analytical.dir/model.cc.o.d"
  "libdynaprox_analytical.a"
  "libdynaprox_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
