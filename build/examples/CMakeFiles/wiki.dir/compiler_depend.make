# Empty compiler generated dependencies file for wiki.
# This may be replaced when dependencies are built.
