#ifndef DYNAPROX_BEM_DEPENDENCY_REGISTRY_H_
#define DYNAPROX_BEM_DEPENDENCY_REGISTRY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/contended_mutex.h"
#include "storage/update_bus.h"

namespace dynaprox::bem {

// Tracks which cached fragments depend on which data-source rows, enabling
// the cache invalidation manager's "updates to the underlying data sources"
// trigger (paper 4.3.3). A dependency is (table) or (table, row-key); a
// table-level dependency is invalidated by any mutation of that table.
//
// Thread-safe behind one internal mutex: parallel block generators Add
// concurrently while data-source updates fan out through Affected. The
// two index maps must stay mutually consistent, so a single mutex (not
// striping) is the right shape; contentions() shows whether it matters.
class DependencyRegistry {
 public:
  // Declares that fragment `canonical` depends on `table` (whole table when
  // `row_key` is empty).
  void Add(const std::string& canonical, const std::string& table,
           const std::string& row_key = "");

  // Drops all dependencies of `canonical` (fragment invalidated/reclaimed).
  void RemoveFragment(const std::string& canonical);

  // Drops every dependency (full-cache invalidation).
  void Clear();

  // Fragments affected by `event`, in deterministic (sorted) order.
  std::vector<std::string> Affected(const storage::UpdateEvent& event) const;

  size_t fragment_count() const {
    std::lock_guard<common::ContendedMutex> lock(mu_);
    return by_fragment_.size();
  }

  // Contended acquisitions of the internal mutex.
  uint64_t contentions() const { return mu_.contended_acquisitions(); }

 private:
  struct Dep {
    std::string table;
    std::string row_key;  // Empty: whole table.
    bool operator<(const Dep& other) const {
      if (table != other.table) return table < other.table;
      return row_key < other.row_key;
    }
  };

  mutable common::ContendedMutex mu_;
  // (table, row_key) -> fragments; row_key "" holds table-level deps.
  // Both maps guarded by mu_.
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      by_source_;
  std::map<std::string, std::set<Dep>> by_fragment_;
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_DEPENDENCY_REGISTRY_H_
