// StreamingResponseReader (the client half of a streaming round trip) and
// the chunk-frame writers it decodes. Framing must survive arbitrary read
// boundaries, so the suite replays every message under every two-part
// split and byte-at-a-time.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_chain.h"
#include "http/parser.h"

namespace dynaprox::http {
namespace {

// Drives a fresh reader over `wire` in `chunk_size`-byte feeds and
// returns (head, body) on success.
struct Decoded {
  Response head;
  std::string body;
};

Result<Decoded> DecodeChunked(std::string_view wire, size_t chunk_size) {
  StreamingResponseReader reader;
  Decoded out;
  bool have_head = false;
  for (size_t at = 0; at < wire.size(); at += chunk_size) {
    reader.Feed(wire.substr(at, chunk_size));
    if (!have_head) {
      std::optional<Result<Response>> head = reader.NextHead();
      if (head.has_value()) {
        if (!head->ok()) return head->status();
        out.head = std::move(**head);
        have_head = true;
      }
    }
    if (have_head) out.body += reader.TakeBody();
    if (reader.failed()) return reader.status();
  }
  out.body += reader.TakeBody();
  if (reader.failed()) return reader.status();
  if (!have_head || !reader.body_complete()) {
    return Status::InvalidArgument("incomplete after full wire");
  }
  return out;
}

std::string ChunkedWire(const Response& response,
                        const std::vector<std::string>& chunks) {
  std::string wire = SerializeStreamingHead(response);
  common::BufferChain frames;
  for (const std::string& chunk : chunks) {
    common::BufferChain payload;
    payload.AppendCopy(chunk);
    AppendChunkFrame(frames, std::move(payload));
  }
  AppendFinalChunkFrame(frames);
  return wire + frames.Flatten();
}

TEST(StreamingReaderTest, ChunkFrameWritersEmitValidChunkedFraming) {
  Response response = Response::MakeOk("");
  response.headers.Set("X-Marker", "yes");
  std::string wire = ChunkedWire(response, {"hello ", "world"});

  std::string head = SerializeStreamingHead(response);
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(head.find("Content-Length"), std::string::npos);
  // 6 = "hello " and 5 = "world", hex-framed, then the final frame.
  EXPECT_EQ(wire.substr(head.size()),
            "6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n");

  // The buffered parser accepts the same bytes (dechunked).
  Result<Response> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "hello world");
  EXPECT_EQ(parsed->headers.Get("X-Marker"), "yes");
}

TEST(StreamingReaderTest, EmptyPayloadAppendsNoFrame) {
  common::BufferChain out;
  AppendChunkFrame(out, common::BufferChain());
  EXPECT_TRUE(out.empty());  // An empty chunk would terminate the stream.
  AppendFinalChunkFrame(out);
  EXPECT_EQ(out.Flatten(), "0\r\n\r\n");
}

TEST(StreamingReaderTest, DecodesChunkedBodyAtEverySplit) {
  Response response = Response::MakeOk("");
  response.headers.Set("X-Request-Id", "r1");
  std::string wire = ChunkedWire(response, {"alpha", "beta", "gamma"});
  for (size_t chunk_size : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                            wire.size()}) {
    Result<Decoded> decoded = DecodeChunked(wire, chunk_size);
    ASSERT_TRUE(decoded.ok()) << "chunk_size=" << chunk_size << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->head.status_code, 200);
    EXPECT_EQ(decoded->head.headers.Get("X-Request-Id"), "r1");
    EXPECT_EQ(decoded->body, "alphabetagamma");
  }
}

TEST(StreamingReaderTest, DecodesChunkedBodyUnderEveryTwoPartSplit) {
  Response response = Response::MakeOk("");
  std::string wire = ChunkedWire(response, {"ab", "cdef", "g"});
  for (size_t split = 0; split <= wire.size(); ++split) {
    StreamingResponseReader reader;
    reader.Feed(wire.substr(0, split));
    std::optional<Result<Response>> head = reader.NextHead();
    std::string body;
    if (head.has_value()) {
      ASSERT_TRUE(head->ok());
      body += reader.TakeBody();
    }
    reader.Feed(wire.substr(split));
    if (!head.has_value()) {
      head = reader.NextHead();
      ASSERT_TRUE(head.has_value()) << "split=" << split;
      ASSERT_TRUE(head->ok());
    }
    body += reader.TakeBody();
    EXPECT_TRUE(reader.body_complete()) << "split=" << split;
    EXPECT_EQ(body, "abcdefg") << "split=" << split;
    EXPECT_EQ(reader.excess_bytes(), 0u) << "split=" << split;
  }
}

TEST(StreamingReaderTest, DecodesFixedLengthBody) {
  std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nfixedbody";
  for (size_t chunk_size : {size_t{1}, size_t{4}, wire.size()}) {
    Result<Decoded> decoded = DecodeChunked(wire, chunk_size);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->body, "fixedbody");
  }
}

TEST(StreamingReaderTest, NoDeclaredLengthMeansNoBody) {
  // Matches the buffered parser: without Content-Length or
  // Transfer-Encoding the message ends at the blank line.
  StreamingResponseReader reader;
  reader.Feed("HTTP/1.1 304 Not Modified\r\nEtag: \"x\"\r\n\r\n");
  std::optional<Result<Response>> head = reader.NextHead();
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->ok());
  EXPECT_EQ((*head)->status_code, 304);
  EXPECT_TRUE(reader.body_complete());
  EXPECT_EQ(reader.TakeBody(), "");
}

TEST(StreamingReaderTest, ExcessBytesFlaggedSoConnectionIsNotReused) {
  std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokEXTRA";
  StreamingResponseReader reader;
  reader.Feed(wire);
  std::optional<Result<Response>> head = reader.NextHead();
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->ok());
  EXPECT_EQ(reader.TakeBody(), "ok");
  EXPECT_TRUE(reader.body_complete());
  EXPECT_EQ(reader.excess_bytes(), 5u);  // "EXTRA"
}

TEST(StreamingReaderTest, MalformedChunkSizeLineFailsSticky) {
  StreamingResponseReader reader;
  reader.Feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
  std::optional<Result<Response>> head = reader.NextHead();
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->ok());
  reader.Feed("zz\r\n");  // Not a hex chunk-size line.
  (void)reader.TakeBody();
  EXPECT_TRUE(reader.failed());
  EXPECT_FALSE(reader.status().ok());
  // Sticky: feeding valid-looking bytes does not revive it.
  reader.Feed("2\r\nok\r\n0\r\n\r\n");
  EXPECT_TRUE(reader.failed());
}

TEST(StreamingReaderTest, UnboundedChunkSizeLineIsCapped) {
  // A hostile peer drip-feeding a size line that never ends must not make
  // the reader buffer without bound (kMaxFramingLine in parser.cc).
  StreamingResponseReader reader;
  reader.Feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
  std::optional<Result<Response>> head = reader.NextHead();
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->ok());
  for (int i = 0; i < 2048 && !reader.failed(); ++i) reader.Feed("1");
  EXPECT_TRUE(reader.failed());
  EXPECT_LE(reader.buffered_bytes(), 2048u);
}

TEST(StreamingReaderTest, TruncatedChunkedBodyIsNotComplete) {
  Response response = Response::MakeOk("");
  std::string wire = ChunkedWire(response, {"partial"});
  // Drop the terminating "0\r\n\r\n": the reader must keep waiting, so a
  // connection close here is detectable as truncation.
  wire.resize(wire.size() - 5);
  StreamingResponseReader reader;
  reader.Feed(wire);
  std::optional<Result<Response>> head = reader.NextHead();
  ASSERT_TRUE(head.has_value());
  ASSERT_TRUE(head->ok());
  EXPECT_EQ(reader.TakeBody(), "partial");
  EXPECT_FALSE(reader.body_complete());
  EXPECT_FALSE(reader.failed());
}

TEST(StreamingReaderTest, MalformedHeadReportsError) {
  StreamingResponseReader reader;
  reader.Feed("NOT-HTTP\r\n\r\n");
  std::optional<Result<Response>> head = reader.NextHead();
  ASSERT_TRUE(head.has_value());
  EXPECT_FALSE(head->ok());
  EXPECT_TRUE(reader.failed());
}

TEST(StreamingReaderTest, ChunkFramePayloadSlicesAreSplicedNotCopied) {
  // Zero-copy contract: the frame shares the payload's buffers; only the
  // size line is new. Verified via shared_ptr identity on the slices.
  common::Buffer payload = common::MakeBuffer(std::string(1024, 'p'));
  common::BufferChain chain;
  chain.Append(payload);
  common::BufferChain out;
  AppendChunkFrame(out, std::move(chain));
  bool found_shared = false;
  for (const common::BufferChain::Slice& slice : out.slices()) {
    if (slice.buffer == payload) found_shared = true;
  }
  EXPECT_TRUE(found_shared);
}

}  // namespace
}  // namespace dynaprox::http
