file(REMOVE_RECURSE
  "libdynaprox_edge.a"
)
