// Partial-write resumption for chained (vectored) response bodies: a
// reader with a starved receive buffer forces both servers to stop
// mid-iovec and resume from a byte offset, and a reader that never
// drains at all must still trip the write-stall deadline.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <string_view>
#include <thread>

#include <gtest/gtest.h>

#include "common/buffer_chain.h"
#include "http/parser.h"
#include "net/epoll_server.h"
#include "net/tcp.h"

namespace dynaprox::net {
namespace {

// One shared fragment buffer spliced thousands of times, separated by
// small owned literals: the response crosses the 64-iovec sendmsg batch
// limit dozens of times, and any resumption bug scrambles the pattern.
constexpr int kSplices = 3000;
const std::string& FragmentBytes() {
  static const std::string bytes(2048, 'F');
  return bytes;
}

std::string ExpectedBody() {
  std::string body;
  for (int i = 0; i < kSplices; ++i) {
    body += "<" + std::to_string(i) + ">";
    body += FragmentBytes();
  }
  return body;
}

http::Response ChainedResponse() {
  http::Response response = http::Response::MakeOk("");
  common::Buffer fragment = common::MakeBuffer(FragmentBytes());
  for (int i = 0; i < kSplices; ++i) {
    response.body_chain.AppendCopy("<" + std::to_string(i) + ">");
    response.body_chain.Append(fragment);
  }
  return response;
}

// Loopback client whose receive buffer is clamped before connect, so the
// server's send side fills quickly and every flush ends in a short write.
class StarvedClient {
 public:
  StarvedClient(uint16_t port, int rcvbuf_bytes) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~StarvedClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool Send(std::string_view bytes) {
    return ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }

  // Drains one response in small sips, pausing periodically so the
  // server's queue stays backed up and must resume many times.
  Result<http::Response> SipResponse() {
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    http::ResponseReader reader;
    char buf[1024];
    int reads = 0;
    for (;;) {
      if (auto next = reader.Next()) {
        if (!next->ok()) return next->status();
        return std::move(*next);
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return Status::IoError("connection closed / timed out");
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (++reads % 256 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

constexpr std::string_view kGet = "GET /page HTTP/1.1\r\nHost: t\r\n\r\n";

TEST(VectoredWriteTest, TcpResumesPartialWritesAcrossIovecs) {
  TcpServer server([](const http::Request&) { return ChainedResponse(); });
  ASSERT_TRUE(server.Start().ok());
  StarvedClient client(server.port(), /*rcvbuf_bytes=*/8 * 1024);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(kGet));
  // Let the server wedge against the full socket buffer before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Result<http::Response> response = client.SipResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(response->body, ExpectedBody());
  server.Stop();
}

TEST(VectoredWriteTest, EpollResumesPartialWritesMidIovec) {
  EpollServer server(
      [](const http::Request&) { return ChainedResponse(); });
  ASSERT_TRUE(server.Start().ok());
  StarvedClient client(server.port(), /*rcvbuf_bytes=*/8 * 1024);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(kGet));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Result<http::Response> response = client.SipResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, ExpectedBody());
  server.Stop();
}

TEST(VectoredWriteTest, EpollKeepAliveSurvivesChainedResponses) {
  // The output chain must be fully cleared between responses on one
  // connection, or stale slices leak into the next reply.
  EpollServer server(
      [](const http::Request&) { return ChainedResponse(); });
  ASSERT_TRUE(server.Start().ok());
  TcpClientTransport client("127.0.0.1", server.port());
  const std::string expected = ExpectedBody();
  for (int i = 0; i < 3; ++i) {
    Result<http::Response> response = client.RoundTrip(http::Request{});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body, expected);
  }
  EXPECT_EQ(server.connections_accepted(), 1u);
  server.Stop();
}

TEST(VectoredWriteTest, TcpWriteStallDeadlineCoversChainedBodies) {
  ServerLimits limits;
  limits.write_stall_micros = 150 * kMicrosPerMilli;
  TcpServer server([](const http::Request&) { return ChainedResponse(); },
                   0, limits);
  ASSERT_TRUE(server.Start().ok());
  StarvedClient client(server.port(), /*rcvbuf_bytes=*/4 * 1024);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(kGet));
  // Never read: the vectored send path must still honor the stall
  // deadline and close the connection.
  for (int i = 0; i < 100; ++i) {
    if (server.ingress().write_stall_closes.load() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.ingress().write_stall_closes.load(), 1u);
  server.Stop();
}

TEST(VectoredWriteTest, EpollWriteStallDeadlineCoversChainedBodies) {
  ServerLimits limits;
  limits.write_stall_micros = 150 * kMicrosPerMilli;
  EpollServer server(
      [](const http::Request&) { return ChainedResponse(); }, 0,
      /*num_workers=*/1, limits);
  ASSERT_TRUE(server.Start().ok());
  StarvedClient client(server.port(), /*rcvbuf_bytes=*/4 * 1024);
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(kGet));
  for (int i = 0; i < 100; ++i) {
    if (server.ingress().write_stall_closes.load() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.ingress().write_stall_closes.load(), 1u);
  server.Stop();
}

}  // namespace
}  // namespace dynaprox::net
