# Empty compiler generated dependencies file for dynaprox_analytical.
# This may be replaced when dependencies are built.
