// dynaprox_chaos: deterministic chaos harness (docs/failure-modes.md,
// "Chaos layer"). Builds the full in-process stack — a 3-node edge
// cluster with shared BEM, parallel block execution, and push-based
// refresh — runs a seeded Zipf workload while fault points at every seam
// are armed, and checks the chaos invariants:
//
//   1. Every clean 200 is byte-identical to the fault-free oracle.
//   2. Every failure is classifiable (502, 503 + Retry-After, stale 200 +
//      Warning, origin 500) — nothing corrupt, nothing mystery.
//   3. Conservation: every request is classified exactly once and the
//      tier counters agree.
//   4. After disarming, the cluster recovers to clean identical 200s.
//
//   ./dynaprox_chaos [--seed=42] [--requests=600]
//       [--chaos=point=prob:action[:param],...] [--verbose]
//
// With no --chaos, a built-in rotation of specs arms every
// in-process-reachable seam. Exits 0 when all invariants hold, 1
// otherwise; the same --seed always replays the same injection sequence,
// so a failure reproduces exactly.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "appserver/origin_server.h"
#include "appserver/push_engine.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "common/fault_point.h"
#include "common/flags.h"
#include "common/rng.h"
#include "dpc/proxy.h"
#include "edge/cluster.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"

using namespace dynaprox;

namespace {

constexpr int kPages = 6;

std::string PagePath(int n) { return "/page/" + std::to_string(n); }

void RegisterPages(appserver::ScriptRegistry* registry) {
  for (int n = 0; n < kPages; ++n) {
    registry->RegisterOrReplace(
        PagePath(n), [n](appserver::ScriptContext& context) {
          context.Emit("[p" + std::to_string(n) + "]");
          Status status = context.CacheableBlock(
              bem::FragmentId("blk", {{"n", std::to_string(n)}}),
              [n](appserver::ScriptContext& ctx) {
                std::string row_key = "item-" + std::to_string(n);
                storage::Row row =
                    *(*ctx.repository()->GetTable("items"))->Get(row_key);
                ctx.DeclareDependency("items", row_key);
                ctx.Emit(row_key + "=" +
                         storage::ValueToString(row.at("v")));
                return Status::Ok();
              });
          context.Emit("[/p" + std::to_string(n) + "]");
          return status;
        });
  }
}

int ZipfPick(Rng& rng, int n) {
  double total = 0;
  for (int k = 0; k < n; ++k) total += 1.0 / (k + 1);
  double roll = rng.NextDouble() * total;
  for (int k = 0; k < n; ++k) {
    roll -= 1.0 / (k + 1);
    if (roll <= 0) return k;
  }
  return n - 1;
}

struct Tally {
  uint64_t clean_200 = 0;
  uint64_t stale_200 = 0;
  uint64_t origin_500 = 0;
  uint64_t error_502 = 0;
  uint64_t shed_503 = 0;
  uint64_t violations = 0;

  uint64_t total() const {
    return clean_200 + stale_200 + origin_500 + error_502 + shed_503 +
           violations;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  Result<int64_t> seed = flags->GetInt("seed", 42);
  Result<int64_t> requests = flags->GetInt("requests", 600);
  for (const auto* r : {&seed, &requests}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  bool verbose = flags->GetBool("verbose");
  std::string chaos_override = flags->GetString("chaos", "");

  // ---- Stack under test: 3-node cluster, shared BEM, push engine. ----
  chaos::FaultRegistry& registry = chaos::FaultRegistry::Instance();
  registry.DisarmAll();

  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* items = repository.GetOrCreateTable("items");
  for (int n = 0; n < kPages; ++n) {
    items->Upsert("item-" + std::to_string(n),
                  {{"v", storage::Value(static_cast<double>(n) * 10)}});
  }
  appserver::ScriptRegistry scripts;
  RegisterPages(&scripts);

  bem::BemOptions bem_options;
  bem_options.capacity = 64;
  bem_options.clock = &clock;
  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);

  bem::PushPolicy policy;
  policy.min_score = 1.0;
  appserver::PushEngine engine(policy, &clock);
  monitor->SetObserver(&engine.scheduler());

  appserver::OriginOptions origin_options;
  origin_options.clock = &clock;
  origin_options.push_engine = &engine;
  origin_options.block_workers = 2;
  appserver::OriginServer origin(&scripts, &repository, monitor.get(),
                                 origin_options);
  engine.AttachOrigin(&origin);
  net::DirectTransport origin_transport(origin.AsHandler());

  net::ByteMeter peer_meter;
  edge::EdgeClusterOptions cluster_options;
  cluster_options.proxy.capacity = 64;
  cluster_options.proxy.clock = &clock;
  cluster_options.peer_meter = &peer_meter;
  edge::EdgeCluster cluster(&origin_transport, cluster_options);
  const std::vector<std::string> nodes = {"edge-1", "edge-2", "edge-3"};
  for (const std::string& node : nodes) {
    if (Status added = cluster.AddEdge(node); !added.ok()) {
      std::fprintf(stderr, "AddEdge: %s\n", added.ToString().c_str());
      return 2;
    }
  }
  engine.set_sink([&cluster](const std::string&, bem::DpcKey key,
                             const std::string& body, MicroTime age) {
    return cluster.ApplyPush(key, body, age);
  });

  // Oracle: same scripts/repository, independent BEM + origin + proxy.
  // Only consulted while every fault point is disarmed.
  auto oracle_monitor = *bem::BackEndMonitor::Create(bem_options);
  oracle_monitor->AttachRepository(&repository);
  appserver::OriginOptions oracle_origin_options;
  oracle_origin_options.clock = &clock;
  appserver::OriginServer oracle_origin(&scripts, &repository,
                                        oracle_monitor.get(),
                                        oracle_origin_options);
  net::DirectTransport oracle_transport(oracle_origin.AsHandler());
  dpc::ProxyOptions oracle_options;
  oracle_options.capacity = 64;
  oracle_options.clock = &clock;
  dpc::DpcProxy oracle_proxy(&oracle_transport, oracle_options);

  auto compute_oracle = [&] {
    std::vector<std::string> oracle;
    for (int n = 0; n < kPages; ++n) {
      http::Request request;
      request.target = PagePath(n);
      oracle.push_back(oracle_proxy.Handle(request).BodyText());
    }
    return oracle;
  };
  std::vector<std::string> oracle = compute_oracle();

  // ---- The storm. ----
  std::vector<std::string> phases;
  if (!chaos_override.empty()) {
    phases = {chaos_override};
  } else {
    phases = {
        "dpc.upstream=0.15:error,bem.directory.insert=0.1:error,"
        "edge.peer_fetch=0.4:error",
        "",
        "dpc.upstream=0.1:garbage,bem.block.generate=0.15:error,"
        "bem.directory.evict=0.5:error",
        "dpc.upstream=0.05:delay-ms:1,bem.push.admit=0.5:error,"
        "bem.push.post=0.5:error,edge.peer_fetch=0.2:error,"
        "edge.push.replay=1:error",
    };
  }

  Rng workload(static_cast<uint64_t>(*seed) ^ 0xD1CEu);
  std::vector<std::string> clients;
  for (int i = 0; i < 16; ++i) {
    clients.push_back("client" + std::to_string(i));
  }

  Tally tally;
  uint64_t sent = 0;
  const uint64_t per_phase =
      static_cast<uint64_t>(*requests) / phases.size();
  for (size_t phase = 0; phase < phases.size(); ++phase) {
    Status armed =
        registry.Arm(phases[phase], static_cast<uint64_t>(*seed) + phase);
    if (!armed.ok()) {
      std::fprintf(stderr, "--chaos: %s\n", armed.ToString().c_str());
      return 2;
    }
    for (uint64_t i = 0; i < per_phase; ++i) {
      int page = ZipfPick(workload, kPages);
      http::Request request;
      request.target = PagePath(page);
      request.headers.Add(
          "X-Client",
          clients[workload.NextBounded(clients.size())]);
      http::Response response = cluster.Handle(request);
      ++sent;
      switch (response.status_code) {
        case 200:
          if (response.headers.Has("Warning")) {
            ++tally.stale_200;
          } else if (response.BodyText() == oracle[page]) {
            ++tally.clean_200;
          } else {
            ++tally.violations;
            std::fprintf(stderr,
                         "VIOLATION: clean 200 for %s diverges from the "
                         "fault-free oracle\n",
                         request.target.c_str());
          }
          break;
        case 500:
          ++tally.origin_500;
          break;
        case 502:
          ++tally.error_502;
          break;
        case 503:
          if (response.headers.Has("Retry-After")) {
            ++tally.shed_503;
          } else {
            ++tally.violations;
            std::fprintf(stderr, "VIOLATION: 503 without Retry-After\n");
          }
          break;
        default:
          ++tally.violations;
          std::fprintf(stderr, "VIOLATION: unclassifiable status %d\n",
                       response.status_code);
      }
      clock.AdvanceMicros(500);
      // Content-preserving invalidations keep the render, insert, and
      // push seams hot after warmup: a same-value Upsert invalidates the
      // fragment (the update bus fires regardless) but the re-rendered
      // bytes match the oracle, so the byte-identity invariant stands.
      if (i % 20 == 19) {
        int n = ZipfPick(workload, kPages);
        items->Upsert("item-" + std::to_string(n),
                      {{"v", storage::Value(static_cast<double>(n) * 10)}});
        engine.Drain();
      }
    }
    // Bounce a node so any recorded pushes replay to a failover owner —
    // with edge.push.replay armed, the replay seam fires too.
    const std::string& bounce = nodes[phase % nodes.size()];
    (void)cluster.MarkDown(bounce);
    (void)cluster.MarkUp(bounce);
  }

  // ---- Conservation. ----
  bool ok = tally.violations == 0;
  if (tally.total() != sent || cluster.stats().requests != sent) {
    ok = false;
    std::fprintf(stderr,
                 "VIOLATION: conservation — classified %llu, cluster saw "
                 "%llu, sent %llu\n",
                 static_cast<unsigned long long>(tally.total()),
                 static_cast<unsigned long long>(cluster.stats().requests),
                 static_cast<unsigned long long>(sent));
  }

  // ---- Recovery: disarm, recompute the oracle, demand clean 200s. ----
  registry.DisarmAll();
  oracle = compute_oracle();
  uint64_t recovery_failures = 0;
  for (int i = 0; i < 120; ++i) {
    int page = ZipfPick(workload, kPages);
    http::Request request;
    request.target = PagePath(page);
    request.headers.Add(
        "X-Client", clients[workload.NextBounded(clients.size())]);
    http::Response response = cluster.Handle(request);
    if (response.status_code != 200 ||
        response.headers.Has("Warning") ||
        response.BodyText() != oracle[page]) {
      ++recovery_failures;
    }
  }
  if (recovery_failures > 0) {
    ok = false;
    std::fprintf(stderr,
                 "VIOLATION: %llu requests still degraded after disarm\n",
                 static_cast<unsigned long long>(recovery_failures));
  }

  // ---- Eviction stage: a dedicated small directory under pressure. ----
  // Fragment-key reuse across an edge cluster is a trust boundary (see
  // docs/failure-modes.md), so the shared stack above runs without
  // eviction churn; the insert/evict seams get their storm here against
  // a single origin, where degrading to an uncached emit is the full
  // correctness story.
  if (chaos_override.empty()) {
    Status armed = registry.Arm(
        "bem.directory.insert=0.5:error,bem.directory.evict=0.5:error",
        static_cast<uint64_t>(*seed) + phases.size());
    if (!armed.ok()) {
      std::fprintf(stderr, "--chaos: %s\n", armed.ToString().c_str());
      return 2;
    }
    bem::BemOptions small = bem_options;
    small.capacity = 2;
    auto small_monitor = *bem::BackEndMonitor::Create(small);
    small_monitor->AttachRepository(&repository);
    appserver::OriginOptions small_origin_options;
    small_origin_options.clock = &clock;
    appserver::OriginServer small_origin(&scripts, &repository,
                                         small_monitor.get(),
                                         small_origin_options);
    net::DirectTransport small_transport(small_origin.AsHandler());
    dpc::ProxyOptions small_proxy_options;
    small_proxy_options.capacity = 64;
    small_proxy_options.clock = &clock;
    dpc::DpcProxy small_proxy(&small_transport, small_proxy_options);
    for (int i = 0; i < 48; ++i) {
      int page = ZipfPick(workload, kPages);
      http::Request request;
      request.target = PagePath(page);
      http::Response response = small_proxy.Handle(request);
      // Whether the insert succeeded, failed, or required a faulted
      // eviction, the assembled page must match the fault-free bytes.
      if (response.status_code != 200 ||
          response.BodyText() != oracle[page]) {
        ok = false;
        std::fprintf(stderr,
                     "VIOLATION: eviction-stage page diverges "
                     "(status %d)\n",
                     response.status_code);
      }
    }
    registry.DisarmAll();
  }

  // ---- Report. ----
  std::printf(
      "chaos storm: %llu requests (seed %lld): %llu clean 200, %llu "
      "stale 200, %llu origin 500, %llu 502, %llu 503, %llu violations; "
      "recovery clean\n",
      static_cast<unsigned long long>(sent),
      static_cast<long long>(*seed),
      static_cast<unsigned long long>(tally.clean_200),
      static_cast<unsigned long long>(tally.stale_200),
      static_cast<unsigned long long>(tally.origin_500),
      static_cast<unsigned long long>(tally.error_502),
      static_cast<unsigned long long>(tally.shed_503),
      static_cast<unsigned long long>(tally.violations));
  std::printf("fault points fired:\n");
  for (const auto& [point, fired] : registry.FiredCounts()) {
    if (fired > 0 || verbose) {
      std::printf("  %-24s %llu\n", point.c_str(),
                  static_cast<unsigned long long>(fired));
    }
  }
  if (verbose) {
    for (const std::string& line : registry.InjectionLog()) {
      std::printf("  log: %s\n", line.c_str());
    }
  }
  registry.DisarmAll();
  if (!ok) {
    std::fprintf(stderr, "chaos invariants VIOLATED\n");
    return 1;
  }
  std::printf("all chaos invariants hold\n");
  return 0;
}
