#include "net/retry.h"

#include <gtest/gtest.h>

namespace dynaprox::net {
namespace {

// Fails the first `failures` round trips, then succeeds.
class FlakyTransport : public Transport {
 public:
  explicit FlakyTransport(int failures) : failures_left_(failures) {}

  Result<http::Response> RoundTrip(const http::Request&) override {
    ++calls_;
    if (failures_left_ > 0) {
      --failures_left_;
      return Status::IoError("connection reset");
    }
    return http::Response::MakeOk("finally");
  }

  int calls() const { return calls_; }

 private:
  int failures_left_;
  int calls_ = 0;
};

TEST(RetryTransportTest, SucceedsAfterTransientFailures) {
  FlakyTransport flaky(2);
  RetryTransport retry(&flaky, {3, 0});
  Result<http::Response> response = retry.RoundTrip(http::Request{});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "finally");
  EXPECT_EQ(flaky.calls(), 3);
  EXPECT_EQ(retry.stats().retries, 2u);
  EXPECT_EQ(retry.stats().gave_up, 0u);
}

TEST(RetryTransportTest, GivesUpAfterMaxAttempts) {
  FlakyTransport flaky(10);
  RetryTransport retry(&flaky, {3, 0});
  Result<http::Response> response = retry.RoundTrip(http::Request{});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kIoError);
  EXPECT_EQ(flaky.calls(), 3);
  EXPECT_EQ(retry.stats().gave_up, 1u);
}

TEST(RetryTransportTest, NoRetryOnSuccess) {
  FlakyTransport flaky(0);
  RetryTransport retry(&flaky, {5, 0});
  ASSERT_TRUE(retry.RoundTrip(http::Request{}).ok());
  EXPECT_EQ(flaky.calls(), 1);
}

TEST(RetryTransportTest, HttpErrorsAreNotRetried) {
  DirectTransport upstream([](const http::Request&) {
    return http::Response::MakeError(503, "Service Unavailable", "down");
  });
  int calls = 0;
  DirectTransport counting([&](const http::Request& request) {
    ++calls;
    return *upstream.RoundTrip(request);
  });
  RetryTransport retry(&counting, {3, 0});
  Result<http::Response> response = retry.RoundTrip(http::Request{});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 503);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTransportTest, DegenerateOptionsClampToOneAttempt) {
  FlakyTransport flaky(10);
  RetryTransport retry(&flaky, {0, 0});
  EXPECT_FALSE(retry.RoundTrip(http::Request{}).ok());
  EXPECT_EQ(flaky.calls(), 1);
}

}  // namespace
}  // namespace dynaprox::net
