file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/clock_test.cc.o"
  "CMakeFiles/common_test.dir/common/clock_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/flags_test.cc.o"
  "CMakeFiles/common_test.dir/common/flags_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/histogram_test.cc.o"
  "CMakeFiles/common_test.dir/common/histogram_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/json_test.cc.o"
  "CMakeFiles/common_test.dir/common/json_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/logging_test.cc.o"
  "CMakeFiles/common_test.dir/common/logging_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/result_test.cc.o"
  "CMakeFiles/common_test.dir/common/result_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/status_test.cc.o"
  "CMakeFiles/common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/strings_test.cc.o"
  "CMakeFiles/common_test.dir/common/strings_test.cc.o.d"
  "common_test"
  "common_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
