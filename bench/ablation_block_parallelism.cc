// Ablation: parallel block execution at the origin. Sweeps the
// block-execution pool size against blocks-per-page on a page whose
// generators each cost a fixed ~300 us (sleep: think database round
// trips, the dominant generator cost in the paper's workloads). With
// independent blocks the miss path should collapse from
// blocks x generator_cost toward max(generator_cost) as workers are
// added — and the pool/striping counters show where the time goes when
// it does not (queue saturation degrades to caller-runs, i.e. the
// sequential baseline, by design).
//
// Every request misses every block (InvalidateAll between requests):
// this is the worst case the pool exists for; hits never dispatch.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/thread_pool.h"
#include "storage/table.h"

using namespace dynaprox;

namespace {

constexpr int kRequests = 50;
constexpr auto kGeneratorCost = std::chrono::microseconds(300);

struct SweepResult {
  double mean_page_ms = 0;
  common::ThreadPoolStats pool;
  bem::CacheDirectory::ConcurrencyStats directory;
};

Result<SweepResult> RunConfig(int workers, int blocks) {
  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  registry.RegisterOrReplace("/page", [blocks](
                                          appserver::ScriptContext& ctx) {
    ctx.Emit("<page>");
    for (int b = 0; b < blocks; ++b) {
      Status status = ctx.CacheableBlock(
          bem::FragmentId("b" + std::to_string(b)),
          [](appserver::ScriptContext& c) {
            std::this_thread::sleep_for(kGeneratorCost);
            c.Emit("fragment-body");
            return Status::Ok();
          });
      if (!status.ok()) return status;
    }
    ctx.Emit("</page>");
    return Status::Ok();
  });

  bem::BemOptions bem_options;
  bem_options.capacity = 256;
  std::unique_ptr<bem::BackEndMonitor> monitor;
  DYNAPROX_ASSIGN_OR_RETURN(monitor,
                            bem::BackEndMonitor::Create(bem_options));
  monitor->AttachRepository(&repository);

  appserver::OriginOptions options;
  options.block_workers = workers;
  appserver::OriginServer origin(&registry, &repository, monitor.get(),
                                 options);

  http::Request request;
  request.target = "/page";
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kRequests; ++i) {
    http::Response response = origin.Handle(request);
    if (response.status_code != 200) {
      return Status::Internal("request failed with status " +
                              std::to_string(response.status_code));
    }
    // Force the next request back onto the miss path.
    monitor->InvalidateAll();
  }
  auto elapsed = std::chrono::steady_clock::now() - start;

  SweepResult out;
  out.mean_page_ms =
      std::chrono::duration<double, std::milli>(elapsed).count() /
      kRequests;
  if (origin.block_pool() != nullptr) {
    out.pool = origin.block_pool()->stats();
  }
  out.directory = monitor->directory().concurrency_stats();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: block-execution parallelism (pool size sweep) ===\n");
  std::printf(
      "%d requests/config, all-miss pages, %lld us per generator; "
      "sequential floor = blocks x cost, parallel floor = cost\n\n",
      kRequests,
      static_cast<long long>(kGeneratorCost.count()));
  std::printf("%8s %7s %12s %10s %10s %12s %10s %10s %8s\n", "workers",
              "blocks", "ms/page", "executed", "inline", "peak queue",
              "stripe c", "policy c", "races");
  for (int blocks : {2, 4, 8, 16}) {
    for (int workers : {0, 1, 2, 4, 8}) {
      Result<SweepResult> result = RunConfig(workers, blocks);
      if (!result.ok()) {
        std::printf("workers=%d blocks=%d failed: %s\n", workers, blocks,
                    result.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "%8d %7d %12.2f %10llu %10llu %12llu %10llu %10llu %8llu\n",
          workers, blocks, result->mean_page_ms,
          static_cast<unsigned long long>(result->pool.executed),
          static_cast<unsigned long long>(result->pool.caller_runs),
          static_cast<unsigned long long>(result->pool.peak_queue_depth),
          static_cast<unsigned long long>(
              result->directory.stripe_contentions),
          static_cast<unsigned long long>(
              result->directory.policy_contentions),
          static_cast<unsigned long long>(result->directory.insert_races));
    }
    std::printf("\n");
  }
  std::printf(
      "workers=0 is the sequential baseline (no pool; 'inline' counts "
      "nothing because nothing is submitted). ms/page flattening toward "
      "the generator cost as workers approach blocks is the parallelism "
      "win; contention counters near zero show the striped directory is "
      "not the bottleneck.\n\n");
  return 0;
}
