#ifndef DYNAPROX_DPC_FRAGMENT_STORE_H_
#define DYNAPROX_DPC_FRAGMENT_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bem/types.h"
#include "common/clock.h"
#include "common/result.h"

namespace dynaprox::dpc {

// Counters for the store; exposed for tests and benches.
struct StoreStats {
  uint64_t sets = 0;
  uint64_t gets = 0;
  uint64_t get_misses = 0;  // GET on an empty slot (cold DPC).
  uint64_t pushes = 0;      // slots populated via SetPushed (control channel).
};

// A cached fragment body. Shared ownership lets a concurrent Set replace a
// slot while readers still hold the old content.
using FragmentRef = std::shared_ptr<const std::string>;

// The DPC's fragment cache (paper 4.3.3): "an in-memory array of pointers
// to cached fragments, where the DpcKey serves as the array index". Slots
// are overwritten by SET instructions and never proactively cleared —
// invalidation is entirely the BEM's business; a stale slot simply stops
// being referenced until a SET reassigns it.
//
// Thread-safe. The lock is striped by dpcKey (kShards shards) so reader
// threads assembling different pages don't serialize on one global mutex;
// counters and gauges are relaxed atomics updated outside any critical
// section longer than the slot swap itself.
class FragmentStore {
 public:
  static constexpr size_t kShards = 16;

  explicit FragmentStore(bem::DpcKey capacity)
      : slots_(capacity), meta_(capacity) {}

  // Stores `content` in slot `key`, overwriting any previous occupant.
  Status Set(bem::DpcKey key, std::string content);

  // Same, but takes an already-shared buffer. The zero-copy assembly path
  // uses this so the store and the page's BufferChain reference one
  // allocation instead of materializing the payload twice.
  Status Set(bem::DpcKey key, FragmentRef content);

  // Stores a control-channel push (docs/edge-tier.md). Unlike Set — whose
  // bodies arrive inside a response being assembled right now, so their age
  // is effectively zero — a pushed body was regenerated at the BEM some
  // `base_age_micros` ago and must keep aging from `now_micros` so Age
  // accounting (RFC 9111) stays honest across the control channel.
  Status SetPushed(bem::DpcKey key, FragmentRef content,
                   MicroTime base_age_micros, MicroTime now_micros);

  // Age of the slot's content at `now_micros`: zero for SET-populated
  // slots, base_age + residency for pushed ones. NotFound on empty slots.
  Result<MicroTime> AgeOf(bem::DpcKey key, MicroTime now_micros);

  // Returns the slot's content; NotFound if the slot has never been set
  // (e.g. a cold DPC receiving a GET after restart). The returned ref
  // stays valid even if the slot is overwritten concurrently.
  Result<FragmentRef> Get(bem::DpcKey key);

  // Empties every slot (models a DPC restart).
  void Clear();

  bem::DpcKey capacity() const {
    return static_cast<bem::DpcKey>(slots_.size());
  }
  size_t occupied_slots() const;
  // Slots whose current content arrived via SetPushed (not yet overwritten
  // by a plain Set), for the dynaprox_store_pushed_slots gauge.
  size_t pushed_slots() const;
  // Total bytes currently held across all slots.
  size_t content_bytes() const;
  // Bytes held by one shard's slots (`shard` < kShards), for the
  // per-shard dynaprox_dpc_fragment_bytes gauge.
  size_t shard_content_bytes(size_t shard) const;
  StoreStats stats() const;

 private:
  // Counters live with their shard, cache-line aligned, so 16 threads on
  // 16 shards never bounce a shared counter line between cores.
  struct alignas(64) Shard {
    std::mutex mu;
    std::atomic<size_t> occupied{0};
    std::atomic<size_t> content_bytes{0};
    std::atomic<uint64_t> sets{0};
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> get_misses{0};
    std::atomic<uint64_t> pushes{0};
    std::atomic<size_t> pushed{0};
  };

  // Provenance of a slot's current content; only meaningful while the slot
  // is occupied. Guarded by the owning shard's mutex like the slot itself.
  struct SlotMeta {
    bool pushed = false;
    MicroTime base_age = 0;   // age already accrued at the BEM.
    MicroTime stored_at = 0;  // local receive time of the push.
  };

  Shard& ShardFor(bem::DpcKey key) { return shards_[key % kShards]; }
  Status SetLocked(bem::DpcKey key, FragmentRef content, SlotMeta meta);

  mutable std::array<Shard, kShards> shards_;
  std::vector<FragmentRef> slots_;  // slots_[k] guarded by shards_[k%16].mu.
  std::vector<SlotMeta> meta_;      // same guard as slots_[k].
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_FRAGMENT_STORE_H_
