#include "dpc/assembler.h"

#include <gtest/gtest.h>

#include "bem/tag_codec.h"

namespace dynaprox::dpc {
namespace {

TEST(AssemblerTest, SetStoresAndInlinesContent) {
  FragmentStore store(4);
  std::string wire = "A";
  bem::TagCodec::AppendSet(1, "frag", wire);
  wire += "B";
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "AfragB");
  EXPECT_EQ(page->set_count, 1u);
  EXPECT_EQ(page->get_count, 0u);
  EXPECT_TRUE(page->complete());
  EXPECT_EQ(**store.Get(1), "frag");
}

TEST(AssemblerTest, GetSplicesStoredContent) {
  FragmentStore store(4);
  ASSERT_TRUE(store.Set(2, "cached!").ok());
  std::string wire = "[";
  bem::TagCodec::AppendGet(2, wire);
  wire += "]";
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "[cached!]");
  EXPECT_EQ(page->get_count, 1u);
}

TEST(AssemblerTest, SetThenGetWithinOneTemplate) {
  // First request on a page: fragment arrives as SET; a later GET in the
  // same template (unusual but legal) sees the stored value.
  FragmentStore store(4);
  std::string wire;
  bem::TagCodec::AppendSet(0, "x", wire);
  bem::TagCodec::AppendGet(0, wire);
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "xx");
}

TEST(AssemblerTest, MissingFragmentReported) {
  FragmentStore store(4);
  std::string wire = "a";
  bem::TagCodec::AppendGet(3, wire);
  bem::TagCodec::AppendGet(1, wire);
  wire += "b";
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  EXPECT_FALSE(page->complete());
  ASSERT_EQ(page->missing_keys.size(), 2u);
  EXPECT_EQ(page->missing_keys[0], 3u);
  EXPECT_EQ(page->missing_keys[1], 1u);
  EXPECT_EQ(page->Text(), "ab");  // Missing fragments contribute nothing.
}

TEST(AssemblerTest, OutOfRangeKeyIsError) {
  FragmentStore store(2);
  std::string wire;
  bem::TagCodec::AppendGet(50, wire);
  Result<AssembledPage> page = AssemblePage(wire, store);
  EXPECT_FALSE(page.ok());
  EXPECT_TRUE(page.status().IsInvalidArgument());
}

TEST(AssemblerTest, CorruptTemplateIsError) {
  FragmentStore store(2);
  EXPECT_TRUE(AssemblePage("\x02", store).status().IsCorruption());
}

TEST(AssemblerTest, OverwritesSlotOnRepeatedSet) {
  FragmentStore store(2);
  std::string first;
  bem::TagCodec::AppendSet(0, "v1", first);
  ASSERT_TRUE(AssemblePage(first, store).ok());
  std::string second;
  bem::TagCodec::AppendSet(0, "v2", second);
  ASSERT_TRUE(AssemblePage(second, store).ok());
  EXPECT_EQ(**store.Get(0), "v2");
}

TEST(AssemblerTest, RealisticPageCycle) {
  // Simulates two requests for the same page: all SETs first, all GETs
  // second; both assemble to identical output.
  FragmentStore store(8);
  const std::string navbar = "<nav>home</nav>";
  const std::string body = "<main>catalog</main>";

  std::string first = "<html>";
  bem::TagCodec::AppendSet(0, navbar, first);
  bem::TagCodec::AppendSet(1, body, first);
  first += "</html>";

  std::string second = "<html>";
  bem::TagCodec::AppendGet(0, second);
  bem::TagCodec::AppendGet(1, second);
  second += "</html>";

  Result<AssembledPage> p1 = AssemblePage(first, store);
  Result<AssembledPage> p2 = AssemblePage(second, store);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1->Text(), p2->Text());
  EXPECT_EQ(p1->Text(), "<html>" + navbar + body + "</html>");
  // The GET template is much smaller than the SET template: that's the
  // bandwidth saving.
  EXPECT_LT(second.size(), first.size());
}

TEST(AssemblerTest, FragmentBodiesAreStoredExactlyOnce) {
  FragmentStore store(4);
  std::string first;
  bem::TagCodec::AppendSet(0, "payload", first);
  Result<AssembledPage> set_page = AssemblePage(first, store);
  ASSERT_TRUE(set_page.ok());

  // The SET page's chain and the store slot alias one allocation.
  Result<FragmentRef> stored = store.Get(0);
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(set_page->body.slice_count(), 1u);
  EXPECT_EQ(set_page->body.slices()[0].data, (*stored)->data());

  // Every later GET splices that same allocation — never a copy.
  std::string second;
  bem::TagCodec::AppendGet(0, second);
  Result<AssembledPage> get_page = AssemblePage(second, store);
  ASSERT_TRUE(get_page.ok());
  ASSERT_EQ(get_page->body.slice_count(), 1u);
  EXPECT_EQ(get_page->body.slices()[0].data, (*stored)->data());
}

TEST(AssemblerTest, CopyAccountingSeparatesSetsFromSplices) {
  FragmentStore store(4);
  ASSERT_TRUE(store.Set(1, "cached-frag").ok());
  std::string wire = "lit:";
  bem::TagCodec::AppendSet(0, "fresh", wire);
  bem::TagCodec::AppendGet(1, wire);
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  // Only the SET body is materialized; literals and GETs are referenced.
  EXPECT_EQ(page->bytes_copied, 5u);            // "fresh"
  EXPECT_EQ(page->bytes_referenced, 4u + 11u);  // "lit:" + "cached-frag"
}

TEST(AssemblerTest, PageSurvivesStoreEviction) {
  FragmentStore store(4);
  ASSERT_TRUE(store.Set(0, "original").ok());
  std::string wire;
  bem::TagCodec::AppendGet(0, wire);
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  // Replacing the slot drops the store's reference; the page's chain still
  // owns the old buffer.
  ASSERT_TRUE(store.Set(0, "replacement").ok());
  EXPECT_EQ(page->Text(), "original");
}

TEST(AssemblerTest, LiteralsAliasTheWireBuffer) {
  FragmentStore store(4);
  common::Buffer wire = common::MakeBuffer("just literals");
  Result<AssembledPage> page = AssemblePage(wire, store);
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->body.slice_count(), 1u);
  EXPECT_EQ(page->body.slices()[0].data, wire->data());
  EXPECT_EQ(page->bytes_referenced, wire->size());
  EXPECT_EQ(page->bytes_copied, 0u);
}

}  // namespace
}  // namespace dynaprox::dpc
