#include "edge/cluster.h"

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/push_engine.h"
#include "common/clock.h"
#include "edge/edge_fleet.h"
#include "net/byte_meter.h"
#include "storage/value.h"

namespace dynaprox::edge {
namespace {

// Shared-BEM edge cluster fixture: three DPC nodes with consistent-hash
// fragment ownership in front of one origin/BEM, plus an independent
// single-DPC stack (own BEM) as the correctness baseline.
class EdgeClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* quotes = repository_.GetOrCreateTable("quotes");
    quotes->Upsert("IBM", {{"price", storage::Value(100.0)}});

    registry_.RegisterOrReplace(
        "/quote", [](appserver::ScriptContext& context) {
          context.Emit("[head]");
          Status status = context.CacheableBlock(
              bem::FragmentId("quote", {{"sym", "IBM"}}),
              [](appserver::ScriptContext& ctx) {
                storage::Row row =
                    *(*ctx.repository()->GetTable("quotes"))->Get("IBM");
                ctx.DeclareDependency("quotes", "IBM");
                ctx.Emit("IBM@" +
                         storage::ValueToString(row.at("price")));
                return Status::Ok();
              });
          context.Emit("[tail]");
          return status;
        });

    // Cluster stack: one BEM + origin shared by all nodes.
    bem::BemOptions bem_options;
    bem_options.capacity = 32;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    monitor_->AttachRepository(&repository_);

    bem::PushPolicy policy;
    policy.min_score = 1.0;
    engine_ = std::make_unique<appserver::PushEngine>(policy, &clock_);
    monitor_->SetObserver(&engine_->scheduler());

    appserver::OriginOptions origin_options;
    origin_options.clock = &clock_;
    origin_options.push_engine = engine_.get();
    server_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get(), origin_options);
    engine_->AttachOrigin(server_.get());
    origin_transport_ =
        std::make_unique<net::DirectTransport>(server_->AsHandler());

    EdgeClusterOptions cluster_options;
    cluster_options.proxy.capacity = 32;
    cluster_options.proxy.clock = &clock_;
    cluster_options.peer_meter = &peer_meter_;
    cluster_ = std::make_unique<EdgeCluster>(origin_transport_.get(),
                                             cluster_options);
    for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
      ASSERT_TRUE(cluster_->AddEdge(node).ok());
    }
    engine_->set_sink([this](const std::string&, bem::DpcKey key,
                             const std::string& body, MicroTime age) {
      return cluster_->ApplyPush(key, body, age);
    });

    // Baseline stack: its own BEM + origin + single DPC, same scripts and
    // repository, so directory state never crosses between the stacks.
    baseline_monitor_ = *bem::BackEndMonitor::Create(bem_options);
    baseline_monitor_->AttachRepository(&repository_);
    appserver::OriginOptions baseline_origin_options;
    baseline_origin_options.clock = &clock_;
    baseline_server_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, baseline_monitor_.get(),
        baseline_origin_options);
    baseline_transport_ = std::make_unique<net::DirectTransport>(
        baseline_server_->AsHandler());
    dpc::ProxyOptions baseline_options;
    baseline_options.capacity = 32;
    baseline_options.clock = &clock_;
    baseline_ = std::make_unique<dpc::DpcProxy>(baseline_transport_.get(),
                                                baseline_options);
  }

  http::Request RequestFromClient(const std::string& client) {
    http::Request request;
    request.target = "/quote";
    request.headers.Add("X-Client", client);
    return request;
  }

  // A client whose affinity routes to `node`.
  std::string ClientOn(const std::string& node) {
    for (int i = 0; i < 1000; ++i) {
      std::string client = "client" + std::to_string(i);
      http::Request request = RequestFromClient(client);
      if (*cluster_->ring().Route(EdgeFleet::ClientKey(request)) == node) {
        return client;
      }
    }
    ADD_FAILURE() << "no client routes to " << node;
    return "";
  }

  // Direct store access for assertions (Get mutates hit counters, so the
  // public surface is const; the test pries it open deliberately).
  dpc::FragmentStore& StoreOf(const std::string& node) {
    return const_cast<dpc::DpcProxy*>(*cluster_->NodeProxy(node))
        ->mutable_store();
  }

  bem::DpcKey QuoteKey() {
    return *monitor_->directory().KeyOf(
        bem::FragmentId("quote", {{"sym", "IBM"}}));
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  net::ByteMeter peer_meter_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::PushEngine> engine_;
  std::unique_ptr<appserver::OriginServer> server_;
  std::unique_ptr<net::DirectTransport> origin_transport_;
  std::unique_ptr<EdgeCluster> cluster_;
  std::unique_ptr<bem::BackEndMonitor> baseline_monitor_;
  std::unique_ptr<appserver::OriginServer> baseline_server_;
  std::unique_ptr<net::DirectTransport> baseline_transport_;
  std::unique_ptr<dpc::DpcProxy> baseline_;
};

TEST_F(EdgeClusterTest, ByteIdenticalToSingleDpcAcrossNodes) {
  // Clients spread across all three nodes must see exactly the bytes the
  // single-DPC baseline serves, whichever node assembles and however the
  // fragment reached it (local SET, replication, or peer fetch).
  for (int i = 0; i < 12; ++i) {
    http::Request request = RequestFromClient("c" + std::to_string(i));
    http::Response from_cluster = cluster_->Handle(request);
    http::Response from_baseline = baseline_->Handle(request);
    ASSERT_EQ(from_cluster.status_code, 200);
    ASSERT_EQ(from_baseline.status_code, 200);
    EXPECT_EQ(from_cluster.BodyText(), from_baseline.BodyText()) << i;
    EXPECT_EQ(from_cluster.BodyText(), "[head]IBM@100.00[tail]");
  }
}

TEST_F(EdgeClusterTest, PeerFetchFillsMissesWithoutOriginRecovery) {
  std::string warm_client = ClientOn("edge-1");
  ASSERT_EQ(cluster_->Handle(RequestFromClient(warm_client)).status_code,
            200);

  // A client on another node misses locally; the fragment must arrive
  // over the peer channel, not via an X-DPC-Refresh origin round trip.
  std::string cold_node;
  for (const char* node : {"edge-2", "edge-3"}) {
    std::string client = ClientOn(node);
    ASSERT_EQ(cluster_->Handle(RequestFromClient(client)).status_code, 200);
    cold_node = node;
  }
  uint64_t peer_fills = 0, recoveries = 0;
  for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
    dpc::ProxyStats stats = (*cluster_->NodeProxy(node))->stats();
    peer_fills += stats.peer_fills;
    recoveries += stats.recoveries;
  }
  // The owner holds the fragment after replication, so every non-owner
  // assembly peer-fetches; nothing re-misses to the BEM.
  EXPECT_GT(peer_fills, 0u) << "cold node " << cold_node;
  EXPECT_EQ(recoveries, 0u);
  EXPECT_GT(peer_meter_.messages(), 0u);
}

TEST_F(EdgeClusterTest, ReplicationPlacesFragmentAtItsOwner) {
  std::string client = ClientOn("edge-1");
  ASSERT_EQ(cluster_->Handle(RequestFromClient(client)).status_code, 200);
  bem::DpcKey key = QuoteKey();
  std::string owner = *cluster_->OwnerOf(key);
  Result<dpc::FragmentRef> at_owner = StoreOf(owner).Get(key);
  ASSERT_TRUE(at_owner.ok()) << "owner " << owner << " missing fragment";
  EXPECT_EQ(**at_owner, "IBM@100.00");
  if (owner != "edge-1") {
    EXPECT_EQ(cluster_->stats().replications, 1u);
  }
}

TEST_F(EdgeClusterTest, SurvivesMarkDownWithZero5xx) {
  // Warm every node.
  for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
    ASSERT_EQ(
        cluster_->Handle(RequestFromClient(ClientOn(node))).status_code,
        200);
  }
  ASSERT_TRUE(cluster_->MarkDown("edge-2").ok());
  // All traffic — including clients whose affinity and whose fragments
  // lived on the dead node — keeps getting correct 200s.
  for (int i = 0; i < 30; ++i) {
    http::Response response =
        cluster_->Handle(RequestFromClient("c" + std::to_string(i)));
    ASSERT_LT(response.status_code, 500) << "request " << i;
    EXPECT_EQ(response.BodyText(), "[head]IBM@100.00[tail]");
  }
  EXPECT_EQ(cluster_->stats().routing_failures, 0u);
}

TEST_F(EdgeClusterTest, PushedInvalidationVisibleWithoutClientMiss) {
  // Warm the cluster and build up a popularity signal.
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster_->Handle(RequestFromClient("hot-client")).status_code,
              200);
  }

  // Data-source update invalidates the fragment and admits it for push.
  (*repository_.GetTable("quotes"))
      ->Upsert("IBM", {{"price", storage::Value(250.0)}});
  EXPECT_EQ(engine_->scheduler().queue_depth(), 1u);

  // BEM-side drain re-renders and pushes to the owning edge. No client
  // request has touched the cluster since the invalidation.
  ASSERT_EQ(engine_->Drain(), 1u);
  EXPECT_EQ(cluster_->stats().pushes_routed, 1u);

  bem::DpcKey key = QuoteKey();  // Key of the re-rendered incarnation.
  std::string owner = *cluster_->OwnerOf(key);
  uint64_t misses_before = StoreOf(owner).stats().get_misses;
  Result<dpc::FragmentRef> pushed = StoreOf(owner).Get(key);
  ASSERT_TRUE(pushed.ok());
  EXPECT_EQ(**pushed, "IBM@250.00");

  // A client served by the owner assembles the fresh page with no store
  // miss and no origin recovery: the push arrived ahead of demand.
  dpc::ProxyStats before = (*cluster_->NodeProxy(owner))->stats();
  http::Response response =
      cluster_->Handle(RequestFromClient(ClientOn(owner)));
  EXPECT_EQ(response.BodyText(), "[head]IBM@250.00[tail]");
  dpc::ProxyStats after = (*cluster_->NodeProxy(owner))->stats();
  EXPECT_EQ(after.recoveries, before.recoveries);
  EXPECT_EQ(StoreOf(owner).stats().get_misses, misses_before);
}

TEST_F(EdgeClusterTest, MarkDownReplaysPushesToFailoverOwner) {
  const bem::DpcKey key = 5;
  ASSERT_TRUE(cluster_->ApplyPush(key, "pushed body", 0).ok());
  std::string first_owner = *cluster_->OwnerOf(key);
  ASSERT_TRUE(StoreOf(first_owner).Get(key).ok());

  clock_.AdvanceSeconds(2.0);
  ASSERT_TRUE(cluster_->MarkDown(first_owner).ok());
  std::string failover = *cluster_->OwnerOf(key);
  ASSERT_NE(failover, first_owner);

  // The replayed copy landed on the failover owner, aged by its time on
  // the dead node.
  Result<dpc::FragmentRef> replayed = StoreOf(failover).Get(key);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(**replayed, "pushed body");
  EXPECT_EQ(cluster_->stats().push_replays, 1u);
  Result<MicroTime> age =
      StoreOf(failover).AgeOf(key, clock_.NowMicros());
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 2 * kMicrosPerSecond);
}

TEST_F(EdgeClusterTest, AllNodesDownIsUnavailableNot5xxStorm) {
  for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
    ASSERT_TRUE(cluster_->MarkDown(node).ok());
  }
  http::Response response = cluster_->Handle(RequestFromClient("c"));
  EXPECT_EQ(response.status_code, 503);
  EXPECT_EQ(cluster_->stats().routing_failures, 1u);
  // Push routing degrades with a clean Unavailable, not a crash.
  Status push = cluster_->ApplyPush(1, "x", 0);
  EXPECT_TRUE(push.IsUnavailable()) << push.ToString();
}

}  // namespace
}  // namespace dynaprox::edge
