// The general (heterogeneous-site) form of the Section 5 model: per-page
// fragment structures with Zipf weighting, checked against hand
// computation.

#include <gtest/gtest.h>

#include "analytical/model.h"

namespace dynaprox::analytical {
namespace {

SiteSpec TwoPageSite() {
  SiteSpec site;
  site.header_size = 100;
  site.tag_size = 10;
  // Page 0: one 1000B cacheable + one 500B uncacheable fragment.
  PageSpec page0;
  page0.fragments = {{1000, true}, {500, false}};
  // Page 1: a single 2000B cacheable fragment.
  PageSpec page1;
  page1.fragments = {{2000, true}};
  site.pages = {page0, page1};
  return site;
}

TEST(GeneralSiteTest, PageSizesByHand) {
  SiteSpec site = TwoPageSite();
  EXPECT_DOUBLE_EQ(PageSizeNoCache(site.pages[0], site), 1600.0);
  EXPECT_DOUBLE_EQ(PageSizeNoCache(site.pages[1], site), 2100.0);
  // h = 0.5: cacheable fragment costs 0.5*10 + 0.5*(s+20).
  // Page 0: (5 + 510) + 500 + 100 = 1115.
  EXPECT_DOUBLE_EQ(PageSizeWithCache(site.pages[0], site, 0.5), 1115.0);
  // Page 1: (5 + 1010) + 100 = 1115.
  EXPECT_DOUBLE_EQ(PageSizeWithCache(site.pages[1], site, 0.5), 1115.0);
  // h = 1: cacheable fragments cost one 10B tag each.
  EXPECT_DOUBLE_EQ(PageSizeWithCache(site.pages[0], site, 1.0), 610.0);
  EXPECT_DOUBLE_EQ(PageSizeWithCache(site.pages[1], site, 1.0), 110.0);
}

TEST(GeneralSiteTest, ExpectedBytesWeightsByPopularity) {
  SiteSpec site = TwoPageSite();
  // Zipf over 2 pages at alpha 1: P = {2/3, 1/3}.
  std::vector<double> probs = ZipfProbabilities(2, 1.0);
  ASSERT_NEAR(probs[0], 2.0 / 3.0, 1e-12);
  double expected_nc = 100.0 * (probs[0] * 1600 + probs[1] * 2100);
  EXPECT_NEAR(ExpectedBytes(site, probs, 100, 0.5, false), expected_nc,
              1e-9);
  double expected_c = 100.0 * (probs[0] * 1115 + probs[1] * 1115);
  EXPECT_NEAR(ExpectedBytes(site, probs, 100, 0.5, true), expected_c,
              1e-9);
}

TEST(GeneralSiteTest, UniformPopularityMatchesMean) {
  SiteSpec site = TwoPageSite();
  std::vector<double> uniform = ZipfProbabilities(2, 0.0);
  EXPECT_NEAR(ExpectedBytes(site, uniform, 2, 0.0, false),
              1600.0 + 2100.0, 1e-9);
}

TEST(GeneralSiteTest, SkewDoesNotChangeUniformSiteBytes) {
  // With identical pages (the Table 2 site), Zipf skew cancels out —
  // the assumption behind the paper's closed forms.
  ModelParams params = ModelParams::Table2Baseline();
  SiteSpec site = SiteSpec::Uniform(params);
  // Cacheable counts differ per page by at most 1 fragment (0.6 * 4 is
  // fractional), so heavy skew drifts the weighted bytes a little: ~5%
  // at alpha=2, where most mass sits on page 0 (2 of 4 cacheable vs the
  // site-wide 2.4 average). Bound the drift rather than expect exactness.
  for (double alpha : {0.0, 1.0, 2.0}) {
    std::vector<double> probs =
        ZipfProbabilities(params.num_pages, alpha);
    double bytes = ExpectedBytes(site, probs, params.requests,
                                 params.hit_ratio, true);
    EXPECT_NEAR(bytes, ExpectedBytesWithCache(params),
                ExpectedBytesWithCache(params) * 0.08)
        << alpha;
  }
}

}  // namespace
}  // namespace dynaprox::analytical
