#include "appserver/push_engine.h"

#include <utility>
#include <vector>

#include "appserver/origin_server.h"
#include "common/fault_point.h"
#include "common/logging.h"

namespace dynaprox::appserver {

namespace {
// Staleness spans sim-time gaps from sub-millisecond to minutes; the
// default request-latency layout tops out at 10 s and would flatten the
// pull baseline's tail.
std::vector<double> StalenessBounds() {
  return {0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300};
}
}  // namespace

PushEngine::PushEngine(bem::PushPolicy policy, const Clock* clock)
    : staleness_(StalenessBounds()),
      scheduler_(policy, clock, &staleness_) {}

void PushEngine::set_sink(PushSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void PushEngine::RecordProducer(const std::string& canonical,
                                const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  producers_[canonical] = target;
}

size_t PushEngine::Drain(size_t max) {
  if (origin_ == nullptr) return 0;
  std::vector<bem::PushWorkItem> batch = scheduler_.TakeBatch(max);
  size_t delivered = 0;
  for (const bem::PushWorkItem& item : batch) {
    std::string target;
    PushSink sink;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = producers_.find(item.canonical);
      if (it == producers_.end()) {
        // Never rendered through this origin: nothing to re-render, the
        // fragment stays pull-on-miss.
        ++stats_.no_producer;
        continue;
      }
      target = it->second;
      sink = sink_;
    }

    http::Request request;
    request.method = "GET";
    request.target = target;
    std::vector<CapturedFragment> captured;
    origin_->HandleCapture(request, &captured);

    const CapturedFragment* fragment = nullptr;
    for (const CapturedFragment& c : captured) {
      if (c.canonical == item.canonical) {
        fragment = &c;
        break;
      }
    }
    if (fragment == nullptr) {
      // The re-render hit the directory: a client request regenerated the
      // fragment after admission, and its response already carried the
      // fresh SET to the edge tier. Dropping here is correct.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.missing_capture;
      continue;
    }
    // The body was regenerated microseconds ago; it leaves here at age 0
    // and the edge accounts forwarding delay from its own receipt time.
    Status sent =
        chaos::InjectStatus(DYNAPROX_FAULT_POINT("bem.push.post"));
    if (sent.ok()) {
      sent = sink ? sink(fragment->canonical, fragment->key,
                         fragment->body, /*age_micros=*/0)
                  : Status::FailedPrecondition("no push sink attached");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (sent.ok()) {
      ++stats_.pushed;
      ++delivered;
    } else {
      DYNAPROX_LOG(kWarning, "push")
          << "push of " << fragment->canonical
          << " failed: " << sent.ToString();
      ++stats_.push_failures;
    }
  }
  return delivered;
}

PushEngineStats PushEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dynaprox::appserver
