// Chaos layer end to end (docs/failure-modes.md, "Chaos layer"): a
// 3-node edge cluster with parallel block execution and push-based
// refresh runs a seeded Zipf workload while a deterministic scheduler
// arms and disarms fault points at every seam, and four invariants are
// checked continuously:
//
//   1. Byte-identity — every clean 200 is byte-identical to the
//      fault-free oracle (an independent baseline stack).
//   2. Clean failures — everything else is an honest, classifiable
//      degradation: 502, 503 + Retry-After, stale 200 + Warning, an
//      origin 500 from an injected generator fault, or a truncated
//      chunked stream. Never a corrupt-but-complete-looking page.
//   3. Conservation — every request is classified exactly once, and
//      the tier counters agree with the client's own tally.
//   4. Recovery — once every point is disarmed, the cluster returns to
//      serving only clean 200s with no fresh recoveries.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/push_engine.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "common/clock.h"
#include "common/fault_point.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dpc/proxy.h"
#include "edge/cluster.h"
#include "edge/edge_fleet.h"
#include "net/byte_meter.h"
#include "net/connection_pool.h"
#include "net/tcp.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

constexpr int kPages = 4;

std::string PagePath(int n) { return "/page/" + std::to_string(n); }

void RegisterPages(appserver::ScriptRegistry* registry) {
  for (int n = 0; n < kPages; ++n) {
    registry->RegisterOrReplace(
        PagePath(n), [n](appserver::ScriptContext& context) {
          context.Emit("[p" + std::to_string(n) + "]");
          Status status = context.CacheableBlock(
              bem::FragmentId("blk", {{"n", std::to_string(n)}}),
              [n](appserver::ScriptContext& ctx) {
                std::string row_key = "item-" + std::to_string(n);
                storage::Row row = *(*ctx.repository()->GetTable("items"))
                                        ->Get(row_key);
                ctx.DeclareDependency("items", row_key);
                ctx.Emit(row_key + "=" +
                         storage::ValueToString(row.at("v")));
                return Status::Ok();
              });
          context.Emit("[/p" + std::to_string(n) + "]");
          return status;
        });
  }
}

// Zipf-ish pick over [0, n): weight 1/(k+1).
int ZipfPick(Rng& rng, int n) {
  double total = 0;
  for (int k = 0; k < n; ++k) total += 1.0 / (k + 1);
  double roll = rng.NextDouble() * total;
  for (int k = 0; k < n; ++k) {
    roll -= 1.0 / (k + 1);
    if (roll <= 0) return k;
  }
  return n - 1;
}

struct Tally {
  uint64_t clean_200 = 0;
  uint64_t stale_200 = 0;   // Warning 110 attached.
  uint64_t origin_500 = 0;  // Injected generator fault, passed through.
  uint64_t error_502 = 0;
  uint64_t shed_503 = 0;  // Always with Retry-After.
  uint64_t other = 0;     // Invariant violation if ever nonzero.

  uint64_t total() const {
    return clean_200 + stale_200 + origin_500 + error_502 + shed_503 +
           other;
  }
};

// Shared-BEM 3-node edge cluster under test plus an independent
// fault-free baseline stack used as the byte-identity oracle.
class ChaosClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    chaos::FaultRegistry::Instance().DisarmAll();
    storage::Table* items = repository_.GetOrCreateTable("items");
    for (int n = 0; n < kPages; ++n) {
      items->Upsert("item-" + std::to_string(n),
                    {{"v", storage::Value(static_cast<double>(n) * 10)}});
    }
    RegisterPages(&registry_);

    bem::BemOptions bem_options;
    bem_options.capacity = 32;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    monitor_->AttachRepository(&repository_);

    bem::PushPolicy policy;
    policy.min_score = 1.0;
    engine_ = std::make_unique<appserver::PushEngine>(policy, &clock_);
    monitor_->SetObserver(&engine_->scheduler());

    appserver::OriginOptions origin_options;
    origin_options.clock = &clock_;
    origin_options.push_engine = engine_.get();
    origin_options.block_workers = 2;  // Parallel block execution.
    server_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get(), origin_options);
    engine_->AttachOrigin(server_.get());
    origin_transport_ =
        std::make_unique<net::DirectTransport>(server_->AsHandler());

    edge::EdgeClusterOptions cluster_options;
    cluster_options.proxy.capacity = 32;
    cluster_options.proxy.clock = &clock_;
    cluster_options.peer_meter = &peer_meter_;
    cluster_ = std::make_unique<edge::EdgeCluster>(origin_transport_.get(),
                                                   cluster_options);
    for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
      ASSERT_TRUE(cluster_->AddEdge(node).ok());
    }
    engine_->set_sink([this](const std::string&, bem::DpcKey key,
                             const std::string& body, MicroTime age) {
      return cluster_->ApplyPush(key, body, age);
    });

    // Oracle stack: same scripts and repository, own BEM + origin +
    // proxy, and never any armed fault points (chaos arming is global,
    // so the oracle is only consulted while points are disarmed).
    baseline_monitor_ = *bem::BackEndMonitor::Create(bem_options);
    baseline_monitor_->AttachRepository(&repository_);
    appserver::OriginOptions baseline_origin_options;
    baseline_origin_options.clock = &clock_;
    baseline_server_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, baseline_monitor_.get(),
        baseline_origin_options);
    baseline_transport_ = std::make_unique<net::DirectTransport>(
        baseline_server_->AsHandler());
    dpc::ProxyOptions baseline_options;
    baseline_options.capacity = 32;
    baseline_options.clock = &clock_;
    baseline_ = std::make_unique<dpc::DpcProxy>(baseline_transport_.get(),
                                                baseline_options);
  }

  void TearDown() override { chaos::FaultRegistry::Instance().DisarmAll(); }

  http::Request PageRequest(int page, const std::string& client) {
    http::Request request;
    request.target = PagePath(page);
    request.headers.Add("X-Client", client);
    return request;
  }

  // Fault-free expected bytes per page, from the oracle stack. Only
  // valid while no fault points are armed (arming is process-global).
  std::vector<std::string> ComputeOracle() {
    std::vector<std::string> oracle;
    for (int n = 0; n < kPages; ++n) {
      http::Response response = baseline_->Handle(PageRequest(n, "oracle"));
      EXPECT_EQ(response.status_code, 200) << PagePath(n);
      oracle.push_back(response.BodyText());
    }
    return oracle;
  }

  // Issues one request and classifies the response against invariants
  // 1 and 2. `oracle` may be empty for a page to skip byte-identity.
  void ClassifyOne(const http::Response& response,
                   const std::string& oracle, Tally* tally) {
    switch (response.status_code) {
      case 200:
        if (response.headers.Has("Warning")) {
          ++tally->stale_200;
        } else {
          ++tally->clean_200;
          if (!oracle.empty()) {
            // Invariant 1: clean 200s are byte-identical to fault-free.
            EXPECT_EQ(response.BodyText(), oracle);
          }
        }
        break;
      case 500:
        // Injected block-generator faults surface as an origin 500
        // passed through honestly — an error page, never corrupt 200.
        ++tally->origin_500;
        break;
      case 502:
        ++tally->error_502;
        break;
      case 503:
        // Invariant 2: every 503 carries Retry-After.
        EXPECT_TRUE(response.headers.Has("Retry-After"));
        ++tally->shed_503;
        break;
      default:
        ADD_FAILURE() << "unclassifiable status "
                      << response.status_code;
        ++tally->other;
    }
  }

  // A client whose affinity routes to `node`.
  std::string ClientOn(const std::string& node) {
    for (int i = 0; i < 1000; ++i) {
      std::string client = "client" + std::to_string(i);
      http::Request request = PageRequest(0, client);
      if (*cluster_->ring().Route(edge::EdgeFleet::ClientKey(request)) ==
          node) {
        return client;
      }
    }
    ADD_FAILURE() << "no client routes to " << node;
    return "";
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  net::ByteMeter peer_meter_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::PushEngine> engine_;
  std::unique_ptr<appserver::OriginServer> server_;
  std::unique_ptr<net::DirectTransport> origin_transport_;
  std::unique_ptr<edge::EdgeCluster> cluster_;
  std::unique_ptr<bem::BackEndMonitor> baseline_monitor_;
  std::unique_ptr<appserver::OriginServer> baseline_server_;
  std::unique_ptr<net::DirectTransport> baseline_transport_;
  std::unique_ptr<dpc::DpcProxy> baseline_;
};

// The storm: phases of different armed specs (including fully disarmed
// windows) over a seeded Zipf workload, then full disarm and a recovery
// check. Content stays constant through the storm so the oracle holds
// for every clean 200.
TEST_F(ChaosClusterTest, SeededChaosStormUpholdsInvariants) {
  chaos::FaultRegistry& registry = chaos::FaultRegistry::Instance();
  std::vector<std::string> oracle = ComputeOracle();

  // Phase specs rotate so every seam sees both fault pressure and quiet
  // windows; delay params are 1 ms to keep the test fast.
  const std::vector<std::string> phases = {
      "dpc.upstream=0.15:error,bem.directory.insert=0.1:error,"
      "edge.peer_fetch=0.4:error",
      "",  // Disarmed window.
      "dpc.upstream=0.1:garbage,bem.block.generate=0.15:error,"
      "bem.directory.evict=0.5:error",
      "dpc.upstream=0.05:delay-ms:1,bem.push.admit=0.5:error,"
      "bem.push.post=0.5:error,edge.peer_fetch=0.2:error",
  };

  Rng workload_rng(0xD1CEu);
  std::vector<std::string> clients;
  for (int i = 0; i < 12; ++i) {
    clients.push_back("client" + std::to_string(i));
  }

  Tally tally;
  const int kPerPhase = 150;
  for (size_t phase = 0; phase < phases.size(); ++phase) {
    ASSERT_TRUE(registry.Arm(phases[phase], /*seed=*/77 + phase).ok());
    for (int i = 0; i < kPerPhase; ++i) {
      int page = ZipfPick(workload_rng, kPages);
      const std::string& client =
          clients[workload_rng.NextBounded(clients.size())];
      http::Response response =
          cluster_->Handle(PageRequest(page, client));
      ClassifyOne(response, oracle[page], &tally);
      clock_.AdvanceMicros(500);
    }
    // Push pressure while push seams are armed: dropped pushes degrade
    // to pull, they never corrupt (checked by the continuing identity
    // assertions after the final disarm below).
    if (phase == 3) {
      repository_.GetOrCreateTable("items")->Upsert(
          "item-0", {{"v", storage::Value(111.0)}});
      engine_->Drain();
    }
  }

  // Invariant 3: conservation — one classification per request, and the
  // cluster saw exactly the client's request count.
  const uint64_t sent = phases.size() * kPerPhase;
  EXPECT_EQ(tally.total(), sent);
  EXPECT_EQ(tally.other, 0u);
  EXPECT_EQ(cluster_->stats().requests, sent);
  EXPECT_EQ(cluster_->stats().routing_failures, 0u);
  uint64_t node_requests = 0;
  for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
    node_requests += (*cluster_->NodeProxy(node))->stats().requests;
  }
  EXPECT_EQ(node_requests, sent);
  // The storm actually did something: faults fired and some requests
  // still succeeded.
  EXPECT_GT(tally.clean_200, 0u);
  uint64_t fired_total = 0;
  for (const auto& [point, fired] : registry.FiredCounts()) {
    fired_total += fired;
  }
  EXPECT_GT(fired_total, 0u);

  // Invariant 4: recovery. Disarm everything; content changed above, so
  // recompute the oracle fault-free, then every request must be a clean
  // identical 200 and the second sweep must trigger no new recoveries.
  registry.DisarmAll();
  oracle = ComputeOracle();
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 60; ++i) {
      int page = ZipfPick(workload_rng, kPages);
      const std::string& client =
          clients[workload_rng.NextBounded(clients.size())];
      http::Response response =
          cluster_->Handle(PageRequest(page, client));
      ASSERT_EQ(response.status_code, 200);
      EXPECT_FALSE(response.headers.Has("Warning"));
      EXPECT_EQ(response.BodyText(), oracle[page]);
    }
    if (round == 0) {
      // Warm round done: hit ratio has recovered — the second sweep
      // must add no recoveries (cold-cache refresh round trips).
      uint64_t recoveries = 0;
      for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
        recoveries += (*cluster_->NodeProxy(node))->stats().recoveries;
      }
      for (int i = 0; i < 60; ++i) {
        http::Response response = cluster_->Handle(
            PageRequest(ZipfPick(workload_rng, kPages),
                        clients[workload_rng.NextBounded(clients.size())]));
        ASSERT_EQ(response.status_code, 200);
      }
      uint64_t recoveries_after = 0;
      for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
        recoveries_after +=
            (*cluster_->NodeProxy(node))->stats().recoveries;
      }
      EXPECT_EQ(recoveries_after, recoveries);
      break;
    }
  }
}

// Push replay to a failover owner keeps degrading cleanly when the
// replay link itself is faulted: the replay is skipped (entry stays
// owned by the dead node), nothing corrupts, and serving continues.
TEST_F(ChaosClusterTest, FaultedPushReplayDegradesCleanly) {
  chaos::FaultRegistry& registry = chaos::FaultRegistry::Instance();
  // Build up lookups so the fragment scores above min_score, then
  // invalidate to get a push routed (and recorded for replay).
  for (int i = 0; i < 6; ++i) {
    ASSERT_EQ(cluster_->Handle(PageRequest(0, "client" + std::to_string(i)))
                  .status_code,
              200);
  }
  repository_.GetOrCreateTable("items")->Upsert(
      "item-0", {{"v", storage::Value(999.0)}});
  ASSERT_GE(engine_->Drain(), 1u);
  ASSERT_GE(cluster_->stats().pushes_routed, 1u);

  chaos::FaultPoint* replay_point =
      chaos::FaultRegistry::Instance().GetPoint("edge.push.replay");
  uint64_t fired_before = replay_point->fired();
  uint64_t replays_before = cluster_->stats().push_replays;

  ASSERT_TRUE(registry.Arm("edge.push.replay=1:error", /*seed=*/5).ok());
  // Mark down whichever node owns the pushed fragment; the replay loop
  // hits the armed point for each orphaned entry and skips the re-send.
  for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
    ASSERT_TRUE(cluster_->MarkDown(node).ok());
    ASSERT_TRUE(cluster_->MarkUp(node).ok());
  }
  EXPECT_GT(replay_point->fired(), fired_before);
  EXPECT_EQ(cluster_->stats().push_replays, replays_before);

  // Replay faults never corrupt serving: disarm, and the cluster still
  // answers clean fresh pages.
  registry.DisarmAll();
  std::vector<std::string> oracle = ComputeOracle();
  for (int i = 0; i < 12; ++i) {
    http::Response response =
        cluster_->Handle(PageRequest(0, "client" + std::to_string(i)));
    ASSERT_EQ(response.status_code, 200);
    EXPECT_EQ(response.BodyText(), oracle[0]);
  }
}

// Acceptance sweep: every seam across all four layers (net, dpc, bem,
// edge) can be armed and actually fires under targeted traffic, with
// the degradation staying in the clean-failure classes.
TEST_F(ChaosClusterTest, EveryFaultPointFiresAcrossAllLayers) {
  chaos::FaultRegistry& registry = chaos::FaultRegistry::Instance();
  std::map<std::string, uint64_t> fired_before;
  auto fired = [&](const std::string& point) {
    return registry.GetPoint(point)->fired();
  };
  auto snapshot = [&](const std::string& point) {
    fired_before[point] = fired(point);
  };

  // --- net layer: a DPC over a pooled TCP upstream -----------------------
  net::TcpServer tcp_origin([](const http::Request&) {
    return http::Response::MakeOk("tcp origin page");
  });
  ASSERT_TRUE(tcp_origin.Start().ok());
  auto tcp_request = [&](const std::string& point,
                         const std::string& spec) {
    snapshot(point);
    ASSERT_TRUE(registry.Arm(spec, /*seed=*/21).ok());
    net::PooledTransportOptions pool_options;
    pool_options.pool.max_connections = 2;
    net::PooledClientTransport upstream("127.0.0.1", tcp_origin.port(),
                                        pool_options);
    dpc::ProxyOptions options;
    options.capacity = 8;
    dpc::DpcProxy proxy(&upstream, options);
    http::Request request;
    request.target = "/tcp";
    http::Response response = proxy.Handle(request);
    // Clean failure classes only; net.close (kills reuse post-response)
    // still serves 200.
    EXPECT_TRUE(response.status_code == 200 ||
                response.status_code == 502 ||
                response.status_code == 503)
        << point << " -> " << response.status_code;
    EXPECT_GT(fired(point), fired_before[point]) << point;
  };
  tcp_request("net.connect", "net.connect=1:error");
  tcp_request("net.pool.checkout", "net.pool.checkout=1:error");
  tcp_request("net.write", "net.write=1:error");
  tcp_request("net.read", "net.read=1:drop-conn");
  tcp_request("net.close", "net.close=1:drop-conn");
  tcp_origin.Stop();

  // --- dpc layer ---------------------------------------------------------
  {
    snapshot("dpc.upstream");
    ASSERT_TRUE(registry.Arm("dpc.upstream=1:error", 22).ok());
    net::DirectTransport upstream([](const http::Request&) {
      return http::Response::MakeOk("never reached");
    });
    dpc::ProxyOptions options;
    options.capacity = 8;
    dpc::DpcProxy proxy(&upstream, options);
    http::Request request;
    EXPECT_EQ(proxy.Handle(request).status_code, 502);
    EXPECT_GT(fired("dpc.upstream"), fired_before["dpc.upstream"]);
  }
  {
    snapshot("dpc.stream.prefetch");
    ASSERT_TRUE(registry.Arm("dpc.stream.prefetch=1:error", 23).ok());
    net::DirectTransport upstream([](const http::Request&) {
      http::Response response = http::Response::MakeOk("<template body>");
      response.headers.Set(bem::kTemplateHeader, "1");
      return response;
    });
    dpc::ProxyOptions options;
    options.capacity = 8;
    options.streaming = true;
    dpc::DpcProxy proxy(&upstream, options);
    http::Request request;
    EXPECT_EQ(proxy.Handle(request).status_code, 502);
    EXPECT_GT(fired("dpc.stream.prefetch"),
              fired_before["dpc.stream.prefetch"]);
  }
  {
    // dpc.stream.chunk needs a committed stream with the body still in
    // flight: a transport whose streaming path yields multiple chunks.
    class ChunkedTemplateTransport : public net::Transport {
     public:
      Result<http::Response> RoundTrip(const http::Request&) override {
        http::Response response =
            http::Response::MakeOk("<committed><tail>");
        response.headers.Set(bem::kTemplateHeader, "1");
        return response;
      }
      Result<net::StreamingResponse> RoundTripStreaming(
          const http::Request&) override {
        class Chunks : public http::BodyStream {
         public:
          Result<common::BufferChain> Next() override {
            common::BufferChain out;
            if (at_ == 0) out.AppendCopy("<committed>");
            if (at_ == 1) out.AppendCopy("<tail>");
            ++at_;
            return out;
          }

         private:
          int at_ = 0;
        };
        net::StreamingResponse streaming;
        streaming.head = http::Response::MakeOk("");
        streaming.head.headers.Set(bem::kTemplateHeader, "1");
        streaming.body = std::make_unique<Chunks>();
        return streaming;
      }
    } upstream;
    snapshot("dpc.stream.chunk");
    ASSERT_TRUE(registry.Arm("dpc.stream.chunk=1:error", 24).ok());
    dpc::ProxyOptions options;
    options.capacity = 8;
    options.streaming = true;
    dpc::DpcProxy proxy(&upstream, options);
    http::Request request;
    http::Response response = proxy.Handle(request);
    if (response.body_stream != nullptr) {
      // Drain: the armed chunk seam aborts mid-body — honest truncation.
      Status drained = Status::Ok();
      for (;;) {
        Result<common::BufferChain> chunk = response.body_stream->Next();
        if (!chunk.ok()) {
          drained = chunk.status();
          break;
        }
        if (chunk->empty()) break;
      }
      EXPECT_FALSE(drained.ok());
      EXPECT_EQ(proxy.stats().stream_aborts, 1u);
    }
    EXPECT_GT(fired("dpc.stream.chunk"), fired_before["dpc.stream.chunk"]);
  }

  // --- bem layer: the shared cluster stack -------------------------------
  auto cluster_request = [&](const std::string& point,
                             const std::string& spec, int page,
                             int expect_status) {
    snapshot(point);
    ASSERT_TRUE(registry.Arm(spec, /*seed=*/31).ok());
    http::Response response =
        cluster_->Handle(PageRequest(page, "sweep-client"));
    EXPECT_EQ(response.status_code, expect_status) << point;
    EXPECT_GT(fired(point), fired_before[point]) << point;
  };
  // Generator fault -> origin 500 passed through honestly.
  cluster_request("bem.block.generate", "bem.block.generate=1:error",
                  /*page=*/1, /*expect_status=*/500);
  // Directory insert fault -> uncacheable emit, page still correct.
  cluster_request("bem.directory.insert", "bem.directory.insert=1:error",
                  /*page=*/2, /*expect_status=*/200);
  {
    // Eviction fault: a tiny directory that must evict to admit.
    snapshot("bem.directory.evict");
    ASSERT_TRUE(registry.Arm("bem.directory.evict=1:error", 32).ok());
    bem::BemOptions small;
    small.capacity = 2;
    small.clock = &clock_;
    auto small_monitor = *bem::BackEndMonitor::Create(small);
    appserver::ScriptRegistry many;
    for (int n = 0; n < 6; ++n) {
      many.RegisterOrReplace(
          "/f" + std::to_string(n), [n](appserver::ScriptContext& context) {
            return context.CacheableBlock(
                bem::FragmentId("evict", {{"n", std::to_string(n)}}),
                [n](appserver::ScriptContext& ctx) {
                  ctx.Emit("frag" + std::to_string(n));
                  return Status::Ok();
                });
          });
    }
    appserver::OriginServer evict_origin(&many, &repository_,
                                         small_monitor.get());
    for (int n = 0; n < 6; ++n) {
      http::Request request;
      request.target = "/f" + std::to_string(n);
      // Insert beyond capacity trips EvictOne; the injected fault
      // degrades to an uncached emit — still a correct 200.
      http::Response response = evict_origin.Handle(request);
      EXPECT_EQ(response.status_code, 200);
      // Cached emits wrap the bytes in SET tags; uncached (eviction
      // faulted) emits are plain — either way the payload is intact.
      EXPECT_NE(response.BodyText().find("frag" + std::to_string(n)),
                std::string::npos);
    }
    EXPECT_GT(fired("bem.directory.evict"),
              fired_before["bem.directory.evict"]);
  }
  {
    // Push admission fault: invalidation is dropped to pull.
    snapshot("bem.push.admit");
    for (int i = 0; i < 6; ++i) {
      cluster_->Handle(PageRequest(3, "client" + std::to_string(i)));
    }
    ASSERT_TRUE(registry.Arm("bem.push.admit=1:error", 33).ok());
    repository_.GetOrCreateTable("items")->Upsert(
        "item-3", {{"v", storage::Value(42.0)}});
    EXPECT_GT(fired("bem.push.admit"), fired_before["bem.push.admit"]);
  }
  {
    // Push POST fault: drained push fails, falls back to pull.
    snapshot("bem.push.post");
    registry.DisarmAll();
    for (int i = 0; i < 6; ++i) {
      cluster_->Handle(PageRequest(3, "client" + std::to_string(i)));
    }
    ASSERT_TRUE(registry.Arm("bem.push.post=1:error", 34).ok());
    repository_.GetOrCreateTable("items")->Upsert(
        "item-3", {{"v", storage::Value(43.0)}});
    engine_->Drain();
    EXPECT_GT(fired("bem.push.post"), fired_before["bem.push.post"]);
  }

  // --- edge layer --------------------------------------------------------
  {
    // Peer fetch fault: a node that misses a fragment it does not own
    // asks the owner; the armed point degrades it to origin recovery.
    snapshot("edge.peer_fetch");
    registry.DisarmAll();
    for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
      cluster_->Handle(PageRequest(2, ClientOn(node)));
    }
    ASSERT_TRUE(registry.Arm("edge.peer_fetch=1:error", 35).ok());
    repository_.GetOrCreateTable("items")->Upsert(
        "item-2", {{"v", storage::Value(44.0)}});
    for (const char* node : {"edge-1", "edge-2", "edge-3"}) {
      http::Response response =
          cluster_->Handle(PageRequest(2, ClientOn(node)));
      EXPECT_EQ(response.status_code, 200);
    }
    EXPECT_GT(fired("edge.peer_fetch"), fired_before["edge.peer_fetch"]);
  }
  // edge.push.replay is exercised by FaultedPushReplayDegradesCleanly;
  // count it here too so this sweep documents full coverage.
  registry.DisarmAll();

  // The acceptance bar: >= 10 distinct points, across all 4 layers.
  std::vector<std::string> swept = {
      "net.connect",       "net.pool.checkout",    "net.write",
      "net.read",          "net.close",            "dpc.upstream",
      "dpc.stream.prefetch", "dpc.stream.chunk",   "bem.block.generate",
      "bem.directory.insert", "bem.directory.evict", "bem.push.admit",
      "bem.push.post",     "edge.peer_fetch"};
  std::map<std::string, int> layers;
  int fired_points = 0;
  for (const std::string& point : swept) {
    if (registry.GetPoint(point)->fired() > 0) {
      ++fired_points;
      layers[std::string(StrSplit(point, '.')[0])]++;
    }
  }
  EXPECT_GE(fired_points, 10);
  EXPECT_EQ(layers.size(), 4u) << "net, dpc, bem, edge";
}

// Reproducibility: an identical seed over an identical deterministic
// stack (sequential origin, DirectTransport, one proxy) replays the
// identical injection log and the identical response transcript.
TEST(ChaosReproducibilityTest, SameSeedReplaysSameInjectionLog) {
  auto run = [](uint64_t seed) {
    chaos::FaultRegistry& registry = chaos::FaultRegistry::Instance();
    registry.DisarmAll();

    SimClock clock;
    storage::ContentRepository repository;
    storage::Table* items = repository.GetOrCreateTable("items");
    for (int n = 0; n < kPages; ++n) {
      items->Upsert("item-" + std::to_string(n),
                    {{"v", storage::Value(static_cast<double>(n))}});
    }
    appserver::ScriptRegistry scripts;
    RegisterPages(&scripts);
    bem::BemOptions bem_options;
    bem_options.capacity = 32;
    bem_options.clock = &clock;
    auto monitor = *bem::BackEndMonitor::Create(bem_options);
    monitor->AttachRepository(&repository);
    appserver::OriginOptions origin_options;
    origin_options.clock = &clock;  // block_workers = 0: sequential.
    appserver::OriginServer origin(&scripts, &repository, monitor.get(),
                                   origin_options);
    net::DirectTransport upstream(origin.AsHandler());
    dpc::ProxyOptions options;
    options.capacity = 32;
    options.clock = &clock;
    dpc::DpcProxy proxy(&upstream, options);

    EXPECT_TRUE(registry
                    .Arm("dpc.upstream=0.3:error,"
                         "bem.directory.insert=0.2:error,"
                         "bem.block.generate=0.2:error",
                         seed)
                    .ok());
    Rng workload(0xFEEDu);
    std::vector<int> transcript;
    for (int i = 0; i < 120; ++i) {
      http::Request request;
      request.target = PagePath(ZipfPick(workload, kPages));
      transcript.push_back(proxy.Handle(request).status_code);
    }
    std::pair<std::vector<std::string>, std::vector<int>> out = {
        registry.InjectionLog(), transcript};
    registry.DisarmAll();
    return out;
  };

  auto first = run(12345);
  auto second = run(12345);
  EXPECT_EQ(first.first, second.first);    // Injection log, entry for entry.
  EXPECT_EQ(first.second, second.second);  // Status transcript.
  EXPECT_FALSE(first.first.empty());
  // A different seed produces a different fault pattern.
  auto third = run(99999);
  EXPECT_NE(first.first, third.first);
}

}  // namespace
}  // namespace dynaprox
