// Adversarial split-boundary suite for the streaming scan-and-splice
// pipeline: StreamingScanner must accept exactly the template language
// ParseTemplate accepts and produce the same segment stream, no matter
// where the network happens to slice the bytes. Every template in the
// corpus below is replayed (a) one byte per Feed and (b) split into two
// chunks at every byte boundary, so a tag marker, hex key, ETX, SET end,
// or literal escape landing astride a read boundary is exercised for
// every position. StreamingAssembler rides the same corpus and must emit
// the buffered AssemblePage bytes exactly.

#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bem/tag_codec.h"
#include "common/buffer_chain.h"
#include "common/rng.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"
#include "dpc/tag_scanner.h"

namespace dynaprox::dpc {
namespace {

using Kind = TemplateSegment::Kind;

// A buffered parse merges adjacent literal runs into one segment; the
// streaming scanner flushes a literal at each chunk boundary. Folding
// adjacent literals (and dropping empty ones) gives the canonical stream
// both must agree on.
struct NormSegment {
  Kind kind;
  bem::DpcKey key;
  std::string text;

  bool operator==(const NormSegment& other) const {
    return kind == other.kind && key == other.key && text == other.text;
  }
};

void FoldLiteral(std::vector<NormSegment>& out, std::string text) {
  if (text.empty()) return;
  if (!out.empty() && out.back().kind == Kind::kLiteral) {
    out.back().text += text;
    return;
  }
  out.push_back({Kind::kLiteral, bem::kInvalidDpcKey, std::move(text)});
}

std::vector<NormSegment> Normalize(
    const std::vector<TemplateSegment>& segments) {
  std::vector<NormSegment> out;
  for (const TemplateSegment& segment : segments) {
    if (segment.kind == Kind::kLiteral) {
      FoldLiteral(out, segment.Text());
    } else {
      out.push_back({segment.kind, segment.key, segment.Text()});
    }
  }
  return out;
}

std::vector<NormSegment> Normalize(
    const std::vector<StreamSegment>& segments) {
  std::vector<NormSegment> out;
  for (const StreamSegment& segment : segments) {
    if (segment.kind == Kind::kLiteral) {
      FoldLiteral(out, segment.Text());
    } else {
      out.push_back({segment.kind, segment.key, segment.Text()});
    }
  }
  return out;
}

// Runs a fresh StreamingScanner over `wire` sliced into `chunks`
// (concatenation must equal wire; asserted by the callers' construction).
Result<std::vector<StreamSegment>> ScanChunked(
    const std::vector<std::string>& chunks, ScanStrategy strategy) {
  StreamingScanner scanner(strategy);
  std::vector<StreamSegment> segments;
  for (const std::string& chunk : chunks) {
    Status fed = scanner.Feed(common::MakeBuffer(chunk), segments);
    if (!fed.ok()) return fed;
  }
  Status finished = scanner.Finish(segments);
  if (!finished.ok()) return finished;
  return segments;
}

std::vector<std::string> ByteAtATime(std::string_view wire) {
  std::vector<std::string> chunks;
  chunks.reserve(wire.size());
  for (char byte : wire) chunks.emplace_back(1, byte);
  return chunks;
}

// The template corpus: every shape the grammar admits plus every
// rejection class, mirroring fuzz/corpus/template. Hostile cases are
// expected to fail identically under any chunking.
std::vector<std::string> CorpusTemplates() {
  std::vector<std::string> corpus;
  corpus.push_back("");                        // Empty template.
  corpus.push_back("<html>plain text</html>"); // Literal only.
  {
    std::string wire;  // SET alone.
    bem::TagCodec::AppendSet(0x2A, "fragment body", wire);
    corpus.push_back(wire);
  }
  {
    std::string wire;  // SET then GET of the same key.
    bem::TagCodec::AppendSet(7, "cached", wire);
    bem::TagCodec::AppendLiteral("-mid-", wire);
    bem::TagCodec::AppendGet(7, wire);
    corpus.push_back(wire);
  }
  {
    std::string wire;  // Escaped STX/ETX in literal and SET body.
    bem::TagCodec::AppendLiteral("a\x02b\x03c", wire);
    bem::TagCodec::AppendSet(1, "x\x02y", wire);
    bem::TagCodec::AppendGet(1, wire);
    corpus.push_back(wire);
  }
  {
    std::string wire;  // Widest admissible key (8 hex digits, not the
                       // sentinel) and a one-digit key.
    bem::TagCodec::AppendSet(0xFFFFFFFE, "wide", wire);
    bem::TagCodec::AppendGet(0xFFFFFFFE, wire);
    bem::TagCodec::AppendGet(0x1, wire);
    corpus.push_back(wire);
  }
  {
    std::string wire;  // Adjacent SET blocks, empty SET body.
    bem::TagCodec::AppendSet(1, "", wire);
    bem::TagCodec::AppendSet(2, "two", wire);
    corpus.push_back(wire);
  }
  // Rejection classes (same bytes as the adversarial suite).
  corpus.push_back("\x02");                           // Bare STX at EOF.
  corpus.push_back("abc\x02S1A");                     // Truncated SET open.
  corpus.push_back("\x02S2A\x03 dangling set body");  // Unterminated SET.
  corpus.push_back("\x02G1F trailing, no ETX");       // GET missing ETX.
  corpus.push_back("\x02S1\x03 a\x02S2\x03 b");       // Nested SET.
  corpus.push_back("\x02S1\x03 a\x02G2\x03");         // GET inside SET.
  corpus.push_back("\x02" "E\x03");                   // SET end, no open.
  corpus.push_back("\x02Q\x03");                      // Unknown marker.
  corpus.push_back("\x02Gzz\x03");                    // Non-hex key.
  corpus.push_back("\x02G\x03");                      // Empty key.
  corpus.push_back("\x02G1ffffffff\x03");             // Key over 32 bits.
  corpus.push_back("\x02GFFFFFFFF\x03");              // Sentinel key.
  corpus.push_back("\x02SFFFFFFFF\x03");              // Sentinel SET key.
  corpus.push_back("\x02G000000001\x03");             // Zero-padded run.
  corpus.push_back("\x02L");                          // Truncated escape.
  corpus.push_back("\x02Lx");                         // Bad escape byte.
  return corpus;
}

class StreamingScannerTest : public ::testing::TestWithParam<ScanStrategy> {
 protected:
  void ExpectEquivalent(std::string_view wire,
                        const std::vector<std::string>& chunks,
                        const char* how) {
    Result<std::vector<TemplateSegment>> buffered =
        ParseTemplate(wire, GetParam());
    Result<std::vector<StreamSegment>> streamed =
        ScanChunked(chunks, GetParam());
    ASSERT_EQ(buffered.ok(), streamed.ok())
        << how << " diverged on acceptance for: "
        << testing::PrintToString(std::string(wire))
        << " buffered=" << buffered.status().ToString()
        << " streamed=" << streamed.status().ToString();
    if (!buffered.ok()) {
      // Accept/reject must agree; the exact truncation message may not.
      EXPECT_EQ(streamed.status().code(), StatusCode::kCorruption) << how;
      return;
    }
    EXPECT_TRUE(Normalize(*buffered) == Normalize(*streamed))
        << how << " diverged on segments for: "
        << testing::PrintToString(std::string(wire));
  }
};

TEST_P(StreamingScannerTest, EverySingleByteChunkingMatchesBuffered) {
  for (const std::string& wire : CorpusTemplates()) {
    ExpectEquivalent(wire, ByteAtATime(wire), "byte-at-a-time");
  }
}

TEST_P(StreamingScannerTest, EveryTwoChunkSplitMatchesBuffered) {
  for (const std::string& wire : CorpusTemplates()) {
    for (size_t split = 0; split <= wire.size(); ++split) {
      std::vector<std::string> chunks = {wire.substr(0, split),
                                         wire.substr(split)};
      ExpectEquivalent(wire, chunks,
                       ("split@" + std::to_string(split)).c_str());
    }
  }
}

TEST_P(StreamingScannerTest, WholeTemplateInOneFeedMatchesBuffered) {
  for (const std::string& wire : CorpusTemplates()) {
    ExpectEquivalent(wire, {wire}, "one-chunk");
  }
}

TEST_P(StreamingScannerTest, RandomChunkingsMatchBuffered) {
  Rng rng(0x5EED5EEDu);
  for (const std::string& wire : CorpusTemplates()) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::string> chunks;
      size_t at = 0;
      while (at < wire.size()) {
        size_t take = 1 + rng.NextBounded(7);
        take = std::min(take, wire.size() - at);
        chunks.push_back(wire.substr(at, take));
        at += take;
      }
      ExpectEquivalent(wire, chunks, "random-chunking");
    }
  }
}

TEST_P(StreamingScannerTest, ErrorIsSticky) {
  StreamingScanner scanner(GetParam());
  std::vector<StreamSegment> segments;
  Status first = scanner.Feed(common::MakeBuffer("\x02Q\x03"), segments);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(scanner.failed());
  Status second = scanner.Feed(common::MakeBuffer("plain"), segments);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.ToString(), first.ToString());
  EXPECT_FALSE(scanner.Finish(segments).ok());
}

TEST_P(StreamingScannerTest, SegmentsOutliveTheirChunks) {
  // A SET body spanning three chunks: once the segment resolves, its
  // pieces must stay valid even though the scanner has moved on and the
  // test dropped its own references to the chunk buffers.
  std::string wire;
  bem::TagCodec::AppendSet(5, "alpha-beta-gamma", wire);
  StreamingScanner scanner(GetParam());
  std::vector<StreamSegment> segments;
  size_t third = wire.size() / 3;
  ASSERT_TRUE(scanner
                  .Feed(common::MakeBuffer(wire.substr(0, third)), segments)
                  .ok());
  ASSERT_TRUE(
      scanner.Feed(common::MakeBuffer(wire.substr(third, third)), segments)
          .ok());
  ASSERT_TRUE(
      scanner.Feed(common::MakeBuffer(wire.substr(2 * third)), segments)
          .ok());
  ASSERT_TRUE(scanner.Finish(segments).ok());
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].kind, Kind::kSet);
  EXPECT_EQ(segments[0].key, 5u);
  EXPECT_EQ(segments[0].Text(), "alpha-beta-gamma");
  for (const StreamPiece& piece : segments[0].pieces) {
    EXPECT_NE(piece.owner, nullptr);
  }
}

TEST_P(StreamingScannerTest, HoldbackBoundedByOpenSetPlusPartialTag) {
  // Literals flush at every chunk boundary, so holdback while scanning
  // plain text never exceeds a partial tag. Inside a SET the body
  // accumulates — but only the body, never earlier page bytes.
  constexpr size_t kMaxPartialTag = 2 + kMaxKeyHexDigits + 1;
  std::string body(256, 'f');
  std::string wire = std::string(4096, 'a');
  bem::TagCodec::AppendSet(3, body, wire);
  wire += std::string(4096, 'z');

  StreamingScanner scanner(GetParam());
  std::vector<StreamSegment> segments;
  size_t peak = 0;
  for (char byte : wire) {
    ASSERT_TRUE(scanner
                    .Feed(common::MakeBuffer(std::string(1, byte)),
                          segments)
                    .ok());
    peak = std::max(peak, scanner.buffered_bytes());
  }
  ASSERT_TRUE(scanner.Finish(segments).ok());
  EXPECT_LE(peak, body.size() + kMaxPartialTag);
  EXPECT_EQ(scanner.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StreamingScannerTest,
                         ::testing::Values(ScanStrategy::kMemchr,
                                           ScanStrategy::kByteLoop));

// --- StreamingAssembler ---------------------------------------------------

std::string AssembleChunked(const std::string& wire, FragmentStore& store,
                            size_t chunk_size,
                            StreamingAssembler::MissResolver resolver,
                            Status* status_out = nullptr) {
  StreamingAssembler assembler(store, ScanStrategy::kMemchr,
                               std::move(resolver));
  common::BufferChain out;
  for (size_t at = 0; at < wire.size(); at += chunk_size) {
    Status fed = assembler.Feed(
        common::MakeBuffer(wire.substr(at, chunk_size)), out);
    if (!fed.ok()) {
      if (status_out != nullptr) *status_out = fed;
      return out.Flatten();
    }
  }
  Status finished = assembler.Finish(out);
  if (status_out != nullptr) *status_out = finished;
  return out.Flatten();
}

TEST(StreamingAssemblerTest, MatchesBufferedAssemblyAtEveryChunkSize) {
  std::string wire = "head:";
  bem::TagCodec::AppendSet(1, "fragment one", wire);
  bem::TagCodec::AppendLiteral("-\x02-", wire);
  bem::TagCodec::AppendGet(1, wire);
  bem::TagCodec::AppendSet(2, "fragment\x03two", wire);
  bem::TagCodec::AppendGet(2, wire);
  wire += ":tail";

  FragmentStore reference_store(64);
  Result<AssembledPage> reference = AssemblePage(wire, reference_store);
  ASSERT_TRUE(reference.ok());

  for (size_t chunk_size : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                            wire.size(), wire.size() + 17}) {
    FragmentStore store(64);
    Status status;
    std::string streamed =
        AssembleChunked(wire, store, chunk_size, nullptr, &status);
    ASSERT_TRUE(status.ok()) << "chunk_size=" << chunk_size << ": "
                             << status.ToString();
    EXPECT_EQ(streamed, reference->Text()) << "chunk_size=" << chunk_size;
    // The store ends up in the same state as the buffered path.
    Result<FragmentRef> stored = store.Get(1);
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(**stored, "fragment one");
  }
}

TEST(StreamingAssemblerTest, ProgressCountsMatchBufferedAccounting) {
  std::string wire;
  bem::TagCodec::AppendLiteral("lit", wire);
  bem::TagCodec::AppendSet(1, "stored", wire);
  bem::TagCodec::AppendGet(1, wire);

  FragmentStore store(16);
  StreamingAssembler assembler(store);
  common::BufferChain out;
  ASSERT_TRUE(assembler.Feed(common::MakeBuffer(wire), out).ok());
  ASSERT_TRUE(assembler.Finish(out).ok());
  EXPECT_EQ(assembler.progress().set_count, 1u);
  EXPECT_EQ(assembler.progress().get_count, 1u);
  EXPECT_EQ(assembler.progress().bytes_copied, 6u);  // "stored" once.
  // "lit" by reference + the GET splice of the shared fragment.
  EXPECT_EQ(assembler.progress().bytes_referenced, 3u + 6u);
}

TEST(StreamingAssemblerTest, MissResolverSuppliesColdFragment) {
  std::string wire = "[";
  bem::TagCodec::AppendGet(0x9, wire);
  wire += "]";

  FragmentStore store(16);
  int calls = 0;
  StreamingAssembler assembler(
      store, ScanStrategy::kMemchr,
      [&calls](bem::DpcKey key) -> Result<FragmentRef> {
        ++calls;
        EXPECT_EQ(key, 0x9u);
        return std::make_shared<const std::string>("recovered");
      });
  common::BufferChain out;
  ASSERT_TRUE(assembler.Feed(common::MakeBuffer(wire), out).ok());
  ASSERT_TRUE(assembler.Finish(out).ok());
  EXPECT_EQ(out.Flatten(), "[recovered]");
  EXPECT_EQ(calls, 1);
}

TEST(StreamingAssemblerTest, MissWithoutResolverFailsTheStream) {
  std::string wire;
  bem::TagCodec::AppendGet(0x9, wire);
  FragmentStore store(16);
  StreamingAssembler assembler(store);
  common::BufferChain out;
  Status fed = assembler.Feed(common::MakeBuffer(wire), out);
  EXPECT_FALSE(fed.ok());
  EXPECT_TRUE(fed.IsNotFound()) << fed.ToString();
}

TEST(StreamingAssemblerTest, ResolverErrorAbortsWithThatStatus) {
  std::string wire;
  bem::TagCodec::AppendGet(0x9, wire);
  FragmentStore store(16);
  StreamingAssembler assembler(
      store, ScanStrategy::kMemchr,
      [](bem::DpcKey) -> Result<FragmentRef> {
        return Status::IoError("origin unreachable");
      });
  common::BufferChain out;
  Status fed = assembler.Feed(common::MakeBuffer(wire), out);
  EXPECT_FALSE(fed.ok());
  EXPECT_EQ(fed.code(), StatusCode::kIoError) << fed.ToString();
}

TEST(StreamingAssemblerTest, ResolverNotConsultedForWarmKeys) {
  std::string wire;
  bem::TagCodec::AppendGet(0x4, wire);
  FragmentStore store(16);
  ASSERT_TRUE(
      store.Set(0x4, std::make_shared<const std::string>("warm")).ok());
  int calls = 0;
  StreamingAssembler assembler(store, ScanStrategy::kMemchr,
                               [&calls](bem::DpcKey) -> Result<FragmentRef> {
                                 ++calls;
                                 return Status::Internal("unexpected");
                               });
  common::BufferChain out;
  ASSERT_TRUE(assembler.Feed(common::MakeBuffer(wire), out).ok());
  ASSERT_TRUE(assembler.Finish(out).ok());
  EXPECT_EQ(out.Flatten(), "warm");
  EXPECT_EQ(calls, 0);
}

TEST(StreamingAssemblerTest, EarlyBytesFlushBeforeTemplateEnds) {
  // The point of streaming: bytes before an open SET are already in the
  // output chain while the template tail has not been fed yet.
  std::string wire = std::string(1024, 'h');
  bem::TagCodec::AppendSet(1, "tail fragment", wire);

  FragmentStore store(16);
  StreamingAssembler assembler(store);
  common::BufferChain out;
  ASSERT_TRUE(
      assembler.Feed(common::MakeBuffer(wire.substr(0, 1024)), out).ok());
  EXPECT_EQ(out.size(), 1024u);  // Head flushed, template still open.
  ASSERT_TRUE(assembler.Feed(common::MakeBuffer(wire.substr(1024)), out).ok());
  ASSERT_TRUE(assembler.Finish(out).ok());
  EXPECT_EQ(out.Flatten(), std::string(1024, 'h') + "tail fragment");
}

}  // namespace
}  // namespace dynaprox::dpc
