#include "edge/edge_origin.h"

namespace dynaprox::edge {

EdgeOrigin::EdgeOrigin(const appserver::ScriptRegistry* registry,
                       storage::ContentRepository* repository,
                       bem::BemOptions bem_options,
                       appserver::OriginOptions origin_options)
    : registry_(registry),
      repository_(repository),
      bem_options_(bem_options),
      origin_options_(origin_options) {}

Status EdgeOrigin::AddEdge(const std::string& edge_id) {
  if (edges_.find(edge_id) != edges_.end()) {
    return Status::AlreadyExists("edge exists: " + edge_id);
  }
  Result<std::unique_ptr<bem::BackEndMonitor>> monitor =
      bem::BackEndMonitor::Create(bem_options_);
  if (!monitor.ok()) return monitor.status();
  Edge edge;
  edge.monitor = std::move(*monitor);
  edge.monitor->AttachRepository(repository_);
  edge.server = std::make_unique<appserver::OriginServer>(
      registry_, repository_, edge.monitor.get(), origin_options_);
  edges_.emplace(edge_id, std::move(edge));
  return Status::Ok();
}

http::Response EdgeOrigin::Handle(const http::Request& request) {
  auto edge_id = request.headers.Get(kEdgeHeader);
  if (!edge_id.has_value()) {
    return http::Response::MakeError(400, "Bad Request",
                                     "missing X-DPC-Edge header");
  }
  auto it = edges_.find(std::string(*edge_id));
  if (it == edges_.end()) {
    return http::Response::MakeError(
        400, "Bad Request", "unknown edge: " + std::string(*edge_id));
  }
  return it->second.server->Handle(request);
}

net::Handler EdgeOrigin::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

Result<const bem::BackEndMonitor*> EdgeOrigin::MonitorFor(
    const std::string& edge_id) const {
  auto it = edges_.find(edge_id);
  if (it == edges_.end()) {
    return Status::NotFound("unknown edge: " + edge_id);
  }
  return static_cast<const bem::BackEndMonitor*>(it->second.monitor.get());
}

Result<appserver::OriginStats> EdgeOrigin::StatsFor(
    const std::string& edge_id) const {
  auto it = edges_.find(edge_id);
  if (it == edges_.end()) {
    return Status::NotFound("unknown edge: " + edge_id);
  }
  return it->second.server->stats();
}

}  // namespace dynaprox::edge
