#include "appserver/personalization.h"

#include <gtest/gtest.h>

namespace dynaprox::appserver {
namespace {

void SeedRepository(storage::ContentRepository& repository) {
  storage::Table* users = repository.GetOrCreateTable(kUsersTable);
  users->Upsert("bob", {{"name", storage::Value(std::string("Bob"))},
                        {"category", storage::Value(std::string("fiction"))},
                        {"layout",
                         storage::Value(std::string("catalog,navbar"))}});
  users->Upsert("minimal", {});
  storage::Table* products = repository.GetOrCreateTable(kProductsTable);
  products->Upsert("b1", {{"title", storage::Value(std::string("Dune"))},
                          {"category",
                           storage::Value(std::string("fiction"))},
                          {"price", storage::Value(9.99)}});
  products->Upsert("b2",
                   {{"title", storage::Value(std::string("SICP"))},
                    {"category", storage::Value(std::string("tech"))},
                    {"price", storage::Value(39.99)}});
  products->Upsert("b3",
                   {{"title", storage::Value(std::string("Hyperion"))},
                    {"category", storage::Value(std::string("fiction"))},
                    {"price", storage::Value(7.50)}});
}

TEST(PersonalizationTest, LoadProfileReadsColumns) {
  storage::ContentRepository repository;
  SeedRepository(repository);
  Result<UserProfile> profile = LoadProfile(repository, "bob");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->display_name, "Bob");
  EXPECT_EQ(profile->preferred_category, "fiction");
  ASSERT_EQ(profile->layout.size(), 2u);
  EXPECT_EQ(profile->layout[0], "catalog");
  EXPECT_EQ(profile->layout[1], "navbar");
}

TEST(PersonalizationTest, MissingColumnsGetDefaults) {
  storage::ContentRepository repository;
  SeedRepository(repository);
  Result<UserProfile> profile = LoadProfile(repository, "minimal");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->display_name, "minimal");
  EXPECT_EQ(profile->layout, DefaultLayout());
}

TEST(PersonalizationTest, UnknownUserIsNotFound) {
  storage::ContentRepository repository;
  SeedRepository(repository);
  EXPECT_TRUE(LoadProfile(repository, "ghost").status().IsNotFound());
}

TEST(PersonalizationTest, MissingUsersTableIsNotFound) {
  storage::ContentRepository repository;
  EXPECT_TRUE(LoadProfile(repository, "bob").status().IsNotFound());
}

TEST(PersonalizationTest, RecommendFiltersByCategory) {
  storage::ContentRepository repository;
  SeedRepository(repository);
  UserProfile profile = *LoadProfile(repository, "bob");
  Result<std::vector<ProductPick>> picks =
      RecommendProducts(repository, profile, 10);
  ASSERT_TRUE(picks.ok());
  ASSERT_EQ(picks->size(), 2u);
  EXPECT_EQ((*picks)[0].title, "Dune");
  EXPECT_EQ((*picks)[1].title, "Hyperion");
  EXPECT_DOUBLE_EQ((*picks)[0].price, 9.99);
}

TEST(PersonalizationTest, RecommendHonorsLimit) {
  storage::ContentRepository repository;
  SeedRepository(repository);
  UserProfile profile = *LoadProfile(repository, "bob");
  Result<std::vector<ProductPick>> picks =
      RecommendProducts(repository, profile, 1);
  ASSERT_TRUE(picks.ok());
  EXPECT_EQ(picks->size(), 1u);
}

}  // namespace
}  // namespace dynaprox::appserver
