file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/driver_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/driver_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/personalized_site_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/personalized_site_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/request_stream_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/request_stream_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/synthetic_site_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/synthetic_site_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/trace_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/trace_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
