#include "workload/synthetic_site.h"

#include <cmath>

#include "common/strings.h"
#include "storage/value.h"

namespace dynaprox::workload {
namespace {

constexpr char kContentTable[] = "content";

std::string SlotRowKey(int slot) { return "s" + std::to_string(slot); }

}  // namespace

SyntheticSite::SyntheticSite(const analytical::ModelParams& params,
                             uint64_t seed,
                             storage::ContentRepository* repository,
                             appserver::ScriptRegistry* registry,
                             SyntheticSiteOptions options)
    : params_(params),
      options_(options),
      spec_(analytical::SiteSpec::Uniform(params)),
      repository_(repository),
      rng_(seed) {
  int total_positions = params.num_pages * params.fragments_per_page;
  int slots = options_.fragment_pool > 0
                  ? std::min(options_.fragment_pool, total_positions)
                  : total_positions;
  versions_.assign(static_cast<size_t>(slots), 0);

  // Seed the data layer: one repository row per fragment slot holding its
  // pad text, so generation exercises the data-access path on every miss.
  storage::Table* content = repository_->GetOrCreateTable(kContentTable);
  size_t size = static_cast<size_t>(std::llround(params.fragment_size));
  for (int slot = 0; slot < slots; ++slot) {
    storage::Row row;
    row["pad"] = std::string(size, static_cast<char>('a' + slot % 26));
    content->Upsert(SlotRowKey(slot), std::move(row));
  }

  registry->RegisterOrReplace(
      "/page", [this](appserver::ScriptContext& context) {
        return RunPageScript(context);
      });
}

int SyntheticSite::SlotFor(int page, int index) const {
  int position = page * params_.fragments_per_page + index;
  return position % static_cast<int>(versions_.size());
}

std::string SyntheticSite::FragmentBody(int slot, uint64_t version) const {
  size_t size = static_cast<size_t>(std::llround(params_.fragment_size));
  std::string prefix = "<div id=\"" + SlotRowKey(slot) + "\" v=\"" +
                       std::to_string(version) + "\">";
  constexpr std::string_view kSuffix = "</div>";
  if (prefix.size() + kSuffix.size() > size) {
    // Tiny fragments: raw deterministic filler of the exact size.
    return std::string(size, static_cast<char>('A' + slot % 26));
  }
  Result<storage::Row> row =
      repository_->GetOrCreateTable(kContentTable)->Get(SlotRowKey(slot));
  std::string pad = row.ok() ? storage::GetString(*row, "pad") : std::string();
  size_t pad_needed = size - prefix.size() - kSuffix.size();
  if (pad.size() < pad_needed) pad.resize(pad_needed, 'z');

  std::string body = std::move(prefix);
  body.append(pad, 0, pad_needed);
  body.append(kSuffix);
  return body;
}

Status SyntheticSite::RunPageScript(appserver::ScriptContext& context) {
  auto query = context.request().QueryParams();
  auto id_it = query.find("id");
  Result<uint64_t> page_id =
      id_it == query.end() ? Result<uint64_t>(Status::InvalidArgument("no id"))
                           : ParseUint64(id_it->second);
  if (!page_id.ok() ||
      *page_id >= static_cast<uint64_t>(spec_.pages.size())) {
    context.SetStatus(404);
    context.Emit("unknown page");
    return Status::Ok();
  }

  int page = static_cast<int>(*page_id);
  const analytical::PageSpec& page_spec = spec_.pages[page];
  for (int index = 0; index < static_cast<int>(page_spec.fragments.size());
       ++index) {
    const analytical::FragmentSpec& fragment = page_spec.fragments[index];
    int slot = SlotFor(page, index);
    if (!fragment.cacheable || !context.caching_enabled()) {
      context.Emit(FragmentBody(slot, 0));
      continue;
    }
    // Hit-ratio control: bump the version with probability (1 - h).
    // Server threads run this script concurrently; the version/RNG state
    // is shared across all of them.
    uint64_t version;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      ++accesses_;
      if (rng_.NextBool(1.0 - params_.hit_ratio)) {
        ++bumps_;
        ++versions_[slot];
      }
      version = versions_[slot];
    }
    bem::FragmentId fragment_id(SlotRowKey(slot),
                                {{"v", std::to_string(version)}});
    Status status = context.CacheableBlock(
        fragment_id, /*ttl_micros=*/0,
        [this, slot, version](appserver::ScriptContext& block) {
          block.DeclareDependency(kContentTable, SlotRowKey(slot));
          block.Emit(FragmentBody(slot, version));
          return Status::Ok();
        });
    DYNAPROX_RETURN_IF_ERROR(status);
  }
  return Status::Ok();
}

}  // namespace dynaprox::workload
