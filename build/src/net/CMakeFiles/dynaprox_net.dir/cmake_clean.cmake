file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_net.dir/epoll_server.cc.o"
  "CMakeFiles/dynaprox_net.dir/epoll_server.cc.o.d"
  "CMakeFiles/dynaprox_net.dir/tcp.cc.o"
  "CMakeFiles/dynaprox_net.dir/tcp.cc.o.d"
  "libdynaprox_net.a"
  "libdynaprox_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
