#ifndef DYNAPROX_DPC_PROXY_H_
#define DYNAPROX_DPC_PROXY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "bem/protocol.h"
#include "common/result.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"
#include "dpc/static_cache.h"
#include "net/transport.h"

namespace dynaprox::net {
class ConnectionPool;
}

namespace dynaprox::dpc {

// Optional debug header summarizing assembly on each response. The
// protocol headers shared with the BEM live in bem/protocol.h.
inline constexpr char kDebugHeader[] = "X-DPC";

struct ProxyOptions {
  // Slot count; must equal the BEM's capacity.
  bem::DpcKey capacity = 4096;
  ScanStrategy scan_strategy = ScanStrategy::kMemchr;
  // Retries after a cold-cache GET miss before giving up with 502. With a
  // pooled upstream, a refresh round trip can race a concurrent request
  // whose SET is still in flight and miss again, so allow more than one.
  int max_recovery_attempts = 3;
  // Reject templates larger than this (bytes) with 502; 0 = unlimited.
  // A resource guard against a misbehaving origin.
  size_t max_template_bytes = 0;
  bool add_debug_header = false;
  // Also cache untagged (static) responses per their Cache-Control, the
  // way ISA Server's ordinary proxy cache did in the paper's testbed.
  bool enable_static_cache = false;
  StaticCacheOptions static_cache;
  // Serve a JSON status document (proxy counters, store occupancy) at
  // status_path instead of forwarding it upstream.
  bool enable_status = false;
  std::string status_path = "/_dynaprox/status";
  // When the upstream transport is pooled, exposes the pool's gauges in
  // the status document (docs/upstream-pooling.md). Not owned; may be
  // null; must outlive the proxy when set.
  const net::ConnectionPool* upstream_pool = nullptr;
  // Standard intermediary behaviour: strip hop-by-hop request headers
  // before forwarding and append Via on both legs. Off by default so the
  // byte-accounting experiments measure exactly the modeled payloads.
  bool proxy_headers = false;
  std::string via_token = "1.1 dynaprox-dpc";
};

struct ProxyStats {
  uint64_t requests = 0;
  uint64_t passthrough = 0;   // Non-template upstream responses.
  uint64_t assembled = 0;     // Successfully assembled pages.
  uint64_t recoveries = 0;    // Cold-cache refresh round-trips.
  uint64_t upstream_errors = 0;
  uint64_t template_errors = 0;
  uint64_t static_hits = 0;           // Served from the static cache.
  uint64_t static_revalidations = 0;  // Served after an upstream 304.
  uint64_t bytes_from_upstream = 0;  // Template/page bytes received.
  uint64_t bytes_to_clients = 0;     // Assembled body bytes sent.
};

// The Dynamic Proxy Cache (paper 4.3.3) in reverse-proxy mode: stores
// fragments, scans templates, assembles pages. All cache-management
// decisions are made by the BEM at the origin; the DPC only executes
// SET/GET instructions embedded in responses.
//
// Thread-safe: requests may be served from many connection threads. The
// upstream transport must be safe for concurrent RoundTrip calls (or each
// thread must use its own proxy-to-origin connection).
class DpcProxy {
 public:
  // `upstream` carries requests to the origin site and must outlive the
  // proxy.
  DpcProxy(net::Transport* upstream, ProxyOptions options);

  // Serves one client request.
  http::Response Handle(const http::Request& request);

  // Adapter so the proxy can sit behind net::TcpServer / DirectTransport.
  net::Handler AsHandler();

  // Models a DPC crash/restart: all slots empty, directory at the BEM
  // unaware — exercises the miss-recovery path. Also empties the static
  // cache.
  void ClearCache() {
    store_.Clear();
    if (static_cache_ != nullptr) static_cache_->Clear();
  }

  const FragmentStore& store() const { return store_; }
  // Null unless enable_static_cache was set.
  const StaticCache* static_cache() const { return static_cache_.get(); }
  // Snapshot of the serving counters.
  ProxyStats stats() const;

 private:
  http::Response BuildAssembledResponse(const http::Response& upstream,
                                        AssembledPage page);
  http::Response RenderStatus() const;

  net::Transport* upstream_;
  ProxyOptions options_;
  FragmentStore store_;
  std::unique_ptr<StaticCache> static_cache_;  // Null when disabled.
  mutable std::mutex stats_mu_;
  ProxyStats stats_;
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_PROXY_H_
