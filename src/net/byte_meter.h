#ifndef DYNAPROX_NET_BYTE_METER_H_
#define DYNAPROX_NET_BYTE_METER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dynaprox::net {

// Models network-protocol overhead the way the paper's Sniffer measurements
// include it: TCP/IP headers per packet plus fixed per-message cost. The
// paper explains the analytical-vs-experimental gap in Figures 3(b)/5/6 by
// exactly this overhead, so the simulation makes it explicit.
struct ProtocolModel {
  // Per-packet header bytes (IPv4 20 + TCP 20).
  size_t per_packet_header_bytes = 40;
  // Maximum segment size (Ethernet MTU 1500 - 40).
  size_t mss_bytes = 1460;
  // Fixed per-message cost (connection handshake amortization, ACKs).
  size_t per_message_bytes = 120;

  // A model that counts application payload only (the paper's analytical
  // expressions ignore protocol headers).
  static ProtocolModel PayloadOnly() { return ProtocolModel{0, 1460, 0}; }

  // Wire bytes for a message of `payload` application bytes.
  size_t WireBytes(size_t payload) const {
    size_t packets = payload == 0 ? 1 : (payload + mss_bytes - 1) / mss_bytes;
    return payload + packets * per_packet_header_bytes + per_message_bytes;
  }
};

// Accumulates traffic statistics for one measurement point (e.g. the link
// between the origin site and the DPC). This is the reproduction's stand-in
// for the Sniffer network monitor in Figure 4. Thread-safe (counters are
// atomic; messages crossing a shared link may come from many connections).
class ByteMeter {
 public:
  ByteMeter() = default;
  explicit ByteMeter(ProtocolModel model) : model_(model) {}

  ByteMeter(const ByteMeter&) = delete;
  ByteMeter& operator=(const ByteMeter&) = delete;

  // Records one message of `payload_bytes` application bytes.
  void RecordMessage(size_t payload_bytes) {
    messages_.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    wire_bytes_.fetch_add(model_.WireBytes(payload_bytes),
                          std::memory_order_relaxed);
  }

  // Records bytes continuing an already-recorded message (streamed body
  // chunks): payload and per-packet wire overhead accrue, the message
  // count and per-message cost do not.
  void RecordBytes(size_t payload_bytes) {
    if (payload_bytes == 0) return;
    size_t packets = (payload_bytes + model_.mss_bytes - 1) / model_.mss_bytes;
    payload_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    wire_bytes_.fetch_add(
        payload_bytes + packets * model_.per_packet_header_bytes,
        std::memory_order_relaxed);
  }

  void Reset() {
    messages_.store(0, std::memory_order_relaxed);
    payload_bytes_.store(0, std::memory_order_relaxed);
    wire_bytes_.store(0, std::memory_order_relaxed);
  }

  uint64_t messages() const {
    return messages_.load(std::memory_order_relaxed);
  }
  // Application bytes (what Section 5's B counts).
  uint64_t payload_bytes() const {
    return payload_bytes_.load(std::memory_order_relaxed);
  }
  // Bytes including protocol headers (what the Sniffer counts).
  uint64_t wire_bytes() const {
    return wire_bytes_.load(std::memory_order_relaxed);
  }

  const ProtocolModel& model() const { return model_; }

 private:
  ProtocolModel model_;
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> payload_bytes_{0};
  std::atomic<uint64_t> wire_bytes_{0};
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_BYTE_METER_H_
