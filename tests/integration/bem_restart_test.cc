// BEM restart semantics: the origin's directory is in-memory state. After a
// BEM restart every lookup misses, so responses carry fresh SETs that
// simply overwrite the DPC's (still populated) slots — correctness is
// preserved by construction, at the cost of one regeneration per fragment.

#include <memory>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

namespace dynaprox {
namespace {

TEST(BemRestartTest, FreshDirectoryOverwritesDpcSlotsCorrectly) {
  SimClock clock;
  storage::ContentRepository repository;
  repository.GetOrCreateTable("kv")->Upsert(
      "row", {{"v", storage::Value(std::string("one"))}});

  appserver::ScriptRegistry registry;
  int generations = 0;
  registry.RegisterOrReplace(
      "/page", [&](appserver::ScriptContext& context) {
        return context.CacheableBlock(
            bem::FragmentId("kv-frag"),
            [&](appserver::ScriptContext& block) {
              ++generations;
              auto row = (*block.repository()->GetTable("kv"))->Get("row");
              block.DeclareDependency("kv", "row");
              block.Emit("[" + storage::GetString(*row, "v") + "]");
              return Status::Ok();
            });
      });

  bem::BemOptions bem_options;
  bem_options.capacity = 8;
  bem_options.clock = &clock;

  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);
  // The origin holds a raw pointer; rebuild it when the BEM "restarts".
  auto origin = std::make_unique<appserver::OriginServer>(
      &registry, &repository, monitor.get());
  auto origin_handler = [&](const http::Request& request) {
    return origin->Handle(request);
  };
  net::DirectTransport upstream(origin_handler);
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 8;
  dpc::DpcProxy proxy(&upstream, proxy_options);

  http::Request request;
  request.target = "/page";
  EXPECT_EQ(proxy.Handle(request).BodyText(), "[one]");
  EXPECT_EQ(proxy.Handle(request).BodyText(), "[one]");
  EXPECT_EQ(generations, 1);

  // "Restart" the BEM: new monitor, empty directory; DPC slots still hold
  // the old fragment under key 0.
  (*repository.GetTable("kv"))
      ->Upsert("row", {{"v", storage::Value(std::string("two"))}});
  monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);
  origin = std::make_unique<appserver::OriginServer>(
      &registry, &repository, monitor.get());

  // Every fragment misses in the fresh directory; the SET overwrites the
  // stale slot, so clients see the new value immediately.
  EXPECT_EQ(proxy.Handle(request).BodyText(), "[two]");
  EXPECT_EQ(generations, 2);
  EXPECT_EQ(proxy.Handle(request).BodyText(), "[two]");
  EXPECT_EQ(generations, 2);  // Warm again.
  EXPECT_EQ(proxy.stats().template_errors, 0u);
}

}  // namespace
}  // namespace dynaprox
