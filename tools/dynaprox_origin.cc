// dynaprox_origin: runs an origin site (application server + BEM) on a TCP
// port, serving the synthetic Table 2 site under /page?id=N. Pair with
// dynaprox_proxy and dynaprox_loadgen for a three-process deployment of
// the paper's Figure 4 testbed.
//
//   ./dynaprox_origin --port=8081 --pages=10 --fragments=4
//       --fragment-size=1000 --hit-ratio=0.8 [--no-bem] [--capacity=4096]
//       [--sweep-interval-ms=1000] [--server=threads|epoll] [--workers=4]
//       [--block-workers=0] [--block-queue=256]
//       [--metrics=true] [--access-log=PATH]
//       [--max-connections=0] [--max-inflight=0]
//       [--header-timeout=0] [--idle-timeout=0] [--write-stall-timeout=0]
//       [--max-header-bytes=0] [--max-body-bytes=0] [--drain-timeout=0]
//       [--push-min-score=0] [--push-queue-capacity=1024]
//       [--push-target-host=127.0.0.1] [--push-target-port=0]
//       [--push-drain-ms=500] [--chaos=SPEC] [--chaos-seed=42]
//
// --chaos arms deterministic fault injection at the origin's seams, e.g.
// --chaos=bem.block.generate=0.01:error,bem.push.post=0.1:error with
// --chaos-seed making runs reproducible (docs/failure-modes.md,
// "Chaos layer"). Malformed specs fail startup.
//
// --push-min-score > 0 attaches the edge-tier push engine
// (docs/edge-tier.md): invalidated fragments whose popularity *
// update-rate score clears the threshold are re-rendered off-request and
// POSTed to --push-target-host:--push-target-port (a dynaprox_proxy
// started with --enable-push) every --push-drain-ms. With no target port
// the engine still scores and exports the dynaprox_bem_push_* metrics,
// but nothing drains — useful for sizing the threshold before enabling
// delivery.
//
// The ingress limits (docs/failure-modes.md) all default to 0 = off and
// apply to whichever --server is selected: --max-connections caps
// concurrent connections, --max-inflight sheds excess concurrent
// requests with 503 + Retry-After, the three timeouts (milliseconds)
// disconnect slowloris/idle/stalled clients, the byte caps answer
// 431/413, and --drain-timeout (milliseconds) drains in-flight requests
// before shutdown.
//
// --block-workers > 0 runs independent cacheable-block miss generators of
// one page concurrently on a shared thread pool (BEM mode only; the
// assembled template is byte-identical to sequential execution).
// --block-queue bounds the pool's task queue; overflow degrades to
// inline (caller-runs) execution. See docs/threading-model.md.
//
// A JSON status document is served at /_dynaprox/status and (unless
// --metrics=false) the Prometheus text exposition at /_dynaprox/metrics.
// --access-log=PATH appends one JSON line per request ("-" = stderr);
// lines carry the X-DPC-Request-Id the proxy forwarded, so they join the
// DPC's lines (docs/observability.md).
// Runs until EOF on stdin (or forever when stdin is closed).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "analytical/model.h"
#include "appserver/origin_server.h"
#include "appserver/push_engine.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bem/protocol.h"
#include "bem/sweeper.h"
#include "common/access_log.h"
#include "common/fault_point.h"
#include "common/flags.h"
#include "common/strings.h"
#include "net/connection_pool.h"
#include "net/epoll_server.h"
#include "net/tcp.h"
#include "storage/table.h"
#include "workload/synthetic_site.h"

using namespace dynaprox;

int main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }

  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  Result<int64_t> port = flags->GetInt("port", 8081);
  Result<int64_t> pages = flags->GetInt("pages", params.num_pages);
  Result<int64_t> fragments =
      flags->GetInt("fragments", params.fragments_per_page);
  Result<double> fragment_size =
      flags->GetDouble("fragment-size", params.fragment_size);
  Result<double> hit_ratio = flags->GetDouble("hit-ratio", params.hit_ratio);
  Result<double> cacheability =
      flags->GetDouble("cacheability", params.cacheability);
  Result<int64_t> capacity = flags->GetInt("capacity", 4096);
  Result<int64_t> sweep_ms = flags->GetInt("sweep-interval-ms", 0);
  Result<int64_t> seed = flags->GetInt("seed", 42);
  Result<int64_t> max_connections = flags->GetInt("max-connections", 0);
  Result<int64_t> max_inflight = flags->GetInt("max-inflight", 0);
  Result<int64_t> header_timeout_ms = flags->GetInt("header-timeout", 0);
  Result<int64_t> idle_timeout_ms = flags->GetInt("idle-timeout", 0);
  Result<int64_t> write_stall_ms = flags->GetInt("write-stall-timeout", 0);
  Result<int64_t> max_header_bytes = flags->GetInt("max-header-bytes", 0);
  Result<int64_t> max_body_bytes = flags->GetInt("max-body-bytes", 0);
  Result<int64_t> drain_timeout_ms = flags->GetInt("drain-timeout", 0);
  Result<int64_t> block_workers = flags->GetInt("block-workers", 0);
  Result<int64_t> block_queue = flags->GetInt("block-queue", 256);
  Result<int64_t> push_queue_capacity =
      flags->GetInt("push-queue-capacity", 1024);
  Result<int64_t> push_target_port = flags->GetInt("push-target-port", 0);
  Result<int64_t> push_drain_ms = flags->GetInt("push-drain-ms", 500);
  Result<int64_t> chaos_seed = flags->GetInt("chaos-seed", 42);
  for (const auto* r : {&port, &pages, &fragments, &capacity, &sweep_ms,
                        &seed, &max_connections, &max_inflight,
                        &header_timeout_ms, &idle_timeout_ms,
                        &write_stall_ms, &max_header_bytes, &max_body_bytes,
                        &drain_timeout_ms, &block_workers, &block_queue,
                        &push_queue_capacity, &push_target_port,
                        &push_drain_ms, &chaos_seed}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  if (std::string chaos_spec = flags->GetString("chaos", "");
      !chaos_spec.empty()) {
    Status armed = chaos::FaultRegistry::Instance().Arm(
        chaos_spec, static_cast<uint64_t>(*chaos_seed));
    if (!armed.ok()) {
      std::fprintf(stderr, "--chaos: %s\n", armed.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "chaos armed: %s (seed %lld)\n",
                 chaos_spec.c_str(), static_cast<long long>(*chaos_seed));
  }
  Result<double> push_min_score = flags->GetDouble("push-min-score", 0.0);
  for (const auto* r :
       {&fragment_size, &hit_ratio, &cacheability, &push_min_score}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  params.num_pages = static_cast<int>(*pages);
  params.fragments_per_page = static_cast<int>(*fragments);
  params.fragment_size = *fragment_size;
  params.hit_ratio = *hit_ratio;
  params.cacheability = *cacheability;

  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  workload::SyntheticSite site(params, static_cast<uint64_t>(*seed),
                               &repository, &registry);

  std::unique_ptr<bem::BackEndMonitor> monitor;
  std::unique_ptr<bem::PeriodicSweeper> sweeper;
  if (!flags->GetBool("no-bem")) {
    bem::BemOptions bem_options;
    bem_options.capacity = static_cast<bem::DpcKey>(*capacity);
    Result<std::unique_ptr<bem::BackEndMonitor>> created =
        bem::BackEndMonitor::Create(bem_options);
    if (!created.ok()) {
      std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
      return 1;
    }
    monitor = std::move(*created);
    monitor->AttachRepository(&repository);
    if (*sweep_ms > 0) {
      sweeper = std::make_unique<bem::PeriodicSweeper>(
          monitor.get(), *sweep_ms * kMicrosPerMilli);
      sweeper->Start();
    }
  }

  std::unique_ptr<AccessLogger> access_log;
  if (std::string log_path = flags->GetString("access-log", "");
      !log_path.empty()) {
    Result<std::unique_ptr<AccessLogger>> opened =
        AccessLogger::Open(log_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 2;
    }
    access_log = std::move(*opened);
  }

  // Edge-tier push engine (docs/edge-tier.md): scores invalidations on
  // the BEM observer feed; a drain thread re-renders admitted fragments
  // and POSTs them to the target DPC's /_dynaprox/push endpoint.
  std::unique_ptr<appserver::PushEngine> push_engine;
  std::unique_ptr<net::PooledClientTransport> push_link;
  if (*push_min_score > 0 && monitor != nullptr) {
    bem::PushPolicy push_policy;
    push_policy.min_score = *push_min_score;
    push_policy.queue_capacity = static_cast<size_t>(*push_queue_capacity);
    push_engine = std::make_unique<appserver::PushEngine>(push_policy);
    monitor->SetObserver(&push_engine->scheduler());
    if (*push_target_port > 0) {
      net::PooledTransportOptions push_link_options;
      push_link_options.pool.max_connections = 2;
      push_link = std::make_unique<net::PooledClientTransport>(
          flags->GetString("push-target-host", "127.0.0.1"),
          static_cast<uint16_t>(*push_target_port), push_link_options);
      push_engine->set_sink([&push_link](const std::string&,
                                         bem::DpcKey key,
                                         const std::string& body,
                                         MicroTime age_micros) {
        http::Request push;
        push.method = "POST";
        push.target = "/_dynaprox/push";
        push.headers.Set(bem::kPushKeyHeader, ToHex(key));
        push.headers.Set(bem::kPushAgeHeader,
                         std::to_string(age_micros < 0 ? 0 : age_micros));
        push.body = body;
        Result<http::Response> response = push_link->RoundTrip(push);
        if (!response.ok()) return response.status();
        if (response->status_code != 204) {
          return Status::Internal("push refused: HTTP " +
                                  std::to_string(response->status_code));
        }
        return Status::Ok();
      });
    }
  }

  net::IngressCounters ingress;
  net::ServerLimits limits;
  limits.max_connections = static_cast<int>(*max_connections);
  limits.max_inflight = static_cast<int>(*max_inflight);
  limits.max_header_bytes = static_cast<size_t>(*max_header_bytes);
  limits.max_body_bytes = static_cast<size_t>(*max_body_bytes);
  limits.header_timeout_micros = *header_timeout_ms * kMicrosPerMilli;
  limits.idle_timeout_micros = *idle_timeout_ms * kMicrosPerMilli;
  limits.write_stall_micros = *write_stall_ms * kMicrosPerMilli;
  limits.counters = &ingress;

  appserver::OriginOptions origin_options;
  origin_options.pad_headers_to_bytes =
      static_cast<size_t>(params.header_size);
  origin_options.enable_status = true;
  origin_options.enable_metrics = flags->GetBool("metrics", true);
  origin_options.access_log = access_log.get();
  origin_options.ingress = &ingress;
  origin_options.block_workers = static_cast<int>(*block_workers);
  origin_options.block_queue_capacity = static_cast<size_t>(*block_queue);
  origin_options.push_engine = push_engine.get();
  appserver::OriginServer origin(&registry, &repository, monitor.get(),
                                 origin_options);

  std::atomic<bool> push_running{true};
  std::thread push_drainer;
  if (push_engine != nullptr) {
    push_engine->AttachOrigin(&origin);
    if (push_link != nullptr) {
      push_drainer = std::thread([&push_engine, &push_running,
                                  interval = *push_drain_ms] {
        while (push_running.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(interval));
          (void)push_engine->Drain();
        }
      });
    }
  }

  std::string server_kind = flags->GetString("server", "threads");
  Result<int64_t> workers = flags->GetInt("workers", 2);
  std::unique_ptr<net::TcpServer> thread_server;
  std::unique_ptr<net::EpollServer> epoll_server;
  uint16_t bound_port = 0;
  if (server_kind == "epoll") {
    epoll_server = std::make_unique<net::EpollServer>(
        origin.AsHandler(), static_cast<uint16_t>(*port),
        static_cast<int>(workers.value_or(2)), limits);
    Status started = epoll_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    bound_port = epoll_server->port();
  } else if (server_kind == "threads") {
    thread_server = std::make_unique<net::TcpServer>(
        origin.AsHandler(), static_cast<uint16_t>(*port), limits);
    Status started = thread_server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    bound_port = thread_server->port();
  } else {
    std::fprintf(stderr, "unknown --server '%s' (threads|epoll)\n",
                 server_kind.c_str());
    return 2;
  }
  std::printf("origin listening on 127.0.0.1:%u (%s, %s server, %d pages "
              "x %d fragments of %.0fB)\n",
              bound_port, monitor ? "BEM enabled" : "no-cache baseline",
              server_kind.c_str(), params.num_pages,
              params.fragments_per_page, params.fragment_size);
  if (push_engine != nullptr) {
    std::printf("push engine on: min-score %.1f, %s\n", *push_min_score,
                push_link != nullptr ? "draining to target DPC"
                                     : "scoring only (no target)");
  }
  std::fflush(stdout);

  // Serve until stdin closes (Ctrl-D or pipe end).
  char buf[256];
  while (::read(STDIN_FILENO, buf, sizeof(buf)) > 0) {
  }
  push_running.store(false, std::memory_order_relaxed);
  if (push_drainer.joinable()) push_drainer.join();
  const MicroTime drain_micros = *drain_timeout_ms * kMicrosPerMilli;
  if (thread_server != nullptr) thread_server->Stop(drain_micros);
  if (epoll_server != nullptr) epoll_server->Stop(drain_micros);
  appserver::OriginStats stats = origin.stats();
  std::printf("served %llu requests (%llu hits, %llu misses, %llu refresh "
              "invalidations)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.fragment_hits),
              static_cast<unsigned long long>(stats.fragment_misses),
              static_cast<unsigned long long>(stats.refresh_invalidations));
  if (push_engine != nullptr) {
    appserver::PushEngineStats push_stats = push_engine->stats();
    bem::PushSchedulerStats sched_stats =
        push_engine->scheduler().stats();
    std::printf(
        "push: %llu enqueued, %llu skipped cold, %llu dropped, %llu "
        "pushed, %llu failures\n",
        static_cast<unsigned long long>(sched_stats.enqueued),
        static_cast<unsigned long long>(sched_stats.skipped_cold),
        static_cast<unsigned long long>(sched_stats.dropped),
        static_cast<unsigned long long>(push_stats.pushed),
        static_cast<unsigned long long>(push_stats.push_failures));
  }
  std::printf(
      "ingress: %llu accepted, %llu conn-limit rejections, %llu shed "
      "503s, %llu header timeouts, %llu idle timeouts, %llu oversize "
      "(431+413), %llu drained\n",
      static_cast<unsigned long long>(ingress.accepted_total.load()),
      static_cast<unsigned long long>(
          ingress.connection_limit_rejections.load()),
      static_cast<unsigned long long>(ingress.shed_503s.load()),
      static_cast<unsigned long long>(ingress.header_timeouts.load()),
      static_cast<unsigned long long>(ingress.idle_timeouts.load()),
      static_cast<unsigned long long>(ingress.oversize_headers.load() +
                                      ingress.oversize_bodies.load()),
      static_cast<unsigned long long>(ingress.drained_connections.load()));
  return 0;
}
