#include "http/cache_control.h"

#include <gtest/gtest.h>

namespace dynaprox::http {
namespace {

TEST(CacheControlTest, ParsesCommonDirectives) {
  CacheControl control = ParseCacheControl("public, max-age=3600");
  EXPECT_TRUE(control.is_public);
  ASSERT_TRUE(control.max_age_seconds.has_value());
  EXPECT_EQ(*control.max_age_seconds, 3600);
  EXPECT_TRUE(control.StorableByProxy());
}

TEST(CacheControlTest, NoStoreWins) {
  CacheControl control = ParseCacheControl("no-store, max-age=3600");
  EXPECT_TRUE(control.no_store);
  EXPECT_FALSE(control.StorableByProxy());
}

TEST(CacheControlTest, PrivateBlocksSharedCaches) {
  CacheControl control = ParseCacheControl("private, max-age=600");
  EXPECT_FALSE(control.StorableByProxy());
}

TEST(CacheControlTest, SMaxageOverridesMaxAge) {
  CacheControl control = ParseCacheControl("max-age=60, s-maxage=600");
  EXPECT_EQ(*control.SharedMaxAgeSeconds(), 600);
}

TEST(CacheControlTest, ZeroMaxAgeNotStorable) {
  EXPECT_FALSE(ParseCacheControl("max-age=0").StorableByProxy());
}

TEST(CacheControlTest, WhitespaceAndCaseInsensitive) {
  CacheControl control = ParseCacheControl("  Public ,  MAX-AGE=10 ");
  EXPECT_TRUE(control.is_public);
  EXPECT_EQ(*control.max_age_seconds, 10);
}

TEST(CacheControlTest, MalformedAgeIgnored) {
  CacheControl control = ParseCacheControl("max-age=soon");
  EXPECT_FALSE(control.max_age_seconds.has_value());
  EXPECT_FALSE(control.StorableByProxy());
}

TEST(CacheControlTest, EmptyAndUnknownDirectives) {
  EXPECT_FALSE(ParseCacheControl("").StorableByProxy());
  CacheControl control = ParseCacheControl("immutable, stale-while-revalidate=30");
  EXPECT_FALSE(control.StorableByProxy());
}

TEST(CacheControlTest, ResponseHelperReadsHeader) {
  Response response = Response::MakeOk("x");
  EXPECT_FALSE(ResponseCacheControl(response).StorableByProxy());
  response.headers.Set("Cache-Control", "max-age=120");
  EXPECT_TRUE(ResponseCacheControl(response).StorableByProxy());
}

}  // namespace
}  // namespace dynaprox::http
