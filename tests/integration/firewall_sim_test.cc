// Measured scan-cost experiment (Section 5's Result 1, measured): the
// testbed with a scanning firewall on the origin link.

#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace dynaprox::sim {
namespace {

Measurement RunConfig(bool with_cache, double cacheability) {
  TestbedConfig config;
  config.params = analytical::ModelParams::Table2Baseline();
  config.params.cacheability = cacheability;
  config.with_cache = with_cache;
  config.with_firewall = true;
  config.seed = 5;
  auto testbed = *Testbed::Create(config);
  testbed->Run(300);
  testbed->BeginMeasurement();
  testbed->Run(2000);
  return testbed->Collect();
}

TEST(FirewallSimTest, FirewallScansAllOriginTraffic) {
  Measurement no_cache = RunConfig(false, 0.6);
  EXPECT_GT(no_cache.firewall_scanned_bytes, 0u);
  EXPECT_EQ(no_cache.dpc_scanned_bytes, 0u);  // No DPC in baseline.
  // The firewall scans serialized requests plus response *bodies*; the
  // meter counts full serialized responses (≈500B of padded head more
  // per message). The two must be within one head's worth per request.
  EXPECT_GT(no_cache.firewall_scanned_bytes,
            no_cache.response_payload_bytes * 8 / 10);
  EXPECT_LT(no_cache.firewall_scanned_bytes,
            no_cache.response_payload_bytes + no_cache.requests * 600);
}

TEST(FirewallSimTest, CacheAddsSecondScanOverTemplateBytes) {
  Measurement with_cache = RunConfig(true, 0.6);
  EXPECT_GT(with_cache.dpc_scanned_bytes, 0u);
  EXPECT_GT(with_cache.firewall_scanned_bytes, 0u);
  // The DPC scans response *bodies*; the meter counts serialized messages
  // (heads included), so the scan count must be strictly smaller.
  EXPECT_LT(with_cache.dpc_scanned_bytes,
            with_cache.response_payload_bytes);
}

TEST(FirewallSimTest, ScanSavingsFollowResultOneDirection) {
  // At full cacheability the total scanned bytes with cache drop below
  // the no-cache firewall bytes; at low cacheability they exceed them
  // (the double scan costs more than the byte savings).
  Measurement nc_low = RunConfig(false, 0.2);
  Measurement c_low = RunConfig(true, 0.2);
  EXPECT_GT(c_low.total_scanned_bytes(), nc_low.total_scanned_bytes());

  Measurement nc_high = RunConfig(false, 1.0);
  Measurement c_high = RunConfig(true, 1.0);
  EXPECT_LT(c_high.total_scanned_bytes(), nc_high.total_scanned_bytes());
}

}  // namespace
}  // namespace dynaprox::sim
