#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace dynaprox {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Logger::Log(LogLevel level, std::string_view module,
                 std::string_view message) {
  if (level < Logger::level()) return;
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelName(level),
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace dynaprox
