#include "baseline/esi.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::baseline {
namespace {

class EsiTest : public ::testing::Test {
 protected:
  EsiTest()
      : origin_([this](const http::Request& request) {
          std::string path(request.Path());
          if (path == "/frag/navbar") {
            ++navbar_generations_;
            return http::Response::MakeOk("<nav/>");
          }
          if (path == "/frag/greeting") {
            ++greeting_generations_;
            ++profile_loads_;  // Fragment scripts each load the profile...
            auto cookie = request.headers.Get("Cookie");
            return http::Response::MakeOk(
                cookie.has_value() ? "<p>Hello, Bob</p>" : "<p>Hello!</p>");
          }
          if (path == "/frag/reco") {
            ++reco_generations_;
            ++profile_loads_;  // ...so shared work repeats (Section 3.2.2).
            return http::Response::MakeOk("<ul>picks</ul>");
          }
          if (path == "/plain") {
            return http::Response::MakeOk("no template here");
          }
          return http::Response::MakeError(404, "Not Found", path);
        }) {
    EsiTemplate welcome;
    welcome.parts.push_back(EsiPart::Literal("<html>"));
    welcome.parts.push_back(EsiPart::Include("/frag/greeting"));
    welcome.parts.push_back(EsiPart::Include("/frag/reco"));
    welcome.parts.push_back(EsiPart::Include("/frag/navbar"));
    welcome.parts.push_back(EsiPart::Literal("</html>"));
    registry_.Register("/welcome", std::move(welcome));
  }

  EsiAssembler MakeAssembler() {
    EsiOptions options;
    options.clock = &clock_;
    return EsiAssembler(&registry_, &origin_, options);
  }

  SimClock clock_;
  EsiRegistry registry_;
  int navbar_generations_ = 0;
  int greeting_generations_ = 0;
  int reco_generations_ = 0;
  int profile_loads_ = 0;
  net::DirectTransport origin_;
};

TEST_F(EsiTest, AssemblesTemplateFromIncludes) {
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/welcome";
  http::Response response = assembler.Handle(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body,
            "<html><p>Hello!</p><ul>picks</ul><nav/></html>");
  EXPECT_EQ(assembler.stats().fragment_origin_fetches, 3u);
}

TEST_F(EsiTest, FragmentsCachedByUrl) {
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/welcome";
  assembler.Handle(request);
  assembler.Handle(request);
  EXPECT_EQ(assembler.stats().fragment_origin_fetches, 3u);
  EXPECT_EQ(assembler.stats().fragment_cache_hits, 3u);
  EXPECT_EQ(navbar_generations_, 1);
}

TEST_F(EsiTest, InterdependentFragmentsRepeatSharedWork) {
  // The Section 3.2.2 measurement: greeting and reco both need the user
  // profile; factored into separate scripts, the profile is loaded twice
  // per cold page (a DPC script loads it once).
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/welcome";
  assembler.Handle(request);
  EXPECT_EQ(profile_loads_, 2);
}

TEST_F(EsiTest, FixedLayoutServesWrongPersonalization) {
  // Bob (cookie) warms the fragment cache; Alice (no cookie) gets Bob's
  // greeting because the include URL is the cache key.
  EsiAssembler assembler = MakeAssembler();
  http::Request bob;
  bob.target = "/welcome";
  bob.headers.Add("Cookie", "sid=bob");
  EXPECT_NE(assembler.Handle(bob).body.find("Hello, Bob"),
            std::string::npos);
  http::Request alice;
  alice.target = "/welcome";
  http::Response alice_page = assembler.Handle(alice);
  // WRONG page for Alice — the documented failure, asserted as behaviour.
  EXPECT_NE(alice_page.body.find("Hello, Bob"), std::string::npos);
}

TEST_F(EsiTest, QueryForwardingSplitsCacheEntries) {
  EsiTemplate by_category;
  by_category.parts.push_back(EsiPart::Include("/frag/navbar"));
  registry_.Register("/catalog", std::move(by_category));
  EsiAssembler assembler = MakeAssembler();
  http::Request fiction;
  fiction.target = "/catalog?cat=fiction";
  http::Request tech;
  tech.target = "/catalog?cat=tech";
  assembler.Handle(fiction);
  assembler.Handle(tech);
  assembler.Handle(fiction);
  EXPECT_EQ(navbar_generations_, 2);  // One per distinct include URL.
  EXPECT_EQ(assembler.stats().fragment_cache_hits, 1u);
}

TEST_F(EsiTest, TtlExpiresFragments) {
  EsiTemplate page;
  page.parts.push_back(
      EsiPart::Include("/frag/navbar", 10 * kMicrosPerSecond));
  registry_.Register("/ttl", std::move(page));
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/ttl";
  assembler.Handle(request);
  clock_.AdvanceSeconds(5);
  assembler.Handle(request);
  EXPECT_EQ(navbar_generations_, 1);
  clock_.AdvanceSeconds(6);
  assembler.Handle(request);
  EXPECT_EQ(navbar_generations_, 2);
}

TEST_F(EsiTest, UntemplatedPathsProxyThrough) {
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/plain";
  EXPECT_EQ(assembler.Handle(request).body, "no template here");
}

TEST_F(EsiTest, FailedIncludeDegradesPage) {
  EsiTemplate page;
  page.parts.push_back(EsiPart::Literal("["));
  page.parts.push_back(EsiPart::Include("/frag/missing"));
  page.parts.push_back(EsiPart::Literal("]"));
  registry_.Register("/broken", std::move(page));
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/broken";
  http::Response response = assembler.Handle(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body, "[]");
  EXPECT_EQ(assembler.stats().fragment_errors, 1u);
}

TEST_F(EsiTest, InvalidationDropsFragments) {
  EsiAssembler assembler = MakeAssembler();
  http::Request request;
  request.target = "/welcome";
  assembler.Handle(request);
  EXPECT_TRUE(assembler.InvalidateFragmentUrl("/frag/navbar"));
  EXPECT_FALSE(assembler.InvalidateFragmentUrl("/frag/navbar"));
  EXPECT_EQ(assembler.InvalidateAll(), 2u);
  assembler.Handle(request);
  EXPECT_EQ(navbar_generations_, 2);
}

}  // namespace
}  // namespace dynaprox::baseline
