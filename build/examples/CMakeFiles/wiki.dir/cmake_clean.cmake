file(REMOVE_RECURSE
  "CMakeFiles/wiki.dir/wiki.cpp.o"
  "CMakeFiles/wiki.dir/wiki.cpp.o.d"
  "wiki"
  "wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
