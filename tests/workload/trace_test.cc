#include "workload/trace.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "workload/request_stream.h"

namespace dynaprox::workload {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceEntryTest, RequestRoundTrip) {
  http::Request request;
  request.method = "GET";
  request.target = "/page?id=3";
  request.headers.Add("Cookie", "theme=dark; sid=s42");
  TraceEntry entry = TraceEntry::FromRequest(request);
  EXPECT_EQ(entry.target, "/page?id=3");
  EXPECT_EQ(entry.session, "s42");
  http::Request rebuilt = entry.ToRequest();
  EXPECT_EQ(rebuilt.target, request.target);
  EXPECT_EQ(*rebuilt.headers.Get("Cookie"), "sid=s42");
}

TEST(TraceFileTest, SaveLoadRoundTrip) {
  std::vector<TraceEntry> entries = {
      {"GET", "/a", ""},
      {"GET", "/b?x=1", "s7"},
      {"POST", "/submit", ""},
  };
  std::string path = TempPath("trace_roundtrip.txt");
  ASSERT_TRUE(SaveTrace(path, entries).ok());
  Result<std::vector<TraceEntry>> loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  EXPECT_EQ((*loaded)[1].target, "/b?x=1");
  EXPECT_EQ((*loaded)[1].session, "s7");
  EXPECT_EQ((*loaded)[2].method, "POST");
  std::remove(path.c_str());
}

TEST(TraceFileTest, CommentsAndBlanksIgnored) {
  std::string path = TempPath("trace_comments.txt");
  {
    std::ofstream out(path);
    out << "# header\n\nGET /x\n   \nGET /y sid=s1\n";
  }
  Result<std::vector<TraceEntry>> loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceFileTest, MalformedLinesRejected) {
  std::string path = TempPath("trace_bad.txt");
  {
    std::ofstream out(path);
    out << "GET\n";
  }
  EXPECT_TRUE(LoadTrace(path).status().IsCorruption());
  {
    std::ofstream out(path);
    out << "GET /x bogus=1\n";
  }
  EXPECT_TRUE(LoadTrace(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(TraceFileTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadTrace("/nonexistent/dir/trace.txt").status().code(),
            StatusCode::kIoError);
}

TEST(RecordingTransportTest, CapturesRequestsInOrder) {
  net::DirectTransport inner(
      [](const http::Request&) { return http::Response::MakeOk("ok"); });
  RecordingTransport recorder(&inner);
  http::Request a;
  a.target = "/first";
  http::Request b;
  b.target = "/second?q=1";
  ASSERT_TRUE(recorder.RoundTrip(a).ok());
  ASSERT_TRUE(recorder.RoundTrip(b).ok());
  ASSERT_EQ(recorder.entries().size(), 2u);
  EXPECT_EQ(recorder.entries()[0].target, "/first");
  EXPECT_EQ(recorder.entries()[1].target, "/second?q=1");
}

TEST(TraceStreamTest, ReplaysInOrderThenExhausts) {
  TraceStream stream({{"GET", "/a", ""}, {"GET", "/b", ""}}, false);
  EXPECT_EQ(stream.Next()->target, "/a");
  EXPECT_EQ(stream.Next()->target, "/b");
  EXPECT_TRUE(stream.exhausted());
  EXPECT_FALSE(stream.Next().ok());
}

TEST(TraceStreamTest, LoopsWhenAsked) {
  TraceStream stream({{"GET", "/a", ""}}, true);
  for (int i = 0; i < 5; ++i) {
    Result<http::Request> request = stream.Next();
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request->target, "/a");
  }
}

TEST(TraceStreamTest, EmptyTraceFails) {
  TraceStream stream({}, true);
  EXPECT_FALSE(stream.Next().ok());
}

TEST(RecordReplayTest, EndToEnd) {
  // Record a small workload, save, load, replay: identical targets.
  net::DirectTransport inner(
      [](const http::Request&) { return http::Response::MakeOk("x"); });
  RecordingTransport recorder(&inner);
  RequestStream generator(5, 1.0, 3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(recorder.RoundTrip(generator.Next()).ok());
  }
  std::string path = TempPath("trace_e2e.txt");
  ASSERT_TRUE(recorder.Save(path).ok());
  Result<std::vector<TraceEntry>> loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  TraceStream replay(*loaded, false);
  for (const TraceEntry& expected : recorder.entries()) {
    Result<http::Request> request = replay.Next();
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request->target, expected.target);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dynaprox::workload
