#include "dpc/assembler.h"

namespace dynaprox::dpc {

Result<AssembledPage> AssemblePage(common::Buffer wire,
                                   FragmentStore& store,
                                   ScanStrategy strategy, const Clock* clock,
                                   AssemblyTiming* timing) {
  bool timed = clock != nullptr && timing != nullptr;
  MicroTime start = timed ? clock->NowMicros() : 0;
  std::string_view wire_view = wire == nullptr ? std::string_view() : *wire;
  std::vector<TemplateSegment> segments;
  DYNAPROX_ASSIGN_OR_RETURN(segments, ParseTemplate(wire_view, strategy));
  MicroTime scanned = timed ? clock->NowMicros() : 0;
  if (timed) timing->scan_micros = scanned - start;

  AssembledPage out;
  for (TemplateSegment& segment : segments) {
    switch (segment.kind) {
      case TemplateSegment::Kind::kLiteral:
        for (std::string_view piece : segment.pieces) {
          out.body.Append(wire, piece);
          out.bytes_referenced += piece.size();
        }
        break;
      case TemplateSegment::Kind::kSet: {
        ++out.set_count;
        // One materialization, shared: the store slot and the page chain
        // hold the same buffer, so the payload is never copied again —
        // not here, and not by any later page that GETs it.
        FragmentRef fragment =
            std::make_shared<const std::string>(segment.Text());
        out.bytes_copied += fragment->size();
        out.body.Append(fragment);
        DYNAPROX_RETURN_IF_ERROR(store.Set(segment.key, std::move(fragment)));
        break;
      }
      case TemplateSegment::Kind::kGet: {
        ++out.get_count;
        Result<FragmentRef> content = store.Get(segment.key);
        if (!content.ok()) {
          if (content.status().IsNotFound()) {
            out.missing_keys.push_back(segment.key);
            break;
          }
          return content.status();
        }
        out.bytes_referenced += (*content)->size();
        out.body.Append(std::move(*content));
        break;
      }
    }
  }
  if (timed) timing->splice_micros = clock->NowMicros() - scanned;
  return out;
}

Result<AssembledPage> AssemblePage(std::string_view wire,
                                   FragmentStore& store,
                                   ScanStrategy strategy, const Clock* clock,
                                   AssemblyTiming* timing) {
  return AssemblePage(common::MakeBuffer(std::string(wire)), store, strategy,
                      clock, timing);
}

}  // namespace dynaprox::dpc
