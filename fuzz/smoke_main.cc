// Deterministic driver around an LLVMFuzzerTestOneInput harness, for
// toolchains without libFuzzer (the CI image is GCC-only). Replays every
// seed-corpus file given on the command line, then a fixed number of
// seeded random inputs, so the harnesses and corpora are exercised on
// every ctest run. No coverage feedback — this is a smoke test, not a
// fuzzer; run the DYNAPROX_FUZZ=ON Clang build for real fuzzing.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

void RunOne(const std::string& bytes) {
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

int ReplayCorpus(const std::filesystem::path& dir) {
  int replayed = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // Deterministic order.
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    RunOne(bytes);
    ++replayed;
  }
  return replayed;
}

}  // namespace

int main(int argc, char** argv) {
  int corpus_inputs = 0;
  for (int i = 1; i < argc; ++i) {
    std::filesystem::path path(argv[i]);
    if (!std::filesystem::is_directory(path)) {
      std::fprintf(stderr, "no such corpus dir: %s\n", argv[i]);
      return 2;
    }
    corpus_inputs += ReplayCorpus(path);
  }
  if (corpus_inputs == 0) {
    std::fprintf(stderr, "corpus empty: nothing replayed\n");
    return 2;
  }

  // Fixed-seed random inputs biased toward small sizes and the bytes the
  // grammars treat specially; identical on every run.
  constexpr int kRandomIterations = 2000;
  dynaprox::Rng rng(0xD1A9B0B5u);
  const char special[] = {'\x02', '\x03', '\r', '\n', ':', ' ',
                          'G',    'S',    'E',  'L',  '0', 'F'};
  for (int i = 0; i < kRandomIterations; ++i) {
    std::string input;
    size_t len = rng.NextBounded(512);
    input.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      if (rng.NextBounded(2) == 0) {
        input += special[rng.NextBounded(sizeof(special))];
      } else {
        input += static_cast<char>(rng.NextBounded(256));
      }
    }
    RunOne(input);
  }
  std::printf("smoke ok: %d corpus inputs + %d random iterations\n",
              corpus_inputs, kRandomIterations);
  return 0;
}
