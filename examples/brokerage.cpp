// Brokerage: the paper's stock-quote invalidation-granularity example
// (Section 3.2.1). One page, three fragments with wildly different change
// cadences:
//   quote       - invalidated by every price tick (data-source driven)
//   headlines   - TTL 30 simulated minutes
//   historical  - TTL 30 simulated days
// A page-level cache would regenerate everything on every tick; the DPC
// regenerates only the quote. The example drives a simulated trading day
// and reports how often each fragment was actually rebuilt.
//
// Run: ./brokerage

#include <cstdio>
#include <memory>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace dynaprox;

namespace {

struct Generations {
  int quote = 0;
  int headlines = 0;
  int historical = 0;
};

}  // namespace

int main() {
  SimClock clock;
  storage::ContentRepository repository;
  storage::Table* quotes = repository.GetOrCreateTable("quotes");
  quotes->Upsert("ACME", {{"price", storage::Value(100.0)}});
  storage::Table* headlines = repository.GetOrCreateTable("headlines");
  headlines->Upsert("h1", {{"text", storage::Value(std::string(
                                        "ACME beats expectations"))}});
  storage::Table* historical = repository.GetOrCreateTable("historical");
  historical->Upsert("ACME", {{"pe", storage::Value(18.2)}});

  Generations generations;
  appserver::ScriptRegistry registry;
  registry.RegisterOrReplace("/stock", [&](appserver::ScriptContext& ctx) {
    std::string sym = ctx.request().QueryParams()["sym"];
    DYNAPROX_RETURN_IF_ERROR(ctx.CacheableBlock(
        bem::FragmentId("quote", {{"sym", sym}}),
        [&](appserver::ScriptContext& block) {
          ++generations.quote;
          auto row = (*block.repository()->GetTable("quotes"))->Get(sym);
          if (!row.ok()) return row.status();
          block.DeclareDependency("quotes", sym);
          block.Emit("<b>" + sym + " $" +
                     storage::ValueToString(row->at("price")) + "</b>");
          return Status::Ok();
        }));
    DYNAPROX_RETURN_IF_ERROR(ctx.CacheableBlock(
        bem::FragmentId("headlines"), 30 * 60 * kMicrosPerSecond,
        [&](appserver::ScriptContext& block) {
          ++generations.headlines;
          block.Emit("<ul>");
          auto table = block.repository()->GetTable("headlines");
          if (!table.ok()) return table.status();
          for (const auto& [key, row] : (*table)->Scan(nullptr)) {
            block.Emit("<li>" + storage::GetString(row, "text") + "</li>");
          }
          block.Emit("</ul>");
          return Status::Ok();
        }));
    DYNAPROX_RETURN_IF_ERROR(ctx.CacheableBlock(
        bem::FragmentId("historical", {{"sym", sym}}),
        30LL * 24 * 3600 * kMicrosPerSecond,
        [&](appserver::ScriptContext& block) {
          ++generations.historical;
          auto row =
              (*block.repository()->GetTable("historical"))->Get(sym);
          if (!row.ok()) return row.status();
          block.Emit("<i>P/E " + storage::ValueToString(row->at("pe")) +
                     "</i>");
          return Status::Ok();
        }));
    return Status::Ok();
  });

  bem::BemOptions bem_options;
  bem_options.capacity = 64;
  bem_options.clock = &clock;
  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);
  appserver::OriginServer origin(&registry, &repository, monitor.get());
  net::DirectTransport to_origin(origin.AsHandler());
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 64;
  dpc::DpcProxy proxy(&to_origin, proxy_options);

  // Simulated trading day: 6.5 hours. A visitor polls the page every 10
  // simulated seconds; the price ticks every 15 seconds; a new headline
  // lands every 2 hours.
  const int kDaySeconds = static_cast<int>(6.5 * 3600);
  http::Request request;
  request.target = "/stock?sym=ACME";
  int page_views = 0;
  int errors = 0;
  for (int second = 0; second < kDaySeconds; second += 10) {
    if (second % 15 == 0) {
      double price = 100.0 + 10.0 * ((second / 15) % 7) * 0.3;
      quotes->Upsert("ACME", {{"price", storage::Value(price)}});
    }
    if (second > 0 && second % 7200 == 0) {
      headlines->Upsert("h" + std::to_string(second),
                        {{"text", storage::Value(std::string(
                                      "Headline at t=" +
                                      std::to_string(second)))}});
    }
    http::Response response = proxy.Handle(request);
    ++page_views;
    if (response.status_code != 200) ++errors;
    clock.AdvanceSeconds(10);
  }

  std::printf("simulated trading day: %d page views, %d errors\n",
              page_views, errors);
  std::printf("fragment regenerations:\n");
  std::printf("  quote       %6d  (price ticks drive data-source "
              "invalidation)\n",
              generations.quote);
  std::printf("  headlines   %6d  (30-min TTL + new headlines)\n",
              generations.headlines);
  std::printf("  historical  %6d  (30-day TTL: never expires today)\n",
              generations.historical);
  std::printf("a page-level cache would have regenerated ALL three %d "
              "times\n",
              generations.quote);
  std::printf("directory: hits=%llu misses=%llu evictions=%llu\n",
              static_cast<unsigned long long>(monitor->stats().hits),
              static_cast<unsigned long long>(monitor->stats().misses),
              static_cast<unsigned long long>(monitor->stats().evictions));
  return errors == 0 ? 0 : 1;
}
