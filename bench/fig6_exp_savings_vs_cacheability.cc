// Figure 6: savings in bytes served (%) vs cacheability — analytical plus
// experimental. Paper shape: experimental tracks analytical from slightly
// below across the 20..100% range.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "sim/experiment.h"

int main() {
  using dynaprox::analytical::ModelParams;
  using dynaprox::sim::ExperimentConfig;
  using dynaprox::sim::ExperimentResult;
  using dynaprox::sim::RunBytesExperiment;

  ModelParams params = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Figure 6",
      "Savings in Bytes Served (%) vs Cacheability (analytical + "
      "experimental)",
      params);

  std::printf("%16s %12s %14s %14s\n", "cacheability(%)", "analytical",
              "exp(payload)", "exp(wire)");
  for (int pct = 20; pct <= 100; pct += 10) {
    ExperimentConfig config;
    config.params = params;
    config.params.cacheability = pct / 100.0;
    config.warmup_requests = 1000;
    config.measured_requests = 8000;
    dynaprox::Result<ExperimentResult> result = RunBytesExperiment(config);
    if (!result.ok()) {
      std::printf("point %d failed: %s\n", pct,
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("%16d %12.3f %14.3f %14.3f\n", pct,
                result->analytic_savings_percent,
                result->measured_payload_savings_percent,
                result->measured_wire_savings_percent);
  }
  dynaprox::benchutil::PrintFooter();
  return 0;
}
