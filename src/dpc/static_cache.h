#ifndef DYNAPROX_DPC_STATIC_CACHE_H_
#define DYNAPROX_DPC_STATIC_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"
#include "http/cache_control.h"
#include "http/message.h"

namespace dynaprox::dpc {

struct StaticCacheOptions {
  size_t capacity = 1024;        // Entries; LRU beyond.
  const Clock* clock = nullptr;  // Defaults to SystemClock.
};

struct StaticCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t evictions = 0;
  uint64_t revalidations = 0;  // 304-driven freshness extensions.
  uint64_t stale_served = 0;   // Stale entries served on upstream error.
};

// HTTP-semantics static-content cache inside the DPC: the role ISA
// Server's ordinary proxy cache plays in the paper's testbed ("static
// content is cacheable in the ISA Server proxy cache ... will not impact
// bandwidth requirements between the Web server and the DPC"). Stores only
// responses whose Cache-Control permits shared caching, keyed by URL, for
// their freshness lifetime. Thread-safe.
class StaticCache {
 public:
  explicit StaticCache(StaticCacheOptions options);

  // Returns a fresh cached response for `url`, if any (an "Age" header is
  // added; hit bookkeeping applied). Stale entries are kept — entries with
  // an ETag for revalidation, the rest for serve-stale-on-error (RFC 9111
  // §4.2.4); capacity LRU bounds how long either lingers.
  std::optional<http::Response> Lookup(const std::string& url);

  // Serve-stale-on-error (RFC 9111 §4.2.4): returns the entry for `url`
  // regardless of freshness, with its Age header set. The caller marks the
  // response (Warning: 110) and must only use this when the origin failed
  // or answered 5xx. Never evicts.
  std::optional<http::Response> LookupStale(const std::string& url);

  // Returns the ETag of a stale-but-revalidatable entry for `url`; the
  // proxy sends it upstream as If-None-Match.
  std::optional<std::string> StaleEtag(const std::string& url);

  // After an upstream 304: extends the entry's freshness (using the 304's
  // Cache-Control if present, else the original lifetime) and returns the
  // refreshed response. Fails if the entry vanished.
  std::optional<http::Response> Revalidate(
      const std::string& url, const http::Response& not_modified);

  // Stores `response` if its Cache-Control allows a shared cache to.
  // Returns true when stored.
  bool Store(const std::string& url, const http::Response& response);

  // Drops everything (restart).
  void Clear();

  StaticCacheStats stats() const;
  size_t size() const;

 private:
  struct Entry {
    http::Response response;
    MicroTime stored_at;
    MicroTime freshness_micros;
    std::string etag;  // Empty: not revalidatable.
    std::list<std::string>::iterator lru_position;
  };

  bool IsFresh(const Entry& entry) const;

  StaticCacheOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recent.
  StaticCacheStats stats_;
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_STATIC_CACHE_H_
