file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_edge.dir/edge_fleet.cc.o"
  "CMakeFiles/dynaprox_edge.dir/edge_fleet.cc.o.d"
  "CMakeFiles/dynaprox_edge.dir/edge_origin.cc.o"
  "CMakeFiles/dynaprox_edge.dir/edge_origin.cc.o.d"
  "CMakeFiles/dynaprox_edge.dir/hash_ring.cc.o"
  "CMakeFiles/dynaprox_edge.dir/hash_ring.cc.o.d"
  "libdynaprox_edge.a"
  "libdynaprox_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
