#include "http/message.h"

#include <cstdio>

#include "common/strings.h"

namespace dynaprox::http {
namespace {

bool IsUrlSafe(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
         c == '~' || c == '/';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Appends "Name: value\r\n" fields plus the final CRLF.
void AppendHeaders(const HeaderMap& headers, std::string& out) {
  for (const auto& [name, value] : headers.fields()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
}

// Ensures Content-Length is present when a body exists; returns the header
// map to serialize (copy only when we must add the field).
HeaderMap WithContentLength(const HeaderMap& headers, size_t body_size) {
  HeaderMap copy = headers;
  if (!copy.Has("Content-Length")) {
    copy.Add("Content-Length", std::to_string(body_size));
  }
  return copy;
}

}  // namespace

std::string_view Request::Path() const {
  size_t q = target.find('?');
  return std::string_view(target).substr(0, q);
}

std::string_view Request::QueryString() const {
  size_t q = target.find('?');
  if (q == std::string::npos) return {};
  return std::string_view(target).substr(q + 1);
}

std::map<std::string, std::string> Request::QueryParams() const {
  return ParseQueryString(QueryString());
}

std::string Request::Serialize() const {
  std::string out;
  out.reserve(SerializedSize());
  out += method;
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  AppendHeaders(WithContentLength(headers, body.size()), out);
  out += body;
  return out;
}

size_t Request::SerializedSize() const {
  HeaderMap with_length = WithContentLength(headers, body.size());
  return method.size() + 1 + target.size() + 1 + version.size() + 2 +
         with_length.SerializedSize() + 2 + body.size();
}

void Response::FlattenBody() {
  if (body_chain.empty()) return;
  body = body_chain.Flatten();
  body_chain.Clear();
}

std::string Response::SerializeHead() const {
  std::string out;
  out += version;
  out += ' ';
  out += std::to_string(status_code);
  out += ' ';
  out += reason;
  out += "\r\n";
  AppendHeaders(WithContentLength(headers, body_size()), out);
  return out;
}

std::string Response::Serialize() const {
  std::string out;
  out.reserve(SerializedSize());
  out += SerializeHead();
  if (body_chain.empty()) {
    out += body;
  } else {
    body_chain.AppendTo(out);
  }
  return out;
}

common::BufferChain Response::SerializeToChain() const {
  common::BufferChain wire;
  wire.Append(common::MakeBuffer(SerializeHead()));
  if (body_chain.empty()) {
    wire.AppendCopy(body);
  } else {
    wire.Append(body_chain);  // Refcount bumps only.
  }
  return wire;
}

size_t Response::SerializedSize() const {
  HeaderMap with_length = WithContentLength(headers, body_size());
  return version.size() + 1 + std::to_string(status_code).size() + 1 +
         reason.size() + 2 + with_length.SerializedSize() + 2 + body_size();
}

Response Response::MakeOk(std::string body, std::string content_type) {
  Response response;
  response.headers.Add("Content-Type", std::move(content_type));
  response.body = std::move(body);
  return response;
}

Response Response::MakeError(int code, std::string reason, std::string body) {
  Response response;
  response.status_code = code;
  response.reason = std::move(reason);
  response.headers.Add("Content-Type", "text/plain");
  response.body = std::move(body);
  return response;
}

std::string_view CanonicalReason(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 301:
      return "Moved Permanently";
    case 302:
      return "Found";
    case 304:
      return "Not Modified";
    case 400:
      return "Bad Request";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 500:
      return "Internal Server Error";
    case 502:
      return "Bad Gateway";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
               HexDigit(s[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(s[i + 1]) * 16 + HexDigit(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string UrlEncode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (IsUrlSafe(c)) {
      out += c;
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

std::string NormalizePath(std::string_view path) {
  std::vector<std::string_view> stack;
  for (std::string_view segment : StrSplit(path, '/')) {
    if (segment.empty() || segment == ".") continue;
    if (segment == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(segment);
  }
  std::string out = "/";
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i > 0) out += '/';
    out.append(stack[i]);
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view query) {
  std::map<std::string, std::string> params;
  if (query.empty()) return params;
  for (std::string_view pair : StrSplit(query, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      params[UrlDecode(pair)] = "";
    } else {
      params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return params;
}

}  // namespace dynaprox::http
