#include "bem/push_scheduler.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::bem {
namespace {

PushPolicy TestPolicy(double min_score = 4.0, size_t capacity = 8) {
  PushPolicy policy;
  policy.min_score = min_score;
  policy.queue_capacity = capacity;
  return policy;
}

TEST(PushSchedulerTest, ColdFragmentStaysPull) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(), &clock);
  // One lookup, one invalidation: score 1 < 4.
  scheduler.OnLookup("page|frag", true);
  scheduler.OnInvalidate("page|frag");
  EXPECT_EQ(scheduler.queue_depth(), 0u);
  EXPECT_EQ(scheduler.stats().skipped_cold, 1u);
  EXPECT_EQ(scheduler.stats().enqueued, 0u);
  EXPECT_DOUBLE_EQ(scheduler.ScoreOf("page|frag"), 1.0);
}

TEST(PushSchedulerTest, HotUpdateHeavyFragmentAdmitted) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(4.0), &clock);
  for (int i = 0; i < 4; ++i) scheduler.OnLookup("page|hot", true);
  scheduler.OnInvalidate("page|hot");  // score 4*1 = 4 >= 4.
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  auto batch = scheduler.TakeBatch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].canonical, "page|hot");
  EXPECT_EQ(scheduler.queue_depth(), 0u);
}

TEST(PushSchedulerTest, DuplicateInvalidationsQueueOnce) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(1.0), &clock);
  scheduler.OnLookup("f", true);
  scheduler.OnInvalidate("f");
  scheduler.OnInvalidate("f");
  scheduler.OnInvalidate("f");
  // One re-render covers all three updates.
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  EXPECT_EQ(scheduler.stats().enqueued, 1u);
}

TEST(PushSchedulerTest, FullQueueDropsToPull) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(1.0, /*capacity=*/2), &clock);
  for (int i = 0; i < 4; ++i) {
    std::string canonical = "f" + std::to_string(i);
    scheduler.OnLookup(canonical, true);
    scheduler.OnInvalidate(canonical);
  }
  EXPECT_EQ(scheduler.queue_depth(), 2u);
  EXPECT_EQ(scheduler.stats().enqueued, 2u);
  EXPECT_EQ(scheduler.stats().dropped, 2u);
}

TEST(PushSchedulerTest, InsertReleasesQueuedFlag) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(1.0), &clock);
  scheduler.OnLookup("f", true);
  scheduler.OnInvalidate("f");
  EXPECT_EQ(scheduler.queue_depth(), 1u);
  (void)scheduler.TakeBatch();
  // Re-insert (the push re-render) clears the queued flag, so the next
  // invalidation can queue again.
  scheduler.OnInsert("f", 7);
  scheduler.OnInvalidate("f");
  EXPECT_EQ(scheduler.queue_depth(), 1u);
}

TEST(PushSchedulerTest, TakeBatchHonorsMaxAndOrder) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(1.0), &clock);
  for (int i = 0; i < 3; ++i) {
    std::string canonical = "f" + std::to_string(i);
    scheduler.OnLookup(canonical, true);
    scheduler.OnInvalidate(canonical);
  }
  auto first = scheduler.TakeBatch(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].canonical, "f0");
  EXPECT_EQ(first[1].canonical, "f1");
  auto rest = scheduler.TakeBatch();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].canonical, "f2");
}

TEST(PushSchedulerTest, StalenessMeasuredFromFirstInvalidation) {
  SimClock clock;
  metrics::LatencyHistogram staleness({0.1, 1.0, 10.0});
  PushScheduler scheduler(TestPolicy(/*min_score=*/1e18), &clock,
                          &staleness);
  scheduler.OnLookup("f", true);
  clock.AdvanceSeconds(1.0);
  scheduler.OnInvalidate("f");  // Stale from t=1s (never admitted: cold).
  clock.AdvanceSeconds(0.5);
  scheduler.OnInvalidate("f");  // Second update; window still starts at 1s.
  clock.AdvanceSeconds(1.5);
  scheduler.OnInsert("f", 3);  // Re-rendered at t=3s: gap = 2s.
  auto snapshot = staleness.snapshot();
  ASSERT_EQ(snapshot.count, 1u);
  EXPECT_NEAR(snapshot.sum, 2.0, 1e-9);

  // A second insert without an intervening invalidation observes nothing.
  scheduler.OnInsert("f", 3);
  EXPECT_EQ(staleness.snapshot().count, 1u);
}

TEST(PushSchedulerTest, InsertOfUnknownFragmentIsIgnored) {
  SimClock clock;
  PushScheduler scheduler(TestPolicy(), &clock);
  scheduler.OnInsert("never-seen", 1);  // Must not crash or create state.
  EXPECT_DOUBLE_EQ(scheduler.ScoreOf("never-seen"), 0.0);
}

}  // namespace
}  // namespace dynaprox::bem
