#include "common/logging.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logger::level(); }
  void TearDown() override { Logger::set_level(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  Logger::set_level(LogLevel::kDebug);
  EXPECT_EQ(Logger::level(), LogLevel::kDebug);
  Logger::set_level(LogLevel::kOff);
  EXPECT_EQ(Logger::level(), LogLevel::kOff);
}

TEST_F(LoggingTest, MacroBelowLevelDoesNotEvaluateStream) {
  Logger::set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "value";
  };
  DYNAPROX_LOG(kDebug, "test") << expensive();
  EXPECT_EQ(evaluations, 0);
  DYNAPROX_LOG(kError, "test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogAtOffIsSilentAndSafe) {
  Logger::set_level(LogLevel::kOff);
  Logger::Log(LogLevel::kError, "test", "should be dropped");
  DYNAPROX_LOG(kError, "test") << "also dropped";
}

}  // namespace
}  // namespace dynaprox
