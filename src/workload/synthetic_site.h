#ifndef DYNAPROX_WORKLOAD_SYNTHETIC_SITE_H_
#define DYNAPROX_WORKLOAD_SYNTHETIC_SITE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "analytical/model.h"
#include "appserver/script_registry.h"
#include "common/rng.h"
#include "storage/table.h"

namespace dynaprox::workload {

// Builds the synthetic dynamic site the Section 6 experiments run against:
// `num_pages` scripts, each page made of `fragments_per_page` fragments of
// exactly `fragment_size` bytes, a `cacheability` fraction of which are
// tagged cacheable (assigned the same way as analytical::SiteSpec::Uniform
// so the analytical and experimental series are directly comparable).
//
// Hit-ratio control: the paper's experiments sweep the hit ratio h as an
// independent variable. The site realizes a target h by versioning each
// cacheable fragment: on every access the fragment's version is bumped
// with probability (1 - h). A bumped version changes the fragmentID, which
// forces a directory miss; an unbumped one hits (after first touch). The
// long-run hit fraction therefore converges to h.
//
// Thread-safe: the multi-threaded servers (TcpServer, EpollServer
// workers) run the page script concurrently, so the version/RNG state is
// guarded by one mutex. Fragment bodies read the repository, which is
// internally synchronized — generators may run on block-pool threads.
struct SyntheticSiteOptions {
  // Size of a shared fragment pool. 0 gives every page its own fragments
  // (the closed forms' uniform site). A positive pool realizes the
  // model's many-to-many page<->fragment mapping ("a fragment can be
  // associated with many pages"): page i's j-th slot uses pool fragment
  // (i * fragments_per_page + j) % pool, so smaller pools mean more
  // cross-page sharing.
  int fragment_pool = 0;
};

class SyntheticSite {
 public:
  // Registers scripts under "/page" (query parameter id=0..num_pages-1)
  // and stores fragment payloads in `repository` table "content".
  SyntheticSite(const analytical::ModelParams& params, uint64_t seed,
                storage::ContentRepository* repository,
                appserver::ScriptRegistry* registry,
                SyntheticSiteOptions options = {});

  SyntheticSite(const SyntheticSite&) = delete;
  SyntheticSite& operator=(const SyntheticSite&) = delete;

  const analytical::SiteSpec& spec() const { return spec_; }
  int num_pages() const { return static_cast<int>(spec_.pages.size()); }

  // Accesses (cacheable-fragment uses) and version bumps so far; their
  // complement ratio is the realized upper bound on the hit ratio.
  uint64_t fragment_accesses() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return accesses_;
  }
  uint64_t version_bumps() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return bumps_;
  }

  // Distinct fragment slots (pool size when sharing, pages * fragments
  // otherwise).
  int fragment_slots() const {
    return static_cast<int>(versions_.size());
  }

 private:
  // Pool/slot id backing page `page`'s `index`-th fragment position.
  int SlotFor(int page, int index) const;
  // Exact-size fragment body for `slot` at `version`.
  std::string FragmentBody(int slot, uint64_t version) const;

  Status RunPageScript(appserver::ScriptContext& context);

  analytical::ModelParams params_;
  SyntheticSiteOptions options_;
  analytical::SiteSpec spec_;
  storage::ContentRepository* repository_;
  // Mutable hit-ratio state, shared by every server thread running the
  // page script; state_mu_ guards all four.
  mutable std::mutex state_mu_;
  Rng rng_;
  std::vector<uint64_t> versions_;  // Indexed by slot.
  uint64_t accesses_ = 0;
  uint64_t bumps_ = 0;
};

}  // namespace dynaprox::workload

#endif  // DYNAPROX_WORKLOAD_SYNTHETIC_SITE_H_
