# Empty compiler generated dependencies file for dynaprox_dpc.
# This may be replaced when dependencies are built.
