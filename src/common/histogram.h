#ifndef DYNAPROX_COMMON_HISTOGRAM_H_
#define DYNAPROX_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace dynaprox {

// Records a stream of values and answers percentile/mean queries. Keeps
// every sample (simulation-scale datasets), sorting lazily on query.
// Not thread-safe.
class Histogram {
 public:
  void Record(double value);

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;

  // Returns the p-quantile (p in [0, 1]) by nearest-rank; 0 when empty.
  double Percentile(double p) const;

  // Absorbs all samples of `other`.
  void Merge(const Histogram& other);

  void Clear();

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_HISTOGRAM_H_
