#include "appserver/push_engine.h"

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "common/clock.h"

namespace dynaprox::appserver {
namespace {

// One pushed fragment as seen by a test sink.
struct SinkCall {
  std::string canonical;
  bem::DpcKey key;
  std::string body;
  MicroTime age_micros;
};

class PushEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterOrReplace("/cached", [this](ScriptContext& context) {
      context.Emit("<page>");
      Status status = context.CacheableBlock(
          bem::FragmentId("frag"), [this](ScriptContext& ctx) {
            ctx.Emit("body v" + std::to_string(version_));
            return Status::Ok();
          });
      context.Emit("</page>");
      return status;
    });

    bem::BemOptions bem_options;
    bem_options.capacity = 8;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
  }

  // Builds engine + origin wired per the documented pattern: engine
  // first, origin with the engine pointer, then close the loop.
  void Wire(double min_score) {
    bem::PushPolicy policy;
    policy.min_score = min_score;
    engine_ = std::make_unique<PushEngine>(policy, &clock_);
    monitor_->SetObserver(&engine_->scheduler());
    OriginOptions options;
    options.clock = &clock_;
    options.push_engine = engine_.get();
    server_ = std::make_unique<OriginServer>(&registry_, &repository_,
                                             monitor_.get(), options);
    engine_->AttachOrigin(server_.get());
    engine_->set_sink([this](const std::string& canonical, bem::DpcKey key,
                             const std::string& body, MicroTime age) {
      if (!sink_status_.ok()) return sink_status_;
      sink_calls_.push_back(SinkCall{canonical, key, body, age});
      return Status::Ok();
    });
  }

  http::Response Render() {
    http::Request request;
    request.target = "/cached";
    return server_->Handle(request);
  }

  SimClock clock_;
  ScriptRegistry registry_;
  storage::ContentRepository repository_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<PushEngine> engine_;
  std::unique_ptr<OriginServer> server_;
  std::vector<SinkCall> sink_calls_;
  Status sink_status_ = Status::Ok();
  int version_ = 1;
};

TEST_F(PushEngineTest, DrainPushesInvalidatedFragment) {
  Wire(/*min_score=*/1.0);
  ASSERT_EQ(Render().status_code, 200);  // Producer recorded, inserted.
  ASSERT_TRUE(monitor_->Invalidate(bem::FragmentId("frag")).ok());
  EXPECT_EQ(engine_->scheduler().queue_depth(), 1u);

  version_ = 2;  // The re-render must pick up the new content.
  EXPECT_EQ(engine_->Drain(), 1u);

  ASSERT_EQ(sink_calls_.size(), 1u);
  EXPECT_EQ(sink_calls_[0].canonical, "frag");
  EXPECT_EQ(sink_calls_[0].body, "body v2");
  EXPECT_EQ(sink_calls_[0].age_micros, 0);
  EXPECT_EQ(engine_->stats().pushed, 1u);
  // The push re-render re-inserted the fragment, closing the staleness
  // window through the shared histogram.
  EXPECT_EQ(engine_->staleness().snapshot().count, 1u);
}

TEST_F(PushEngineTest, NeverRenderedFragmentCountsNoProducer) {
  Wire(/*min_score=*/0.0);
  // Invalidation arrives for a fragment no request ever produced here.
  monitor_->SetObserver(&engine_->scheduler());
  engine_->scheduler().OnInvalidate("ghost");
  EXPECT_EQ(engine_->Drain(), 0u);
  EXPECT_EQ(engine_->stats().no_producer, 1u);
  EXPECT_TRUE(sink_calls_.empty());
}

TEST_F(PushEngineTest, ClientRefreshBeforeDrainDropsCorrectly) {
  Wire(/*min_score=*/1.0);
  ASSERT_EQ(Render().status_code, 200);
  ASSERT_TRUE(monitor_->Invalidate(bem::FragmentId("frag")).ok());
  EXPECT_EQ(engine_->scheduler().queue_depth(), 1u);

  // A client request re-renders the invalid fragment before Drain runs;
  // its response already carried the fresh SET toward the edge tier.
  ASSERT_EQ(Render().status_code, 200);

  EXPECT_EQ(engine_->Drain(), 0u);
  EXPECT_EQ(engine_->stats().missing_capture, 1u);
  EXPECT_EQ(engine_->stats().pushed, 0u);
  EXPECT_TRUE(sink_calls_.empty());
}

TEST_F(PushEngineTest, SinkFailureCounts) {
  Wire(/*min_score=*/1.0);
  ASSERT_EQ(Render().status_code, 200);
  ASSERT_TRUE(monitor_->Invalidate(bem::FragmentId("frag")).ok());
  sink_status_ = Status::Unavailable("edge unreachable");
  EXPECT_EQ(engine_->Drain(), 0u);
  EXPECT_EQ(engine_->stats().push_failures, 1u);
}

TEST_F(PushEngineTest, ColdFragmentNeverQueuedSoDrainIsEmpty) {
  Wire(/*min_score=*/100.0);
  ASSERT_EQ(Render().status_code, 200);
  ASSERT_TRUE(monitor_->Invalidate(bem::FragmentId("frag")).ok());
  EXPECT_EQ(engine_->scheduler().queue_depth(), 0u);
  EXPECT_EQ(engine_->scheduler().stats().skipped_cold, 1u);
  EXPECT_EQ(engine_->Drain(), 0u);
}

TEST_F(PushEngineTest, PushMetricsExposedWhenEngineAttached) {
  Wire(/*min_score=*/1.0);
  ASSERT_EQ(Render().status_code, 200);
  ASSERT_TRUE(monitor_->Invalidate(bem::FragmentId("frag")).ok());
  engine_->Drain();
  std::string exposition = server_->metrics_registry().RenderPrometheus();
  EXPECT_NE(exposition.find("dynaprox_bem_push_enqueued_total 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("dynaprox_bem_push_sent_total 1"),
            std::string::npos);
  EXPECT_NE(exposition.find("dynaprox_bem_push_queue_depth"),
            std::string::npos);
}

}  // namespace
}  // namespace dynaprox::appserver
