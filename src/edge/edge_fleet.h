#ifndef DYNAPROX_EDGE_EDGE_FLEET_H_
#define DYNAPROX_EDGE_EDGE_FLEET_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dpc/proxy.h"
#include "edge/edge_origin.h"
#include "edge/hash_ring.h"
#include "net/transport.h"

namespace dynaprox::edge {

// Transport decorator that stamps a fixed header field on every request —
// used so each edge node identifies itself to the origin.
class HeaderStampTransport : public net::Transport {
 public:
  HeaderStampTransport(net::Transport* inner, std::string name,
                       std::string value)
      : inner_(inner), name_(std::move(name)), value_(std::move(value)) {}

  Result<http::Response> RoundTrip(const http::Request& request) override {
    http::Request stamped = request;
    stamped.headers.Set(name_, value_);
    return inner_->RoundTrip(stamped);
  }

 private:
  net::Transport* inner_;
  std::string name_;
  std::string value_;
};

struct EdgeFleetOptions {
  dpc::ProxyOptions proxy_options;
  int ring_vnodes = 40;
};

struct FleetStats {
  uint64_t requests = 0;
  uint64_t routing_failures = 0;
};

// A fleet of forward-proxy DPC nodes (paper Section 7): clients are routed
// to edge nodes by consistent hashing on a client affinity key, each node
// runs a full DPC, and the origin (an EdgeOrigin) keeps one directory per
// node. Node failure is handled by marking the node down — the ring walks
// to the next node, whose directory at the origin is coherent for *it*, so
// correctness is preserved (at the cost of cold-start misses).
class EdgeFleet {
 public:
  // `origin` carries requests to an EdgeOrigin handler and must outlive
  // the fleet.
  EdgeFleet(net::Transport* origin, EdgeFleetOptions options);

  // Adds a node to the ring and builds its DPC.
  Status AddNode(const std::string& node);

  Status MarkDown(const std::string& node);
  Status MarkUp(const std::string& node);

  // Serves one client request through the routed node's DPC.
  http::Response Handle(const http::Request& request);
  net::Handler AsHandler();

  // Affinity key: "X-Client" header if present, else the session id, else
  // the request path (so anonymous traffic is spread by page).
  static std::string ClientKey(const http::Request& request);

  // The node `request` would route to.
  Result<std::string> RouteFor(const http::Request& request) const;

  Result<const dpc::DpcProxy*> NodeProxy(const std::string& node) const;
  const HashRing& ring() const { return ring_; }
  FleetStats stats() const;

 private:
  struct Node {
    std::unique_ptr<HeaderStampTransport> upstream;
    std::unique_ptr<dpc::DpcProxy> proxy;
  };

  net::Transport* origin_;
  EdgeFleetOptions options_;
  // Ring membership (AddNode) happens at setup; MarkDown/MarkUp and Handle
  // may race, so routing state is guarded.
  mutable std::mutex mu_;
  HashRing ring_;
  std::map<std::string, Node> nodes_;
  FleetStats stats_;
};

}  // namespace dynaprox::edge

#endif  // DYNAPROX_EDGE_EDGE_FLEET_H_
