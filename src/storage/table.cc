#include "storage/table.h"

namespace dynaprox::storage {

size_t Table::row_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rows_.size();
}

bool Table::Contains(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return rows_.find(key) != rows_.end();
}

void Table::IndexInsertLocked(const std::string& key, const Row& row) {
  for (auto& [column, buckets] : indexes_) {
    auto cell = row.find(column);
    if (cell != row.end()) buckets[cell->second].insert(key);
  }
}

void Table::IndexRemoveLocked(const std::string& key, const Row& row) {
  for (auto& [column, buckets] : indexes_) {
    auto cell = row.find(column);
    if (cell == row.end()) continue;
    auto bucket = buckets.find(cell->second);
    if (bucket == buckets.end()) continue;
    bucket->second.erase(key);
    if (bucket->second.empty()) buckets.erase(bucket);
  }
}

Status Table::Insert(const std::string& key, Row row) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = rows_.emplace(key, std::move(row));
    if (!inserted) {
      return Status::AlreadyExists("row exists: " + name_ + "/" + key);
    }
    IndexInsertLocked(key, it->second);
  }
  Notify(key, UpdateKind::kInsert);
  return Status::Ok();
}

Status Table::Update(const std::string& key, Row row) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = rows_.find(key);
    if (it == rows_.end()) {
      return Status::NotFound("row not found: " + name_ + "/" + key);
    }
    IndexRemoveLocked(key, it->second);
    it->second = std::move(row);
    IndexInsertLocked(key, it->second);
  }
  Notify(key, UpdateKind::kUpdate);
  return Status::Ok();
}

void Table::Upsert(const std::string& key, Row row) {
  UpdateKind kind;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = rows_.find(key);
    if (it == rows_.end()) {
      auto [inserted_it, inserted] = rows_.emplace(key, std::move(row));
      IndexInsertLocked(key, inserted_it->second);
      kind = UpdateKind::kInsert;
    } else {
      IndexRemoveLocked(key, it->second);
      it->second = std::move(row);
      IndexInsertLocked(key, it->second);
      kind = UpdateKind::kUpdate;
    }
  }
  Notify(key, kind);
}

Status Table::Delete(const std::string& key) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = rows_.find(key);
    if (it == rows_.end()) {
      return Status::NotFound("row not found: " + name_ + "/" + key);
    }
    IndexRemoveLocked(key, it->second);
    rows_.erase(it);
  }
  Notify(key, UpdateKind::kDelete);
  return Status::Ok();
}

Result<Row> Table::Get(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound("row not found: " + name_ + "/" + key);
  }
  return it->second;
}

std::vector<std::pair<std::string, Row>> Table::Scan(
    const Predicate& predicate, size_t limit) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, Row>> out;
  for (const auto& [key, row] : rows_) {
    if (predicate && !predicate(row)) continue;
    out.emplace_back(key, row);
    if (limit != 0 && out.size() >= limit) break;
  }
  return out;
}

std::vector<std::pair<std::string, Row>> Table::ScanEq(
    const std::string& column, const Value& value, size_t limit) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto index = indexes_.find(column);
    if (index != indexes_.end()) {
      index_lookups_.fetch_add(1, std::memory_order_relaxed);
      std::vector<std::pair<std::string, Row>> out;
      auto bucket = index->second.find(value);
      if (bucket != index->second.end()) {
        for (const std::string& key : bucket->second) {
          out.emplace_back(key, rows_.at(key));
          if (limit != 0 && out.size() >= limit) break;
        }
      }
      return out;
    }
  }
  return Scan(
      [&](const Row& row) {
        auto it = row.find(column);
        return it != row.end() && it->second == value;
      },
      limit);
}

Status Table::CreateIndex(const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = indexes_.emplace(
      column, std::map<Value, std::set<std::string>>());
  if (!inserted) {
    return Status::AlreadyExists("index exists: " + name_ + "." + column);
  }
  // Backfill from existing rows.
  for (const auto& [key, row] : rows_) {
    auto cell = row.find(column);
    if (cell != row.end()) it->second[cell->second].insert(key);
  }
  return Status::Ok();
}

bool Table::HasIndex(const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return indexes_.find(column) != indexes_.end();
}

uint64_t Table::index_lookups() const {
  return index_lookups_.load(std::memory_order_relaxed);
}

void Table::Notify(const std::string& key, UpdateKind kind) const {
  if (bus_ != nullptr) bus_->Publish({name_, key, kind});
}

Result<Table*> ContentRepository::CreateTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tables_.emplace(
      std::piecewise_construct, std::forward_as_tuple(name),
      std::forward_as_tuple(name, &bus_));
  if (!inserted) {
    return Status::AlreadyExists("table exists: " + name);
  }
  return &it->second;
}

Result<Table*> ContentRepository::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return &it->second;
}

Table* ContentRepository::GetOrCreateTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it != tables_.end()) return &it->second;
  auto [inserted_it, inserted] = tables_.emplace(
      std::piecewise_construct, std::forward_as_tuple(name),
      std::forward_as_tuple(name, &bus_));
  return &inserted_it->second;
}

std::vector<std::string> ContentRepository::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace dynaprox::storage
