#ifndef DYNAPROX_DPC_ASSEMBLER_H_
#define DYNAPROX_DPC_ASSEMBLER_H_

#include <string>
#include <vector>

#include "bem/types.h"
#include "common/result.h"
#include "dpc/fragment_store.h"
#include "dpc/tag_scanner.h"

namespace dynaprox::dpc {

// Result of assembling one response template.
struct AssembledPage {
  std::string page;
  size_t set_count = 0;
  size_t get_count = 0;
  // dpcKeys whose GET found an empty slot (cold cache). When non-empty the
  // page is incomplete; the proxy triggers miss recovery.
  std::vector<bem::DpcKey> missing_keys;

  bool complete() const { return missing_keys.empty(); }
};

// Assembles a final page from a BEM template (paper 4.3.2): stores SET
// payloads into `store`, splices GET payloads out of it. Fails only on a
// corrupt template; cold-cache GET misses are reported via `missing_keys`.
Result<AssembledPage> AssemblePage(
    std::string_view wire, FragmentStore& store,
    ScanStrategy strategy = ScanStrategy::kMemchr);

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_ASSEMBLER_H_
