// Reproduces the paper's Bob/Alice correctness argument (Section 3.2.1):
// a URL-keyed page-level proxy cache serves Bob's personalized page to
// Alice, while the DPC — whose layout comes from the origin on every
// request — serves each visitor the correct page.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/personalization.h"
#include "appserver/script_registry.h"
#include "appserver/session.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

namespace dynaprox {
namespace {

// The strawman: a URL-keyed full-page cache (what Section 3.2.1 warns
// about). Deliberately ignores session state, like a generic proxy.
class UrlKeyedPageCache {
 public:
  explicit UrlKeyedPageCache(net::Transport* upstream)
      : upstream_(upstream) {}

  http::Response Handle(const http::Request& request) {
    auto it = cache_.find(request.target);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    Result<http::Response> response = upstream_->RoundTrip(request);
    if (!response.ok()) {
      return http::Response::MakeError(502, "Bad Gateway", "upstream");
    }
    cache_[request.target] = *response;
    return *response;
  }

  int hits() const { return hits_; }

 private:
  net::Transport* upstream_;
  std::map<std::string, http::Response> cache_;
  int hits_ = 0;
};

class CorrectnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* users =
        repository_.GetOrCreateTable(appserver::kUsersTable);
    users->Upsert("bob", {{"name", storage::Value(std::string("Bob"))}});

    // /welcome is "dynamic layout": registered users get a greeting
    // fragment, anonymous visitors don't. Same URL either way — the
    // canonical page-cache trap.
    registry_.RegisterOrReplace(
        "/welcome", [this](appserver::ScriptContext& context) {
          context.Emit("<html>");
          auto user = sessions_.ResolveUser(context.request());
          if (user.has_value()) {
            Status status = context.CacheableBlock(
                bem::FragmentId("greeting", {{"user", *user}}),
                [&](appserver::ScriptContext& ctx) {
                  auto profile =
                      appserver::LoadProfile(*ctx.repository(), *user);
                  if (!profile.ok()) return profile.status();
                  ctx.Emit("<p>Hello, " + profile->display_name + "</p>");
                  return Status::Ok();
                });
            if (!status.ok()) return status;
          }
          Status status = context.CacheableBlock(
              bem::FragmentId("promo"), [](appserver::ScriptContext& ctx) {
                ctx.Emit("<p>Deal of the day</p>");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          context.Emit("</html>");
          return Status::Ok();
        });

    bem::BemOptions bem_options;
    bem_options.capacity = 16;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
    upstream_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 16;
    dpc_ = std::make_unique<dpc::DpcProxy>(upstream_.get(), proxy_options);

    bob_token_ = sessions_.Login("bob");
  }

  // NOTE: Bob and Alice use the SAME URL; only the Cookie differs, and a
  // URL-keyed cache ignores cookies.
  http::Request BobRequest() {
    http::Request request;
    request.target = "/welcome";
    request.headers.Add("Cookie", "sid=" + bob_token_);
    return request;
  }
  http::Request AliceRequest() {
    http::Request request;
    request.target = "/welcome";
    return request;
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  appserver::SessionManager sessions_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> upstream_;
  std::unique_ptr<dpc::DpcProxy> dpc_;
  std::string bob_token_;

  const std::string kBobPage =
      "<html><p>Hello, Bob</p><p>Deal of the day</p></html>";
  const std::string kAlicePage = "<html><p>Deal of the day</p></html>";
};

TEST_F(CorrectnessTest, PageLevelCacheServesBobsPageToAlice) {
  // Baseline origin without BEM so the strawman sees full pages.
  appserver::OriginServer plain_origin(&registry_, &repository_, nullptr);
  net::DirectTransport plain(plain_origin.AsHandler());
  UrlKeyedPageCache page_cache(&plain);

  http::Response bob = page_cache.Handle(BobRequest());
  EXPECT_EQ(bob.BodyText(), kBobPage);

  // Alice asks for the same URL and gets *Bob's* page: the failure the
  // paper demonstrates.
  http::Response alice = page_cache.Handle(AliceRequest());
  EXPECT_EQ(page_cache.hits(), 1);
  EXPECT_EQ(alice.BodyText(), kBobPage);
  EXPECT_NE(alice.BodyText(), kAlicePage);
}

TEST_F(CorrectnessTest, DpcServesEachVisitorTheirOwnPage) {
  http::Response bob = dpc_->Handle(BobRequest());
  EXPECT_EQ(bob.BodyText(), kBobPage);
  http::Response alice = dpc_->Handle(AliceRequest());
  EXPECT_EQ(alice.BodyText(), kAlicePage);
  // And again, with warm caches, both still correct.
  EXPECT_EQ(dpc_->Handle(BobRequest()).BodyText(), kBobPage);
  EXPECT_EQ(dpc_->Handle(AliceRequest()).BodyText(), kAlicePage);
}

TEST_F(CorrectnessTest, SharedFragmentReusedAcrossUsers) {
  dpc_->Handle(BobRequest());
  uint64_t misses_after_bob = monitor_->stats().misses;
  dpc_->Handle(AliceRequest());
  // Alice's page reuses the cached "promo" fragment: exactly zero
  // additional misses for it.
  EXPECT_EQ(monitor_->stats().misses, misses_after_bob);
  EXPECT_GE(monitor_->stats().hits, 1u);
}

TEST_F(CorrectnessTest, PerUserFragmentsDoNotLeakBetweenUsers) {
  storage::Table* users =
      *repository_.GetTable(appserver::kUsersTable);
  users->Upsert("carol", {{"name", storage::Value(std::string("Carol"))}});
  std::string carol_token = sessions_.Login("carol");

  dpc_->Handle(BobRequest());
  http::Request carol;
  carol.target = "/welcome";
  carol.headers.Add("Cookie", "sid=" + carol_token);
  http::Response response = dpc_->Handle(carol);
  EXPECT_NE(response.BodyText().find("Hello, Carol"), std::string::npos);
  EXPECT_EQ(response.BodyText().find("Hello, Bob"), std::string::npos);
}

}  // namespace
}  // namespace dynaprox
