#ifndef DYNAPROX_COMMON_BUFFER_CHAIN_H_
#define DYNAPROX_COMMON_BUFFER_CHAIN_H_

#include <sys/uio.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dynaprox::common {

// A reference-counted immutable byte buffer. Matches dpc::FragmentRef so a
// cached fragment can be spliced into a response chain without conversion.
using Buffer = std::shared_ptr<const std::string>;

// Moves `text` into a freshly allocated shared buffer.
inline Buffer MakeBuffer(std::string text) {
  return std::make_shared<const std::string>(std::move(text));
}

// An ordered sequence of slices over shared immutable buffers: the
// zero-copy spine of the response path. A slice holds a reference to its
// backing buffer plus the byte range it covers, so one fragment buffer can
// appear in any number of chains (and any number of positions) without its
// bytes ever being duplicated; the buffer stays alive until the last chain
// referencing it is destroyed, even if the fragment store has already
// replaced the slot.
//
// Chains are cheap to copy (slice vector + refcount bumps, no byte
// copies), cheap to splice, and export directly to an iovec array for
// vectored socket writes. Not thread-safe; share the underlying Buffers,
// not the chain object.
class BufferChain {
 public:
  struct Slice {
    Buffer buffer;  // Keeps the bytes alive; never null.
    const char* data = nullptr;
    size_t size = 0;

    std::string_view view() const { return {data, size}; }
  };

  BufferChain() = default;

  // Appends the whole buffer as one slice.
  void Append(Buffer buffer);

  // Appends `slice`, which must point into `*buffer` (the caller
  // guarantees the aliasing; this is what makes the append zero-copy).
  void Append(Buffer buffer, std::string_view slice);

  // Splices another chain onto the end (slice handles move over; no byte
  // copies).
  void Append(BufferChain other);

  // Copies `bytes` into a new owned buffer. The escape hatch for data
  // that has no shared owner (error pages, serialized headers).
  void AppendCopy(std::string_view bytes);

  void Clear();

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t slice_count() const { return slices_.size(); }
  const std::vector<Slice>& slices() const { return slices_; }

  // Materializes the chain as one contiguous string (copies every byte;
  // keep off the hot path).
  std::string Flatten() const;
  void AppendTo(std::string& out) const;

  // Byte-for-byte equality against a contiguous string, without
  // flattening.
  bool ContentEquals(std::string_view expected) const;

  // Fills `iov` with up to `max_iovecs` entries describing the bytes from
  // `offset` to the end of the chain (a mid-slice offset yields a partial
  // first entry — exactly what resuming after a short writev needs).
  // Returns the number of entries filled. `offset` >= size() fills
  // nothing.
  size_t FillIovecs(size_t offset, struct iovec* iov,
                    size_t max_iovecs) const;

 private:
  std::vector<Slice> slices_;
  size_t size_ = 0;
};

}  // namespace dynaprox::common

#endif  // DYNAPROX_COMMON_BUFFER_CHAIN_H_
