// Model-based test: CacheDirectory checked against a simple reference
// model (a map plus paper invariants) under randomized operation
// sequences. This pins down the subtle lifecycle rules — lazy TTL expiry,
// freeList recycling, stale-entry reclamation — far beyond the
// example-based tests.

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "bem/cache_directory.h"
#include "common/clock.h"
#include "common/rng.h"

namespace dynaprox::bem {
namespace {

// Reference model: tracks which fragments *must* be valid (inserted, never
// invalidated/evicted/expired) and which must not. Eviction makes hits
// unpredictable for untouched entries, so the model tracks definite
// validity only when no eviction has occurred since the insert.
class ReferenceModel {
 public:
  explicit ReferenceModel(size_t capacity) : capacity_(capacity) {}

  void OnInsert(const std::string& id, MicroTime now, MicroTime ttl) {
    valid_[id] = {now, ttl};
  }
  void OnInvalidate(const std::string& id) { valid_.erase(id); }
  void OnEviction() {
    // Some entry was evicted; we no longer know which are resident.
    eviction_happened_ = true;
  }
  void Expire(MicroTime now) {
    for (auto it = valid_.begin(); it != valid_.end();) {
      if (it->second.ttl > 0 && now - it->second.inserted >= it->second.ttl) {
        it = valid_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Whether a Lookup hit is *required* (only when no eviction could have
  // removed it).
  bool MustHit(const std::string& id) const {
    return !eviction_happened_ && valid_.count(id) > 0;
  }
  // Whether a hit is *allowed*.
  bool MayHit(const std::string& id) const { return valid_.count(id) > 0; }

  size_t capacity() const { return capacity_; }

 private:
  struct Times {
    MicroTime inserted;
    MicroTime ttl;
  };
  size_t capacity_;
  std::map<std::string, Times> valid_;
  bool eviction_happened_ = false;
};

class DirectoryModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirectoryModelTest, RandomOpsAgreeWithModel) {
  Rng rng(GetParam());
  SimClock clock;
  const DpcKey kCapacity = 16;
  CacheDirectory directory(kCapacity, &clock, *MakeReplacementPolicy("lru"));
  ReferenceModel model(kCapacity);

  for (int step = 0; step < 3000; ++step) {
    std::string name = "f" + std::to_string(rng.NextBounded(40));
    FragmentId id(name);
    uint64_t evictions_before = directory.stats().evictions;

    switch (rng.NextBounded(8)) {
      case 0:
      case 1:
      case 2: {  // Lookup.
        LookupResult result = directory.Lookup(id);
        if (model.MustHit(name)) {
          EXPECT_TRUE(result.hit()) << name << " step " << step;
        }
        if (result.hit()) {
          EXPECT_TRUE(model.MayHit(name)) << name << " step " << step;
          EXPECT_LT(result.key, kCapacity);
        }
        break;
      }
      case 3:
      case 4: {  // Insert (after a miss, like the real miss path).
        if (!directory.Lookup(id).hit()) {
          MicroTime ttl =
              rng.NextBool(0.3)
                  ? static_cast<MicroTime>(1 + rng.NextBounded(50))
                  : 0;
          Result<DpcKey> key = directory.Insert(id, ttl);
          ASSERT_TRUE(key.ok());
          model.OnInsert(name, clock.NowMicros(), ttl);
        }
        break;
      }
      case 5: {  // Invalidate.
        Status status = directory.Invalidate(id);
        if (model.MustHit(name)) {
          EXPECT_TRUE(status.ok()) << name;
        }
        model.OnInvalidate(name);
        break;
      }
      case 6: {  // Time passes; expiry becomes possible.
        clock.AdvanceMicros(1 + static_cast<MicroTime>(rng.NextBounded(20)));
        model.Expire(clock.NowMicros());
        break;
      }
      case 7: {  // Sweep.
        directory.SweepExpired();
        model.Expire(clock.NowMicros());
        break;
      }
    }
    if (directory.stats().evictions > evictions_before) {
      model.OnEviction();
    }

    // Paper invariants, every step:
    ASSERT_LE(directory.entry_count(), kCapacity);
    ASSERT_EQ(directory.valid_count() + directory.free_key_count(),
              kCapacity);
  }
}

TEST_P(DirectoryModelTest, KeysNeverAliasAcrossValidFragments) {
  // Two valid fragments must never share a dpcKey (otherwise the DPC would
  // serve one fragment's bytes for the other).
  Rng rng(GetParam() * 31 + 7);
  SimClock clock;
  const DpcKey kCapacity = 8;
  CacheDirectory directory(kCapacity, &clock,
                           *MakeReplacementPolicy("fifo"));
  std::set<std::string> inserted;
  for (int step = 0; step < 2000; ++step) {
    std::string name = "f" + std::to_string(rng.NextBounded(24));
    FragmentId id(name);
    if (rng.NextBool(0.6)) {
      if (!directory.Lookup(id).hit()) {
        ASSERT_TRUE(directory.Insert(id, 0).ok());
        inserted.insert(name);
      }
    } else if (!inserted.empty()) {
      (void)directory.Invalidate(
          FragmentId("f" + std::to_string(rng.NextBounded(24))));
    }
    // Collect keys of all currently-valid fragments.
    std::set<DpcKey> keys;
    for (const std::string& fragment : inserted) {
      Result<DpcKey> key = directory.KeyOf(FragmentId(fragment));
      if (!key.ok()) continue;
      ASSERT_TRUE(keys.insert(*key).second)
          << "key " << *key << " aliased at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryModelTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace dynaprox::bem
