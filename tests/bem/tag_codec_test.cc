#include "bem/tag_codec.h"

#include <gtest/gtest.h>

namespace dynaprox::bem {
namespace {

TEST(TagCodecTest, LiteralPassesPlainTextThrough) {
  std::string out;
  TagCodec::AppendLiteral("<html>hello</html>", out);
  EXPECT_EQ(out, "<html>hello</html>");
}

TEST(TagCodecTest, LiteralEscapesStx) {
  std::string out;
  TagCodec::AppendLiteral(std::string("a\x02z"), out);
  EXPECT_EQ(out, std::string("a\x02L\x03z"));
}

TEST(TagCodecTest, EtxNeedsNoEscape) {
  std::string out;
  TagCodec::AppendLiteral(std::string("a\x03z"), out);
  EXPECT_EQ(out, std::string("a\x03z"));
}

TEST(TagCodecTest, GetTagFormat) {
  std::string out;
  TagCodec::AppendGet(0x2A, out);
  EXPECT_EQ(out, std::string("\x02G2a\x03"));
}

TEST(TagCodecTest, SetTagWrapsContent) {
  std::string out;
  TagCodec::AppendSet(1, "body", out);
  EXPECT_EQ(out, std::string("\x02S1\x03") + "body" + "\x02" "E\x03");
}

TEST(TagCodecTest, SetEscapesContent) {
  std::string out;
  TagCodec::AppendSet(1, std::string("x\x02y"), out);
  EXPECT_EQ(out,
            std::string("\x02S1\x03") + "x\x02L\x03y" + "\x02" "E\x03");
}

TEST(TagCodecTest, TagSizesMatchEmission) {
  for (DpcKey key : {DpcKey{0}, DpcKey{15}, DpcKey{16}, DpcKey{4095},
                     DpcKey{1u << 20}}) {
    std::string get;
    TagCodec::AppendGet(key, get);
    EXPECT_EQ(get.size(), TagCodec::GetTagSize(key));

    std::string set;
    TagCodec::AppendSet(key, "0123456789", set);
    EXPECT_EQ(set.size(), TagCodec::SetFramingSize(key) + 10);
  }
}

TEST(TagCodecTest, TypicalTagSizeIsAboutTenBytes) {
  // Table 2 sets g = 10; our realized GET tag for keys up to 0xffffff is
  // 3 + <=6 = at most 9 bytes, comfortably within the modeled budget.
  EXPECT_LE(TagCodec::GetTagSize(0xFFFFFF), 10u);
  EXPECT_GE(TagCodec::GetTagSize(0), 4u);
}

}  // namespace
}  // namespace dynaprox::bem
