file(REMOVE_RECURSE
  "CMakeFiles/appserver_test.dir/appserver/origin_server_test.cc.o"
  "CMakeFiles/appserver_test.dir/appserver/origin_server_test.cc.o.d"
  "CMakeFiles/appserver_test.dir/appserver/personalization_test.cc.o"
  "CMakeFiles/appserver_test.dir/appserver/personalization_test.cc.o.d"
  "CMakeFiles/appserver_test.dir/appserver/script_context_test.cc.o"
  "CMakeFiles/appserver_test.dir/appserver/script_context_test.cc.o.d"
  "CMakeFiles/appserver_test.dir/appserver/script_registry_test.cc.o"
  "CMakeFiles/appserver_test.dir/appserver/script_registry_test.cc.o.d"
  "CMakeFiles/appserver_test.dir/appserver/session_test.cc.o"
  "CMakeFiles/appserver_test.dir/appserver/session_test.cc.o.d"
  "appserver_test"
  "appserver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
