
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bem/cache_directory.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/cache_directory.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/cache_directory.cc.o.d"
  "/root/repo/src/bem/dependency_registry.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/dependency_registry.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/dependency_registry.cc.o.d"
  "/root/repo/src/bem/free_list.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/free_list.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/free_list.cc.o.d"
  "/root/repo/src/bem/monitor.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/monitor.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/monitor.cc.o.d"
  "/root/repo/src/bem/replacement.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/replacement.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/replacement.cc.o.d"
  "/root/repo/src/bem/sweeper.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/sweeper.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/sweeper.cc.o.d"
  "/root/repo/src/bem/tag_codec.cc" "src/bem/CMakeFiles/dynaprox_bem.dir/tag_codec.cc.o" "gcc" "src/bem/CMakeFiles/dynaprox_bem.dir/tag_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
