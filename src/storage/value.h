#ifndef DYNAPROX_STORAGE_VALUE_H_
#define DYNAPROX_STORAGE_VALUE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>

namespace dynaprox::storage {

// A typed cell value in the content repository.
using Value = std::variant<int64_t, double, std::string>;

// A row: column name -> value. Rows are schemaless (the content repository
// stores heterogeneous site content: product records, headlines, quotes,
// user profiles).
using Row = std::map<std::string, Value>;

// Renders a value for templating into HTML. Doubles use %.2f (prices).
std::string ValueToString(const Value& value);

// Convenience typed getters; return the fallback when the column is absent
// or has a different type.
int64_t GetInt(const Row& row, const std::string& column, int64_t fallback = 0);
double GetDouble(const Row& row, const std::string& column,
                 double fallback = 0.0);
std::string GetString(const Row& row, const std::string& column,
                      const std::string& fallback = "");

}  // namespace dynaprox::storage

#endif  // DYNAPROX_STORAGE_VALUE_H_
