// Edge CDN: the Section 7 forward-proxy extension in action.
//
// Three edge DPC nodes front one origin. Clients are routed by consistent
// hashing; each edge keeps its own fragment cache and the origin keeps one
// cache directory per edge, so every edge assembles correct pages. The
// demo exercises routing, cross-edge coherency on a data update, and
// transparent failover when a node goes down.
//
// Run: ./edge_cdn

#include <cstdio>
#include <memory>

#include "appserver/script_registry.h"
#include "common/rng.h"
#include "edge/edge_fleet.h"
#include "edge/edge_origin.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace dynaprox;

int main() {
  storage::ContentRepository repository;
  storage::Table* articles = repository.GetOrCreateTable("articles");
  articles->Upsert("lead", {{"title", storage::Value(std::string(
                                          "Edge caching goes dynamic"))}});

  appserver::ScriptRegistry registry;
  registry.RegisterOrReplace("/front", [](appserver::ScriptContext& ctx) {
    ctx.Emit("<html>");
    Status status = ctx.CacheableBlock(
        bem::FragmentId("lead-story"),
        [](appserver::ScriptContext& block) {
          auto row = (*block.repository()->GetTable("articles"))->Get("lead");
          if (!row.ok()) return row.status();
          block.DeclareDependency("articles", "lead");
          block.Emit("<h1>" + storage::GetString(*row, "title") + "</h1>");
          return Status::Ok();
        });
    if (!status.ok()) return status;
    ctx.Emit("</html>");
    return Status::Ok();
  });

  bem::BemOptions bem_options;
  bem_options.capacity = 128;
  edge::EdgeOrigin origin(&registry, &repository, bem_options);
  net::ByteMeter origin_meter;
  net::MeteredTransport origin_link(
      std::make_unique<net::DirectTransport>(origin.AsHandler()), nullptr,
      &origin_meter);

  edge::EdgeFleetOptions fleet_options;
  fleet_options.proxy_options.capacity = 128;
  edge::EdgeFleet fleet(&origin_link, fleet_options);
  for (const char* node : {"edge-us", "edge-eu", "edge-ap"}) {
    if (!origin.AddEdge(node).ok() || !fleet.AddNode(node).ok()) {
      std::printf("fleet setup failed\n");
      return 1;
    }
  }

  auto request_for = [](const std::string& client) {
    http::Request request;
    request.target = "/front";
    request.headers.Add("X-Client", client);
    return request;
  };

  std::printf("-- routing: 12 clients across the ring --\n");
  Rng rng(2);
  for (int i = 0; i < 12; ++i) {
    std::string client = "client-" + std::to_string(i);
    http::Request request = request_for(client);
    std::string node = fleet.RouteFor(request).value_or("?");
    http::Response response = fleet.Handle(request);
    std::printf("%-10s -> %-8s (%d, %zuB)\n", client.c_str(), node.c_str(),
                response.status_code, response.body_size());
  }
  std::printf("origin link so far: %lluB payload across %llu messages "
              "(one SET per edge, then GETs)\n",
              static_cast<unsigned long long>(origin_meter.payload_bytes()),
              static_cast<unsigned long long>(origin_meter.messages()));

  std::printf("\n-- coherency: update the lead story --\n");
  articles->Upsert("lead", {{"title", storage::Value(std::string(
                                          "BREAKING: all edges refresh"))}});
  for (const char* client : {"client-0", "client-5", "client-9"}) {
    http::Response response = fleet.Handle(request_for(client));
    std::printf("%-10s sees: %s\n", client,
                response.BodyText().find("BREAKING") != std::string::npos
                    ? "fresh story"
                    : "STALE STORY (bug!)");
  }

  std::printf("\n-- failover: edge-eu goes down --\n");
  (void)fleet.MarkDown("edge-eu");
  int moved = 0;
  for (int i = 0; i < 12; ++i) {
    http::Request request = request_for("client-" + std::to_string(i));
    if (*fleet.RouteFor(request) != "edge-eu") {
      http::Response response = fleet.Handle(request);
      if (response.status_code != 200) {
        std::printf("failover request failed!\n");
        return 1;
      }
    }
    ++moved;
  }
  std::printf("all %d clients still served with edge-eu down\n", moved);
  (void)fleet.MarkUp("edge-eu");

  std::printf("\nper-edge directories at the origin:\n");
  for (const char* node : {"edge-us", "edge-eu", "edge-ap"}) {
    const bem::BackEndMonitor* monitor = *origin.MonitorFor(node);
    std::printf("  %-8s hits=%llu misses=%llu\n", node,
                static_cast<unsigned long long>(monitor->stats().hits),
                static_cast<unsigned long long>(monitor->stats().misses));
  }
  return 0;
}
