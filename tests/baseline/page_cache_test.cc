#include "baseline/page_cache.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::baseline {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest()
      : upstream_([this](const http::Request& request) {
          ++origin_hits_;
          return http::Response::MakeOk("page:" + request.target +
                                        ":v" + std::to_string(version_));
        }) {}

  UrlPageCache MakeCache(size_t capacity = 8, MicroTime ttl = 0) {
    PageCacheOptions options;
    options.capacity = capacity;
    options.ttl_micros = ttl;
    options.clock = &clock_;
    return UrlPageCache(&upstream_, options);
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  SimClock clock_;
  int origin_hits_ = 0;
  int version_ = 1;
  net::DirectTransport upstream_;
};

TEST_F(PageCacheTest, CachesByUrl) {
  UrlPageCache cache = MakeCache();
  EXPECT_EQ(cache.Handle(Get("/a")).body, "page:/a:v1");
  version_ = 2;
  EXPECT_EQ(cache.Handle(Get("/a")).body, "page:/a:v1");  // Stale hit.
  EXPECT_EQ(cache.Handle(Get("/b")).body, "page:/b:v2");
  EXPECT_EQ(origin_hits_, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(PageCacheTest, IgnoresCookiesTheDocumentedHazard) {
  UrlPageCache cache = MakeCache();
  http::Request bob = Get("/welcome");
  bob.headers.Add("Cookie", "sid=bob");
  http::Request alice = Get("/welcome");
  cache.Handle(bob);
  version_ = 99;
  // Alice gets Bob's cached page: same URL, cookie ignored.
  EXPECT_EQ(cache.Handle(alice).body, "page:/welcome:v1");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(PageCacheTest, TtlExpires) {
  UrlPageCache cache = MakeCache(8, 5 * kMicrosPerSecond);
  cache.Handle(Get("/a"));
  clock_.AdvanceSeconds(3);
  cache.Handle(Get("/a"));
  EXPECT_EQ(cache.stats().hits, 1u);
  clock_.AdvanceSeconds(3);
  version_ = 2;
  EXPECT_EQ(cache.Handle(Get("/a")).body, "page:/a:v2");
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(PageCacheTest, LruEvictsBeyondCapacity) {
  UrlPageCache cache = MakeCache(2);
  cache.Handle(Get("/a"));
  cache.Handle(Get("/b"));
  cache.Handle(Get("/a"));  // Touch /a so /b is LRU.
  cache.Handle(Get("/c"));  // Evicts /b.
  EXPECT_EQ(cache.stats().evictions, 1u);
  origin_hits_ = 0;
  cache.Handle(Get("/a"));
  EXPECT_EQ(origin_hits_, 0);  // Still cached.
  cache.Handle(Get("/b"));
  EXPECT_EQ(origin_hits_, 1);  // Was evicted.
}

TEST_F(PageCacheTest, InvalidationDropsWholePage) {
  UrlPageCache cache = MakeCache();
  cache.Handle(Get("/a"));
  EXPECT_TRUE(cache.InvalidateUrl("/a"));
  EXPECT_FALSE(cache.InvalidateUrl("/a"));
  version_ = 2;
  EXPECT_EQ(cache.Handle(Get("/a")).body, "page:/a:v2");
}

TEST_F(PageCacheTest, InvalidateAllEmptiesCache) {
  UrlPageCache cache = MakeCache();
  cache.Handle(Get("/a"));
  cache.Handle(Get("/b"));
  EXPECT_EQ(cache.InvalidateAll(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(PageCacheTest, ErrorsAndNonGetsNotCached) {
  net::DirectTransport failing([](const http::Request& request) {
    if (request.method == "POST") return http::Response::MakeOk("posted");
    return http::Response::MakeError(500, "Internal Server Error", "boom");
  });
  PageCacheOptions options;
  options.clock = &clock_;
  UrlPageCache cache(&failing, options);
  EXPECT_EQ(cache.Handle(Get("/err")).status_code, 500);
  EXPECT_EQ(cache.size(), 0u);
  http::Request post = Get("/submit");
  post.method = "POST";
  EXPECT_EQ(cache.Handle(post).body, "posted");
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace dynaprox::baseline
