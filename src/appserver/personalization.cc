#include "appserver/personalization.h"

#include "common/strings.h"

namespace dynaprox::appserver {

Result<UserProfile> LoadProfile(storage::ContentRepository& repository,
                                const std::string& user_id) {
  storage::Table* users = nullptr;
  DYNAPROX_ASSIGN_OR_RETURN(users, repository.GetTable(kUsersTable));
  storage::Row row;
  DYNAPROX_ASSIGN_OR_RETURN(row, users->Get(user_id));

  UserProfile profile;
  profile.user_id = user_id;
  profile.display_name = storage::GetString(row, "name", user_id);
  profile.preferred_category = storage::GetString(row, "category");
  std::string layout = storage::GetString(row, "layout");
  if (layout.empty()) {
    profile.layout = DefaultLayout();
  } else {
    for (std::string_view section : StrSplit(layout, ',')) {
      if (!section.empty()) profile.layout.emplace_back(section);
    }
  }
  return profile;
}

std::vector<std::string> DefaultLayout() {
  return {"navbar", "headlines", "catalog", "footer"};
}

Result<std::vector<ProductPick>> RecommendProducts(
    storage::ContentRepository& repository, const UserProfile& profile,
    size_t limit) {
  storage::Table* products = nullptr;
  DYNAPROX_ASSIGN_OR_RETURN(products, repository.GetTable(kProductsTable));
  std::vector<ProductPick> picks;
  for (const auto& [key, row] :
       products->ScanEq("category", profile.preferred_category, limit)) {
    picks.push_back({key, storage::GetString(row, "title", key),
                     storage::GetDouble(row, "price")});
  }
  return picks;
}

}  // namespace dynaprox::appserver
