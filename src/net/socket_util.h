#ifndef DYNAPROX_NET_SOCKET_UTIL_H_
#define DYNAPROX_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/buffer_chain.h"
#include "common/clock.h"
#include "common/result.h"

namespace dynaprox::net {

// Status::IoError carrying `what` and the current errno text.
Status ErrnoStatus(const char* what);

// Writes all of `data` to `fd`, retrying on partial writes and EINTR.
// `*sent_out` (optional) receives the count of bytes handed to the kernel
// even on failure — retry decisions depend on whether any bytes may have
// reached the peer (see net/idempotency.h).
Status SendAll(int fd, std::string_view data, size_t* sent_out = nullptr);

// Vectored equivalent of SendAll: writes the whole chain via sendmsg,
// resuming after partial writes at the exact byte offset (mid-iovec
// included). No flattening — the chain's slices go to the kernel as one
// iovec array per call. SO_SNDTIMEO on `fd` bounds each sendmsg like it
// bounds each send in SendAll.
Status SendChain(int fd, const common::BufferChain& chain,
                 size_t* sent_out = nullptr);

// Opens a blocking TCP connection to host:port with TCP_NODELAY set and,
// when `io_timeout_micros` > 0, SO_RCVTIMEO/SO_SNDTIMEO applied. Returns
// the connected fd; the caller owns it.
Result<int> DialTcp(const std::string& host, uint16_t port,
                    MicroTime io_timeout_micros);

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_SOCKET_UTIL_H_
