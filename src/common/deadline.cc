#include "common/deadline.h"

namespace dynaprox::common {
namespace {

constexpr char kPrefix[] = "deadline exceeded: ";

thread_local Deadline current_deadline;  // Infinite by default.

}  // namespace

DeadlineScope::DeadlineScope(Deadline deadline)
    : previous_(current_deadline) {
  current_deadline = deadline;
}

DeadlineScope::~DeadlineScope() { current_deadline = previous_; }

Deadline CurrentDeadline() { return current_deadline; }

Status DeadlineExceededError(const std::string& where) {
  return Status::Unavailable(kPrefix + where);
}

bool IsDeadlineExceeded(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().rfind(kPrefix, 0) == 0;
}

}  // namespace dynaprox::common
