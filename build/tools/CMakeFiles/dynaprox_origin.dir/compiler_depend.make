# Empty compiler generated dependencies file for dynaprox_origin.
# This may be replaced when dependencies are built.
