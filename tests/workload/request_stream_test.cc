#include "workload/request_stream.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "workload/driver.h"

namespace dynaprox::workload {
namespace {

TEST(RequestStreamTest, RequestsTargetConfiguredPath) {
  RequestStream stream(5, 1.0, 1);
  http::Request request = stream.Next();
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.Path(), "/page");
  auto params = request.QueryParams();
  ASSERT_TRUE(params.count("id"));
  int id = std::stoi(params["id"]);
  EXPECT_GE(id, 0);
  EXPECT_LT(id, 5);
  EXPECT_EQ(stream.generated(), 1u);
}

TEST(RequestStreamTest, ForPageIsDeterministic) {
  RequestStream stream(5, 1.0, 1);
  EXPECT_EQ(stream.ForPage(3).target, "/page?id=3");
  EXPECT_EQ(stream.generated(), 0u);  // ForPage doesn't consume randomness.
}

TEST(RequestStreamTest, ZipfSkewVisible) {
  RequestStream stream(10, 1.0, 7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    auto params = stream.Next().QueryParams();
    ++counts[std::stoi(params["id"])];
  }
  // Page 0 about twice as popular as page 1 at alpha=1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.3);
  EXPECT_GT(counts[0], counts[9] * 5);
}

TEST(RequestStreamTest, SameSeedSameSequence) {
  RequestStream a(10, 1.0, 5);
  RequestStream b(10, 1.0, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next().target, b.Next().target);
  }
}

TEST(RequestStreamTest, CustomPath) {
  RequestStream stream(3, 0.0, 1, "/catalog");
  EXPECT_EQ(stream.Next().Path(), "/catalog");
}

TEST(DriverTest, CountsResponsesByOutcome) {
  net::DirectTransport transport([](const http::Request& request) {
    auto params = request.QueryParams();
    if (params["id"] == "0") {
      return http::Response::MakeOk("fine");
    }
    return http::Response::MakeError(404, "Not Found", "x");
  });
  RequestStream stream(2, 0.0, 3);  // Uniform over {0, 1}.
  DriverStats stats = RunWorkload(transport, stream, 200);
  EXPECT_EQ(stats.requests, 200u);
  EXPECT_EQ(stats.ok_responses + stats.error_responses, 200u);
  EXPECT_GT(stats.ok_responses, 50u);
  EXPECT_GT(stats.error_responses, 50u);
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_GT(stats.response_body_bytes, 0u);
}

}  // namespace
}  // namespace dynaprox::workload
