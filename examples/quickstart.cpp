// Quickstart: the smallest complete dynaprox system.
//
// Wires a dynamic script (with one cacheable code block) to a Back End
// Monitor and a Dynamic Proxy Cache, then sends two requests through the
// proxy and prints what crossed the origin link each time. The second
// request's template carries a GET instruction instead of the fragment
// body — that's the paper's bandwidth saving, visible byte for byte.
//
// Run: ./quickstart

#include <cstdio>
#include <memory>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "dpc/proxy.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace dynaprox;

int main() {
  // 1. The data layer: a content repository with one table.
  storage::ContentRepository repository;
  storage::Table* greetings = repository.GetOrCreateTable("greetings");
  greetings->Upsert(
      "motd", {{"text", storage::Value(std::string(
                            "Welcome to the Dynamic Proxy Cache!"))}});

  // 2. A dynamic script. Emit() writes page text; CacheableBlock() is the
  //    paper's tagging API — the wrapped code block becomes a cacheable
  //    fragment, regenerated only when invalid.
  appserver::ScriptRegistry registry;
  (void)registry.Register("/hello", [](appserver::ScriptContext& ctx) {
    ctx.Emit("<html><body>");
    Status status = ctx.CacheableBlock(
        bem::FragmentId("motd-banner"),
        [](appserver::ScriptContext& block) {
          auto table = block.repository()->GetTable("greetings");
          if (!table.ok()) return table.status();
          auto row = (*table)->Get("motd");
          if (!row.ok()) return row.status();
          // Invalidate this fragment when the row changes.
          block.DeclareDependency("greetings", "motd");
          block.Emit("<h1>" + storage::GetString(*row, "text") + "</h1>");
          return Status::Ok();
        });
    if (!status.ok()) return status;
    ctx.Emit("</body></html>");
    return Status::Ok();
  });

  // 3. The Back End Monitor owns the cache directory and all invalidation.
  bem::BemOptions bem_options;
  bem_options.capacity = 128;
  auto monitor = bem::BackEndMonitor::Create(bem_options);
  if (!monitor.ok()) {
    std::printf("BEM setup failed: %s\n",
                monitor.status().ToString().c_str());
    return 1;
  }
  (*monitor)->AttachRepository(&repository);

  // 4. Origin server (script host) behind a byte-metered link, fronted by
  //    the DPC.
  appserver::OriginServer origin(&registry, &repository, monitor->get());
  net::ByteMeter meter;
  net::MeteredTransport link(
      std::make_unique<net::DirectTransport>(origin.AsHandler()), nullptr,
      &meter);
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 128;
  dpc::DpcProxy proxy(&link, proxy_options);

  // 5. Two identical requests.
  http::Request request;
  request.target = "/hello";

  http::Response first = proxy.Handle(request);
  uint64_t first_bytes = meter.payload_bytes();
  std::printf("request 1 (cold): page=%zuB, origin link carried %lluB "
              "(template with SET + fragment body)\n",
              first.body_size(),
              static_cast<unsigned long long>(first_bytes));

  http::Response second = proxy.Handle(request);
  uint64_t second_bytes = meter.payload_bytes() - first_bytes;
  std::printf("request 2 (warm): page=%zuB, origin link carried %lluB "
              "(template with GET only)\n",
              second.body_size(),
              static_cast<unsigned long long>(second_bytes));
  std::printf("pages identical: %s; origin-link savings: %.1f%%\n",
              first.BodyText() == second.BodyText() ? "yes" : "NO",
              100.0 * (1.0 - static_cast<double>(second_bytes) /
                                 static_cast<double>(first_bytes)));

  // 6. Update the data source: the BEM invalidates the dependent fragment
  //    and the next request regenerates it.
  greetings->Upsert("motd", {{"text", storage::Value(std::string(
                                          "Fresh content, same URL."))}});
  http::Response third = proxy.Handle(request);
  std::printf("after data update: %s\n",
              third.BodyText().find("Fresh content") != std::string::npos
                  ? "fragment regenerated correctly"
                  : "ERROR: stale fragment served");
  return 0;
}
