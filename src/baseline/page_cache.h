#ifndef DYNAPROX_BASELINE_PAGE_CACHE_H_
#define DYNAPROX_BASELINE_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "common/clock.h"
#include "http/message.h"
#include "net/transport.h"

namespace dynaprox::baseline {

struct PageCacheOptions {
  // Maximum cached pages (LRU eviction beyond this).
  size_t capacity = 1024;
  // TTL per cached page; <= 0 caches forever.
  MicroTime ttl_micros = 0;
  const Clock* clock = nullptr;  // Defaults to SystemClock.
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t bytes_from_upstream = 0;
};

// The Section 3.2.1 strawman: a URL-keyed full-page proxy cache (Inktomi /
// ISA Server / CacheFlow style). Cache hits are decided by the request
// URL alone — precisely why it serves Bob's personalized page to Alice,
// and why one volatile element invalidates the whole page. Implemented
// faithfully so the failure modes are measurable. Not thread-safe (used
// by single-threaded comparison benches).
class UrlPageCache {
 public:
  // `upstream` must outlive the cache.
  UrlPageCache(net::Transport* upstream, PageCacheOptions options);

  http::Response Handle(const http::Request& request);
  net::Handler AsHandler();

  // Page-level invalidation: drop one URL or everything.
  bool InvalidateUrl(const std::string& url);
  size_t InvalidateAll();

  const PageCacheStats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    http::Response response;
    MicroTime cached_at;
    std::list<std::string>::iterator lru_position;
  };

  bool Expired(const Entry& entry) const;
  void Touch(const std::string& url, Entry& entry);
  void EvictIfNeeded();

  net::Transport* upstream_;
  PageCacheOptions options_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recent.
  PageCacheStats stats_;
};

}  // namespace dynaprox::baseline

#endif  // DYNAPROX_BASELINE_PAGE_CACHE_H_
