// Validates the simulation testbed against the Section 5 closed forms:
// measured origin-link bytes must track the analytical predictions, which
// is exactly the paper's Section 6 experiment in miniature.

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/testbed.h"

namespace dynaprox::sim {
namespace {

analytical::ModelParams FastParams() {
  analytical::ModelParams params;  // Table 2 defaults.
  return params;
}

ExperimentConfig FastConfig() {
  ExperimentConfig config;
  config.params = FastParams();
  config.warmup_requests = 500;
  config.measured_requests = 4000;
  config.link_model = net::ProtocolModel();  // Realistic overhead.
  return config;
}

TEST(TestbedTest, BaselineServesFullPages) {
  TestbedConfig config;
  config.params = FastParams();
  config.with_cache = false;
  auto testbed = *Testbed::Create(config);
  testbed->BeginMeasurement();
  workload::DriverStats stats = testbed->Run(100);
  EXPECT_EQ(stats.ok_responses, 100u);
  Measurement m = testbed->Collect();
  EXPECT_EQ(m.requests, 100u);
  // Every response carries the full page: 4 * 1000 + 500 header.
  EXPECT_EQ(m.response_payload_bytes, 100u * 4500u);
  EXPECT_GT(m.response_wire_bytes, m.response_payload_bytes);
}

TEST(TestbedTest, CachedConfigMovesFewerBytes) {
  TestbedConfig config;
  config.params = FastParams();
  config.with_cache = true;
  auto testbed = *Testbed::Create(config);
  testbed->Run(500);  // Warmup.
  testbed->BeginMeasurement();
  workload::DriverStats stats = testbed->Run(1000);
  EXPECT_EQ(stats.ok_responses, 1000u);
  Measurement m = testbed->Collect();
  EXPECT_LT(m.response_payload_bytes, 1000u * 4500u);
  EXPECT_GT(m.fragment_hits, 0u);
}

TEST(TestbedTest, RealizedHitRatioTracksTarget) {
  TestbedConfig config;
  config.params = FastParams();
  config.params.hit_ratio = 0.8;
  config.with_cache = true;
  auto testbed = *Testbed::Create(config);
  testbed->Run(1000);
  testbed->BeginMeasurement();
  testbed->Run(5000);
  Measurement m = testbed->Collect();
  EXPECT_NEAR(m.RealizedHitRatio(), 0.8, 0.03);
}

TEST(TestbedTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    TestbedConfig config;
    config.params = FastParams();
    config.with_cache = true;
    config.seed = 7;
    auto testbed = *Testbed::Create(config);
    testbed->Run(800);
    return testbed->Collect().response_payload_bytes;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ExperimentTest, MeasuredPayloadTracksAnalyticalModel) {
  ExperimentConfig config = FastConfig();
  Result<ExperimentResult> result = RunBytesExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // No-cache payload is exact.
  EXPECT_NEAR(result->measured_payload_nc, result->analytic_bytes_nc,
              result->analytic_bytes_nc * 0.001);
  // Cached payload tracks the model within a few percent (stochastic h and
  // warmup effects).
  EXPECT_NEAR(result->measured_payload_c, result->analytic_bytes_c,
              result->analytic_bytes_c * 0.06);
  EXPECT_NEAR(result->measured_payload_ratio, result->analytic_ratio,
              0.05);
  EXPECT_NEAR(result->realized_hit_ratio, config.params.hit_ratio, 0.05);
}

TEST(ExperimentTest, WireOverheadRaisesRatioLikeThePaper) {
  // Figure 3(b): the experimental (Sniffer) curve sits *above* the
  // analytical one because protocol headers are proportionally heavier on
  // the smaller cached responses.
  ExperimentConfig config = FastConfig();
  config.measured_requests = 3000;
  Result<ExperimentResult> result = RunBytesExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->measured_wire_ratio, result->measured_payload_ratio);
  EXPECT_LT(result->measured_wire_savings_percent,
            result->measured_payload_savings_percent);
}

TEST(ExperimentTest, SavingsGrowWithHitRatio) {
  ExperimentConfig config = FastConfig();
  config.measured_requests = 3000;
  config.warmup_requests = 300;
  config.params.hit_ratio = 0.2;
  double low = RunBytesExperiment(config)->measured_payload_savings_percent;
  config.params.hit_ratio = 0.95;
  double high =
      RunBytesExperiment(config)->measured_payload_savings_percent;
  EXPECT_GT(high, low);
  EXPECT_GT(high, 30.0);
}

}  // namespace
}  // namespace dynaprox::sim
