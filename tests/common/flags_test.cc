#include "common/flags.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

Result<Flags> ParseArgs(std::vector<const char*> argv) {
  return Flags::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsForm) {
  Result<Flags> flags = ParseArgs({"--name=value", "--n=3"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("name"), "value");
  EXPECT_EQ(*flags->GetInt("n", 0), 3);
}

TEST(FlagsTest, SpaceForm) {
  Result<Flags> flags = ParseArgs({"--port", "8080", "--host", "localhost"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags->GetInt("port", 0), 8080);
  EXPECT_EQ(flags->GetString("host"), "localhost");
}

TEST(FlagsTest, BareFlagIsBooleanTrue) {
  Result<Flags> flags = ParseArgs({"--verbose", "--quiet", "--x=false"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("verbose"));
  EXPECT_TRUE(flags->GetBool("quiet"));
  EXPECT_FALSE(flags->GetBool("x"));
  EXPECT_FALSE(flags->GetBool("absent", false));
  EXPECT_TRUE(flags->GetBool("absent", true));
}

TEST(FlagsTest, PositionalAndDoubleDash) {
  Result<Flags> flags =
      ParseArgs({"input.txt", "--k=v", "--", "--not-a-flag"});
  ASSERT_TRUE(flags.ok());
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "input.txt");
  EXPECT_EQ(flags->positional()[1], "--not-a-flag");
  EXPECT_TRUE(flags->Has("k"));
}

TEST(FlagsTest, NumericParsing) {
  Result<Flags> flags =
      ParseArgs({"--neg=-5", "--ratio=0.75", "--bad=abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags->GetInt("neg", 0), -5);
  EXPECT_DOUBLE_EQ(*flags->GetDouble("ratio", 0), 0.75);
  EXPECT_FALSE(flags->GetInt("bad", 0).ok());
  EXPECT_FALSE(flags->GetDouble("bad", 0).ok());
  EXPECT_EQ(*flags->GetInt("absent", 42), 42);
  EXPECT_DOUBLE_EQ(*flags->GetDouble("absent", 2.5), 2.5);
}

TEST(FlagsTest, MalformedFlagsRejected) {
  EXPECT_FALSE(ParseArgs({"--=x"}).ok());
}

TEST(FlagsTest, FlagNamesListed) {
  Result<Flags> flags = ParseArgs({"--b=1", "--a=2"});
  ASSERT_TRUE(flags.ok());
  auto names = flags->FlagNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");  // Sorted (map order).
}

TEST(FlagsTest, LastValueWinsOnRepeat) {
  Result<Flags> flags = ParseArgs({"--x=1", "--x=2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(*flags->GetInt("x", 0), 2);
}

}  // namespace
}  // namespace dynaprox
