#ifndef DYNAPROX_COMMON_JSON_H_
#define DYNAPROX_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dynaprox {

// Escapes `s` for inclusion inside a JSON string literal (no quotes
// added). Control characters become \u00XX.
std::string JsonEscape(std::string_view s);

// Minimal streaming JSON writer for the status endpoints. Keeps a scope
// stack to place commas correctly; no pretty-printing.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("hits").Int(42);
//   w.Key("policy").String("lru");
//   w.Key("nested").BeginObject(); ... w.EndObject();
//   w.EndObject();
//   std::string out = w.TakeString();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // Returns the accumulated document and resets the writer.
  std::string TakeString();

 private:
  void BeforeValue();

  std::string out_;
  // For each open scope: whether a value has been written in it yet.
  std::vector<bool> scope_has_value_;
  bool pending_key_ = false;
};

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_JSON_H_
