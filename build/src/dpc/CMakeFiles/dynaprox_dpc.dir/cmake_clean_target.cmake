file(REMOVE_RECURSE
  "libdynaprox_dpc.a"
)
