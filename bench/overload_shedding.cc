// Good-put under ingress overload: a TcpServer whose handler costs ~2 ms
// driven by client threads at ~4x its in-flight capacity. Without
// shedding every connection queues behind the handler pool and served
// latency balloons; with --max-inflight style admission control the
// excess gets a fast 503 + Retry-After and the admitted requests keep
// their latency. Good-put (200s/s) is similar in both configs — the
// shedding win is bounded latency for the requests that are served and
// an immediate, cheap signal for the ones that are not.

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "http/message.h"
#include "http/parser.h"
#include "net/server_limits.h"
#include "net/socket_util.h"
#include "net/tcp.h"

namespace {

using dynaprox::Histogram;
using dynaprox::kMicrosPerMilli;
using dynaprox::kMicrosPerSecond;

constexpr int kInflightCap = 4;
constexpr int kClientThreads = kInflightCap * 4;  // ~4x overload.
constexpr int kRequestsPerClient = 60;
constexpr int kHandlerCostMs = 2;

struct RunResult {
  size_t served_200 = 0;
  size_t shed_503 = 0;
  size_t errors = 0;
  double elapsed_ms = 0;
  Histogram served_latency_ms;  // Latency of 200s only.
  Histogram shed_latency_ms;    // Latency of 503s only.
};

// One connection per request (the overload case of interest: each
// arrival pays admission), measuring wall latency per request.
void ClientLoop(uint16_t port, RunResult* result, std::mutex* mu) {
  for (int i = 0; i < kRequestsPerClient; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto fd = dynaprox::net::DialTcp("127.0.0.1", port, kMicrosPerSecond);
    if (!fd.ok()) {
      std::lock_guard<std::mutex> lock(*mu);
      ++result->errors;
      continue;
    }
    dynaprox::http::Request request;
    request.target = "/work";
    dynaprox::Status sent = dynaprox::net::SendAll(*fd, request.Serialize());
    dynaprox::http::ResponseReader reader;
    int status_code = 0;
    if (sent.ok()) {
      char buffer[4096];
      while (true) {
        ssize_t got = ::recv(*fd, buffer, sizeof(buffer), 0);
        if (got <= 0) break;
        reader.Feed(std::string_view(buffer, static_cast<size_t>(got)));
        if (auto next = reader.Next()) {
          if (next->ok()) status_code = (*next)->status_code;
          break;
        }
      }
    }
    ::close(*fd);
    double latency_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::lock_guard<std::mutex> lock(*mu);
    if (status_code == 200) {
      ++result->served_200;
      result->served_latency_ms.Record(latency_ms);
    } else if (status_code == 503) {
      ++result->shed_503;
      result->shed_latency_ms.Record(latency_ms);
    } else {
      ++result->errors;
    }
  }
}

RunResult RunOverload(int max_inflight) {
  dynaprox::net::ServerLimits limits;
  limits.max_inflight = max_inflight;
  dynaprox::net::TcpServer server(
      [](const dynaprox::http::Request&) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kHandlerCostMs));
        return dynaprox::http::Response::MakeOk("done");
      },
      0, limits);
  if (!server.Start().ok()) return {};

  RunResult result;
  std::mutex mu;
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (int i = 0; i < kClientThreads; ++i) {
    clients.emplace_back(ClientLoop, server.port(), &result, &mu);
  }
  for (auto& client : clients) client.join();
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  server.Stop();
  return result;
}

void PrintRow(const char* label, const RunResult& r) {
  size_t total = r.served_200 + r.shed_503 + r.errors;
  std::printf("%-14s %7zu %6zu %6zu %7.1f%% %10.0f %9.0f %12.3f %11.3f\n",
              label, total, r.served_200, r.shed_503,
              total == 0 ? 0.0
                         : 100.0 * static_cast<double>(r.shed_503) / total,
              r.elapsed_ms, 1000.0 * r.served_200 / r.elapsed_ms,
              r.served_latency_ms.Percentile(0.99),
              r.shed_503 == 0 ? 0.0 : r.shed_latency_ms.Percentile(0.99));
}

}  // namespace

int main() {
  std::printf("=== Overload shedding: %d clients vs in-flight cap %d, "
              "%d ms handler ===\n",
              kClientThreads, kInflightCap, kHandlerCostMs);
  std::printf("%-14s %7s %6s %6s %8s %10s %9s %12s %11s\n", "config",
              "reqs", "200s", "503s", "shed", "elapsed_ms", "200s/s",
              "p99_200(ms)", "p99_503(ms)");

  RunResult unshed = RunOverload(/*max_inflight=*/0);
  PrintRow("no-shedding", unshed);
  RunResult shed = RunOverload(kInflightCap);
  PrintRow("max-inflight", shed);

  std::printf("expectation: shedding keeps served p99 near the handler "
              "cost (queue bounded at %d) and answers the rest in "
              "microseconds with 503 + Retry-After, instead of queueing "
              "everyone (no-shedding p99 %0.1f ms vs shed %0.1f ms)\n",
              kInflightCap, unshed.served_latency_ms.Percentile(0.99),
              shed.served_latency_ms.Percentile(0.99));
  return 0;
}
