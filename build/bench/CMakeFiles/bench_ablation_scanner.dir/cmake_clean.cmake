file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_scanner.dir/ablation_scanner.cc.o"
  "CMakeFiles/bench_ablation_scanner.dir/ablation_scanner.cc.o.d"
  "bench_ablation_scanner"
  "bench_ablation_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
