file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3a_cost_savings.dir/fig3a_cost_savings.cc.o"
  "CMakeFiles/bench_fig3a_cost_savings.dir/fig3a_cost_savings.cc.o.d"
  "bench_fig3a_cost_savings"
  "bench_fig3a_cost_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3a_cost_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
