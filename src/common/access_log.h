#ifndef DYNAPROX_COMMON_ACCESS_LOG_H_
#define DYNAPROX_COMMON_ACCESS_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "common/clock.h"
#include "common/result.h"

namespace dynaprox {

// Request ids for cross-tier log correlation: "<prefix>-<sequence>" in
// hex. The prefix distinguishes processes (the DPC and the origin both
// mint ids for requests that arrive without one); the sequence is a
// relaxed atomic, so Next() is thread-safe and never blocks.
class RequestIdGenerator {
 public:
  // Seeds the prefix from the system clock + object address.
  RequestIdGenerator();
  // Fixed prefix for deterministic tests.
  explicit RequestIdGenerator(uint64_t prefix) : prefix_(prefix) {}

  std::string Next();

 private:
  uint64_t prefix_;
  std::atomic<uint64_t> next_{1};
};

// One serving decision, logged by the DPC or the origin. Field reference
// in docs/observability.md; the `request_id` field is what joins a DPC
// line with the origin line for the same request (propagated via
// bem::kRequestIdHeader).
struct AccessLogEntry {
  MicroTime timestamp_micros = 0;
  std::string component;  // "dpc" or "origin".
  std::string request_id;
  std::string method;
  std::string target;
  int status = 0;
  uint64_t bytes_sent = 0;         // Response body bytes.
  MicroTime duration_micros = 0;   // Handler wall time.
  std::string outcome;             // Serving decision, e.g. "assembled".
};

// Writes one JSON object per line. Log() serializes the entry outside
// the lock and holds a mutex only for the stream append, so concurrent
// connection threads never interleave partial lines.
class AccessLogger {
 public:
  // Logs to a caller-owned stream (tests); must outlive the logger.
  explicit AccessLogger(std::ostream* out) : out_(out) {}

  // Opens `path` in append mode; "-" logs to stderr. Fails with IoError
  // when the file cannot be opened.
  static Result<std::unique_ptr<AccessLogger>> Open(const std::string& path);

  void Log(const AccessLogEntry& entry);

 private:
  explicit AccessLogger(std::unique_ptr<std::ostream> owned);

  std::unique_ptr<std::ostream> owned_;  // Null when the stream is borrowed.
  std::ostream* out_;
  std::mutex mu_;
};

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_ACCESS_LOG_H_
