#include "edge/cluster.h"

#include <utility>

#include "bem/protocol.h"
#include "common/deadline.h"
#include "common/fault_point.h"
#include "common/logging.h"
#include "common/strings.h"
#include "edge/edge_fleet.h"
#include "net/server_limits.h"

namespace dynaprox::edge {

EdgeCluster::EdgeCluster(net::Transport* origin, EdgeClusterOptions options)
    : origin_(origin),
      options_(std::move(options)),
      clock_(options_.proxy.clock != nullptr ? options_.proxy.clock
                                             : SystemClock::Default()) {
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_requests_total",
      "Client requests routed through the cluster.",
      [this] { return stats().requests; });
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_routing_failures_total",
      "Client requests with no live node to route to (503 sent).",
      [this] { return stats().routing_failures; });
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_pushes_routed_total",
      "BEM control-channel pushes delivered to an owning node.",
      [this] { return stats().pushes_routed; });
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_push_route_failures_total",
      "BEM pushes that found no routable owner or were refused.",
      [this] { return stats().push_route_failures; });
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_push_replays_total",
      "Pushes re-sent to a failover owner after a node was marked down.",
      [this] { return stats().push_replays; });
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_replications_total",
      "Freshly SET fragments copied to their ring owners.",
      [this] { return stats().replications; });
  registry_mx_.RegisterCallbackCounter(
      "dynaprox_edge_cluster_replication_failures_total",
      "Owner copies of freshly SET fragments that failed.",
      [this] { return stats().replication_failures; });
  registry_mx_.RegisterCallbackGauge(
      "dynaprox_edge_cluster_live_nodes", "Ring nodes not marked down.",
      [this] {
        std::lock_guard<std::mutex> lock(mu_);
        return static_cast<double>(ring_.live_node_count());
      });
}

std::string EdgeCluster::OwnerKey(bem::DpcKey key) {
  return "k:" + ToHex(key);
}

Result<std::string> EdgeCluster::OwnerOf(bem::DpcKey key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.Route(OwnerKey(key));
}

Status EdgeCluster::AddEdge(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  DYNAPROX_RETURN_IF_ERROR(ring_.AddNode(node, options_.ring_vnodes));
  dpc::ProxyOptions proxy_options = options_.proxy;
  proxy_options.enable_push = true;
  if (options_.peer_fetch) {
    // Node names are captured by value; the node entry is looked up at
    // call time (std::map nodes are pointer-stable and never removed).
    proxy_options.miss_resolver = [this, node](bem::DpcKey key) {
      return PeerFetch(node, key);
    };
  }
  if (options_.replicate_sets) {
    proxy_options.on_sets = [this,
                             node](const std::vector<bem::DpcKey>& keys) {
      ReplicateSets(node, keys);
    };
  }
  Node entry;
  entry.proxy = std::make_unique<dpc::DpcProxy>(origin_, proxy_options);
  entry.channel = std::make_unique<net::MeteredTransport>(
      std::make_unique<net::DirectTransport>(entry.proxy->AsHandler()),
      options_.peer_meter, options_.peer_meter);
  nodes_.emplace(node, std::move(entry));
  return Status::Ok();
}

http::Response EdgeCluster::Handle(const http::Request& request) {
  dpc::DpcProxy* proxy = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
    Result<std::string> node = ring_.Route(EdgeFleet::ClientKey(request));
    if (!node.ok()) {
      ++stats_.routing_failures;
      DYNAPROX_LOG(kWarning, "edge")
          << "routing failure (all nodes down): " << node.status().ToString();
      return net::MakeUnavailableResponse(
          "no live edge node: " + node.status().ToString(),
          options_.proxy.retry_after_seconds);
    }
    proxy = nodes_.at(*node).proxy.get();
  }
  // Serve outside the routing lock; node proxies are thread-safe and are
  // never removed once added.
  return proxy->Handle(request);
}

net::Handler EdgeCluster::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

Result<dpc::FragmentRef> EdgeCluster::PeerFetch(const std::string& self,
                                                bem::DpcKey key) {
  // The peer hop shares the client request's end-to-end budget: once it
  // has expired, fail fast into origin recovery (which checks again and
  // degrades) instead of spending more of nothing.
  if (common::CurrentDeadline().expired()) {
    return common::DeadlineExceededError("peer fetch for " + ToHex(key));
  }
  if (Status injected =
          chaos::InjectStatus(DYNAPROX_FAULT_POINT("edge.peer_fetch"));
      !injected.ok()) {
    return injected;  // Degrades to origin recovery, like a dead peer.
  }
  net::Transport* channel = nullptr;
  dpc::DpcProxy* self_proxy = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Result<std::string> owner = ring_.Route(OwnerKey(key));
    if (!owner.ok()) return owner.status();
    if (*owner == self) {
      // This node *is* the owner and doesn't have the fragment: nothing
      // to ask a peer for; fall through to origin recovery.
      return Status::NotFound("fragment owned locally: " + ToHex(key));
    }
    channel = nodes_.at(*owner).channel.get();
    self_proxy = nodes_.at(self).proxy.get();
  }

  http::Request request;
  request.method = "GET";
  request.target = options_.proxy.fragment_path + "?key=" + ToHex(key);
  Result<http::Response> response = channel->RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->status_code != 200) {
    return Status::NotFound("owner has no fragment " + ToHex(key));
  }
  auto body = std::make_shared<const std::string>(response->BodyText());
  // Preserve the owner-reported age so the local copy never looks fresher
  // than the owner's (RFC 9111 Age semantics carried on the peer channel).
  MicroTime age = 0;
  if (auto header = response->headers.Get(bem::kPushAgeHeader);
      header.has_value()) {
    if (Result<uint64_t> parsed = ParseUint64(*header); parsed.ok()) {
      age = static_cast<MicroTime>(*parsed);
    }
  }
  DYNAPROX_RETURN_IF_ERROR(self_proxy->mutable_store().SetPushed(
      key, body, age, clock_->NowMicros()));
  return dpc::FragmentRef(body);
}

Status EdgeCluster::SendPush(const std::string& node, bem::DpcKey key,
                             const std::string& body,
                             MicroTime age_micros) {
  net::Transport* channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = nodes_.find(node);
    if (it == nodes_.end()) {
      return Status::NotFound("unknown node: " + node);
    }
    channel = it->second.channel.get();
  }
  http::Request request;
  request.method = "POST";
  request.target = options_.proxy.push_path;
  request.headers.Set(bem::kPushKeyHeader, ToHex(key));
  request.headers.Set(bem::kPushAgeHeader,
                      std::to_string(age_micros < 0 ? 0 : age_micros));
  request.body = body;
  Result<http::Response> response = channel->RoundTrip(request);
  if (!response.ok()) return response.status();
  if (response->status_code != 204) {
    return Status::Internal("push refused: HTTP " +
                            std::to_string(response->status_code));
  }
  return Status::Ok();
}

void EdgeCluster::ReplicateSets(const std::string& self,
                                const std::vector<bem::DpcKey>& keys) {
  for (bem::DpcKey key : keys) {
    std::string owner;
    dpc::DpcProxy* self_proxy = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Result<std::string> routed = ring_.Route(OwnerKey(key));
      if (!routed.ok()) {
        ++stats_.replication_failures;
        continue;
      }
      if (*routed == self) continue;  // Owner already holds it.
      owner = *routed;
      self_proxy = nodes_.at(self).proxy.get();
    }
    Result<dpc::FragmentRef> body = self_proxy->mutable_store().Get(key);
    if (!body.ok()) continue;  // Evicted between SET and replication.
    Status sent = SendPush(owner, key, **body, /*age_micros=*/0);
    std::lock_guard<std::mutex> lock(mu_);
    if (sent.ok()) {
      ++stats_.replications;
    } else {
      ++stats_.replication_failures;
    }
  }
}

Status EdgeCluster::ApplyPush(bem::DpcKey key, const std::string& body,
                              MicroTime age_micros) {
  std::string owner;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Result<std::string> routed = ring_.Route(OwnerKey(key));
    if (!routed.ok()) {
      ++stats_.push_route_failures;
      return routed.status();
    }
    owner = *routed;
  }
  Status sent = SendPush(owner, key, body, age_micros);
  std::lock_guard<std::mutex> lock(mu_);
  if (!sent.ok()) {
    ++stats_.push_route_failures;
    return sent;
  }
  ++stats_.pushes_routed;
  replay_.push_back(ReplayEntry{key,
                                std::make_shared<const std::string>(body),
                                age_micros, clock_->NowMicros(), owner});
  while (replay_.size() > options_.replay_capacity) replay_.pop_front();
  return Status::Ok();
}

Status EdgeCluster::MarkDown(const std::string& node) {
  std::vector<ReplayEntry*> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DYNAPROX_RETURN_IF_ERROR(ring_.MarkDown(node));
    for (ReplayEntry& entry : replay_) {
      if (entry.owner == node) orphaned.push_back(&entry);
    }
  }
  // Replay pushes that landed on the dead node to their failover owners,
  // aging each body by the time it sat on the dead node. Entries stay
  // pointer-stable: replay_ is only trimmed by ApplyPush, which cannot
  // run concurrently with membership changes in the supported usage
  // (MarkDown is an operator/failover action, pushes come from the BEM
  // drain loop — both are serialized by the caller; racing them at worst
  // re-pushes a fragment, which is idempotent).
  for (ReplayEntry* entry : orphaned) {
    std::string failover;
    {
      std::lock_guard<std::mutex> lock(mu_);
      Result<std::string> routed = ring_.Route(OwnerKey(entry->key));
      if (!routed.ok() || *routed == node) continue;
      failover = *routed;
    }
    MicroTime now = clock_->NowMicros();
    MicroTime age = entry->age_micros + (now - entry->pushed_at);
    Status sent =
        chaos::InjectStatus(DYNAPROX_FAULT_POINT("edge.push.replay"));
    if (sent.ok()) {
      sent = SendPush(failover, entry->key, *entry->body, age);
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (sent.ok()) {
      ++stats_.push_replays;
      entry->owner = failover;
      entry->age_micros = age;
      entry->pushed_at = now;
    }
  }
  return Status::Ok();
}

Status EdgeCluster::MarkUp(const std::string& node) {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.MarkUp(node);
}

Result<const dpc::DpcProxy*> EdgeCluster::NodeProxy(
    const std::string& node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status::NotFound("unknown node: " + node);
  }
  return static_cast<const dpc::DpcProxy*>(it->second.proxy.get());
}

ClusterStats EdgeCluster::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dynaprox::edge
