// End-to-end observability: the Prometheus metrics endpoints, the
// structured access logs, and the request id that joins one request's
// log lines across the DPC and the origin (docs/observability.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <regex>
#include <set>
#include <sstream>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "bem/protocol.h"
#include "common/access_log.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

// Extracts the string value of `key` from a one-line JSON object.
std::string JsonField(const std::string& line, const std::string& key) {
  std::smatch match;
  if (!std::regex_search(
          line, match,
          std::regex("\"" + key + "\":\"([^\"]*)\""))) {
    return "";
  }
  return match[1].str();
}

// Checks the Prometheus text exposition (version 0.0.4) shape: every
// non-comment line is `name[{labels}] value`, and every sample name was
// announced by a preceding # TYPE.
void ExpectValidExposition(const std::string& text) {
  std::regex type_line("# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                       "(counter|gauge|histogram)");
  std::regex sample_line(
      "([a-zA-Z_:][a-zA-Z0-9_:]*)(\\{[^}]*\\})? "
      "(-?[0-9.]+(e[+-]?[0-9]+)?|\\+Inf|NaN)");
  std::set<std::string> announced;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# HELP ", 0) == 0) continue;
    std::smatch match;
    if (line.rfind("# TYPE ", 0) == 0) {
      ASSERT_TRUE(std::regex_match(line, match, type_line)) << line;
      announced.insert(match[1].str());
      continue;
    }
    ASSERT_TRUE(std::regex_match(line, match, sample_line)) << line;
    std::string base = match[1].str();
    // Histogram series use the announced name plus a suffix.
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      std::string with_suffix = base;
      size_t pos = with_suffix.rfind(suffix);
      if (pos != std::string::npos &&
          pos + std::string(suffix).size() == with_suffix.size()) {
        with_suffix.resize(pos);
        if (announced.count(with_suffix) != 0) base = with_suffix;
      }
    }
    EXPECT_EQ(announced.count(base), 1u) << "unannounced sample: " << line;
  }
}

// Masks every JSON number so counter values don't affect comparison; the
// key set, nesting, and key order must stay byte-identical. Handles both
// object values (":123") and bare array elements ("[1,2]").
std::string MaskNumbers(const std::string& json) {
  return std::regex_replace(
      json, std::regex("([:\\[,])(-?[0-9][0-9.eE+-]*)"), "$1N");
}

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_.RegisterOrReplace(
        "/page", [](appserver::ScriptContext& context) {
          context.Emit("<h1>hi</h1>");
          return context.CacheableBlock(bem::FragmentId("f"),
                                        [](appserver::ScriptContext& ctx) {
                                          ctx.Emit("fragment body");
                                          return Status::Ok();
                                        });
        });
    bem::BemOptions bem_options;
    bem_options.capacity = 8;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);

    appserver::OriginOptions origin_options;
    origin_options.enable_status = true;
    origin_options.enable_metrics = true;
    origin_options.access_log = &origin_log_;
    origin_options.clock = &clock_;
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get(), origin_options);
    upstream_ =
        std::make_unique<net::DirectTransport>(origin_->AsHandler());

    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 8;
    proxy_options.enable_status = true;
    proxy_options.enable_metrics = true;
    proxy_options.enable_static_cache = true;
    proxy_options.access_log = &proxy_log_;
    proxy_options.clock = &clock_;
    proxy_ = std::make_unique<dpc::DpcProxy>(upstream_.get(), proxy_options);
  }

  http::Request Get(const std::string& target) {
    http::Request request;
    request.target = target;
    return request;
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::ostringstream origin_log_stream_;
  std::ostringstream proxy_log_stream_;
  AccessLogger origin_log_{&origin_log_stream_};
  AccessLogger proxy_log_{&proxy_log_stream_};
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::DirectTransport> upstream_;
  std::unique_ptr<dpc::DpcProxy> proxy_;
};

TEST_F(ObservabilityTest, ProxyMetricsEndpointExposesRequiredSeries) {
  proxy_->Handle(Get("/page"));
  proxy_->Handle(Get("/page"));
  http::Response metrics = proxy_->Handle(Get("/_dynaprox/metrics"));
  ASSERT_EQ(metrics.status_code, 200);
  EXPECT_EQ(*metrics.headers.Get("Content-Type"),
            "text/plain; version=0.0.4");
  ExpectValidExposition(metrics.body);

  // The per-stage histograms named in the acceptance criteria.
  EXPECT_NE(metrics.body.find(
                "# TYPE dynaprox_request_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(metrics.body.find(
                "# TYPE dynaprox_upstream_fetch_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      metrics.body.find("# TYPE dynaprox_scan_duration_seconds histogram"),
      std::string::npos);
  EXPECT_NE(
      metrics.body.find("# TYPE dynaprox_splice_duration_seconds histogram"),
      std::string::npos);
  EXPECT_NE(metrics.body.find(
                "dynaprox_request_duration_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("dynaprox_request_duration_seconds_count 2"),
            std::string::npos);

  // Every pre-existing /status counter has a metric.
  for (const char* name :
       {"dynaprox_requests_total", "dynaprox_passthrough_total",
        "dynaprox_assembled_total", "dynaprox_recoveries_total",
        "dynaprox_upstream_errors_total", "dynaprox_template_errors_total",
        "dynaprox_static_hits_total", "dynaprox_static_revalidations_total",
        "dynaprox_stale_served_total", "dynaprox_breaker_rejections_total",
        "dynaprox_degraded_503s_total", "dynaprox_bytes_from_upstream_total",
        "dynaprox_bytes_to_clients_total", "dynaprox_store_capacity",
        "dynaprox_store_occupied_slots", "dynaprox_store_content_bytes",
        "dynaprox_store_sets_total", "dynaprox_store_gets_total",
        "dynaprox_store_get_misses_total", "dynaprox_static_cache_entries",
        "dynaprox_static_cache_hits_total"}) {
    EXPECT_NE(metrics.body.find(std::string("\n") + name + " "),
              std::string::npos)
        << "missing metric " << name;
  }

  EXPECT_NE(metrics.body.find("dynaprox_requests_total 2"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("dynaprox_assembled_total 2"),
            std::string::npos);
}

TEST_F(ObservabilityTest, OriginMetricsEndpointExposesBemStageHistograms) {
  proxy_->Handle(Get("/page"));
  http::Response metrics = origin_->Handle(Get("/_dynaprox/metrics"));
  ASSERT_EQ(metrics.status_code, 200);
  ExpectValidExposition(metrics.body);
  for (const char* name :
       {"dynaprox_origin_requests_total", "dynaprox_origin_not_found_total",
        "dynaprox_origin_fragment_hits_total",
        "dynaprox_origin_fragment_misses_total",
        "dynaprox_bem_directory_hits_total",
        "dynaprox_bem_directory_capacity"}) {
    EXPECT_NE(metrics.body.find(name), std::string::npos)
        << "missing metric " << name;
  }
  EXPECT_NE(
      metrics.body.find(
          "# TYPE dynaprox_bem_directory_lookup_duration_seconds histogram"),
      std::string::npos);
  EXPECT_NE(
      metrics.body.find(
          "# TYPE dynaprox_bem_block_execution_duration_seconds histogram"),
      std::string::npos);
  EXPECT_NE(metrics.body.find(
                "# TYPE dynaprox_bem_tag_emission_duration_seconds histogram"),
            std::string::npos);
  // One cacheable block ran: one directory lookup, one generator run.
  EXPECT_NE(
      metrics.body.find("dynaprox_bem_directory_lookup_duration_seconds_count 1"),
      std::string::npos);
  EXPECT_NE(
      metrics.body.find("dynaprox_bem_block_execution_duration_seconds_count 1"),
      std::string::npos);
}

TEST_F(ObservabilityTest, MetricsEndpointDisabledFallsThrough) {
  dpc::ProxyOptions options;
  options.capacity = 8;
  options.enable_metrics = false;
  dpc::DpcProxy plain(upstream_.get(), options);
  // Forwarded upstream like any other path; the origin has no such
  // script registered once its own endpoint is also off.
  appserver::OriginServer bare(&registry_, &repository_, nullptr);
  net::DirectTransport bare_upstream(bare.AsHandler());
  dpc::DpcProxy bare_proxy(&bare_upstream, options);
  EXPECT_EQ(bare_proxy.Handle(Get("/_dynaprox/metrics")).status_code, 404);
}

TEST_F(ObservabilityTest, RequestIdJoinsProxyAndOriginLogLines) {
  http::Response response = proxy_->Handle(Get("/page?id=1"));
  ASSERT_EQ(response.status_code, 200);

  // The id the proxy minted is echoed to the client...
  auto echoed = response.headers.Get(bem::kRequestIdHeader);
  ASSERT_TRUE(echoed.has_value());
  EXPECT_FALSE(echoed->empty());

  // ...and appears in exactly one log line on each tier.
  std::string proxy_line = proxy_log_stream_.str();
  std::string origin_line = origin_log_stream_.str();
  ASSERT_EQ(std::count(proxy_line.begin(), proxy_line.end(), '\n'), 1);
  ASSERT_EQ(std::count(origin_line.begin(), origin_line.end(), '\n'), 1);
  std::string proxy_id = JsonField(proxy_line, "id");
  std::string origin_id = JsonField(origin_line, "id");
  EXPECT_FALSE(proxy_id.empty());
  EXPECT_EQ(proxy_id, origin_id);
  EXPECT_EQ(proxy_id, *echoed);

  EXPECT_EQ(JsonField(proxy_line, "component"), "dpc");
  EXPECT_EQ(JsonField(origin_line, "component"), "origin");
  EXPECT_EQ(JsonField(proxy_line, "path"), "/page?id=1");
  EXPECT_EQ(JsonField(proxy_line, "outcome"), "assembled");
  EXPECT_EQ(JsonField(origin_line, "outcome"), "template");
}

TEST_F(ObservabilityTest, ClientSuppliedRequestIdIsHonored) {
  http::Request request = Get("/page");
  request.headers.Set(bem::kRequestIdHeader, "client-7");
  http::Response response = proxy_->Handle(request);
  EXPECT_EQ(*response.headers.Get(bem::kRequestIdHeader), "client-7");
  EXPECT_EQ(JsonField(proxy_log_stream_.str(), "id"), "client-7");
  EXPECT_EQ(JsonField(origin_log_stream_.str(), "id"), "client-7");
}

class DeadTransport : public net::Transport {
 public:
  Result<http::Response> RoundTrip(const http::Request&) override {
    return Status::IoError("origin down");
  }
};

TEST_F(ObservabilityTest, AccessLogRecordsFailuresWithOutcome) {
  DeadTransport dead;
  std::ostringstream log_stream;
  AccessLogger log(&log_stream);
  dpc::ProxyOptions options;
  options.capacity = 8;
  options.access_log = &log;
  options.clock = &clock_;
  dpc::DpcProxy proxy(&dead, options);
  http::Response response = proxy.Handle(Get("/page"));
  EXPECT_EQ(response.status_code, 502);
  EXPECT_EQ(JsonField(log_stream.str(), "outcome"), "upstream_error");
}

// Regression: /status must stay byte-compatible (modulo counter values) —
// dashboards and scripts parse it. If this golden changes, the change
// must be deliberate and documented in docs/observability.md.
TEST_F(ObservabilityTest, ProxyStatusSkeletonIsByteCompatible) {
  proxy_->Handle(Get("/page"));
  http::Response status = proxy_->Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_EQ(
      MaskNumbers(status.body),
      "{\"component\":\"dpc\",\"requests\":N,\"assembled\":N,"
      "\"passthrough\":N,\"recoveries\":N,\"upstream_errors\":N,"
      "\"template_errors\":N,\"stale_served\":N,\"breaker_rejections\":N,"
      "\"degraded_503s\":N,\"bytes_from_upstream\":N,"
      "\"bytes_to_clients\":N,\"streamed\":N,\"stream_fallbacks\":N,"
      "\"stream_aborts\":N,\"deadline_exceeded\":N,"
      "\"store\":{\"capacity\":N,"
      "\"occupied_slots\":N,\"content_bytes\":N,"
      "\"bytes\":[N,N,N,N,N,N,N,N,N,N,N,N,N,N,N,N],"
      "\"sets\":N,\"gets\":N,"
      "\"get_misses\":N,\"pushes\":N,\"pushed_slots\":N},"
      "\"static_cache\":{\"entries\":N,\"hits\":N,"
      "\"misses\":N,\"stores\":N,\"revalidations\":N,\"stale_served\":N,"
      "\"evictions\":N}}");
}

TEST_F(ObservabilityTest, OriginStatusSkeletonIsByteCompatible) {
  origin_->Handle(Get("/page"));
  http::Response status = origin_->Handle(Get("/_dynaprox/status"));
  ASSERT_EQ(status.status_code, 200);
  EXPECT_EQ(
      MaskNumbers(status.body),
      "{\"component\":\"origin\",\"caching_enabled\":true,\"requests\":N,"
      "\"not_found\":N,\"script_errors\":N,\"refresh_invalidations\":N,"
      "\"body_bytes_sent\":N,\"fragments\":{\"hits\":N,\"misses\":N,"
      "\"uncacheable\":N,\"parallel_blocks\":N},\"directory\":{"
      "\"capacity\":N,\"hits\":N,"
      "\"misses\":N,\"hit_ratio\":N,\"inserts\":N,\"ttl_invalidations\":N,"
      "\"explicit_invalidations\":N,\"evictions\":N,"
      "\"concurrency\":{\"stripe_contentions\":N,\"policy_contentions\":N,"
      "\"free_list_contentions\":N,\"registry_contentions\":N,"
      "\"insert_races\":N},"
      "\"sample_entries\":[{\"fragment\":\"f\",\"key\":N,\"valid\":true,"
      "\"age_s\":N}]}}");
}

TEST_F(ObservabilityTest, SimClockDrivesDurations) {
  // With a SimClock that never advances, durations are exactly zero and
  // land in the first bucket.
  proxy_->Handle(Get("/page"));
  http::Response metrics = proxy_->Handle(Get("/_dynaprox/metrics"));
  EXPECT_NE(metrics.body.find(
                "dynaprox_request_duration_seconds_bucket{le=\"0.0001\"} 1"),
            std::string::npos);
  EXPECT_EQ(JsonField(proxy_log_stream_.str(), "outcome"), "assembled");
  EXPECT_NE(proxy_log_stream_.str().find("\"duration_us\":0"),
            std::string::npos);
}

}  // namespace
}  // namespace dynaprox
