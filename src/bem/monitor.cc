#include "bem/monitor.h"

#include "common/logging.h"

namespace dynaprox::bem {

Result<std::unique_ptr<BackEndMonitor>> BackEndMonitor::Create(
    BemOptions options) {
  if (options.capacity == 0) {
    return Status::InvalidArgument("BEM capacity must be > 0");
  }
  std::unique_ptr<ReplacementPolicy> policy;
  DYNAPROX_ASSIGN_OR_RETURN(policy,
                            MakeReplacementPolicy(options.replacement_policy));
  const Clock* clock =
      options.clock != nullptr ? options.clock : SystemClock::Default();
  return std::unique_ptr<BackEndMonitor>(
      new BackEndMonitor(options.capacity, clock, std::move(policy),
                         options.default_ttl_micros));
}

BackEndMonitor::BackEndMonitor(DpcKey capacity, const Clock* clock,
                               std::unique_ptr<ReplacementPolicy> policy,
                               MicroTime default_ttl_micros)
    : directory_(capacity, clock, std::move(policy)),
      default_ttl_micros_(default_ttl_micros) {}

BackEndMonitor::~BackEndMonitor() { DetachRepository(); }

LookupResult BackEndMonitor::LookupFragment(const FragmentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.Lookup(id);
}

Result<DpcKey> BackEndMonitor::InsertFragment(const FragmentId& id,
                                              MicroTime ttl_micros) {
  if (ttl_micros < 0) ttl_micros = default_ttl_micros_;
  std::lock_guard<std::mutex> lock(mu_);
  // A fresh insert supersedes any dependencies registered for the previous
  // incarnation of this fragment; the generating code block re-declares
  // them as it runs.
  registry_.RemoveFragment(id.Canonical());
  return directory_.Insert(id, ttl_micros);
}

void BackEndMonitor::AddDependency(const FragmentId& id,
                                   const std::string& table,
                                   const std::string& row_key) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.Add(id.Canonical(), table, row_key);
}

Status BackEndMonitor::Invalidate(const FragmentId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.RemoveFragment(id.Canonical());
  return directory_.Invalidate(id);
}

Status BackEndMonitor::InvalidateKey(DpcKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<std::string> owner = directory_.InvalidateKey(key);
  if (!owner.ok()) return owner.status();
  registry_.RemoveFragment(*owner);
  return Status::Ok();
}

Status BackEndMonitor::RefreshKey(DpcKey key) {
  std::lock_guard<std::mutex> lock(mu_);
  Result<std::string> owner = directory_.InvalidateKey(key, /*pin_key=*/true);
  if (!owner.ok()) return owner.status();
  registry_.RemoveFragment(*owner);
  return Status::Ok();
}

size_t BackEndMonitor::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = directory_.InvalidateAll();
  // Dependencies die with their fragments.
  // (RemoveFragment is idempotent; clearing via fresh registry is simpler.)
  registry_ = DependencyRegistry();
  return count;
}

size_t BackEndMonitor::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.SweepExpired();
}

DirectoryStats BackEndMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.stats();
}

std::vector<CacheDirectory::EntryView> BackEndMonitor::SnapshotEntries(
    size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  return directory_.SnapshotEntries(limit);
}

void BackEndMonitor::AttachRepository(storage::ContentRepository* repository) {
  DetachRepository();
  repository_ = repository;
  subscription_ = repository_->bus().Subscribe(
      [this](const storage::UpdateEvent& event) { OnDataSourceUpdate(event); });
}

void BackEndMonitor::DetachRepository() {
  if (repository_ == nullptr) return;
  repository_->bus().Unsubscribe(subscription_);
  repository_ = nullptr;
  subscription_ = 0;
}

size_t BackEndMonitor::OnDataSourceUpdate(const storage::UpdateEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const std::string& canonical : registry_.Affected(event)) {
    Status status = directory_.InvalidateCanonical(canonical);
    registry_.RemoveFragment(canonical);
    if (status.ok()) {
      ++count;
      DYNAPROX_LOG(kDebug, "bem")
          << "data-source invalidation: " << canonical << " (table "
          << event.table << ")";
    }
  }
  return count;
}

}  // namespace dynaprox::bem
