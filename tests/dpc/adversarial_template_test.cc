// Adversarial template inputs: a compromised or buggy origin can send the
// DPC arbitrary bytes where the BEM tag grammar is expected. Every case
// here must surface as a clean Corruption/InvalidArgument error — never a
// crash, hang, or out-of-bounds read (the suite runs under ASan in CI).

#include <string>

#include <gtest/gtest.h>

#include "bem/tag_codec.h"
#include "bem/types.h"
#include "dpc/fragment_store.h"
#include "dpc/tag_scanner.h"

namespace dynaprox::dpc {
namespace {

constexpr char kStx = bem::TagCodec::kStx;
constexpr char kEtx = bem::TagCodec::kEtx;

std::string Stx(std::string_view rest) {
  return std::string(1, kStx) + std::string(rest);
}

void ExpectCorrupt(const std::string& wire) {
  for (ScanStrategy strategy :
       {ScanStrategy::kMemchr, ScanStrategy::kByteLoop}) {
    Result<std::vector<TemplateSegment>> parsed =
        ParseTemplate(wire, strategy);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << wire;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(AdversarialTemplateTest, BareStxAtEndOfTemplate) {
  ExpectCorrupt("page text" + std::string(1, kStx));
}

TEST(AdversarialTemplateTest, SetTagTruncatedAtEof) {
  // SET-open whose hex key runs off the end with no ETX.
  ExpectCorrupt("before" + Stx("S1A"));
  ExpectCorrupt(Stx("S"));
}

TEST(AdversarialTemplateTest, SetContentTruncatedAtEof) {
  // Well-formed SET-open, fragment bytes, then EOF before STX 'E' ETX: the
  // declared fragment extends past the template end.
  std::string wire = Stx("S2A") + std::string(1, kEtx) + "fragment bytes...";
  ExpectCorrupt(wire);
}

TEST(AdversarialTemplateTest, GetTagMissingEtx) {
  // The scanner must not read past the template hunting for the ETX.
  ExpectCorrupt(Stx("G1F") + "trailing text without terminator");
}

TEST(AdversarialTemplateTest, NestedSetTags) {
  std::string set_open_a = Stx("S1") + std::string(1, kEtx);
  std::string set_open_b = Stx("S2") + std::string(1, kEtx);
  ExpectCorrupt(set_open_a + "outer" + set_open_b + "inner");
}

TEST(AdversarialTemplateTest, GetInsideSet) {
  std::string wire = Stx("S1") + std::string(1, kEtx) + "frag" +
                     Stx("G2") + std::string(1, kEtx);
  ExpectCorrupt(wire);
}

TEST(AdversarialTemplateTest, SetEndWithoutSetOpen) {
  ExpectCorrupt("text" + Stx("E") + std::string(1, kEtx));
}

TEST(AdversarialTemplateTest, OverlappingTagMarkers) {
  // An STX inside what should be a key: the inner STX is just a bad hex
  // digit, and the tag never terminates cleanly.
  ExpectCorrupt(Stx("S1") + Stx("G2") + std::string(1, kEtx));
}

TEST(AdversarialTemplateTest, OutOfRangeDpcKeyRejected) {
  // Hex wider than a DpcKey (uint32) must not wrap around silently.
  ExpectCorrupt(Stx("G1FFFFFFFFF") + std::string(1, kEtx));
  ExpectCorrupt(Stx("SFFFFFFFFFFFFFFFF") + std::string(1, kEtx));
}

TEST(AdversarialTemplateTest, NonHexKeyRejected) {
  ExpectCorrupt(Stx("Gzz") + std::string(1, kEtx));
  ExpectCorrupt(Stx("G") + std::string(1, kEtx));  // Empty key.
}

TEST(AdversarialTemplateTest, UnknownTagMarkerRejected) {
  ExpectCorrupt("text" + Stx("Q") + std::string(1, kEtx));
  ExpectCorrupt(std::string(1, kStx) + std::string(1, '\0') +
                std::string(1, kEtx));
}

TEST(AdversarialTemplateTest, MalformedLiteralEscape) {
  ExpectCorrupt(Stx("L"));          // Truncated at EOF.
  ExpectCorrupt(Stx("Lx"));         // Wrong terminator byte.
}

TEST(AdversarialTemplateTest, SentinelKeyRejectedAtParse) {
  // "FFFFFFFF" is exactly kInvalidDpcKey — the "no key" sentinel
  // downstream. A tag carrying it is rejected by the scanner itself, so
  // the sentinel can never leak into a segment (it used to survive until
  // the FragmentStore bounds check).
  ExpectCorrupt(Stx("GFFFFFFFF") + std::string(1, kEtx));
  ExpectCorrupt(Stx("SFFFFFFFF") + std::string(1, kEtx));

  // The store still rejects it independently (defense in depth).
  FragmentStore store(/*capacity=*/16);
  EXPECT_FALSE(store.Set(bem::kInvalidDpcKey, "x").ok());
  EXPECT_FALSE(store.Get(bem::kInvalidDpcKey).ok());
}

TEST(AdversarialTemplateTest, ZeroPaddedKeyRunRejected) {
  // Nine-plus hex digits exceed kMaxKeyHexDigits even when the value
  // itself is tiny: bem::TagCodec emits minimal hex, so an over-long run
  // is hostile input, and accepting it would let zero-padding inflate the
  // streaming scanner's partial-tag stash without bound.
  ExpectCorrupt(Stx("G000000001") + std::string(1, kEtx));
  ExpectCorrupt(Stx("S000000001") + std::string(1, kEtx));
}

TEST(AdversarialTemplateTest, DeepAlternationStaysLinear) {
  // Thousands of alternating escapes and one-byte literals: parses fine,
  // with no quadratic blowup or recursion depth issues.
  std::string wire;
  std::string escape = Stx("L") + std::string(1, kEtx);
  for (int i = 0; i < 5000; ++i) {
    wire += escape;
    wire += 'a';
  }
  Result<std::vector<TemplateSegment>> parsed = ParseTemplate(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].text_size(), 10000u);
}

TEST(AdversarialTemplateTest, ValidTemplateStillParses) {
  // Guard against over-rejection: the canonical encode path must pass.
  std::string wire;
  bem::TagCodec::AppendLiteral("hello ", wire);
  bem::TagCodec::AppendSet(7, "cached\x02world", wire);
  bem::TagCodec::AppendGet(9, wire);
  Result<std::vector<TemplateSegment>> parsed = ParseTemplate(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].kind, TemplateSegment::Kind::kLiteral);
  EXPECT_EQ((*parsed)[1].kind, TemplateSegment::Kind::kSet);
  EXPECT_EQ((*parsed)[1].key, 7u);
  EXPECT_EQ((*parsed)[1].Text(), "cached\x02world");
  EXPECT_EQ((*parsed)[2].kind, TemplateSegment::Kind::kGet);
  EXPECT_EQ((*parsed)[2].key, 9u);
}

}  // namespace
}  // namespace dynaprox::dpc
