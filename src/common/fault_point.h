#ifndef DYNAPROX_COMMON_FAULT_POINT_H_
#define DYNAPROX_COMMON_FAULT_POINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace dynaprox::metrics {
class Registry;
}  // namespace dynaprox::metrics

namespace dynaprox::chaos {

// Process-wide deterministic fault injection (docs/failure-modes.md,
// "Chaos layer"). Code declares named fault points at its failure seams
// with DYNAPROX_FAULT_POINT("layer.seam"); an operator or test arms a
// subset of them via a --chaos spec, and each armed point then draws
// from its own seeded Rng to decide, per evaluation, whether to inject
// a fault and which one.
//
// Determinism: every point owns an Rng seeded from the global chaos
// seed XOR a hash of the point's name, and draws exactly once per
// Evaluate() while armed. A point's injection sequence is therefore a
// pure function of (seed, evaluation count) — independent of what other
// points do, of registration order, and of wall-clock time. The
// registry keeps a bounded injection log so two runs of the same seeded
// workload can be compared entry-for-entry.
//
// Cost when disarmed: Evaluate() is a single relaxed atomic load and a
// predictable branch — cheap enough to leave compiled into every seam
// of the serving path (the bench/ suite guards this).

// What an armed fault point tells the seam to do. Seams implement the
// subset that is meaningful for them (a cache-insert seam cannot
// truncate a stream); anything it cannot express is treated as kError.
enum class FaultAction {
  kNone = 0,
  kError,     // Fail the operation with an injected Status/error.
  kDelayMs,   // Sleep `param` milliseconds, then proceed normally.
  kGarbage,   // Substitute corrupted payload bytes (detectable garbage).
  kTruncate,  // Cut the payload short (param = max bytes, 0 = empty).
  kDropConn,  // Kill the underlying connection / make it non-reusable.
};

const char* FaultActionName(FaultAction action);

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  int64_t param = 0;  // kDelayMs: milliseconds; kTruncate: byte cap.

  explicit operator bool() const { return action != FaultAction::kNone; }
};

// One named seam. Instances are owned by the FaultRegistry and live for
// the process; call sites hold a raw pointer obtained once.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}
  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  const std::string& name() const { return name_; }

  // Hot path. Disarmed: one relaxed load, returns kNone. Armed: takes
  // the point's mutex, draws once, and returns the (possibly kNone)
  // decision.
  FaultDecision Evaluate() {
    if (!armed_.load(std::memory_order_relaxed)) return FaultDecision{};
    return EvaluateSlow();
  }

  // Number of evaluations that actually injected a fault.
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  friend class FaultRegistry;

  FaultDecision EvaluateSlow();
  void Arm(double probability, FaultAction action, int64_t param,
           uint64_t seed);
  void Disarm();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> fired_{0};
  std::mutex mu_;
  double probability_ = 0;          // Guarded by mu_.
  FaultAction action_ = FaultAction::kNone;
  int64_t param_ = 0;
  Rng rng_{1};                      // Guarded by mu_.
};

// One parsed `point=prob:action[:param]` clause.
struct FaultSpec {
  std::string point;
  double probability = 0;
  FaultAction action = FaultAction::kNone;
  int64_t param = 0;
};

// Parses a full --chaos spec: comma-separated clauses of the form
// `point=prob:action[:param]`. Actions: error, delay-ms (param = ms,
// required), garbage, truncate (param = byte cap, default 0), drop-conn.
// Probability is a decimal in [0, 1]. Returns InvalidArgument on any
// malformed clause; never crashes on arbitrary input (fuzzed).
Result<std::vector<FaultSpec>> ParseChaosSpec(const std::string& spec);

// Registry of every fault point in the process. Points register on
// first use and are never removed; arming a spec applies to points that
// register later too (seams register lazily, configuration happens at
// startup).
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  // Returns the stable point for `name`, registering it if new. Cache
  // the pointer (DYNAPROX_FAULT_POINT does this with a static local).
  FaultPoint* GetPoint(const std::string& name);

  // Parses `spec` and arms the named points with `seed` determinism.
  // Replaces any previous arming wholesale. Empty spec == DisarmAll().
  Status Arm(const std::string& spec, uint64_t seed);

  // Disarms every point and clears the armed configuration and the
  // injection log (fired counters are monotonic and survive).
  void DisarmAll();

  // Per-point fired counts, sorted by point name (stable exposition /
  // conservation checks).
  std::vector<std::pair<std::string, uint64_t>> FiredCounts() const;

  // Chronological log of injections, each "<seq> <point> <action>".
  // Bounded (oldest entries keep their sequence numbers; the log stops
  // growing at the cap, the counters keep counting).
  std::vector<std::string> InjectionLog() const;

  // Registers dynaprox_fault_injections_total{point=...} with
  // `registry`. Safe to call once per metrics registry.
  void RegisterMetrics(metrics::Registry* registry);

 private:
  friend class FaultPoint;

  FaultRegistry() = default;
  void RecordInjection(const std::string& point, FaultAction action);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
  std::map<std::string, FaultSpec> armed_;  // Applied to late registrants.
  uint64_t seed_ = 0;
  uint64_t injection_seq_ = 0;
  std::vector<std::string> injection_log_;
};

// --- Seam helpers -------------------------------------------------------

// Sleeps out a kDelayMs decision (wall clock; chaos delays are real
// stalls even under SimClock) and returns the decision unchanged so the
// caller can handle the rest. No-op for other actions.
FaultDecision ApplyDelay(FaultDecision decision);

// For seams whose only failure mode is a Status: handles delay inline
// and maps every other injected action to Unavailable (tagged
// "chaos:<point>" so logs distinguish injected faults from real ones).
// Returns Ok when nothing fired.
Status InjectStatus(FaultPoint* point);

}  // namespace dynaprox::chaos

// Registers (once) and returns the FaultPoint* for `name`. The name
// must be a literal; the lookup happens a single time per call site.
#define DYNAPROX_FAULT_POINT(name)                                      \
  ([]() -> ::dynaprox::chaos::FaultPoint* {                             \
    static ::dynaprox::chaos::FaultPoint* dynaprox_fault_point_ =      \
        ::dynaprox::chaos::FaultRegistry::Instance().GetPoint(name);    \
    return dynaprox_fault_point_;                                       \
  }())

#endif  // DYNAPROX_COMMON_FAULT_POINT_H_
