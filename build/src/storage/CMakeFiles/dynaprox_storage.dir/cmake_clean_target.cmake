file(REMOVE_RECURSE
  "libdynaprox_storage.a"
)
