// Figure 2(b): analytical savings in bytes served (%) as hit ratio varies
// 0..1. Paper shape: slightly negative at h=0, break-even near h=0.01,
// rising to ~70% at h=1 (with the paper-figure cacheability).

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"

namespace {

void PrintSeries(const char* label,
                 dynaprox::analytical::ModelParams params) {
  std::printf("--- series: %s (cacheability=%.2f) ---\n", label,
              params.cacheability);
  std::printf("%10s %14s\n", "hitRatio", "savings(%)");
  // Dense points near zero to show the break-even crossing.
  for (double h : {0.0, 0.005, 0.01, 0.02, 0.05}) {
    params.hit_ratio = h;
    std::printf("%10.3f %14.3f\n", h,
                dynaprox::analytical::SavingsPercent(params));
  }
  for (int step = 1; step <= 10; ++step) {
    params.hit_ratio = 0.1 * step;
    std::printf("%10.3f %14.3f\n", params.hit_ratio,
                dynaprox::analytical::SavingsPercent(params));
  }
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams table2 = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Figure 2(b)", "Savings in Bytes Served (%) vs Hit Ratio", table2);
  PrintSeries("table2-baseline", table2);
  PrintSeries("paper-figure-settings", ModelParams::PaperFigureSettings());
  dynaprox::benchutil::PrintFooter();
  return 0;
}
