#include "common/status.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_FALSE(Status::NotFound("").IsInvalidArgument());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::CapacityExceeded("").IsCapacityExceeded());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_FALSE(Status().IsNotFound());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Corruption("bad tag");
  EXPECT_EQ(s.ToString(), "Corruption: bad tag");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status(), Status::Ok());
}

TEST(StatusTest, StatusCodeNameCoversAllCodes) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

Status FailsThenPropagates(bool fail) {
  DYNAPROX_RETURN_IF_ERROR(fail ? Status::IoError("inner") : Status::Ok());
  return Status::AlreadyExists("fell through");
}

TEST(StatusTest, ReturnIfErrorMacroPropagatesOnlyErrors) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kIoError);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace dynaprox
