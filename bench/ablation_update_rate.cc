// Ablation: data-source update rate. The paper's model treats the hit
// ratio as a free parameter; in deployment it is *produced* by the update
// rate (every content mutation invalidates dependent fragments). This
// sweep mutates a random content row every U requests and reports the
// realized hit ratio and origin-link bytes.

#include <cstdio>
#include <string>

#include "analytical/model.h"
#include "bench_util.h"
#include "common/rng.h"
#include "sim/testbed.h"
#include "storage/value.h"

int main() {
  using namespace dynaprox;

  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  params.hit_ratio = 1.0;  // No synthetic version bumps: invalidation only
                           // comes from data-source updates.
  benchutil::PrintHeader("Ablation",
                         "Data-source update rate vs realized hit ratio",
                         params);

  const uint64_t kRequests = 20000;
  std::printf("%22s %14s %16s %14s\n", "updates per 1k reqs",
              "realized h", "payloadBytes", "savings(%)");

  double no_cache_payload =
      static_cast<double>(kRequests) *
      analytical::ResponseSizeNoCache(params);

  for (uint64_t updates_per_1k : {0u, 1u, 10u, 50u, 200u, 1000u}) {
    sim::TestbedConfig config;
    config.params = params;
    config.with_cache = true;
    config.seed = 9;
    auto testbed = sim::Testbed::Create(config);
    if (!testbed.ok()) {
      std::printf("setup failed: %s\n", testbed.status().ToString().c_str());
      return 1;
    }
    (*testbed)->Run(1000);  // Warmup.
    (*testbed)->BeginMeasurement();

    Rng rng(7);
    storage::Table* content =
        (*testbed)->repository().GetOrCreateTable("content");
    uint64_t served = 0;
    while (served < kRequests) {
      uint64_t chunk =
          updates_per_1k == 0
              ? kRequests - served
              : std::min<uint64_t>(1000 / updates_per_1k,
                                   kRequests - served);
      if (chunk == 0) chunk = 1;
      (*testbed)->Run(chunk);
      served += chunk;
      if (updates_per_1k != 0) {
        // Touch a random fragment's backing row; the BEM invalidates the
        // dependent fragment through the update bus.
        int slot = static_cast<int>(rng.NextBounded(
            static_cast<uint64_t>(params.num_pages) *
            params.fragments_per_page));
        std::string key = "s" + std::to_string(slot);
        content->Upsert(key,
                        {{"pad", storage::Value(std::string(
                                     static_cast<size_t>(
                                         params.fragment_size),
                                     'u'))}});
      }
    }

    sim::Measurement m = (*testbed)->Collect();
    double savings =
        (no_cache_payload - static_cast<double>(m.response_payload_bytes)) /
        no_cache_payload * 100.0;
    std::printf("%22llu %14.4f %16llu %14.2f\n",
                static_cast<unsigned long long>(updates_per_1k),
                m.RealizedHitRatio(),
                static_cast<unsigned long long>(m.response_payload_bytes),
                savings);
  }
  std::printf(
      "expectation: savings degrade gracefully as updates invalidate "
      "fragments; even heavy churn only regenerates the touched "
      "fragments (page caches would regenerate whole pages)\n");
  benchutil::PrintFooter();
  return 0;
}
