// Wiki: user-driven writes through the proxy.
//
// Reads are fragment-cached (article body + sidebar); edits arrive as
// form POSTs, mutate the content repository, and the update bus
// invalidates exactly the affected fragments. Demonstrates that the DPC
// architecture needs no special handling for writes: POST responses carry
// no tags and pass through, while the data mutation invalidates cached
// fragments at the BEM.
//
// Run: ./wiki

#include <cstdio>
#include <memory>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace dynaprox;

namespace {

struct Generations {
  int article = 0;
  int sidebar = 0;
};

Status ArticleScript(Generations& generations,
                     appserver::ScriptContext& ctx) {
  std::string title = ctx.request().QueryParams()["title"];
  if (title.empty()) {
    ctx.SetStatus(404);
    ctx.Emit("no such article");
    return Status::Ok();
  }
  ctx.Emit("<html><body>");
  // Sidebar: list of all articles; any table change invalidates it.
  DYNAPROX_RETURN_IF_ERROR(ctx.CacheableBlock(
      bem::FragmentId("sidebar"), [&](appserver::ScriptContext& block) {
        ++generations.sidebar;
        block.DeclareDependency("articles");
        block.Emit("<nav>");
        auto articles = block.repository()->GetTable("articles");
        if (!articles.ok()) return articles.status();
        for (const auto& [key, row] : (*articles)->Scan(nullptr)) {
          block.Emit("<a href=\"/wiki?title=" + key + "\">" + key +
                     "</a> ");
        }
        block.Emit("</nav>");
        return Status::Ok();
      }));
  // Article body: invalidated only by edits to *this* article.
  DYNAPROX_RETURN_IF_ERROR(ctx.CacheableBlock(
      bem::FragmentId("article", {{"t", title}}),
      [&](appserver::ScriptContext& block) {
        ++generations.article;
        auto articles = block.repository()->GetTable("articles");
        if (!articles.ok()) return articles.status();
        auto row = (*articles)->Get(title);
        block.DeclareDependency("articles", title);
        if (!row.ok()) {
          block.Emit("<p><i>This page does not exist yet.</i></p>");
        } else {
          block.Emit("<h1>" + title + "</h1><p>" +
                     storage::GetString(*row, "body") + "</p>");
        }
        return Status::Ok();
      }));
  ctx.Emit("</body></html>");
  return Status::Ok();
}

// POST /edit with a form body "title=X&body=...".
Status EditScript(appserver::ScriptContext& ctx) {
  if (ctx.request().method != "POST") {
    ctx.SetStatus(405);
    ctx.Emit("use POST");
    return Status::Ok();
  }
  auto form = http::ParseQueryString(ctx.request().body);
  std::string title = form["title"];
  if (title.empty()) {
    ctx.SetStatus(400);
    ctx.Emit("missing title");
    return Status::Ok();
  }
  ctx.repository()->GetOrCreateTable("articles")->Upsert(
      title, {{"body", storage::Value(form["body"])}});
  ctx.Emit("saved " + title);
  return Status::Ok();
}

}  // namespace

int main() {
  storage::ContentRepository repository;
  storage::Table* articles = repository.GetOrCreateTable("articles");
  articles->Upsert("Caching",
                   {{"body", storage::Value(std::string(
                                 "Caching is remembering answers."))}});

  Generations generations;
  appserver::ScriptRegistry registry;
  registry.RegisterOrReplace("/wiki",
                             [&](appserver::ScriptContext& ctx) {
                               return ArticleScript(generations, ctx);
                             });
  registry.RegisterOrReplace("/edit", EditScript);

  bem::BemOptions bem_options;
  bem_options.capacity = 64;
  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  monitor->AttachRepository(&repository);
  appserver::OriginServer origin(&registry, &repository, monitor.get());
  net::DirectTransport upstream(origin.AsHandler());
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 64;
  dpc::DpcProxy proxy(&upstream, proxy_options);

  auto read = [&](const std::string& title) {
    http::Request request;
    request.target = "/wiki?title=" + title;
    return proxy.Handle(request);
  };
  auto edit = [&](const std::string& title, const std::string& body) {
    http::Request request;
    request.method = "POST";
    request.target = "/edit";
    request.headers.Add("Content-Type",
                        "application/x-www-form-urlencoded");
    request.body = "title=" + http::UrlEncode(title) +
                   "&body=" + http::UrlEncode(body);
    return proxy.Handle(request);
  };

  std::printf("-- warm reads --\n");
  read("Caching");
  read("Caching");
  read("Caching");
  std::printf("3 reads: article generated %d time(s), sidebar %d time(s)\n",
              generations.article, generations.sidebar);

  std::printf("\n-- edit the article through the proxy --\n");
  http::Response saved =
      edit("Caching", "Caching is remembering answers, invalidated well.");
  std::printf("POST /edit -> %d (%s)\n", saved.status_code,
              saved.BodyText().c_str());
  http::Response updated = read("Caching");
  std::printf("re-read shows new text: %s\n",
              updated.BodyText().find("invalidated well") != std::string::npos
                  ? "yes"
                  : "NO (stale!)");
  std::printf("article regenerated (now %d); the sidebar also "
              "regenerated (now %d) — its dependency is table-level, a "
              "deliberate granularity trade-off: listing titles can't "
              "know which rows matter\n",
              generations.article, generations.sidebar);

  std::printf("\n-- create a brand-new page --\n");
  edit("Proxies", "A proxy speaks HTTP on both sides.");
  http::Response proxies = read("Proxies");
  std::printf("new page served: %s\n",
              proxies.BodyText().find("speaks HTTP") != std::string::npos
                  ? "yes"
                  : "NO");
  http::Response caching_again = read("Caching");
  std::printf("sidebar regenerated with the new link: %s (sidebar "
              "generations now %d)\n",
              caching_again.BodyText().find("/wiki?title=Proxies") !=
                      std::string::npos
                  ? "yes"
                  : "NO",
              generations.sidebar);

  bem::DirectoryStats stats = monitor->stats();
  std::printf("\ndirectory: hits=%llu misses=%llu data-source "
              "invalidations=%llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(
                  stats.explicit_invalidations));
  return 0;
}
