file(REMOVE_RECURSE
  "libdynaprox_http.a"
)
