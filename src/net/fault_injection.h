#ifndef DYNAPROX_NET_FAULT_INJECTION_H_
#define DYNAPROX_NET_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/rng.h"
#include "net/transport.h"

namespace dynaprox::net {

// Knobs for FaultInjectingTransport. Probabilities are evaluated per round
// trip in the order error -> black hole -> garbage -> delay; the first one
// that fires wins (delay additionally forwards to the inner transport).
struct FaultInjectionOptions {
  // Fail instantly with IoError ("connection reset"), as a refused dial or
  // an RST mid-request would.
  double error_probability = 0.0;
  // Sleep black_hole_micros, then fail with IoError ("timeout"): the
  // origin accepted the connection and went silent until our deadline.
  double black_hole_probability = 0.0;
  MicroTime black_hole_micros = 5 * kMicrosPerMilli;
  // Answer 200 with corrupt template bytes (kTemplateHeader set, body that
  // no tag codec accepts) — a truncated or scrambled origin response.
  double garbage_probability = 0.0;
  // Sleep delay_micros, then forward normally (a slow but healthy origin).
  double delay_probability = 0.0;
  MicroTime delay_micros = kMicrosPerMilli;
  // Cost of each attempt while the origin is down (see set_down): models
  // the dial timeout a real dead origin charges per connection attempt.
  // 0 fails instantly.
  MicroTime down_failure_delay_micros = 0;
  // Seed for the deterministic decision stream (common/rng.h): identical
  // seeds replay the identical fault sequence.
  uint64_t seed = 1;
};

struct FaultInjectionStats {
  uint64_t passed = 0;  // Reached the inner transport unharmed (or delayed).
  uint64_t injected_errors = 0;
  uint64_t injected_black_holes = 0;
  uint64_t injected_garbage = 0;
  uint64_t injected_delays = 0;
  uint64_t down_failures = 0;  // Attempts that hit the down switch.
};

// Transport decorator that injects origin failures for tests and benches:
// probabilistic faults plus a hard down switch that black-holes every
// round trip (a dead or partitioned origin). Deterministic given the seed
// and a single caller thread; under concurrency the decision stream is
// still drawn from one Rng (mutex-guarded) but interleaving is scheduler-
// dependent. Sleeps happen outside the lock.
class FaultInjectingTransport : public Transport {
 public:
  // `inner` must outlive the decorator.
  FaultInjectingTransport(Transport* inner,
                          FaultInjectionOptions options = {});

  Result<http::Response> RoundTrip(const http::Request& request) override;

  // Forwards to the inner transport's streaming path under the same fault
  // draw. Without this override the base-class adapter kicks in: it still
  // routes through RoundTrip (faults apply) but silently buffers the whole
  // body, so streamed requests never exercise the inner transport's real
  // chunk timing and a fault test over --streaming is testing the wrong
  // path.
  Result<StreamingResponse> RoundTripStreaming(
      const http::Request& request) override;

  // Hard outage switch: while down, every round trip fails with IoError
  // after down_failure_delay_micros, without reaching the inner transport.
  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool down() const { return down_.load(std::memory_order_relaxed); }

  FaultInjectionStats stats() const;

 private:
  enum class Fault { kNone, kError, kBlackHole, kGarbage, kDelay };

  Fault Draw();
  Fault DrawAndCount();

  Transport* inner_;
  FaultInjectionOptions options_;
  std::atomic<bool> down_{false};
  mutable std::mutex mu_;  // Guards rng_ and stats_.
  Rng rng_;
  FaultInjectionStats stats_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_FAULT_INJECTION_H_
