#include "firewall/firewall.h"

#include <gtest/gtest.h>

namespace dynaprox::firewall {
namespace {

TEST(ScanCostModelTest, CostsAreLinear) {
  ScanCostModel model{2.0};
  EXPECT_DOUBLE_EQ(model.CostNoCache(100), 200.0);
  EXPECT_DOUBLE_EQ(model.CostWithCache(100), 400.0);  // Scanned twice.
}

TEST(ScanCostModelTest, ResultOneThreshold) {
  ScanCostModel model;
  // B_NC > 2 B_C -> preferable.
  EXPECT_TRUE(model.CachePreferable(1000, 400));
  EXPECT_FALSE(model.CachePreferable(1000, 600));
  EXPECT_FALSE(model.CachePreferable(1000, 500));  // Exactly 2x: not >.
  EXPECT_GT(model.SavingsPercent(1000, 400), 0);
  EXPECT_LT(model.SavingsPercent(1000, 600), 0);
  EXPECT_DOUBLE_EQ(model.SavingsPercent(1000, 500), 0);
}

TEST(ScanningFirewallTest, PassesCleanTraffic) {
  net::DirectTransport origin([](const http::Request&) {
    return http::Response::MakeOk("clean content");
  });
  ScanningFirewall firewall(&origin, {"attack-signature"});
  http::Request request;
  request.target = "/ok";
  Result<http::Response> response = firewall.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(firewall.stats().blocked, 0u);
  EXPECT_EQ(firewall.stats().messages, 2u);  // Request and response.
  EXPECT_GT(firewall.stats().bytes_scanned, 0u);
}

TEST(ScanningFirewallTest, BlocksMatchingRequests) {
  bool origin_reached = false;
  net::DirectTransport origin([&](const http::Request&) {
    origin_reached = true;
    return http::Response::MakeOk("x");
  });
  ScanningFirewall firewall(&origin, {"DROP TABLE"});
  http::Request request;
  request.body = "q=1; DROP TABLE users";
  Result<http::Response> response = firewall.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 403);
  EXPECT_FALSE(origin_reached);
  EXPECT_EQ(firewall.stats().blocked, 1u);
}

TEST(ScanningFirewallTest, CountsResponseSignaturesWithoutBlocking) {
  net::DirectTransport origin([](const http::Request&) {
    return http::Response::MakeOk("xx marker yy marker zz");
  });
  ScanningFirewall firewall(&origin, {"marker"});
  Result<http::Response> response = firewall.RoundTrip(http::Request{});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  EXPECT_EQ(firewall.stats().signature_hits, 2u);
}

TEST(ScanningFirewallTest, BytesScannedTracksTraffic) {
  std::string body(10000, 'a');
  net::DirectTransport origin([&](const http::Request&) {
    return http::Response::MakeOk(body);
  });
  ScanningFirewall firewall(&origin, {"zzz"});
  http::Request request;
  firewall.RoundTrip(request);
  EXPECT_EQ(firewall.stats().bytes_scanned,
            request.Serialize().size() + body.size());
}

TEST(ScanningFirewallTest, MultipleSignatures) {
  net::DirectTransport origin([](const http::Request&) {
    return http::Response::MakeOk("has alpha and beta");
  });
  ScanningFirewall firewall(&origin, {"alpha", "beta", "gamma"});
  firewall.RoundTrip(http::Request{});
  EXPECT_EQ(firewall.stats().signature_hits, 2u);
}

}  // namespace
}  // namespace dynaprox::firewall
