#ifndef DYNAPROX_BEM_PUSH_SCHEDULER_H_
#define DYNAPROX_BEM_PUSH_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bem/monitor.h"
#include "common/clock.h"
#include "common/metrics.h"

namespace dynaprox::bem {

// Admission policy for push-based refresh (docs/edge-tier.md). Following
// Abolhassani et al. ("Optimal Push and Pull-Based Edge Caching For
// Dynamic Content", PAPERS.md), a fragment is worth pushing when it is
// both popular (lookups measure demand) and update-heavy (invalidations
// measure churn): pushing a cold fragment wastes origin bytes nobody will
// read, and pushing a never-updated fragment never happens anyway. The
// score is the product of the two counts; everything below `min_score`
// stays pull-on-miss.
struct PushPolicy {
  // Admission threshold on lookups × invalidations at invalidation time.
  // Raise to push less; a huge value degenerates to pure pull (the
  // benches use that for the pull baseline).
  double min_score = 4.0;
  // Bounded work queue; when full, further admissions are dropped — the
  // fragment degrades to pull-on-miss, it is never lost.
  size_t queue_capacity = 1024;
};

struct PushSchedulerStats {
  uint64_t enqueued = 0;      // Invalidations admitted for push.
  uint64_t dropped = 0;       // Admitted but queue full: degraded to pull.
  uint64_t skipped_cold = 0;  // Below min_score: stays pull-on-miss.
};

// One unit of push work: the fragment to re-render and when its content
// went stale (for age accounting on the eventual push).
struct PushWorkItem {
  std::string canonical;
  MicroTime invalidated_at = 0;
};

// Scores fragments from BEM directory events and queues the hot,
// update-heavy ones for push-based refresh. Attach with
// BackEndMonitor::SetObserver; drain with TakeBatch (the PushEngine's
// Drain does both the re-render and the control-channel send).
//
// Staleness accounting is deliberately admission-independent: every
// fragment's invalidate→re-insert gap is observed into `staleness`
// (when provided), whether the re-insert came from a push re-render or a
// client-driven pull miss. Push and pull runs therefore report staleness
// through the identical code path, which is what makes the
// bench/edge_push_pull comparison honest.
//
// Thread-safe; one mutex, O(1) work per event.
class PushScheduler : public FragmentEventObserver {
 public:
  PushScheduler(PushPolicy policy, const Clock* clock,
                metrics::LatencyHistogram* staleness = nullptr);

  void OnLookup(const std::string& canonical, bool hit) override;
  void OnInsert(const std::string& canonical, DpcKey key) override;
  void OnInvalidate(const std::string& canonical) override;

  // Pops up to `max` queued items (0 = all), FIFO.
  std::vector<PushWorkItem> TakeBatch(size_t max = 0);

  size_t queue_depth() const;
  PushSchedulerStats stats() const;
  // Current admission score of `canonical` (lookups × invalidations);
  // introspection for tests and the status document.
  double ScoreOf(const std::string& canonical) const;

 private:
  struct Entry {
    uint64_t lookups = 0;
    uint64_t invalidations = 0;
    // Earliest unserved invalidation since the last insert; -1 = content
    // currently fresh.
    MicroTime invalidated_at = -1;
    bool queued = false;  // Already in the work queue (no duplicates).
  };

  const PushPolicy policy_;
  const Clock* clock_;
  metrics::LatencyHistogram* staleness_;  // May be null.

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::deque<PushWorkItem> queue_;
  PushSchedulerStats stats_;
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_PUSH_SCHEDULER_H_
