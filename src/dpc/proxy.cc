#include "dpc/proxy.h"

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "net/connection_pool.h"

namespace dynaprox::dpc {
namespace {

// Hop-by-hop fields (RFC 7230 §6.1) must not travel past an intermediary.
constexpr const char* kHopByHopHeaders[] = {
    "Connection", "Keep-Alive", "Proxy-Connection", "TE",
    "Trailer",    "Upgrade",
};

void StripHopByHop(http::HeaderMap& headers) {
  for (const char* name : kHopByHopHeaders) headers.Remove(name);
}

void AppendVia(http::HeaderMap& headers, const std::string& token) {
  if (auto existing = headers.Get("Via"); existing.has_value()) {
    headers.Set("Via", std::string(*existing) + ", " + token);
  } else {
    headers.Add("Via", token);
  }
}

}  // namespace

DpcProxy::DpcProxy(net::Transport* upstream, ProxyOptions options)
    : upstream_(upstream), options_(options), store_(options.capacity) {
  if (options_.enable_static_cache) {
    static_cache_ = std::make_unique<StaticCache>(options_.static_cache);
  }
}

net::Handler DpcProxy::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

ProxyStats DpcProxy::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

http::Response DpcProxy::BuildAssembledResponse(
    const http::Response& upstream, AssembledPage page) {
  http::Response response = upstream;
  response.headers.Remove(bem::kTemplateHeader);
  response.headers.Remove("Content-Length");
  if (options_.proxy_headers) {
    AppendVia(response.headers, options_.via_token);
  }
  if (options_.add_debug_header) {
    response.headers.Set(
        kDebugHeader, "sets=" + std::to_string(page.set_count) +
                          ";gets=" + std::to_string(page.get_count));
  }
  response.body = std::move(page.page);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.assembled;
    stats_.bytes_to_clients += response.body.size();
  }
  return response;
}

http::Response DpcProxy::RenderStatus() const {
  ProxyStats snapshot = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("component").String("dpc");
  json.Key("requests").Uint(snapshot.requests);
  json.Key("assembled").Uint(snapshot.assembled);
  json.Key("passthrough").Uint(snapshot.passthrough);
  json.Key("recoveries").Uint(snapshot.recoveries);
  json.Key("upstream_errors").Uint(snapshot.upstream_errors);
  json.Key("template_errors").Uint(snapshot.template_errors);
  json.Key("bytes_from_upstream").Uint(snapshot.bytes_from_upstream);
  json.Key("bytes_to_clients").Uint(snapshot.bytes_to_clients);
  json.Key("store").BeginObject();
  StoreStats store_stats = store_.stats();
  json.Key("capacity").Uint(store_.capacity());
  json.Key("occupied_slots").Uint(store_.occupied_slots());
  json.Key("content_bytes").Uint(store_.content_bytes());
  json.Key("sets").Uint(store_stats.sets);
  json.Key("gets").Uint(store_stats.gets);
  json.Key("get_misses").Uint(store_stats.get_misses);
  json.EndObject();
  if (options_.upstream_pool != nullptr) {
    net::PoolStats pool = options_.upstream_pool->stats();
    json.Key("upstream_pool").BeginObject();
    json.Key("open_connections").Int(pool.open_connections);
    json.Key("idle_connections").Int(pool.idle_connections);
    json.Key("wait_queue_depth").Int(pool.wait_queue_depth);
    json.Key("checkouts").Uint(pool.checkouts);
    json.Key("connects").Uint(pool.connects);
    json.Key("reconnects").Uint(pool.reconnects);
    json.Key("stale_closed").Uint(pool.stale_closed);
    json.Key("idle_reaped").Uint(pool.idle_reaped);
    json.Key("waiter_timeouts").Uint(pool.waiter_timeouts);
    json.Key("waiter_rejections").Uint(pool.waiter_rejections);
    json.Key("connect_failures").Uint(pool.connect_failures);
    json.Key("wait_micros").BeginObject();
    json.Key("count").Uint(pool.wait_micros.count());
    json.Key("p50").Double(pool.wait_micros.Percentile(0.5));
    json.Key("p99").Double(pool.wait_micros.Percentile(0.99));
    json.Key("max").Double(pool.wait_micros.count() == 0
                               ? 0.0
                               : pool.wait_micros.max());
    json.EndObject();
    json.EndObject();
  }
  if (static_cache_ != nullptr) {
    StaticCacheStats static_stats = static_cache_->stats();
    json.Key("static_cache").BeginObject();
    json.Key("entries").Uint(static_cache_->size());
    json.Key("hits").Uint(static_stats.hits);
    json.Key("misses").Uint(static_stats.misses);
    json.Key("stores").Uint(static_stats.stores);
    json.Key("revalidations").Uint(static_stats.revalidations);
    json.Key("evictions").Uint(static_stats.evictions);
    json.EndObject();
  }
  json.EndObject();
  return http::Response::MakeOk(json.TakeString(), "application/json");
}

http::Response DpcProxy::Handle(const http::Request& request) {
  if (options_.enable_status && request.Path() == options_.status_path) {
    return RenderStatus();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  bool revalidating = false;
  http::Request upstream_request = request;
  if (options_.proxy_headers) {
    StripHopByHop(upstream_request.headers);
    AppendVia(upstream_request.headers, options_.via_token);
  }
  if (static_cache_ != nullptr && request.method == "GET") {
    if (std::optional<http::Response> cached =
            static_cache_->Lookup(request.target)) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.static_hits;
      stats_.bytes_to_clients += cached->body.size();
      return std::move(*cached);
    }
    // Stale entry with an ETag: try a conditional request.
    if (std::optional<std::string> etag =
            static_cache_->StaleEtag(request.target)) {
      upstream_request.headers.Set("If-None-Match", *etag);
      revalidating = true;
    }
  }
  for (int attempt = 0; attempt <= options_.max_recovery_attempts;
       ++attempt) {
    Result<http::Response> upstream_response =
        upstream_->RoundTrip(upstream_request);
    if (!upstream_response.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.upstream_errors;
      return http::Response::MakeError(
          502, "Bad Gateway",
          "upstream error: " + upstream_response.status().ToString());
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.bytes_from_upstream += upstream_response->body.size();
    }

    if (revalidating && upstream_response->status_code == 304) {
      if (std::optional<http::Response> refreshed =
              static_cache_->Revalidate(request.target,
                                        *upstream_response)) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.static_revalidations;
        stats_.bytes_to_clients += refreshed->body.size();
        return std::move(*refreshed);
      }
      // Entry vanished (evicted between the stale check and the 304):
      // retry unconditionally.
      revalidating = false;
      upstream_request = request;
      if (options_.proxy_headers) {
        StripHopByHop(upstream_request.headers);
        AppendVia(upstream_request.headers, options_.via_token);
      }
      continue;
    }

    if (!upstream_response->headers.Has(bem::kTemplateHeader)) {
      if (static_cache_ != nullptr && request.method == "GET") {
        static_cache_->Store(request.target, *upstream_response);
      }
      if (options_.proxy_headers) {
        AppendVia(upstream_response->headers, options_.via_token);
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.passthrough;
      stats_.bytes_to_clients += upstream_response->body.size();
      return std::move(*upstream_response);
    }

    if (options_.max_template_bytes != 0 &&
        upstream_response->body.size() > options_.max_template_bytes) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.template_errors;
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template exceeds limit: " +
              std::to_string(upstream_response->body.size()) + " > " +
              std::to_string(options_.max_template_bytes));
    }

    Result<AssembledPage> assembled =
        AssemblePage(upstream_response->body, store_, options_.scan_strategy);
    if (!assembled.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.template_errors;
      return http::Response::MakeError(
          502, "Bad Gateway",
          "template error: " + assembled.status().ToString());
    }
    if (assembled->complete()) {
      return BuildAssembledResponse(*upstream_response,
                                    std::move(*assembled));
    }

    // Cold-cache recovery: ask the origin to invalidate the missing keys so
    // the retried response carries fresh SETs.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.recoveries;
    }
    std::string refresh;
    for (bem::DpcKey key : assembled->missing_keys) {
      if (!refresh.empty()) refresh += ',';
      refresh += ToHex(key);
    }
    DYNAPROX_LOG(kInfo, "dpc")
        << "cold-cache recovery for keys [" << refresh << "]";
    upstream_request = request;
    if (options_.proxy_headers) {
      StripHopByHop(upstream_request.headers);
      AppendVia(upstream_request.headers, options_.via_token);
    }
    upstream_request.headers.Set(bem::kRefreshHeader, refresh);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.template_errors;
  }
  return http::Response::MakeError(502, "Bad Gateway",
                                   "unrecoverable missing fragments");
}

}  // namespace dynaprox::dpc
