#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace dynaprox::common {

ThreadPool::ThreadPool(ThreadPoolOptions options)
    : queue_capacity_(std::max<size_t>(options.queue_capacity, 1)) {
  int threads = std::max(options.num_threads, 0);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(Task task) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::unique_lock<ContendedMutex> lock(mu_);
    if (!shutting_down_ && !workers_.empty() &&
        queue_.size() < queue_capacity_) {
      queue_.push_back(std::move(task));
      peak_queue_depth_ = std::max<uint64_t>(peak_queue_depth_, queue_.size());
      lock.unlock();
      cv_.notify_one();
      return;
    }
  }
  // Caller-runs backpressure: full queue, no workers, or shutting down.
  caller_runs_.fetch_add(1, std::memory_order_relaxed);
  task();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<ContendedMutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutting down and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<ContendedMutex> lock(mu_);
    if (shutting_down_) {
      // A second Shutdown (e.g. explicit call then destructor) has nothing
      // left to join — the first call swallowed the worker handles.
      return;
    }
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.caller_runs = caller_runs_.load(std::memory_order_relaxed);
  stats.queue_contentions = mu_.contended_acquisitions();
  stats.threads = static_cast<int>(workers_.size());
  {
    std::lock_guard<ContendedMutex> lock(mu_);
    stats.queue_depth = queue_.size();
    stats.peak_queue_depth = peak_queue_depth_;
  }
  return stats;
}

}  // namespace dynaprox::common
