#include "workload/personalized_site.h"

#include "storage/value.h"

namespace dynaprox::workload {
namespace {

constexpr const char* kCategories[] = {"fiction", "tech", "travel"};

}  // namespace

PersonalizedSite::PersonalizedSite(const PersonalizedSiteConfig& config,
                                   storage::ContentRepository* repository,
                                   appserver::ScriptRegistry* registry)
    : config_(config), repository_(repository) {
  storage::Table* users =
      repository_->GetOrCreateTable(appserver::kUsersTable);
  storage::Table* products =
      repository_->GetOrCreateTable(appserver::kProductsTable);
  (void)products->CreateIndex("category");
  for (int i = 0; i < config_.registered_users; ++i) {
    std::string id = "user" + std::to_string(i);
    users->Upsert(id,
                  {{"name", storage::Value("User " + std::to_string(i))},
                   {"category", storage::Value(std::string(
                                    kCategories[i % 3]))}});
    tokens_[i] = sessions_.Login(id);
  }
  for (int i = 0; i < config_.product_count; ++i) {
    products->Upsert(
        "p" + std::to_string(i),
        {{"title", storage::Value("Product " + std::to_string(i))},
         {"category", storage::Value(std::string(kCategories[i % 3]))},
         {"price", storage::Value(5.0 + i)}});
  }

  registry->RegisterOrReplace("/welcome",
                              [this](appserver::ScriptContext& context) {
                                return WelcomeScript(context);
                              });
  registry->RegisterOrReplace("/frag/greeting",
                              [this](appserver::ScriptContext& context) {
                                return GreetingFragment(context);
                              });
  registry->RegisterOrReplace("/frag/reco",
                              [this](appserver::ScriptContext& context) {
                                return RecoFragment(context);
                              });
  registry->RegisterOrReplace("/frag/catalog",
                              [this](appserver::ScriptContext& context) {
                                return CatalogFragment(context);
                              });
}

http::Request PersonalizedSite::VisitorRequest(int user_index) const {
  http::Request request;
  request.target = "/welcome";
  if (user_index >= 0) {
    request.headers.Add("Cookie", "sid=" + tokens_.at(user_index));
  }
  return request;
}

std::string PersonalizedSite::GreetingHtml(
    const appserver::UserProfile& profile) const {
  return "<h2>Hello, " + profile.display_name + "</h2>";
}

Result<std::string> PersonalizedSite::RecoHtml(
    storage::ContentRepository& repository,
    const appserver::UserProfile& profile) const {
  auto picks = appserver::RecommendProducts(
      repository, profile,
      static_cast<size_t>(config_.recommendations_per_page));
  if (!picks.ok()) return picks.status();
  std::string html = "<ul>";
  for (const auto& pick : *picks) html += "<li>" + pick.title + "</li>";
  return html + "</ul>";
}

Result<std::string> PersonalizedSite::CatalogHtml(
    storage::ContentRepository& repository) const {
  auto table = repository.GetTable(appserver::kProductsTable);
  if (!table.ok()) return table.status();
  std::string html = "<ol>";
  for (const auto& [key, row] : (*table)->Scan(nullptr)) {
    html += "<li>" + storage::GetString(row, "title") + "</li>";
  }
  return html + "</ol>";
}

Status PersonalizedSite::WelcomeScript(appserver::ScriptContext& context) {
  context.Emit("<html>");
  auto user = sessions_.ResolveUser(context.request());
  if (user.has_value()) {
    // ONE profile load shared by the greeting and the recommendations:
    // the interdependence ESI factoring must redo per fragment.
    ++work_.profile_loads;
    auto profile = appserver::LoadProfile(*repository_, *user);
    if (!profile.ok()) return profile.status();
    DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
        bem::FragmentId("greet", {{"u", *user}}),
        [&](appserver::ScriptContext& block) {
          ++work_.fragment_generations;
          block.Emit(GreetingHtml(*profile));
          return Status::Ok();
        }));
    DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
        bem::FragmentId("reco", {{"c", profile->preferred_category}}),
        [&](appserver::ScriptContext& block) {
          ++work_.fragment_generations;
          block.DeclareDependency(appserver::kProductsTable);
          Result<std::string> html = RecoHtml(*block.repository(), *profile);
          if (!html.ok()) return html.status();
          block.Emit(*html);
          return Status::Ok();
        }));
  }
  DYNAPROX_RETURN_IF_ERROR(context.CacheableBlock(
      bem::FragmentId("catalog"), [&](appserver::ScriptContext& block) {
        ++work_.fragment_generations;
        block.DeclareDependency(appserver::kProductsTable);
        Result<std::string> html = CatalogHtml(*block.repository());
        if (!html.ok()) return html.status();
        block.Emit(*html);
        return Status::Ok();
      }));
  context.Emit("</html>");
  return Status::Ok();
}

Status PersonalizedSite::GreetingFragment(
    appserver::ScriptContext& context) {
  ++work_.fragment_generations;
  auto user = sessions_.ResolveUser(context.request());
  if (!user.has_value()) return Status::Ok();
  ++work_.profile_loads;
  auto profile = appserver::LoadProfile(*repository_, *user);
  if (profile.ok()) context.Emit(GreetingHtml(*profile));
  return Status::Ok();
}

Status PersonalizedSite::RecoFragment(appserver::ScriptContext& context) {
  ++work_.fragment_generations;
  auto user = sessions_.ResolveUser(context.request());
  if (!user.has_value()) return Status::Ok();
  ++work_.profile_loads;
  auto profile = appserver::LoadProfile(*repository_, *user);
  if (!profile.ok()) return Status::Ok();
  Result<std::string> html = RecoHtml(*context.repository(), *profile);
  if (html.ok()) context.Emit(*html);
  return Status::Ok();
}

Status PersonalizedSite::CatalogFragment(
    appserver::ScriptContext& context) {
  ++work_.fragment_generations;
  Result<std::string> html = CatalogHtml(*context.repository());
  if (html.ok()) context.Emit(*html);
  return Status::Ok();
}

}  // namespace dynaprox::workload
