#ifndef DYNAPROX_WORKLOAD_PERSONALIZED_SITE_H_
#define DYNAPROX_WORKLOAD_PERSONALIZED_SITE_H_

#include <map>
#include <string>

#include "appserver/personalization.h"
#include "appserver/script_registry.h"
#include "appserver/session.h"
#include "http/message.h"
#include "storage/table.h"

namespace dynaprox::workload {

struct PersonalizedSiteConfig {
  int registered_users = 12;
  int product_count = 30;
  int recommendations_per_page = 5;
};

// Counters for origin-side generation work; the Section 3 comparison's
// "how much did the origin actually compute" metric.
struct PersonalizedSiteWork {
  int profile_loads = 0;
  int fragment_generations = 0;
};

// The Section 3 comparison site: a personalized "/welcome" page whose
// layout depends on the visitor (registered users get a greeting and
// per-category recommendations; anonymous visitors only the shared
// catalog). Registered in two forms over one repository:
//
//  * "/welcome"       — a DPC-style tagged script (one profile load shared
//                       by all fragments; degrades to plain generation
//                       without a BEM, which is the no-cache baseline);
//  * "/frag/greeting", "/frag/reco", "/frag/catalog"
//                     — ESI-style fragment scripts, each independently
//                       addressable and each reloading the profile
//                       (Section 3.2.2's interdependence cost).
//
// Used by bench_baseline_comparison and the workload tests.
class PersonalizedSite {
 public:
  // Seeds `repository`, opens a session per registered user, registers
  // all scripts in `registry`. All pointees must outlive the site.
  PersonalizedSite(const PersonalizedSiteConfig& config,
                   storage::ContentRepository* repository,
                   appserver::ScriptRegistry* registry);

  PersonalizedSite(const PersonalizedSite&) = delete;
  PersonalizedSite& operator=(const PersonalizedSite&) = delete;

  // A "/welcome" request from registered user `user_index`, or anonymous
  // when `user_index` < 0.
  http::Request VisitorRequest(int user_index) const;

  int registered_users() const { return config_.registered_users; }
  const PersonalizedSiteWork& work() const { return work_; }
  void ResetWork() { work_ = PersonalizedSiteWork{}; }

 private:
  Status WelcomeScript(appserver::ScriptContext& context);
  Status GreetingFragment(appserver::ScriptContext& context);
  Status RecoFragment(appserver::ScriptContext& context);
  Status CatalogFragment(appserver::ScriptContext& context);

  std::string GreetingHtml(const appserver::UserProfile& profile) const;
  Result<std::string> RecoHtml(storage::ContentRepository& repository,
                               const appserver::UserProfile& profile) const;
  Result<std::string> CatalogHtml(
      storage::ContentRepository& repository) const;

  PersonalizedSiteConfig config_;
  storage::ContentRepository* repository_;
  appserver::SessionManager sessions_;
  std::map<int, std::string> tokens_;  // user index -> sid.
  PersonalizedSiteWork work_;
};

}  // namespace dynaprox::workload

#endif  // DYNAPROX_WORKLOAD_PERSONALIZED_SITE_H_
