# Empty compiler generated dependencies file for dynaprox_firewall.
# This may be replaced when dependencies are built.
