#ifndef DYNAPROX_DPC_TAG_SCANNER_H_
#define DYNAPROX_DPC_TAG_SCANNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "bem/types.h"
#include "common/buffer_chain.h"
#include "common/result.h"

namespace dynaprox::dpc {

// How the scanner locates the next tag marker in the template. kMemchr is
// the production choice; kByteLoop exists for the scanning-cost ablation
// (bench_ablation_scanner).
enum class ScanStrategy {
  kMemchr,
  kByteLoop,
};

// One parsed piece of a response template. Segments do not own their
// payload: `pieces` are views into the scanned wire bytes, which must
// outlive the segment vector (the assembler retains the wire buffer in
// the page's BufferChain for exactly this reason). A payload is usually
// one contiguous view; literal-escape tags split it into several, because
// the escape's own STX byte doubles as the emitted byte — so even escaped
// output aliases the wire and the scanner never copies or allocates
// per-byte.
struct TemplateSegment {
  enum class Kind {
    kLiteral,  // Page text to emit verbatim (already unescaped).
    kSet,      // Store the payload under `key`, then emit it.
    kGet,      // Emit the cached fragment stored under `key`.
  };

  Kind kind;
  bem::DpcKey key = bem::kInvalidDpcKey;
  std::vector<std::string_view> pieces;  // Empty for kGet.

  // Total payload bytes across pieces.
  size_t text_size() const {
    size_t total = 0;
    for (std::string_view piece : pieces) total += piece.size();
    return total;
  }

  // Materializes the payload (tests and fragment-store inserts; the
  // zero-copy assembly path splices `pieces` directly).
  std::string Text() const {
    std::string out;
    out.reserve(text_size());
    for (std::string_view piece : pieces) out.append(piece);
    return out;
  }
};

// Longest admissible hex run in an 'S'/'G' tag. DpcKey is 32-bit and
// bem::TagCodec emits minimal hex, so eight digits suffice; the cap also
// bounds the streaming scanner's partial-tag stash against hostile
// zero-padded runs. Shared by ParseTemplate and StreamingScanner so both
// accept exactly the same templates.
inline constexpr size_t kMaxKeyHexDigits = 8;

// Parses a BEM-encoded response template (see bem::TagCodec for the wire
// grammar) into segments viewing `wire`. Fails with Corruption on
// malformed input: truncated tags, unknown markers, bad hex keys (empty
// runs, runs over kMaxKeyHexDigits, or the reserved bem::kInvalidDpcKey,
// which doubles as the "no key" sentinel downstream), SET without
// matching end, nested SET, or GET inside SET.
Result<std::vector<TemplateSegment>> ParseTemplate(
    std::string_view wire, ScanStrategy strategy = ScanStrategy::kMemchr);

// One parsed piece of a streamed segment: a view plus the buffer owning
// its bytes. Unlike the buffered TemplateSegment, whose views all alias
// one wire buffer the caller retains, a streamed segment may span chunk
// boundaries — so every piece carries its own owner and stays valid after
// the scanner has moved on to later chunks.
struct StreamPiece {
  common::Buffer owner;
  std::string_view view;
};

// One segment emitted by StreamingScanner. Same meaning as
// TemplateSegment; pieces own their backing chunks (see StreamPiece).
struct StreamSegment {
  TemplateSegment::Kind kind = TemplateSegment::Kind::kLiteral;
  bem::DpcKey key = bem::kInvalidDpcKey;
  std::vector<StreamPiece> pieces;  // Empty for kGet.

  size_t text_size() const {
    size_t total = 0;
    for (const StreamPiece& piece : pieces) total += piece.view.size();
    return total;
  }

  std::string Text() const {
    std::string out;
    out.reserve(text_size());
    for (const StreamPiece& piece : pieces) out.append(piece.view);
    return out;
  }
};

// Resumable counterpart of ParseTemplate for templates arriving in
// chunks. Feed() emits every segment the moment it resolves: literal text
// flushes at each chunk boundary (where a buffered parse would merge
// adjacent runs into one segment — fold adjacent literals when comparing
// the two), a GET when its ETX arrives, a SET when its body closes. State
// carried across boundaries is bounded: a partial tag is at most
// 2 + kMaxKeyHexDigits + 1 bytes, and an open SET body accumulates only
// until its SET-end — so holdback is chunk + open-SET sized, never page
// sized. Accepts exactly the template language ParseTemplate accepts
// (error messages may differ for truncation, accept/reject never does).
//
// After an error the scanner is dead: every later Feed()/Finish() returns
// the same failure. Call Finish() exactly once, after the last chunk.
class StreamingScanner {
 public:
  explicit StreamingScanner(ScanStrategy strategy = ScanStrategy::kMemchr)
      : strategy_(strategy) {}

  // Scans `bytes`, which must alias `*owner`, appending every segment
  // that resolves within this chunk to `out`.
  Status Feed(common::Buffer owner, std::string_view bytes,
              std::vector<StreamSegment>& out);

  // Whole-buffer convenience; `chunk` may be null (empty feed).
  Status Feed(common::Buffer chunk, std::vector<StreamSegment>& out);

  // Marks end of template: flushes the trailing literal, rejects a
  // dangling partial tag or an unterminated SET block.
  Status Finish(std::vector<StreamSegment>& out);

  // Bytes held back across chunk boundaries (open SET body + partial
  // tag): the streaming pipeline's per-connection buffering bound.
  size_t buffered_bytes() const { return pieces_bytes_ + tag_.size(); }

  bool failed() const { return state_ == State::kFailed; }

 private:
  enum class State { kText, kTag, kDone, kFailed };

  Status Fail(Status status);
  void AddPiece(const common::Buffer& owner, std::string_view piece);
  void FlushLiteral(std::vector<StreamSegment>& out);
  // Advances the partial tag in `tag_` by the byte just appended,
  // resolving or rejecting the tag once enough bytes are present.
  Status StepTag(std::vector<StreamSegment>& out);

  ScanStrategy strategy_;
  State state_ = State::kText;
  std::string tag_;  // Partial tag incl. leading STX; bounded.
  bool inside_set_ = false;
  bem::DpcKey set_key_ = bem::kInvalidDpcKey;
  std::vector<StreamPiece> pieces_;  // Literal run or open SET body.
  size_t pieces_bytes_ = 0;
  Status failure_ = Status::Ok();
};

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_TAG_SCANNER_H_
