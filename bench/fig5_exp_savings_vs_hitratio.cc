// Figure 5: savings in bytes served (%) vs hit ratio — analytical plus
// experimental. Paper shape: experimental tracks analytical from slightly
// below, the gap growing with hit ratio (protocol headers weigh more on
// small cached responses).

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "sim/experiment.h"

int main() {
  using dynaprox::analytical::ModelParams;
  using dynaprox::sim::ExperimentConfig;
  using dynaprox::sim::ExperimentResult;
  using dynaprox::sim::RunBytesExperiment;

  ModelParams params = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Figure 5",
      "Savings in Bytes Served (%) vs Hit Ratio (analytical + experimental)",
      params);

  std::printf("%10s %12s %14s %14s %12s\n", "hitRatio", "analytical",
              "exp(payload)", "exp(wire)", "realized_h");
  for (double h : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0}) {
    ExperimentConfig config;
    config.params = params;
    config.params.hit_ratio = h;
    config.warmup_requests = 1000;
    config.measured_requests = 8000;
    dynaprox::Result<ExperimentResult> result = RunBytesExperiment(config);
    if (!result.ok()) {
      std::printf("point %.2f failed: %s\n", h,
                  result.status().ToString().c_str());
      return 1;
    }
    std::printf("%10.2f %12.3f %14.3f %14.3f %12.3f\n", h,
                result->analytic_savings_percent,
                result->measured_payload_savings_percent,
                result->measured_wire_savings_percent,
                result->realized_hit_ratio);
  }
  dynaprox::benchutil::PrintFooter();
  return 0;
}
