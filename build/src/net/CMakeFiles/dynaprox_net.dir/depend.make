# Empty dependencies file for dynaprox_net.
# This may be replaced when dependencies are built.
