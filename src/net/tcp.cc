#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "http/parser.h"
#include "net/idempotency.h"
#include "net/socket_util.h"

namespace dynaprox::net {
namespace {

Status Errno(const char* what) { return ErrnoStatus(what); }

}  // namespace

TcpServer::TcpServer(Handler handler, uint16_t port)
    : handler_(std::move(handler)), port_(port) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, 64) < 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  accept_thread_ = std::thread(&TcpServer::AcceptLoop, this);
  return Status::Ok();
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listening socket down to unblock accept(). The fd variable
  // itself is only reset after the accept thread joins — AcceptLoop still
  // reads it until then.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
    // Unblock connection threads parked in recv() on live keep-alive
    // connections; they observe EOF and exit.
    for (int fd : active_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  active_fds_.clear();
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener closed by Stop().
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    active_fds_.push_back(fd);
    connection_threads_.emplace_back(&TcpServer::ServeConnection, this, fd);
  }
}

void TcpServer::ServeConnection(int fd) {
  http::RequestReader reader;
  char buf[16 * 1024];
  bool keep_alive = true;
  while (keep_alive && running_.load()) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // Peer closed or error.
    }
    reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (auto next = reader.Next()) {
      if (!next->ok()) {
        http::Response bad = http::Response::MakeError(
            400, "Bad Request", next->status().ToString());
        (void)SendAll(fd, bad.Serialize());
        keep_alive = false;
        break;
      }
      const http::Request& request = next->value();
      http::Response response = handler_(request);
      if (auto connection = request.headers.Get("Connection");
          connection.has_value() && EqualsIgnoreCase(*connection, "close")) {
        keep_alive = false;
        response.headers.Set("Connection", "close");
      }
      if (!SendAll(fd, response.Serialize()).ok()) {
        keep_alive = false;
        break;
      }
    }
  }
  {
    // Deregister before closing so Stop() never shuts down a reused fd.
    std::lock_guard<std::mutex> lock(mu_);
    active_fds_.erase(
        std::remove(active_fds_.begin(), active_fds_.end(), fd),
        active_fds_.end());
  }
  ::close(fd);
}

TcpClientTransport::TcpClientTransport(std::string host, uint16_t port,
                                       TcpClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

TcpClientTransport::~TcpClientTransport() { CloseConnection(); }

Status TcpClientTransport::EnsureConnected() {
  if (fd_ >= 0) return Status::Ok();
  Result<int> fd = DialTcp(host_, port_, options_.io_timeout_micros);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::Ok();
}

void TcpClientTransport::CloseConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<http::Response> TcpClientTransport::RoundTrip(
    const http::Request& request) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string wire = request.Serialize();
  for (int attempt = 0; attempt < 2; ++attempt) {
    DYNAPROX_RETURN_IF_ERROR(EnsureConnected());
    size_t sent = 0;
    Status write_status = SendAll(fd_, wire, &sent);
    if (!write_status.ok()) {
      // Likely a stale keep-alive connection — but some request bytes may
      // have reached the origin, so only re-send when that cannot
      // duplicate a side effect.
      CloseConnection();
      if (attempt == 0 &&
          SafeToRetry(request, sent, options_.non_idempotent_headers)) {
        continue;
      }
      return write_status;
    }
    http::ResponseReader reader;
    char buf[16 * 1024];
    for (;;) {
      if (auto next = reader.Next()) {
        if (!next->ok()) {
          CloseConnection();
          return next->status();
        }
        return std::move(*next);
      }
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // SO_RCVTIMEO elapsed: fail fast, don't retry into another stall.
        CloseConnection();
        return Status::IoError("receive timeout");
      }
      if (n <= 0) {
        CloseConnection();
        if (n == 0 && reader.buffered_bytes() == 0 && attempt == 0 &&
            SafeToRetry(request, wire.size(),
                        options_.non_idempotent_headers)) {
          break;  // Keep-alive closed before the response; safe to resend.
        }
        return Status::IoError("connection closed mid-response");
      }
      reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    }
  }
  return Status::IoError("could not complete round trip");
}

}  // namespace dynaprox::net
