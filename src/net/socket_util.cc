#include "net/socket_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dynaprox::net {

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SendAll(int fd, std::string_view data, size_t* sent_out) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (sent_out != nullptr) *sent_out = sent;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  if (sent_out != nullptr) *sent_out = sent;
  return Status::Ok();
}

Status SendChain(int fd, const common::BufferChain& chain,
                 size_t* sent_out) {
  constexpr size_t kMaxIovecs = 64;  // Under any sane IOV_MAX.
  struct iovec iov[kMaxIovecs];
  size_t sent = 0;
  while (sent < chain.size()) {
    size_t n_iov = chain.FillIovecs(sent, iov, kMaxIovecs);
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = n_iov;
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (sent_out != nullptr) *sent_out = sent;
      return ErrnoStatus("sendmsg");
    }
    sent += static_cast<size_t>(n);
  }
  if (sent_out != nullptr) *sent_out = sent;
  return Status::Ok();
}

Result<int> DialTcp(const std::string& host, uint16_t port,
                    MicroTime io_timeout_micros) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (io_timeout_micros > 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_micros / kMicrosPerSecond;
    tv.tv_usec = io_timeout_micros % kMicrosPerSecond;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = ErrnoStatus("connect");
    ::close(fd);
    return status;
  }
  return fd;
}

}  // namespace dynaprox::net
