file(REMOVE_RECURSE
  "libdynaprox_net.a"
)
