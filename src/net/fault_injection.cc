#include "net/fault_injection.h"

#include <chrono>
#include <thread>

#include "bem/protocol.h"

namespace dynaprox::net {
namespace {

void SleepMicros(MicroTime micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace

FaultInjectingTransport::FaultInjectingTransport(
    Transport* inner, FaultInjectionOptions options)
    : inner_(inner), options_(options), rng_(options.seed) {}

FaultInjectingTransport::Fault FaultInjectingTransport::Draw() {
  // One uniform draw per round trip keeps the decision stream replayable
  // regardless of which probabilities are enabled.
  double roll = rng_.NextDouble();
  double edge = options_.error_probability;
  if (roll < edge) return Fault::kError;
  edge += options_.black_hole_probability;
  if (roll < edge) return Fault::kBlackHole;
  edge += options_.garbage_probability;
  if (roll < edge) return Fault::kGarbage;
  edge += options_.delay_probability;
  if (roll < edge) return Fault::kDelay;
  return Fault::kNone;
}

namespace {

// A template response no tag codec accepts: exercises the proxy's
// template-error path the way a corrupted origin stream would.
http::Response MakeGarbageResponse() {
  http::Response garbage =
      http::Response::MakeOk(std::string("\x02\x7f garbage \x03"));
  garbage.headers.Set(bem::kTemplateHeader, "1");
  return garbage;
}

}  // namespace

FaultInjectingTransport::Fault FaultInjectingTransport::DrawAndCount() {
  std::lock_guard<std::mutex> lock(mu_);
  Fault fault = Draw();
  switch (fault) {
    case Fault::kNone:
      ++stats_.passed;
      break;
    case Fault::kError:
      ++stats_.injected_errors;
      break;
    case Fault::kBlackHole:
      ++stats_.injected_black_holes;
      break;
    case Fault::kGarbage:
      ++stats_.injected_garbage;
      break;
    case Fault::kDelay:
      ++stats_.passed;
      ++stats_.injected_delays;
      break;
  }
  return fault;
}

Result<http::Response> FaultInjectingTransport::RoundTrip(
    const http::Request& request) {
  if (down()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.down_failures;
    }
    SleepMicros(options_.down_failure_delay_micros);
    return Status::IoError("fault injection: origin down");
  }
  switch (DrawAndCount()) {
    case Fault::kError:
      return Status::IoError("fault injection: connection reset");
    case Fault::kBlackHole:
      SleepMicros(options_.black_hole_micros);
      return Status::IoError("fault injection: timeout");
    case Fault::kGarbage:
      return MakeGarbageResponse();
    case Fault::kDelay:
      SleepMicros(options_.delay_micros);
      return inner_->RoundTrip(request);
    case Fault::kNone:
      return inner_->RoundTrip(request);
  }
  return inner_->RoundTrip(request);
}

Result<StreamingResponse> FaultInjectingTransport::RoundTripStreaming(
    const http::Request& request) {
  if (down()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.down_failures;
    }
    SleepMicros(options_.down_failure_delay_micros);
    return Status::IoError("fault injection: origin down");
  }
  switch (DrawAndCount()) {
    case Fault::kError:
      return Status::IoError("fault injection: connection reset");
    case Fault::kBlackHole:
      SleepMicros(options_.black_hole_micros);
      return Status::IoError("fault injection: timeout");
    case Fault::kGarbage: {
      http::Response garbage = MakeGarbageResponse();
      common::BufferChain body;
      body.Append(common::MakeBuffer(std::move(garbage.body)));
      StreamingResponse streaming;
      streaming.head = std::move(garbage);
      streaming.head.body.clear();
      streaming.body =
          std::make_unique<BufferedBodyStream>(std::move(body));
      return streaming;
    }
    case Fault::kDelay:
      SleepMicros(options_.delay_micros);
      return inner_->RoundTripStreaming(request);
    case Fault::kNone:
      return inner_->RoundTripStreaming(request);
  }
  return inner_->RoundTripStreaming(request);
}

FaultInjectionStats FaultInjectingTransport::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dynaprox::net
