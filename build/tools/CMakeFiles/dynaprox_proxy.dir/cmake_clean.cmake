file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_proxy.dir/dynaprox_proxy.cc.o"
  "CMakeFiles/dynaprox_proxy.dir/dynaprox_proxy.cc.o.d"
  "dynaprox_proxy"
  "dynaprox_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
