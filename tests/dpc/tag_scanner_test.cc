#include "dpc/tag_scanner.h"

#include <gtest/gtest.h>

#include "bem/tag_codec.h"

namespace dynaprox::dpc {
namespace {

using Kind = TemplateSegment::Kind;

// Parameterized over both scan strategies: behaviour must be identical.
class TagScannerTest : public ::testing::TestWithParam<ScanStrategy> {
 protected:
  Result<std::vector<TemplateSegment>> Parse(std::string_view wire) {
    return ParseTemplate(wire, GetParam());
  }
};

TEST_P(TagScannerTest, PlainTextIsOneLiteral) {
  auto segments = Parse("<html>plain</html>");
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].kind, Kind::kLiteral);
  EXPECT_EQ((*segments)[0].Text(), "<html>plain</html>");
}

TEST_P(TagScannerTest, EmptyTemplate) {
  auto segments = Parse("");
  ASSERT_TRUE(segments.ok());
  EXPECT_TRUE(segments->empty());
}

TEST_P(TagScannerTest, GetTag) {
  std::string wire = "before";
  bem::TagCodec::AppendGet(0x1F, wire);
  wire += "after";
  auto segments = Parse(wire);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  EXPECT_EQ((*segments)[0].Text(), "before");
  EXPECT_EQ((*segments)[1].kind, Kind::kGet);
  EXPECT_EQ((*segments)[1].key, 0x1Fu);
  EXPECT_EQ((*segments)[2].Text(), "after");
}

TEST_P(TagScannerTest, SetTagCarriesContent) {
  std::string wire;
  bem::TagCodec::AppendSet(7, "fragment body", wire);
  auto segments = Parse(wire);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  EXPECT_EQ((*segments)[0].kind, Kind::kSet);
  EXPECT_EQ((*segments)[0].key, 7u);
  EXPECT_EQ((*segments)[0].Text(), "fragment body");
}

TEST_P(TagScannerTest, EscapedStxRoundTripsInLiteralAndSet) {
  std::string content_with_stx = std::string("a\x02" "b");
  std::string wire;
  bem::TagCodec::AppendLiteral(content_with_stx, wire);
  bem::TagCodec::AppendSet(1, content_with_stx, wire);
  auto segments = Parse(wire);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 2u);
  EXPECT_EQ((*segments)[0].Text(), content_with_stx);
  EXPECT_EQ((*segments)[1].Text(), content_with_stx);
}

TEST_P(TagScannerTest, MixedTemplateInOrder) {
  std::string wire = "head:";
  bem::TagCodec::AppendGet(1, wire);
  bem::TagCodec::AppendLiteral("-mid-", wire);
  bem::TagCodec::AppendSet(2, "stored", wire);
  bem::TagCodec::AppendGet(3, wire);
  auto segments = Parse(wire);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 5u);
  EXPECT_EQ((*segments)[0].kind, Kind::kLiteral);
  EXPECT_EQ((*segments)[1].kind, Kind::kGet);
  EXPECT_EQ((*segments)[2].kind, Kind::kLiteral);
  EXPECT_EQ((*segments)[3].kind, Kind::kSet);
  EXPECT_EQ((*segments)[4].kind, Kind::kGet);
}

TEST_P(TagScannerTest, AdjacentSetBlocks) {
  std::string wire;
  bem::TagCodec::AppendSet(1, "one", wire);
  bem::TagCodec::AppendSet(2, "two", wire);
  auto segments = Parse(wire);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 2u);
  EXPECT_EQ((*segments)[0].Text(), "one");
  EXPECT_EQ((*segments)[1].Text(), "two");
}

TEST_P(TagScannerTest, RejectsTruncatedTagAtEnd) {
  EXPECT_TRUE(Parse("\x02").status().IsCorruption());
  EXPECT_TRUE(Parse("abc\x02").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsUnknownMarker) {
  EXPECT_TRUE(Parse("\x02X\x03").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsMalformedLiteralEscape) {
  EXPECT_TRUE(Parse("\x02L").status().IsCorruption());
  EXPECT_TRUE(Parse("\x02Lx").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsBadHexKey) {
  EXPECT_TRUE(Parse("\x02Gzz\x03").status().IsCorruption());
  EXPECT_TRUE(Parse("\x02G\x03").status().IsCorruption());  // Empty key.
  // Key wider than 32 bits.
  EXPECT_TRUE(Parse("\x02G1ffffffff\x03").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsSentinelKey) {
  // "FFFFFFFF" is bem::kInvalidDpcKey — the "no key" sentinel downstream;
  // a tag carrying it is Corruption at parse, not a store-layer surprise.
  EXPECT_TRUE(Parse("\x02GFFFFFFFF\x03").status().IsCorruption());
  EXPECT_TRUE(Parse("\x02SFFFFFFFF\x03").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsHexRunOverMaxDigits) {
  // bem::TagCodec emits minimal hex; more than kMaxKeyHexDigits is
  // hostile even when zero-padding keeps the value small.
  EXPECT_TRUE(Parse("\x02G000000001\x03").status().IsCorruption());
  EXPECT_TRUE(Parse("\x02S000000001\x03").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsUnterminatedSet) {
  std::string wire = "\x02S1\x03 content with no end";
  EXPECT_TRUE(Parse(wire).status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsSetEndWithoutSet) {
  EXPECT_TRUE(Parse("\x02" "E\x03").status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsNestedSet) {
  std::string wire = "\x02S1\x03" "abc\x02S2\x03" "def\x02" "E\x03\x02"
                     "E\x03";
  EXPECT_TRUE(Parse(wire).status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsGetInsideSet) {
  std::string wire = "\x02S1\x03" "abc\x02G2\x03\x02" "E\x03";
  EXPECT_TRUE(Parse(wire).status().IsCorruption());
}

TEST_P(TagScannerTest, RejectsMissingEtxOnKeyTag) {
  EXPECT_TRUE(Parse("\x02G1f").status().IsCorruption());
}

INSTANTIATE_TEST_SUITE_P(Strategies, TagScannerTest,
                         ::testing::Values(ScanStrategy::kMemchr,
                                           ScanStrategy::kByteLoop));

}  // namespace
}  // namespace dynaprox::dpc
