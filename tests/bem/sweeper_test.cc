#include "bem/sweeper.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace dynaprox::bem {
namespace {

std::unique_ptr<BackEndMonitor> MakeMonitor(const Clock* clock) {
  BemOptions options;
  options.capacity = 16;
  options.clock = clock;
  return *BackEndMonitor::Create(options);
}

TEST(SweeperTest, SweepNowInvalidatesExpired) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  ASSERT_TRUE(monitor->InsertFragment(FragmentId("a"), 5).ok());
  ASSERT_TRUE(monitor->InsertFragment(FragmentId("b"), 0).ok());
  PeriodicSweeper sweeper(monitor.get(), 1000);
  clock.AdvanceMicros(10);
  EXPECT_EQ(sweeper.SweepNow(), 1u);
  EXPECT_EQ(monitor->directory().valid_count(), 1u);
}

TEST(SweeperTest, BackgroundThreadSweepsPeriodically) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  ASSERT_TRUE(monitor->InsertFragment(FragmentId("a"), 5).ok());
  clock.AdvanceMicros(10);  // Already expired; sweeper just needs to run.

  PeriodicSweeper sweeper(monitor.get(), 2'000);  // 2ms wall-clock period.
  sweeper.Start();
  for (int i = 0; i < 200 && sweeper.total_invalidated() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sweeper.Stop();
  EXPECT_GE(sweeper.sweeps_run(), 1u);
  EXPECT_EQ(sweeper.total_invalidated(), 1u);
  EXPECT_FALSE(sweeper.running());
}

TEST(SweeperTest, StartStopIdempotent) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  PeriodicSweeper sweeper(monitor.get(), 1'000);
  sweeper.Start();
  sweeper.Start();
  EXPECT_TRUE(sweeper.running());
  sweeper.Stop();
  sweeper.Stop();
  EXPECT_FALSE(sweeper.running());
  // Restartable.
  sweeper.Start();
  sweeper.Stop();
}

TEST(SweeperTest, DestructorStops) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  {
    PeriodicSweeper sweeper(monitor.get(), 1'000);
    sweeper.Start();
  }  // Must not hang or crash.
}

}  // namespace
}  // namespace dynaprox::bem
