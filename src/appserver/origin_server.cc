#include "appserver/origin_server.h"

#include <vector>

#include "appserver/push_engine.h"
#include "bem/protocol.h"
#include "common/fault_point.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "net/server_limits.h"

namespace dynaprox::appserver {

OriginServer::OriginServer(const ScriptRegistry* registry,
                           storage::ContentRepository* repository,
                           bem::BackEndMonitor* monitor,
                           OriginOptions options)
    : registry_(registry),
      repository_(repository),
      monitor_(monitor),
      options_(options),
      clock_(options.clock != nullptr ? options.clock
                                      : SystemClock::Default()) {
  if (monitor_ != nullptr && options_.block_workers > 0) {
    common::ThreadPoolOptions pool_options;
    pool_options.num_threads = options_.block_workers;
    pool_options.queue_capacity = options_.block_queue_capacity;
    block_pool_ = std::make_unique<common::ThreadPool>(pool_options);
  }
  RegisterMetrics();
}

void OriginServer::RegisterMetrics() {
  instruments_.requests = registry_mx_.GetCounter(
      "dynaprox_origin_requests_total",
      "Requests handled (status/metrics endpoint hits excluded).");
  instruments_.not_found = registry_mx_.GetCounter(
      "dynaprox_origin_not_found_total",
      "Requests whose path matched no registered script.");
  instruments_.script_errors = registry_mx_.GetCounter(
      "dynaprox_origin_script_errors_total",
      "Script executions that returned an error (500 sent).");
  instruments_.refresh_invalidations = registry_mx_.GetCounter(
      "dynaprox_origin_refresh_invalidations_total",
      "dpcKeys invalidated via X-DPC-Refresh (DPC cold-cache recovery).");
  instruments_.fragment_hits = registry_mx_.GetCounter(
      "dynaprox_origin_fragment_hits_total",
      "Cacheable blocks answered from the directory (GET tag emitted).");
  instruments_.fragment_misses = registry_mx_.GetCounter(
      "dynaprox_origin_fragment_misses_total",
      "Cacheable blocks that executed their generator (SET tag emitted).");
  instruments_.fragment_uncacheable = registry_mx_.GetCounter(
      "dynaprox_origin_fragment_uncacheable_total",
      "Cacheable blocks run without BEM involvement.");
  instruments_.parallel_blocks = registry_mx_.GetCounter(
      "dynaprox_origin_parallel_blocks_total",
      "Miss generators dispatched to the block-execution pool.");
  instruments_.body_bytes_sent = registry_mx_.GetCounter(
      "dynaprox_origin_body_bytes_sent_total",
      "Response body bytes sent (templates or full pages).");

  instruments_.request_duration = registry_mx_.GetHistogram(
      "dynaprox_origin_request_duration_seconds",
      "Total origin handling time per request.");
  script_metrics_.clock = clock_;
  script_metrics_.directory_lookup = registry_mx_.GetHistogram(
      "dynaprox_bem_directory_lookup_duration_seconds",
      "BEM directory LookupFragment time per cacheable block.");
  script_metrics_.block_execution = registry_mx_.GetHistogram(
      "dynaprox_bem_block_execution_duration_seconds",
      "Generator run time per executed cacheable block.");
  script_metrics_.tag_emission = registry_mx_.GetHistogram(
      "dynaprox_bem_tag_emission_duration_seconds",
      "SET/GET tag encode time per tag written into the template.");
  chaos::FaultRegistry::Instance().RegisterMetrics(&registry_mx_);

  if (monitor_ != nullptr) {
    const bem::BackEndMonitor* monitor = monitor_;
    registry_mx_.RegisterCallbackGauge(
        "dynaprox_bem_directory_capacity", "dpcKey slots configured.",
        [monitor] { return static_cast<double>(monitor->capacity()); });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_directory_hits_total", "Directory lookup hits.",
        [monitor] { return monitor->stats().hits; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_directory_misses_total", "Directory lookup misses.",
        [monitor] { return monitor->stats().misses; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_directory_inserts_total", "Fragments registered.",
        [monitor] { return monitor->stats().inserts; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_directory_ttl_invalidations_total",
        "Entries invalidated by TTL expiry.",
        [monitor] { return monitor->stats().ttl_invalidations; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_directory_explicit_invalidations_total",
        "Entries invalidated by trigger/refresh/API.",
        [monitor] { return monitor->stats().explicit_invalidations; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_directory_evictions_total",
        "Valid entries evicted for key reuse.",
        [monitor] { return monitor->stats().evictions; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_stripe_contentions_total",
        "Contended directory stripe-mutex acquisitions.",
        [monitor] { return monitor->concurrency_stats().stripe_contentions; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_policy_contentions_total",
        "Contended replacement-policy mutex acquisitions.",
        [monitor] { return monitor->concurrency_stats().policy_contentions; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_free_list_contentions_total",
        "Contended free-list mutex acquisitions.",
        [monitor] {
          return monitor->concurrency_stats().free_list_contentions;
        });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_registry_contentions_total",
        "Contended dependency-registry mutex acquisitions.",
        [monitor] {
          return monitor->concurrency_stats().registry_contentions;
        });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_insert_races_total",
        "Directory insert rounds retried under concurrency.",
        [monitor] { return monitor->concurrency_stats().insert_races; });
  }

  if (block_pool_ != nullptr) {
    const common::ThreadPool* pool = block_pool_.get();
    registry_mx_.RegisterCallbackGauge(
        "dynaprox_origin_block_pool_threads",
        "Block-execution pool worker threads.",
        [pool] { return static_cast<double>(pool->stats().threads); });
    registry_mx_.RegisterCallbackGauge(
        "dynaprox_origin_block_pool_queue_depth",
        "Tasks waiting in the block-execution pool queue.",
        [pool] { return static_cast<double>(pool->stats().queue_depth); });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_origin_block_pool_submitted_total",
        "Tasks submitted to the block-execution pool.",
        [pool] { return pool->stats().submitted; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_origin_block_pool_executed_total",
        "Tasks completed by block-execution pool workers.",
        [pool] { return pool->stats().executed; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_origin_block_pool_caller_runs_total",
        "Tasks run inline on the submitter (queue full / shutdown).",
        [pool] { return pool->stats().caller_runs; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_origin_block_pool_queue_contentions_total",
        "Contended block-pool queue-mutex acquisitions.",
        [pool] { return pool->stats().queue_contentions; });
  }

  if (options_.push_engine != nullptr) {
    const PushEngine* engine = options_.push_engine;
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_enqueued_total",
        "Invalidations admitted to the push queue (score >= min_score).",
        [engine] { return engine->scheduler().stats().enqueued; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_skipped_cold_total",
        "Invalidations below the push admission score (stay pull-on-miss).",
        [engine] { return engine->scheduler().stats().skipped_cold; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_dropped_total",
        "Admitted fragments dropped because the push queue was full.",
        [engine] { return engine->scheduler().stats().dropped; });
    registry_mx_.RegisterCallbackGauge(
        "dynaprox_bem_push_queue_depth",
        "Fragments waiting for a push re-render.",
        [engine] {
          return static_cast<double>(engine->scheduler().queue_depth());
        });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_sent_total",
        "Fragment bodies delivered over the control channel.",
        [engine] { return engine->stats().pushed; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_failures_total",
        "Control-channel deliveries that failed.",
        [engine] { return engine->stats().push_failures; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_no_producer_total",
        "Admitted fragments with no known producing request.",
        [engine] { return engine->stats().no_producer; });
    registry_mx_.RegisterCallbackCounter(
        "dynaprox_bem_push_missing_capture_total",
        "Push re-renders that hit the directory (client refresh won).",
        [engine] { return engine->stats().missing_capture; });
    registry_mx_.RegisterCallbackGauge(
        "dynaprox_bem_push_staleness_p50_seconds",
        "Median invalidate-to-reinsert gap, all fragments (push or pull).",
        [engine] { return engine->staleness().snapshot().Percentile(0.5); });
    registry_mx_.RegisterCallbackGauge(
        "dynaprox_bem_push_staleness_p99_seconds",
        "p99 invalidate-to-reinsert gap, all fragments (push or pull).",
        [engine] { return engine->staleness().snapshot().Percentile(0.99); });
  }

  if (options_.ingress != nullptr) {
    net::RegisterIngressMetrics(registry_mx_, "dynaprox_origin_",
                                options_.ingress);
  }
}

net::Handler OriginServer::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

void OriginServer::HandleCapture(const http::Request& request,
                                 std::vector<CapturedFragment>* captured) {
  const char* outcome = "push_render";
  HandleDispatch(request, &outcome, captured);
}

std::vector<std::string> OriginServer::HandleRefreshHeader(
    const http::Request& request) {
  std::vector<std::string> refreshed;
  if (monitor_ == nullptr) return refreshed;
  auto refresh = request.headers.Get(bem::kRefreshHeader);
  if (!refresh.has_value()) return refreshed;
  std::vector<bem::DpcKey> keys;
  for (std::string_view key_hex : StrSplit(*refresh, ',')) {
    Result<uint64_t> key = ParseHex(StripWhitespace(key_hex));
    if (!key.ok() || *key > bem::kInvalidDpcKey) {
      DYNAPROX_LOG(kWarning, "origin")
          << "bad refresh key '" << std::string(key_hex) << "'";
      continue;
    }
    keys.push_back(static_cast<bem::DpcKey>(*key));
  }
  // Pin in reverse so the free-list head ends up in listed (page) order:
  // the re-render's first cold block reclaims the first listed key, and so
  // on — each refreshed fragment keeps the dpcKey the DPC asked about.
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    // NotFound is fine: the key may already have been invalidated (or even
    // reassigned) between the DPC's miss and this request.
    Result<std::string> owner = monitor_->RefreshKey(*it);
    if (owner.ok()) {
      instruments_.refresh_invalidations->Increment();
      refreshed.push_back(std::move(*owner));
    }
  }
  return refreshed;
}

OriginStats OriginServer::stats() const {
  OriginStats snapshot;
  snapshot.requests = instruments_.requests->value();
  snapshot.not_found = instruments_.not_found->value();
  snapshot.script_errors = instruments_.script_errors->value();
  snapshot.refresh_invalidations =
      instruments_.refresh_invalidations->value();
  snapshot.fragment_hits = instruments_.fragment_hits->value();
  snapshot.fragment_misses = instruments_.fragment_misses->value();
  snapshot.fragment_uncacheable =
      instruments_.fragment_uncacheable->value();
  snapshot.parallel_blocks = instruments_.parallel_blocks->value();
  snapshot.body_bytes_sent = instruments_.body_bytes_sent->value();
  return snapshot;
}

void OriginServer::ApplyHeaderPadding(http::Response& response) const {
  if (options_.pad_headers_to_bytes == 0) return;
  // Head bytes as the response will serialize (incl. the implicit
  // Content-Length field).
  size_t head_size = response.SerializedSize() - response.body.size();
  // "X-Pad: " + value + CRLF costs 9 bytes of framing.
  constexpr size_t kPadFraming = 9;
  if (head_size + kPadFraming < options_.pad_headers_to_bytes) {
    size_t pad = options_.pad_headers_to_bytes - head_size - kPadFraming;
    response.headers.Add("X-Pad", std::string(pad, 'x'));
  }
}

http::Response OriginServer::RenderStatus() const {
  OriginStats snapshot = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("component").String("origin");
  json.Key("caching_enabled").Bool(monitor_ != nullptr);
  json.Key("requests").Uint(snapshot.requests);
  json.Key("not_found").Uint(snapshot.not_found);
  json.Key("script_errors").Uint(snapshot.script_errors);
  json.Key("refresh_invalidations").Uint(snapshot.refresh_invalidations);
  json.Key("body_bytes_sent").Uint(snapshot.body_bytes_sent);
  json.Key("fragments").BeginObject();
  json.Key("hits").Uint(snapshot.fragment_hits);
  json.Key("misses").Uint(snapshot.fragment_misses);
  json.Key("uncacheable").Uint(snapshot.fragment_uncacheable);
  json.Key("parallel_blocks").Uint(snapshot.parallel_blocks);
  json.EndObject();
  if (block_pool_ != nullptr) {
    common::ThreadPoolStats pool = block_pool_->stats();
    json.Key("block_pool").BeginObject();
    json.Key("threads").Uint(static_cast<uint64_t>(pool.threads));
    json.Key("submitted").Uint(pool.submitted);
    json.Key("executed").Uint(pool.executed);
    json.Key("caller_runs").Uint(pool.caller_runs);
    json.Key("queue_depth").Uint(pool.queue_depth);
    json.Key("peak_queue_depth").Uint(pool.peak_queue_depth);
    json.Key("queue_contentions").Uint(pool.queue_contentions);
    json.EndObject();
  }
  if (monitor_ != nullptr) {
    bem::DirectoryStats directory = monitor_->stats();
    json.Key("directory").BeginObject();
    json.Key("capacity").Uint(monitor_->capacity());
    json.Key("hits").Uint(directory.hits);
    json.Key("misses").Uint(directory.misses);
    json.Key("hit_ratio").Double(directory.HitRatio());
    json.Key("inserts").Uint(directory.inserts);
    json.Key("ttl_invalidations").Uint(directory.ttl_invalidations);
    json.Key("explicit_invalidations")
        .Uint(directory.explicit_invalidations);
    json.Key("evictions").Uint(directory.evictions);
    bem::BackEndMonitor::ConcurrencyStats concurrency =
        monitor_->concurrency_stats();
    json.Key("concurrency").BeginObject();
    json.Key("stripe_contentions").Uint(concurrency.stripe_contentions);
    json.Key("policy_contentions").Uint(concurrency.policy_contentions);
    json.Key("free_list_contentions")
        .Uint(concurrency.free_list_contentions);
    json.Key("registry_contentions").Uint(concurrency.registry_contentions);
    json.Key("insert_races").Uint(concurrency.insert_races);
    json.EndObject();
    json.Key("sample_entries").BeginArray();
    for (const auto& entry : monitor_->SnapshotEntries(20)) {
      json.BeginObject();
      json.Key("fragment").String(entry.fragment_id);
      json.Key("key").Uint(entry.key);
      json.Key("valid").Bool(entry.is_valid);
      json.Key("age_s").Double(static_cast<double>(entry.age_micros) /
                               kMicrosPerSecond);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  if (options_.push_engine != nullptr) {
    const PushEngine* engine = options_.push_engine;
    bem::PushSchedulerStats sched = engine->scheduler().stats();
    PushEngineStats push = engine->stats();
    metrics::LatencyHistogram::Snapshot staleness =
        engine->staleness().snapshot();
    json.Key("push").BeginObject();
    json.Key("enqueued").Uint(sched.enqueued);
    json.Key("skipped_cold").Uint(sched.skipped_cold);
    json.Key("dropped").Uint(sched.dropped);
    json.Key("queue_depth")
        .Uint(static_cast<uint64_t>(engine->scheduler().queue_depth()));
    json.Key("sent").Uint(push.pushed);
    json.Key("failures").Uint(push.push_failures);
    json.Key("no_producer").Uint(push.no_producer);
    json.Key("missing_capture").Uint(push.missing_capture);
    json.Key("staleness_p50_s").Double(staleness.Percentile(0.5));
    json.Key("staleness_p99_s").Double(staleness.Percentile(0.99));
    json.EndObject();
  }
  if (options_.ingress != nullptr) {
    net::WriteIngressStatusBlock(json, *options_.ingress);
  }
  json.EndObject();
  return http::Response::MakeOk(json.TakeString(), "application/json");
}

http::Response OriginServer::Handle(const http::Request& request) {
  if (options_.enable_status && request.Path() == options_.status_path) {
    return RenderStatus();
  }
  if (options_.enable_metrics && request.Path() == options_.metrics_path) {
    return http::Response::MakeOk(registry_mx_.RenderPrometheus(),
                                  "text/plain; version=0.0.4");
  }
  instruments_.requests->Increment();

  MicroTime start = clock_->NowMicros();
  const char* outcome = "error";
  http::Response response = HandleDispatch(request, &outcome);
  MicroTime elapsed = clock_->NowMicros() - start;
  instruments_.request_duration->Observe(static_cast<double>(elapsed) /
                                         kMicrosPerSecond);

  if (options_.access_log != nullptr) {
    AccessLogEntry entry;
    entry.timestamp_micros = start;
    entry.component = "origin";
    // The id the DPC minted (or the client supplied); empty string when
    // the origin is hit directly without one.
    if (auto id = request.headers.Get(bem::kRequestIdHeader);
        id.has_value()) {
      entry.request_id = std::string(*id);
    }
    entry.method = request.method;
    entry.target = request.target;
    entry.status = response.status_code;
    entry.bytes_sent = response.body.size();
    entry.duration_micros = elapsed;
    entry.outcome = outcome;
    options_.access_log->Log(entry);
  }
  return response;
}

http::Response OriginServer::HandleDispatch(
    const http::Request& request, const char** outcome,
    std::vector<CapturedFragment>* capture) {
  std::vector<std::string> refreshed = HandleRefreshHeader(request);

  // Normalized dispatch: "/a/../hello" and "/hello//" reach the same
  // script, and dot-segments can never escape the root.
  Result<const ScriptFn*> script =
      registry_->Find(http::NormalizePath(request.Path()));
  if (!script.ok()) {
    instruments_.not_found->Increment();
    *outcome = "not_found";
    return http::Response::MakeError(404, "Not Found",
                                     script.status().ToString());
  }

  ScriptContext context(request, repository_, monitor_, &script_metrics_,
                        block_pool_.get());
  if (capture != nullptr) context.SetFragmentCapture(capture);
  // A refreshed fragment must re-render even if a concurrent request
  // re-inserted it after the invalidation above — the DPC is retrying
  // precisely because it does not have this content (see ForceMiss).
  for (std::string& canonical : refreshed) {
    context.ForceMiss(std::move(canonical));
  }
  Status run_status = (**script)(context);
  if (run_status.ok()) {
    // Parallel mode: generator failures surface here, in page order.
    run_status = context.FinishBlocks();
  }
  if (!run_status.ok()) {
    DYNAPROX_LOG(kError, "origin")
        << "script failure on " << request.target << ": "
        << run_status.ToString();
    instruments_.script_errors->Increment();
    *outcome = "script_error";
    return http::Response::MakeError(500, "Internal Server Error",
                                     run_status.ToString());
  }

  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  ApplyHeaderPadding(response);

  if (options_.push_engine != nullptr) {
    // Remember which request produces each fragment, so the push engine
    // can re-render it when an invalidation is admitted for push.
    for (const auto& [canonical, key] : context.inserted()) {
      (void)key;
      options_.push_engine->RecordProducer(canonical, request.target);
    }
  }

  const RequestFragmentStats& frag = context.fragment_stats();
  instruments_.fragment_hits->Increment(frag.hits);
  instruments_.fragment_misses->Increment(frag.misses);
  instruments_.fragment_uncacheable->Increment(frag.uncacheable);
  instruments_.parallel_blocks->Increment(frag.parallel_blocks);
  instruments_.body_bytes_sent->Increment(response.body.size());
  *outcome = response.headers.Has(bem::kTemplateHeader) ? "template"
                                                        : "page";
  return response;
}

}  // namespace dynaprox::appserver
