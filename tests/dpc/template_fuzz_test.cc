// Property tests: randomized templates round-trip through the
// TagCodec -> TagScanner -> PageAssembler pipeline byte-exactly, including
// adversarial content containing the tag marker bytes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bem/tag_codec.h"
#include "common/rng.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"
#include "dpc/tag_scanner.h"

namespace dynaprox::dpc {
namespace {

// Random bytes biased toward the codec's special characters so escaping is
// exercised heavily.
std::string RandomContent(Rng& rng, size_t max_len) {
  size_t len = rng.NextBounded(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    switch (rng.NextBounded(6)) {
      case 0:
        out += bem::TagCodec::kStx;
        break;
      case 1:
        out += bem::TagCodec::kEtx;
        break;
      case 2:
        out += static_cast<char>('A' + rng.NextBounded(26));
        break;
      default:
        out += static_cast<char>(rng.NextBounded(256));
        break;
    }
  }
  return out;
}

struct FuzzCase {
  std::string wire;           // Encoded template.
  std::string expected_page;  // What assembly must produce.
  size_t sets = 0;
  size_t gets = 0;
};

// Builds a random template of literals, SETs (fresh keys), and GETs
// (previously SET keys only, so assembly is always complete).
FuzzCase BuildCase(Rng& rng, FragmentStore& store) {
  FuzzCase out;
  std::vector<std::pair<bem::DpcKey, std::string>> cached;  // key, content.
  bem::DpcKey next_key = 0;
  size_t pieces = 1 + rng.NextBounded(20);
  for (size_t i = 0; i < pieces; ++i) {
    switch (rng.NextBounded(3)) {
      case 0: {  // Literal.
        std::string text = RandomContent(rng, 64);
        bem::TagCodec::AppendLiteral(text, out.wire);
        out.expected_page += text;
        break;
      }
      case 1: {  // SET with a fresh key.
        std::string content = RandomContent(rng, 64);
        bem::DpcKey key = next_key++;
        bem::TagCodec::AppendSet(key, content, out.wire);
        out.expected_page += content;
        cached.emplace_back(key, content);
        ++out.sets;
        break;
      }
      case 2: {  // GET of something already cached (this template or
                 // a previous one in the same store).
        if (cached.empty()) {
          std::string text = RandomContent(rng, 16);
          bem::TagCodec::AppendLiteral(text, out.wire);
          out.expected_page += text;
          break;
        }
        const auto& [key, content] =
            cached[rng.NextBounded(cached.size())];
        bem::TagCodec::AppendGet(key, out.wire);
        out.expected_page += content;
        ++out.gets;
        break;
      }
    }
  }
  // GETs may reference keys SET earlier in the same template; the
  // assembler handles that (SET stores before later GETs read).
  (void)store;
  return out;
}

class TemplateFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TemplateFuzzTest, RoundTripsExactly) {
  Rng rng(GetParam());
  FragmentStore store(256);
  for (int round = 0; round < 50; ++round) {
    FuzzCase fuzz = BuildCase(rng, store);
    Result<AssembledPage> page = AssemblePage(fuzz.wire, store);
    ASSERT_TRUE(page.ok()) << "seed=" << GetParam() << " round=" << round
                           << ": " << page.status().ToString();
    EXPECT_TRUE(page->complete());
    EXPECT_EQ(page->Text(), fuzz.expected_page)
        << "seed=" << GetParam() << " round=" << round;
    EXPECT_EQ(page->set_count, fuzz.sets);
    EXPECT_EQ(page->get_count, fuzz.gets);
  }
}

TEST_P(TemplateFuzzTest, BothStrategiesAgree) {
  Rng rng(GetParam() ^ 0xABCDEF);
  FragmentStore store_a(256);
  FragmentStore store_b(256);
  for (int round = 0; round < 30; ++round) {
    FuzzCase fuzz = BuildCase(rng, store_a);
    Result<AssembledPage> a =
        AssemblePage(fuzz.wire, store_a, ScanStrategy::kMemchr);
    Result<AssembledPage> b =
        AssemblePage(fuzz.wire, store_b, ScanStrategy::kByteLoop);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->Text(), b->Text());
  }
}

TEST_P(TemplateFuzzTest, RandomGarbageNeverCrashesParser) {
  Rng rng(GetParam() + 99);
  FragmentStore store(16);
  for (int round = 0; round < 200; ++round) {
    std::string garbage = RandomContent(rng, 200);
    // Must either parse or fail cleanly — no crashes, no UB (covered by
    // running; content correctness asserted only on success).
    Result<AssembledPage> page = AssemblePage(garbage, store);
    if (page.ok()) {
      EXPECT_LE(page->body.size(), garbage.size());
    } else {
      EXPECT_TRUE(page.status().IsCorruption() ||
                  page.status().IsInvalidArgument())
          << page.status().ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dynaprox::dpc
