#ifndef DYNAPROX_SIM_EXPERIMENT_H_
#define DYNAPROX_SIM_EXPERIMENT_H_

#include <cstdint>
#include <string>

#include "analytical/model.h"
#include "common/result.h"
#include "net/byte_meter.h"
#include "sim/testbed.h"

namespace dynaprox::sim {

// Settings for one experimental point (one x-value of a figure).
struct ExperimentConfig {
  analytical::ModelParams params;
  uint64_t warmup_requests = 2'000;
  uint64_t measured_requests = 20'000;
  uint64_t seed = 42;
  net::ProtocolModel link_model;  // Protocol overhead the "Sniffer" sees.
  std::string replacement_policy = "lru";
};

// Analytical predictions and measured byte counts for one point.
struct ExperimentResult {
  // Section 5 closed forms.
  double analytic_bytes_nc = 0;
  double analytic_bytes_c = 0;
  double analytic_ratio = 0;
  double analytic_savings_percent = 0;

  // Measured on the origin link (application payload).
  double measured_payload_nc = 0;
  double measured_payload_c = 0;
  double measured_payload_ratio = 0;
  double measured_payload_savings_percent = 0;

  // Measured including protocol headers (what the paper's Sniffer saw).
  double measured_wire_nc = 0;
  double measured_wire_c = 0;
  double measured_wire_ratio = 0;
  double measured_wire_savings_percent = 0;

  double realized_hit_ratio = 0;
  uint64_t measured_requests = 0;
};

// Runs the no-cache and with-cache testbeds on identical workloads and
// returns analytical-vs-measured byte counts. The analytic B values are
// scaled to `measured_requests` so columns are directly comparable.
Result<ExperimentResult> RunBytesExperiment(const ExperimentConfig& config);

}  // namespace dynaprox::sim

#endif  // DYNAPROX_SIM_EXPERIMENT_H_
