#include "workload/personalized_site.h"

#include <memory>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"

namespace dynaprox::workload {
namespace {

class PersonalizedSiteTest : public ::testing::Test {
 protected:
  void Build(bool with_bem) {
    site_ = std::make_unique<PersonalizedSite>(PersonalizedSiteConfig{},
                                               &repository_, &registry_);
    if (with_bem) {
      bem::BemOptions options;
      options.capacity = 256;
      options.clock = &clock_;
      monitor_ = *bem::BackEndMonitor::Create(options);
      monitor_->AttachRepository(&repository_);
    }
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<PersonalizedSite> site_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
};

TEST_F(PersonalizedSiteTest, LayoutDependsOnVisitor) {
  Build(false);
  http::Response registered =
      origin_->Handle(site_->VisitorRequest(0));
  http::Response anonymous =
      origin_->Handle(site_->VisitorRequest(-1));
  ASSERT_EQ(registered.status_code, 200);
  ASSERT_EQ(anonymous.status_code, 200);
  EXPECT_NE(registered.body.find("Hello, User 0"), std::string::npos);
  EXPECT_EQ(anonymous.body.find("Hello,"), std::string::npos);
  EXPECT_NE(anonymous.body.find("<ol>"), std::string::npos);  // Catalog.
}

TEST_F(PersonalizedSiteTest, DistinctUsersGetDistinctPages) {
  Build(false);
  EXPECT_NE(origin_->Handle(site_->VisitorRequest(0)).body,
            origin_->Handle(site_->VisitorRequest(1)).body);
}

TEST_F(PersonalizedSiteTest, OneProfileLoadPerTaggedPage) {
  Build(false);
  site_->ResetWork();
  origin_->Handle(site_->VisitorRequest(0));
  EXPECT_EQ(site_->work().profile_loads, 1);
  EXPECT_EQ(site_->work().fragment_generations, 3);
}

TEST_F(PersonalizedSiteTest, EsiFragmentsEachReloadProfile) {
  Build(false);
  site_->ResetWork();
  for (const char* path : {"/frag/greeting", "/frag/reco"}) {
    http::Request request = site_->VisitorRequest(0);
    request.target = path;
    ASSERT_EQ(origin_->Handle(request).status_code, 200);
  }
  // The Section 3.2.2 interdependence cost: two loads for what the tagged
  // script does with one.
  EXPECT_EQ(site_->work().profile_loads, 2);
}

TEST_F(PersonalizedSiteTest, DpcServesIdenticalPagesToBaseline) {
  Build(false);
  std::string truth_user0 = origin_->Handle(site_->VisitorRequest(0)).body;
  std::string truth_anon = origin_->Handle(site_->VisitorRequest(-1)).body;

  // Rebuild with a BEM + DPC in front; pages must match byte for byte.
  monitor_.reset();
  origin_.reset();
  Build(true);
  net::DirectTransport upstream(origin_->AsHandler());
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 256;
  dpc::DpcProxy proxy(&upstream, proxy_options);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(proxy.Handle(site_->VisitorRequest(0)).BodyText(), truth_user0);
    EXPECT_EQ(proxy.Handle(site_->VisitorRequest(-1)).BodyText(), truth_anon);
  }
  // Warm rounds reuse fragments.
  EXPECT_GT(monitor_->stats().hits, 0u);
}

TEST_F(PersonalizedSiteTest, SharedCategoryFragmentReused) {
  Build(true);
  net::DirectTransport upstream(origin_->AsHandler());
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 256;
  dpc::DpcProxy proxy(&upstream, proxy_options);
  // Users 0 and 3 share a category (i % 3); the reco fragment is reused.
  site_->ResetWork();
  proxy.Handle(site_->VisitorRequest(0));
  int after_first = site_->work().fragment_generations;
  proxy.Handle(site_->VisitorRequest(3));
  // User 3's page generates a greeting but reuses reco + catalog.
  EXPECT_EQ(site_->work().fragment_generations, after_first + 1);
}

}  // namespace
}  // namespace dynaprox::workload
