#include "net/server_limits.h"

#include "common/json.h"
#include "common/metrics.h"

namespace dynaprox::net {

http::Response MakeUnavailableResponse(const std::string& reason,
                                       int64_t retry_after_seconds) {
  http::Response response =
      http::Response::MakeError(503, "Service Unavailable", reason);
  response.headers.Set("Retry-After", std::to_string(retry_after_seconds));
  return response;
}

http::Response MakeShedResponse(int64_t retry_after_seconds) {
  return MakeUnavailableResponse("server over capacity, retry later",
                                 retry_after_seconds);
}

http::Response ResponseForReaderError(
    http::RequestReader::LimitViolation violation, const Status& error,
    IngressCounters& counters) {
  switch (violation) {
    case http::RequestReader::LimitViolation::kHeaderBytes:
      counters.oversize_headers.fetch_add(1, std::memory_order_relaxed);
      return http::Response::MakeError(431, "Request Header Fields Too Large",
                                       error.ToString());
    case http::RequestReader::LimitViolation::kBodyBytes:
      counters.oversize_bodies.fetch_add(1, std::memory_order_relaxed);
      return http::Response::MakeError(413, "Content Too Large",
                                       error.ToString());
    case http::RequestReader::LimitViolation::kNone:
      break;
  }
  return http::Response::MakeError(400, "Bad Request", error.ToString());
}

http::Response DispatchAdmitted(const Handler& handler,
                                const http::Request& request,
                                const ServerLimits& limits,
                                IngressCounters& counters) {
  int64_t inflight =
      counters.inflight_requests.fetch_add(1, std::memory_order_relaxed) + 1;
  http::Response response;
  if (limits.max_inflight > 0 && inflight > limits.max_inflight) {
    counters.shed_503s.fetch_add(1, std::memory_order_relaxed);
    response = MakeShedResponse(limits.retry_after_seconds);
  } else {
    response = handler(request);
  }
  counters.inflight_requests.fetch_sub(1, std::memory_order_relaxed);
  return response;
}

void RegisterIngressMetrics(metrics::Registry& registry,
                            const std::string& prefix,
                            const IngressCounters* counters) {
  auto gauge = [&](const char* name, const char* help,
                   const std::atomic<int64_t>* value) {
    registry.RegisterCallbackGauge(prefix + "ingress_" + name, help, [value] {
      return static_cast<double>(value->load(std::memory_order_relaxed));
    });
  };
  auto counter = [&](const char* name, const char* help,
                     const std::atomic<uint64_t>* value) {
    registry.RegisterCallbackCounter(
        prefix + "ingress_" + name, help,
        [value] { return value->load(std::memory_order_relaxed); });
  };
  gauge("open_connections", "Client connections currently open.",
        &counters->open_connections);
  gauge("inflight_requests", "Requests currently inside handlers.",
        &counters->inflight_requests);
  counter("accepted_total", "Client connections admitted.",
          &counters->accepted_total);
  counter("connection_limit_rejections_total",
          "Connections closed at accept by the connection cap.",
          &counters->connection_limit_rejections);
  counter("shed_503_total",
          "Requests shed with 503 + Retry-After by the in-flight cap.",
          &counters->shed_503s);
  counter("header_timeouts_total",
          "Connections dropped at the header-read deadline (slowloris).",
          &counters->header_timeouts);
  counter("idle_timeouts_total",
          "Keep-alive connections reaped at the idle deadline.",
          &counters->idle_timeouts);
  counter("write_stall_closes_total",
          "Connections dropped at the write-stall deadline.",
          &counters->write_stall_closes);
  counter("oversize_headers_total",
          "Requests rejected 431 by the header byte cap.",
          &counters->oversize_headers);
  counter("oversize_bodies_total",
          "Requests rejected 413 by the body byte cap.",
          &counters->oversize_bodies);
  counter("drained_connections_total",
          "Connections that completed during graceful drain.",
          &counters->drained_connections);
  counter("accept_fd_exhaustion_episodes_total",
          "Episodes of EMFILE/ENFILE at accept (one per sustained outage).",
          &counters->accept_fd_exhaustion_episodes);
}

void WriteIngressStatusBlock(JsonWriter& json,
                             const IngressCounters& counters) {
  auto load64 = [](const std::atomic<uint64_t>& v) {
    return v.load(std::memory_order_relaxed);
  };
  json.Key("ingress").BeginObject();
  json.Key("open_connections")
      .Int(counters.open_connections.load(std::memory_order_relaxed));
  json.Key("inflight_requests")
      .Int(counters.inflight_requests.load(std::memory_order_relaxed));
  json.Key("accepted").Uint(load64(counters.accepted_total));
  json.Key("connection_limit_rejections")
      .Uint(load64(counters.connection_limit_rejections));
  json.Key("shed_503s").Uint(load64(counters.shed_503s));
  json.Key("header_timeouts").Uint(load64(counters.header_timeouts));
  json.Key("idle_timeouts").Uint(load64(counters.idle_timeouts));
  json.Key("write_stall_closes").Uint(load64(counters.write_stall_closes));
  json.Key("oversize_headers").Uint(load64(counters.oversize_headers));
  json.Key("oversize_bodies").Uint(load64(counters.oversize_bodies));
  json.Key("drained_connections")
      .Uint(load64(counters.drained_connections));
  json.Key("accept_fd_exhaustion_episodes")
      .Uint(load64(counters.accept_fd_exhaustion_episodes));
  json.EndObject();
}

}  // namespace dynaprox::net
