#ifndef DYNAPROX_NET_CONNECTION_POOL_H_
#define DYNAPROX_NET_CONNECTION_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/result.h"
#include "net/retry.h"
#include "net/transport.h"

namespace dynaprox::net {

struct ConnectionPoolOptions {
  // Upper bound on simultaneously open upstream connections.
  int max_connections = 8;
  // Per-operation socket send/receive timeout on pooled connections;
  // 0 blocks indefinitely.
  MicroTime io_timeout_micros = 0;
  // How long Checkout() may block waiting for a connection to free up
  // before failing with IoError; 0 fails as soon as the pool is saturated.
  MicroTime checkout_timeout_micros = 5 * kMicrosPerSecond;
  // Checkouts already waiting beyond which new ones are rejected
  // immediately (bounded waiter queue).
  int max_waiters = 64;
  // Idle connections unused for longer than this are closed at the next
  // pool scan (every checkout, or an explicit ReapIdle); 0 keeps them
  // forever.
  MicroTime idle_timeout_micros = 30 * kMicrosPerSecond;
  // Dial retry/backoff, reusing the net/retry.h policy parameters:
  // max_attempts total connect attempts, backoff doubling between them.
  RetryOptions connect_retry{/*max_attempts=*/2,
                             /*initial_backoff_micros=*/5 * kMicrosPerMilli};
  // Time source for idle deadlines and wait measurement; null uses
  // SystemClock::Default().
  const Clock* clock = nullptr;
};

// Pool behaviour counters plus point-in-time gauges (filled at stats()).
struct PoolStats {
  int open_connections = 0;  // Checked out + idle (gauge).
  int idle_connections = 0;  // Parked in the free list (gauge).
  int wait_queue_depth = 0;  // Checkouts currently blocked (gauge).
  uint64_t checkouts = 0;    // Successful checkouts.
  uint64_t connects = 0;     // Successful dials (first connects included).
  uint64_t reconnects = 0;   // Dials replacing a dead keep-alive conn.
  uint64_t stale_closed = 0;  // Idle connections found dead at checkout.
  uint64_t idle_reaped = 0;   // Idle connections closed past the deadline.
  uint64_t waiter_timeouts = 0;    // Checkouts that gave up waiting.
  uint64_t waiter_rejections = 0;  // Rejected by the waiter bound.
  uint64_t connect_failures = 0;   // Dials that exhausted their retries.
  Histogram wait_micros;  // Wait duration of checkouts that blocked.
};

// Keep-alive connection pool to one upstream host:port. Checkout() hands
// out a live connection — reusing an idle one (dead idle connections are
// detected with a zero-byte peek and replaced), dialing a new one while
// under max_connections, or waiting (bounded queue, deadline) for a
// checkin. All members are thread-safe; the returned fd is owned by the
// caller until Checkin().
class ConnectionPool {
 public:
  struct Connection {
    int fd = -1;
    // True when the connection was dialed for this checkout and has never
    // carried a request: a failure on it is a hard error, not the usual
    // stale-keep-alive signal that justifies a retry.
    bool fresh = true;
  };

  ConnectionPool(std::string host, uint16_t port,
                 ConnectionPoolOptions options = {});
  // Closes idle connections. Connections still checked out must be
  // returned (or closed by their holder) before destruction.
  ~ConnectionPool();

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  Result<Connection> Checkout();

  // Returns a connection to the pool. `reusable` false closes it — use
  // after any failure that leaves the HTTP framing state unknown.
  void Checkin(Connection conn, bool reusable);

  // Closes idle connections past the idle deadline; returns the count.
  // Checkout() does this opportunistically; exposed for tests and
  // periodic maintenance.
  int ReapIdle();

  PoolStats stats() const;

 private:
  struct IdleConn {
    int fd;
    MicroTime idle_since;
  };

  // Dials with the connect_retry backoff policy. Called without mu_ held.
  Result<int> Dial();
  int ReapIdleLocked(MicroTime now);

  const std::string host_;
  const uint16_t port_;
  const ConnectionPoolOptions options_;
  const Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable available_;
  // LIFO free list: back is most recently used (kept warm), front goes
  // cold and is reaped first.
  std::vector<IdleConn> idle_;
  int open_ = 0;     // Checked out + idle + mid-dial slots.
  int waiters_ = 0;  // Checkouts blocked in the wait queue.
  PoolStats counters_;  // Gauge fields unused here; see stats().
};

struct PooledTransportOptions {
  ConnectionPoolOptions pool;
  // Request headers whose presence marks a request non-idempotent for
  // retry purposes (e.g. bem::kRefreshHeader, which triggers
  // invalidations at the origin). See net/idempotency.h.
  std::vector<std::string> non_idempotent_headers;
};

// Transport running each round trip on a pooled connection: concurrent
// RoundTrip calls proceed in parallel up to the pool bound instead of
// serializing on one socket the way TcpClientTransport does. A failed
// round trip on a reused keep-alive connection is retried once on a fresh
// connection when SafeToRetry allows it.
//
// RoundTripStreaming keeps its pooled connection checked out until the
// BodyStream is drained (checked back in reusable) or destroyed early
// (closed — the framing state is unknown). Other round trips proceed on
// other pool slots meanwhile, so a streaming consumer may issue nested
// round trips (e.g. DpcProxy miss recovery) on the same transport.
class PooledClientTransport : public Transport {
 public:
  PooledClientTransport(std::string host, uint16_t port,
                        PooledTransportOptions options = {});

  Result<http::Response> RoundTrip(const http::Request& request) override;

  Result<StreamingResponse> RoundTripStreaming(
      const http::Request& request) override;

  ConnectionPool& pool() { return pool_; }
  const ConnectionPool& pool() const { return pool_; }

 private:
  class StreamingBody;

  PooledTransportOptions options_;
  ConnectionPool pool_;
};

}  // namespace dynaprox::net

#endif  // DYNAPROX_NET_CONNECTION_POOL_H_
