#include "storage/update_bus.h"

#include <gtest/gtest.h>

namespace dynaprox::storage {
namespace {

TEST(UpdateBusTest, DeliversToAllSubscribersInOrder) {
  UpdateBus bus;
  std::vector<int> order;
  bus.Subscribe([&](const UpdateEvent&) { order.push_back(1); });
  bus.Subscribe([&](const UpdateEvent&) { order.push_back(2); });
  bus.Publish({"t", "k", UpdateKind::kInsert});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(UpdateBusTest, UnsubscribeStopsDelivery) {
  UpdateBus bus;
  int count = 0;
  auto id = bus.Subscribe([&](const UpdateEvent&) { ++count; });
  bus.Publish({"t", "k", UpdateKind::kInsert});
  bus.Unsubscribe(id);
  bus.Publish({"t", "k", UpdateKind::kUpdate});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(UpdateBusTest, UnsubscribeUnknownIdIsIgnored) {
  UpdateBus bus;
  bus.Unsubscribe(12345);
  EXPECT_EQ(bus.subscriber_count(), 0u);
}

TEST(UpdateBusTest, EventCarriesTableKeyKind) {
  UpdateBus bus;
  UpdateEvent seen{};
  bus.Subscribe([&](const UpdateEvent& e) { seen = e; });
  bus.Publish({"quotes", "IBM", UpdateKind::kUpdate});
  EXPECT_EQ(seen.table, "quotes");
  EXPECT_EQ(seen.key, "IBM");
  EXPECT_EQ(seen.kind, UpdateKind::kUpdate);
}

}  // namespace
}  // namespace dynaprox::storage
