// libFuzzer entry point for the BEM template grammar: the bytes a
// compromised origin can send where SET/GET tags are expected. Both scan
// strategies must agree on accept/reject and never crash.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dpc/tag_scanner.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view wire(reinterpret_cast<const char*>(data), size);
  auto memchr_parse =
      dynaprox::dpc::ParseTemplate(wire, dynaprox::dpc::ScanStrategy::kMemchr);
  auto loop_parse = dynaprox::dpc::ParseTemplate(
      wire, dynaprox::dpc::ScanStrategy::kByteLoop);
  // The ablation strategy is an implementation detail; acceptance must not
  // depend on it.
  if (memchr_parse.ok() != loop_parse.ok()) __builtin_trap();
  return 0;
}
