// Figure 3(a): comparison of cost savings as cacheability varies 20..100%.
// Upper curve: savings in bytes served (always positive). Lower curve:
// savings in firewall scan cost (negative until the Result-1 threshold
// B_NC > 2*B_C is reached).

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"
#include "firewall/firewall.h"
#include "sim/testbed.h"

namespace {

// Measured counterpart (beyond the paper, which plots Figure 3(a) from the
// model only): runs the simulated system with a scanning firewall on the
// origin link and counts real scanned bytes. With the cache, the template
// is scanned twice — once by the firewall, once by the DPC scanner.
struct MeasuredScan {
  double scanned_no_cache = 0;
  double scanned_with_cache = 0;
};

dynaprox::Result<MeasuredScan> MeasureScanBytes(
    dynaprox::analytical::ModelParams params) {
  MeasuredScan out;
  for (bool with_cache : {false, true}) {
    dynaprox::sim::TestbedConfig config;
    config.params = params;
    config.with_cache = with_cache;
    config.with_firewall = true;
    config.seed = 21;
    auto testbed = dynaprox::sim::Testbed::Create(config);
    if (!testbed.ok()) return testbed.status();
    (*testbed)->Run(500);
    (*testbed)->BeginMeasurement();
    (*testbed)->Run(4000);
    dynaprox::sim::Measurement m = (*testbed)->Collect();
    if (with_cache) {
      out.scanned_with_cache =
          static_cast<double>(m.total_scanned_bytes());
    } else {
      out.scanned_no_cache = static_cast<double>(m.total_scanned_bytes());
    }
  }
  return out;
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams params = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Figure 3(a)", "Network vs Firewall Cost Savings vs Cacheability",
      params);

  dynaprox::firewall::ScanCostModel scan_model;
  std::printf("%16s %18s %18s %16s %14s\n", "cacheability(%)",
              "networkSavings(%)", "firewallSavings(%)",
              "measuredScan(%)", "Result1?");
  for (int pct = 20; pct <= 100; pct += 5) {
    params.cacheability = pct / 100.0;
    double nc = dynaprox::analytical::ExpectedBytesNoCache(params);
    double c = dynaprox::analytical::ExpectedBytesWithCache(params);
    double network = dynaprox::analytical::SavingsPercent(params);
    double firewall = scan_model.SavingsPercent(nc, c);

    // Measure every fourth point (the simulation dominates runtime).
    double measured = 0;
    bool have_measured = pct % 20 == 0;
    if (have_measured) {
      auto scan = MeasureScanBytes(params);
      if (!scan.ok()) {
        std::printf("measurement failed: %s\n",
                    scan.status().ToString().c_str());
        return 1;
      }
      measured = (scan->scanned_no_cache - scan->scanned_with_cache) /
                 scan->scanned_no_cache * 100.0;
    }
    if (have_measured) {
      std::printf("%16d %18.3f %18.3f %16.3f %14s\n", pct, network,
                  firewall, measured,
                  scan_model.CachePreferable(nc, c) ? "cache" : "no-cache");
    } else {
      std::printf("%16d %18.3f %18.3f %16s %14s\n", pct, network, firewall,
                  "-",
                  scan_model.CachePreferable(nc, c) ? "cache" : "no-cache");
    }
  }
  std::printf(
      "measuredScan counts real bytes through the KMP firewall plus the "
      "DPC template scan (requests+responses), hence less negative than "
      "the response-only model at low cacheability\n");
  dynaprox::benchutil::PrintFooter();
  return 0;
}
