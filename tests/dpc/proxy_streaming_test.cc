// DpcProxy streaming scan-and-splice (ProxyOptions::streaming): commit
// and fallback decisions, inline cold-cache recovery, pre- vs post-commit
// failure semantics, and the byte accounting shared with the buffered
// path — in-process via DirectTransport and end-to-end over real sockets
// with a pooled upstream.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "common/strings.h"
#include "dpc/proxy.h"
#include "net/connection_pool.h"
#include "net/tcp.h"

namespace dynaprox::dpc {
namespace {

ProxyOptions StreamingProxy() {
  ProxyOptions options;
  options.capacity = 16;
  options.streaming = true;
  return options;
}

std::string DrainStream(http::BodyStream& stream, Status* status = nullptr) {
  std::string out;
  for (;;) {
    Result<common::BufferChain> chunk = stream.Next();
    if (!chunk.ok()) {
      if (status != nullptr) *status = chunk.status();
      return out;
    }
    if (chunk->empty()) {
      if (status != nullptr) *status = Status::Ok();
      return out;
    }
    out += chunk->Flatten();
  }
}

// Handle() plus draining a committed stream: what a hosting server does.
std::string HandleAndDrain(DpcProxy& proxy, const http::Request& request,
                           http::Response* head_out = nullptr,
                           Status* status = nullptr) {
  http::Response response = proxy.Handle(request);
  if (head_out != nullptr) *head_out = response;
  if (response.body_stream == nullptr) {
    if (status != nullptr) *status = Status::Ok();
    return response.BodyText();
  }
  return DrainStream(*response.body_stream, status);
}

http::Response TemplateResponse(std::string body) {
  http::Response response = http::Response::MakeOk(std::move(body));
  response.headers.Set(bem::kTemplateHeader, "1");
  return response;
}

// The FakeOrigin of proxy_test.cc: SET on first sight of a key, GET
// after, honoring the refresh protocol.
class FakeOrigin {
 public:
  http::Response Handle(const http::Request& request) {
    ++requests_;
    if (auto refresh = request.headers.Get(bem::kRefreshHeader);
        refresh.has_value()) {
      for (std::string_view key_hex : StrSplit(*refresh, ',')) {
        known_.erase(static_cast<bem::DpcKey>(*ParseHex(key_hex)));
      }
    }
    std::string body = "<page>";
    for (bem::DpcKey key : {bem::DpcKey{0}, bem::DpcKey{1}}) {
      if (known_.count(key)) {
        bem::TagCodec::AppendGet(key, body);
      } else {
        bem::TagCodec::AppendSet(key, "frag" + std::to_string(key), body);
        known_.insert(key);
      }
    }
    body += "</page>";
    return TemplateResponse(std::move(body));
  }

  net::Handler AsHandler() {
    return [this](const http::Request& r) { return Handle(r); };
  }

  int requests() const { return requests_; }

 private:
  std::set<bem::DpcKey> known_;
  int requests_ = 0;
};

// A body stream delivering scripted chunks, then end or a scripted
// error. A non-zero inter-chunk delay keeps chunks from coalescing into
// one socket read, so the consumer observes genuinely incremental
// arrival.
class ScriptedStream : public http::BodyStream {
 public:
  explicit ScriptedStream(std::vector<std::string> chunks,
                          bool fail_after_script = false,
                          MicroTime inter_chunk_delay_micros = 0)
      : chunks_(std::move(chunks)),
        fail_after_script_(fail_after_script),
        delay_micros_(inter_chunk_delay_micros) {}

  Result<common::BufferChain> Next() override {
    if (at_ > 0 && delay_micros_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    }
    if (at_ < chunks_.size()) {
      common::BufferChain out;
      out.AppendCopy(chunks_[at_++]);
      return out;
    }
    if (fail_after_script_) return Status::IoError("origin died mid-body");
    return common::BufferChain();
  }

 private:
  std::vector<std::string> chunks_;
  bool fail_after_script_;
  MicroTime delay_micros_;
  size_t at_ = 0;
};

TEST(ProxyStreamingTest, StreamedBytesMatchBufferedBytes) {
  FakeOrigin buffered_origin;
  net::DirectTransport buffered_upstream(buffered_origin.AsHandler());
  ProxyOptions buffered_options = StreamingProxy();
  buffered_options.streaming = false;
  DpcProxy buffered_proxy(&buffered_upstream, buffered_options);

  FakeOrigin streaming_origin;
  net::DirectTransport streaming_upstream(streaming_origin.AsHandler());
  DpcProxy streaming_proxy(&streaming_upstream, StreamingProxy());

  http::Request request;
  request.target = "/page";
  for (int round = 0; round < 3; ++round) {
    std::string expected = buffered_proxy.Handle(request).BodyText();
    Status status;
    http::Response head;
    std::string streamed =
        HandleAndDrain(streaming_proxy, request, &head, &status);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(streamed, expected) << "round=" << round;
    EXPECT_EQ(head.status_code, 200);
    EXPECT_FALSE(head.headers.Has(bem::kTemplateHeader));
    EXPECT_TRUE(head.headers.Has(bem::kRequestIdHeader));
  }
  EXPECT_EQ(streaming_proxy.stats().streamed, 3u);
  EXPECT_EQ(streaming_proxy.stats().stream_aborts, 0u);
  // Byte accounting agrees across the two paths.
  EXPECT_EQ(streaming_proxy.stats().bytes_from_upstream,
            buffered_proxy.stats().bytes_from_upstream);
  EXPECT_EQ(streaming_proxy.stats().bytes_to_clients,
            buffered_proxy.stats().bytes_to_clients);
}

TEST(ProxyStreamingTest, EmptyTemplateFallsBackToBufferedResponse) {
  // The whole template (here: zero bytes) is consumed during prefetch, so
  // the proxy serves buffered — no stream, no chunked framing.
  net::DirectTransport upstream(
      [](const http::Request&) { return TemplateResponse(""); });
  DpcProxy proxy(&upstream, StreamingProxy());
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.body_stream, nullptr);
  EXPECT_EQ(response.BodyText(), "");
  EXPECT_EQ(proxy.stats().stream_fallbacks, 1u);
  EXPECT_EQ(proxy.stats().streamed, 0u);
  EXPECT_EQ(proxy.stats().assembled, 1u);
}

TEST(ProxyStreamingTest, DebugHeaderDisablesStreaming) {
  // The debug header summarizes the whole assembly, so requests stay on
  // the buffered path when it is on — even with streaming enabled.
  FakeOrigin origin;
  net::DirectTransport upstream(origin.AsHandler());
  ProxyOptions options = StreamingProxy();
  options.add_debug_header = true;
  DpcProxy proxy(&upstream, options);
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.body_stream, nullptr);
  EXPECT_TRUE(response.headers.Has(kDebugHeader));
  EXPECT_EQ(response.BodyText(), "<page>frag0frag1</page>");
  EXPECT_EQ(proxy.stats().streamed, 0u);
}

TEST(ProxyStreamingTest, NonTemplatePassthroughStreams) {
  net::DirectTransport upstream([](const http::Request&) {
    return http::Response::MakeOk("plain upstream page");
  });
  DpcProxy proxy(&upstream, StreamingProxy());
  http::Request request;
  http::Response head;
  Status status;
  std::string body = HandleAndDrain(proxy, request, &head, &status);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(body, "plain upstream page");
  EXPECT_NE(head.body_stream, nullptr);
  EXPECT_FALSE(head.headers.Has("Content-Length"));
  EXPECT_EQ(proxy.stats().passthrough, 1u);
  EXPECT_EQ(proxy.stats().bytes_to_clients, body.size());
}

TEST(ProxyStreamingTest, NonOkPassthroughCollapsesToBuffered) {
  // 304/204 and friends must not be re-framed chunked.
  net::DirectTransport upstream([](const http::Request&) {
    http::Response response;
    response.status_code = 304;
    response.reason = "Not Modified";
    return response;
  });
  DpcProxy proxy(&upstream, StreamingProxy());
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 304);
  EXPECT_EQ(response.body_stream, nullptr);
}

TEST(ProxyStreamingTest, CorruptTemplateBeforeFirstByteYields502) {
  // Pre-commit failure: nothing has reached the client, so the error is a
  // clean 502, exactly like the buffered path.
  net::DirectTransport upstream([](const http::Request&) {
    return TemplateResponse("\x02Q\x03 never-emitted");
  });
  DpcProxy proxy(&upstream, StreamingProxy());
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 502);
  EXPECT_EQ(response.body_stream, nullptr);
  EXPECT_EQ(proxy.stats().template_errors, 1u);
  EXPECT_EQ(proxy.stats().stream_aborts, 0u);
}

TEST(ProxyStreamingTest, UpstreamErrorStatusCollapsesToBuffered) {
  // An upstream 500 is a response, not a transport error: it passes
  // through buffered (non-200 responses are never re-framed chunked).
  net::DirectTransport upstream([](const http::Request&) {
    return http::Response::MakeError(500, "Internal Server Error", "boom");
  });
  DpcProxy proxy(&upstream, StreamingProxy());
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 500);
  EXPECT_EQ(response.body_stream, nullptr);
  EXPECT_EQ(response.BodyText(), "boom");
}

TEST(ProxyStreamingTest, UpstreamTransportFailureYieldsCleanError) {
  // A dead upstream before any head: still a clean pre-commit error.
  net::TcpServer origin([](const http::Request&) {
    return http::Response::MakeOk("never reached");
  });
  ASSERT_TRUE(origin.Start().ok());
  uint16_t dead_port = origin.port();
  origin.Stop();
  net::TcpClientTransport upstream("127.0.0.1", dead_port);
  DpcProxy proxy(&upstream, StreamingProxy());
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.status_code, 502);
  EXPECT_EQ(response.body_stream, nullptr);
  EXPECT_EQ(proxy.stats().upstream_errors, 1u);
}

TEST(ProxyStreamingTest, ChainedUpstreamBodyBytesAreCounted) {
  // Regression (byte accounting): a passthrough body living in
  // body_chain used to count as zero bytes_from_upstream because the
  // accounting read body.size().
  const std::string payload(2048, 'c');
  net::DirectTransport upstream([&payload](const http::Request&) {
    http::Response response;
    response.body_chain.AppendCopy(payload);
    return response;
  });
  ProxyOptions options;
  options.capacity = 8;
  DpcProxy proxy(&upstream, options);
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.BodyText(), payload);
  EXPECT_EQ(proxy.stats().bytes_from_upstream, payload.size());
  EXPECT_EQ(proxy.stats().bytes_to_clients, payload.size());
}

TEST(ProxyStreamingTest, ChainedTemplateBodyAssembles) {
  // Same regression, template path: the template arriving as a chain must
  // be scanned and counted, not treated as empty.
  std::string wire;
  bem::TagCodec::AppendSet(3, "chained-frag", wire);
  net::DirectTransport upstream([&wire](const http::Request&) {
    http::Response response;
    response.headers.Set(bem::kTemplateHeader, "1");
    response.body_chain.AppendCopy(wire);
    return response;
  });
  ProxyOptions options;
  options.capacity = 8;
  DpcProxy proxy(&upstream, options);
  http::Request request;
  http::Response response = proxy.Handle(request);
  EXPECT_EQ(response.BodyText(), "chained-frag");
  EXPECT_EQ(proxy.stats().bytes_from_upstream, wire.size());
  EXPECT_EQ(proxy.stats().assembled, 1u);
}

// --- Over real sockets with a genuinely incremental origin ---------------

TEST(ProxyStreamingTest, StreamsOverRealSocketsChunkByChunk) {
  // Origin emits the template in three chunks, one of them splitting a
  // SET tag in half; the DPC must splice and stream without waiting for
  // the tail.
  std::string wire = "<head>";
  bem::TagCodec::AppendSet(4, "socket-fragment", wire);
  wire += "<tail>";
  size_t cut_a = 8;                // Inside the head literal.
  size_t cut_b = wire.size() - 3;  // Inside the tail literal.
  std::vector<std::string> chunks = {wire.substr(0, cut_a),
                                     wire.substr(cut_a, cut_b - cut_a),
                                     wire.substr(cut_b)};
  net::TcpServer origin([&chunks](const http::Request&) {
    http::Response response;
    response.headers.Set(bem::kTemplateHeader, "1");
    response.body_stream = std::make_shared<ScriptedStream>(chunks);
    return response;
  });
  ASSERT_TRUE(origin.Start().ok());

  net::PooledTransportOptions pool_options;
  pool_options.pool.max_connections = 2;
  net::PooledClientTransport upstream("127.0.0.1", origin.port(),
                                      pool_options);
  DpcProxy proxy(&upstream, StreamingProxy());
  net::TcpServer front(proxy.AsHandler());
  ASSERT_TRUE(front.Start().ok());

  net::TcpClientTransport client("127.0.0.1", front.port());
  http::Request request;
  request.target = "/stream";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "<head>socket-fragment<tail>");
  EXPECT_EQ(proxy.stats().streamed, 1u);
  EXPECT_EQ(proxy.stats().stream_aborts, 0u);
  EXPECT_EQ(proxy.stats().bytes_from_upstream, wire.size());

  front.Stop();
  origin.Stop();
}

TEST(ProxyStreamingTest, ColdCacheMissRecoversInlineMidStream) {
  // The template GETs a key the store has never seen; the proxy must
  // refresh upstream on its own pooled connection while the client's
  // stream is already committed, then splice the recovered fragment.
  std::string fresh;  // Served on the refresh round trip.
  bem::TagCodec::AppendSet(9, "recovered-fragment", fresh);
  std::string cold = "<head>";  // Served first: GET with a cold store.
  bem::TagCodec::AppendGet(9, cold);
  cold += "<tail>";
  std::atomic<int> refreshes{0};
  net::TcpServer origin([&](const http::Request& request) {
    std::string body;
    if (request.headers.Has(bem::kRefreshHeader)) {
      ++refreshes;
      body = fresh;
    } else {
      body = cold;
    }
    http::Response response = http::Response::MakeOk(std::move(body));
    response.headers.Set(bem::kTemplateHeader, "1");
    return response;
  });
  ASSERT_TRUE(origin.Start().ok());

  net::PooledTransportOptions pool_options;
  pool_options.pool.max_connections = 2;
  net::PooledClientTransport upstream("127.0.0.1", origin.port(),
                                      pool_options);
  DpcProxy proxy(&upstream, StreamingProxy());
  net::TcpServer front(proxy.AsHandler());
  ASSERT_TRUE(front.Start().ok());

  net::TcpClientTransport client("127.0.0.1", front.port());
  http::Request request;
  request.target = "/cold";
  Result<http::Response> response = client.RoundTrip(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "<head>recovered-fragment<tail>");
  EXPECT_GE(refreshes.load(), 1);
  EXPECT_GE(proxy.stats().recoveries, 1u);
  EXPECT_EQ(proxy.stats().stream_aborts, 0u);

  front.Stop();
  origin.Stop();
}

TEST(ProxyStreamingTest, PostCommitUpstreamFailureAbortsTheStream) {
  // Head bytes are on the wire when the origin dies: the only honest move
  // is truncating the chunked body, so the client sees an error, not a
  // complete-looking page.
  net::TcpServer origin([](const http::Request&) {
    http::Response response;
    response.headers.Set(bem::kTemplateHeader, "1");
    response.body_stream = std::make_shared<ScriptedStream>(
        std::vector<std::string>{"<early bytes>"},
        /*fail_after_script=*/true);
    return response;
  });
  ASSERT_TRUE(origin.Start().ok());
  net::PooledTransportOptions pool_options;
  pool_options.pool.max_connections = 2;
  net::PooledClientTransport upstream("127.0.0.1", origin.port(),
                                      pool_options);
  DpcProxy proxy(&upstream, StreamingProxy());
  net::TcpServer front(proxy.AsHandler());
  ASSERT_TRUE(front.Start().ok());

  net::TcpClientTransport client("127.0.0.1", front.port());
  http::Request request;
  Result<http::Response> response = client.RoundTrip(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(proxy.stats().stream_aborts, 1u);
  EXPECT_EQ(proxy.stats().streamed, 1u);

  front.Stop();
  origin.Stop();
}

// Reads raw bytes off one connection until the server closes it. Sends
// `wire` first (may hold several pipelined requests).
std::string RawExchange(uint16_t port, const std::string& wire) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string received;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // 0 = clean close: the signal under test.
    received.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return received;
}

// Decodes a chunked body as far as its framing is intact; `*complete`
// reports whether the terminal 0-chunk was seen.
std::string DecodeChunked(std::string_view wire, bool* complete) {
  *complete = false;
  std::string out;
  while (!wire.empty()) {
    size_t line_end = wire.find("\r\n");
    if (line_end == std::string_view::npos) break;
    size_t size = 0;
    for (char c : wire.substr(0, line_end)) {
      if (c >= '0' && c <= '9') {
        size = size * 16 + static_cast<size_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        size = size * 16 + static_cast<size_t>(c - 'a' + 10);
      } else {
        return out;  // Corrupt size line: stop decoding.
      }
    }
    wire.remove_prefix(line_end + 2);
    if (size == 0) {
      *complete = true;
      return out;
    }
    size_t take = std::min(size, wire.size());
    out.append(wire.substr(0, take));
    wire.remove_prefix(take);
    if (take < size || wire.size() < 2) break;  // Truncated mid-chunk.
    wire.remove_prefix(2);  // Chunk-data CRLF.
  }
  return out;
}

// S3: kill the origin at *every* chunk boundary after the stream has
// committed and check three things at each offset — the client sees an
// honestly truncated chunked body (a strict prefix of the fault-free
// oracle, never a complete-looking page), stream_aborts increments, and
// the server refuses to serve a pipelined follow-up on the poisoned
// connection.
TEST(ProxyStreamingTest, MidStreamDeathAtEveryChunkBoundaryIsHonest) {
  // Five chunks, one of them splitting a SET tag so a kill can land
  // while the splice buffer holds partial-tag bytes.
  std::string wire = "<head-literal>";
  bem::TagCodec::AppendSet(6, "sweep-fragment", wire);
  wire += "<tail-literal-padding-so-every-cut-emits>";
  std::vector<size_t> cuts = {5, wire.size() / 2 - 3, wire.size() / 2 + 4,
                              wire.size() - 6};
  std::vector<std::string> all_chunks;
  size_t prev = 0;
  for (size_t cut : cuts) {
    all_chunks.push_back(wire.substr(prev, cut - prev));
    prev = cut;
  }
  all_chunks.push_back(wire.substr(prev));

  // Fault-free oracle: what a complete assembly of this template yields.
  std::string oracle;
  {
    net::DirectTransport upstream([&](const http::Request&) {
      return TemplateResponse(wire);
    });
    DpcProxy proxy(&upstream, StreamingProxy());
    oracle = HandleAndDrain(proxy, http::Request{});
  }
  ASSERT_FALSE(oracle.empty());

  const std::string pipelined_wire =
      "GET /sweep HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /second HTTP/1.1\r\nHost: t\r\n\r\n";

  for (size_t kill_after = 1; kill_after < all_chunks.size();
       ++kill_after) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    std::vector<std::string> delivered(
        all_chunks.begin(),
        all_chunks.begin() + static_cast<long>(kill_after));
    net::TcpServer origin([&delivered](const http::Request&) {
      http::Response response;
      response.headers.Set(bem::kTemplateHeader, "1");
      response.body_stream = std::make_shared<ScriptedStream>(
          delivered, /*fail_after_script=*/true);
      return response;
    });
    ASSERT_TRUE(origin.Start().ok());
    net::PooledTransportOptions pool_options;
    pool_options.pool.max_connections = 2;
    net::PooledClientTransport upstream("127.0.0.1", origin.port(),
                                        pool_options);
    DpcProxy proxy(&upstream, StreamingProxy());
    net::TcpServer front(proxy.AsHandler());
    ASSERT_TRUE(front.Start().ok());

    std::string raw = RawExchange(front.port(), pipelined_wire);
    front.Stop();
    origin.Stop();

    // Exactly one response head: the poisoned connection was closed
    // before the pipelined second request could be answered on it.
    size_t heads = 0;
    for (size_t at = raw.find("HTTP/1.1"); at != std::string::npos;
         at = raw.find("HTTP/1.1", at + 1)) {
      ++heads;
    }
    EXPECT_EQ(heads, 1u);

    size_t body_at = raw.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    bool complete = false;
    std::string body = DecodeChunked(
        std::string_view(raw).substr(body_at + 4), &complete);
    // Honest truncation: never the terminal chunk, and whatever did
    // arrive is a strict prefix of the fault-free page.
    EXPECT_FALSE(complete);
    EXPECT_LT(body.size(), oracle.size());
    EXPECT_EQ(body, oracle.substr(0, body.size()));
    EXPECT_EQ(proxy.stats().stream_aborts, 1u);
    EXPECT_EQ(proxy.stats().streamed, 1u);
  }
}

TEST(ProxyStreamingTest, TemplateCapAbortsMidStream) {
  // The max_template_bytes guard keeps working after commit: cumulative
  // template bytes over the cap abort the stream.
  net::TcpServer origin([](const http::Request&) {
    http::Response response;
    response.headers.Set(bem::kTemplateHeader, "1");
    response.body_stream = std::make_shared<ScriptedStream>(
        std::vector<std::string>{"<committed>", std::string(4096, 'x')},
        /*fail_after_script=*/false,
        /*inter_chunk_delay_micros=*/20 * kMicrosPerMilli);
    return response;
  });
  ASSERT_TRUE(origin.Start().ok());
  net::PooledTransportOptions pool_options;
  pool_options.pool.max_connections = 2;
  net::PooledClientTransport upstream("127.0.0.1", origin.port(),
                                      pool_options);
  ProxyOptions options = StreamingProxy();
  options.max_template_bytes = 1024;
  DpcProxy proxy(&upstream, options);
  net::TcpServer front(proxy.AsHandler());
  ASSERT_TRUE(front.Start().ok());

  net::TcpClientTransport client("127.0.0.1", front.port());
  http::Request request;
  Result<http::Response> response = client.RoundTrip(request);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(proxy.stats().stream_aborts, 1u);

  front.Stop();
  origin.Stop();
}

}  // namespace
}  // namespace dynaprox::dpc
