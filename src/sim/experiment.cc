#include "sim/experiment.h"

namespace dynaprox::sim {
namespace {

// Runs one configuration and returns the measurement over the window.
Result<Measurement> RunOne(const ExperimentConfig& config, bool with_cache) {
  TestbedConfig testbed_config;
  testbed_config.params = config.params;
  testbed_config.with_cache = with_cache;
  testbed_config.seed = config.seed;
  testbed_config.link_model = config.link_model;
  testbed_config.replacement_policy = config.replacement_policy;

  std::unique_ptr<Testbed> testbed;
  DYNAPROX_ASSIGN_OR_RETURN(testbed, Testbed::Create(testbed_config));
  if (config.warmup_requests > 0) testbed->Run(config.warmup_requests);
  testbed->BeginMeasurement();
  workload::DriverStats driver = testbed->Run(config.measured_requests);
  if (driver.transport_errors > 0 || driver.error_responses > 0) {
    return Status::Internal(
        "experiment saw failures: transport=" +
        std::to_string(driver.transport_errors) +
        " http=" + std::to_string(driver.error_responses));
  }
  return testbed->Collect();
}

}  // namespace

Result<ExperimentResult> RunBytesExperiment(const ExperimentConfig& config) {
  Measurement no_cache;
  DYNAPROX_ASSIGN_OR_RETURN(no_cache, RunOne(config, /*with_cache=*/false));
  Measurement with_cache;
  DYNAPROX_ASSIGN_OR_RETURN(with_cache, RunOne(config, /*with_cache=*/true));

  analytical::ModelParams scaled = config.params;
  scaled.requests = static_cast<double>(config.measured_requests);

  ExperimentResult result;
  result.measured_requests = config.measured_requests;
  result.analytic_bytes_nc = analytical::ExpectedBytesNoCache(scaled);
  result.analytic_bytes_c = analytical::ExpectedBytesWithCache(scaled);
  result.analytic_ratio = analytical::BytesRatio(scaled);
  result.analytic_savings_percent = analytical::SavingsPercent(scaled);

  result.measured_payload_nc =
      static_cast<double>(no_cache.response_payload_bytes);
  result.measured_payload_c =
      static_cast<double>(with_cache.response_payload_bytes);
  result.measured_payload_ratio =
      result.measured_payload_c / result.measured_payload_nc;
  result.measured_payload_savings_percent =
      (result.measured_payload_nc - result.measured_payload_c) /
      result.measured_payload_nc * 100.0;

  result.measured_wire_nc = static_cast<double>(no_cache.response_wire_bytes);
  result.measured_wire_c =
      static_cast<double>(with_cache.response_wire_bytes);
  result.measured_wire_ratio =
      result.measured_wire_c / result.measured_wire_nc;
  result.measured_wire_savings_percent =
      (result.measured_wire_nc - result.measured_wire_c) /
      result.measured_wire_nc * 100.0;

  result.realized_hit_ratio = with_cache.RealizedHitRatio();
  return result;
}

}  // namespace dynaprox::sim
