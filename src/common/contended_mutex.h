#ifndef DYNAPROX_COMMON_CONTENDED_MUTEX_H_
#define DYNAPROX_COMMON_CONTENDED_MUTEX_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace dynaprox::common {

// A std::mutex that counts contended acquisitions: lock() first tries
// try_lock() and only counts (then blocks) when another thread already
// holds the mutex. Lockable, so std::lock_guard/std::unique_lock work
// unchanged. The count is a relaxed atomic — cheap enough to stay on in
// production; the BEM's stripe-contention and free-list-contention
// metrics (docs/observability.md) are fed from it. On a 1-core host this
// counter is also the proof that striping matters: thread-count
// ablations report contended acquisitions instead of wall-clock.
class ContendedMutex {
 public:
  ContendedMutex() = default;
  ContendedMutex(const ContendedMutex&) = delete;
  ContendedMutex& operator=(const ContendedMutex&) = delete;

  void lock() {
    if (!mu_.try_lock()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
  }
  void unlock() { mu_.unlock(); }
  bool try_lock() { return mu_.try_lock(); }

  // Acquisitions that found the mutex held and had to wait.
  uint64_t contended_acquisitions() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::atomic<uint64_t> contended_{0};
};

}  // namespace dynaprox::common

#endif  // DYNAPROX_COMMON_CONTENDED_MUTEX_H_
