// Section 7 extension bench: forward-proxy (edge) mode. Measures per-edge
// hit ratios, origin-link bytes, and the cost of node failover across an
// edge fleet serving a Zipf workload from many clients.

#include <cstdio>
#include <memory>

#include "analytical/model.h"
#include "appserver/script_registry.h"
#include "bench_util.h"
#include "common/rng.h"
#include "edge/edge_fleet.h"
#include "edge/edge_origin.h"
#include "net/byte_meter.h"
#include "net/transport.h"
#include "storage/table.h"
#include "workload/request_stream.h"
#include "workload/synthetic_site.h"

int main() {
  using namespace dynaprox;  // Bench binary: brevity over style here.

  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  benchutil::PrintHeader("Edge extension",
                         "Forward-proxy fleet: routing, coherency, failover",
                         params);

  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  workload::SyntheticSite site(params, 11, &repository, &registry);

  bem::BemOptions bem_options;
  bem_options.capacity = 2048;
  appserver::OriginOptions origin_options;
  origin_options.pad_headers_to_bytes =
      static_cast<size_t>(params.header_size);
  edge::EdgeOrigin origin(&registry, &repository, bem_options,
                          origin_options);

  net::ByteMeter origin_meter;  // Wire bytes origin -> edges.
  auto origin_direct =
      std::make_unique<net::DirectTransport>(origin.AsHandler());
  net::MeteredTransport origin_link(std::move(origin_direct), nullptr,
                                    &origin_meter);

  edge::EdgeFleetOptions fleet_options;
  fleet_options.proxy_options.capacity = 2048;
  edge::EdgeFleet fleet(&origin_link, fleet_options);
  const char* kNodes[] = {"edge-us", "edge-eu", "edge-ap"};
  for (const char* node : kNodes) {
    if (!origin.AddEdge(node).ok() || !fleet.AddNode(node).ok()) {
      std::printf("fleet setup failed\n");
      return 1;
    }
  }

  // 64 clients, Zipf pages, 12000 requests.
  workload::RequestStream stream(params.num_pages, params.zipf_alpha, 5);
  Rng client_rng(17);
  const int kRequests = 12000;
  int errors = 0;
  for (int i = 0; i < kRequests; ++i) {
    http::Request request = stream.Next();
    request.headers.Add(
        "X-Client",
        "client" + std::to_string(client_rng.NextBounded(64)));
    // Inject a failure window: edge-eu down for the middle third.
    if (i == kRequests / 3) (void)fleet.MarkDown("edge-eu");
    if (i == 2 * kRequests / 3) (void)fleet.MarkUp("edge-eu");
    http::Response response = fleet.Handle(request);
    if (response.status_code != 200) ++errors;
  }

  std::printf("requests=%d errors=%d origin_payload_bytes=%llu "
              "origin_wire_bytes=%llu\n",
              kRequests, errors,
              static_cast<unsigned long long>(origin_meter.payload_bytes()),
              static_cast<unsigned long long>(origin_meter.wire_bytes()));

  double no_cache_payload =
      static_cast<double>(kRequests) *
      analytical::ResponseSizeNoCache(params);
  std::printf("vs no-cache payload %.0f -> savings %.2f%%\n",
              no_cache_payload,
              (no_cache_payload - origin_meter.payload_bytes()) /
                  no_cache_payload * 100.0);

  for (const char* node : kNodes) {
    const bem::BackEndMonitor* monitor = *origin.MonitorFor(node);
    const dpc::DpcProxy* proxy = *fleet.NodeProxy(node);
    const bem::DirectoryStats& stats = monitor->stats();
    std::printf(
        "%-8s directory: hits=%llu misses=%llu hitRatio=%.3f | proxy: "
        "assembled=%llu recoveries=%llu\n",
        node, static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses), stats.HitRatio(),
        static_cast<unsigned long long>(proxy->stats().assembled),
        static_cast<unsigned long long>(proxy->stats().recoveries));
  }
  benchutil::PrintFooter();
  return errors == 0 ? 0 : 1;
}
