// The full product path over the event-driven server: origin+BEM behind
// an EpollServer, DPC proxy upstreaming over TCP, concurrent clients.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "dpc/proxy.h"
#include "net/epoll_server.h"
#include "net/tcp.h"
#include "storage/table.h"

namespace dynaprox {
namespace {

TEST(EpollProductTest, DpcOverEpollOriginServesCorrectPages) {
  storage::ContentRepository repository;
  appserver::ScriptRegistry registry;
  registry.RegisterOrReplace(
      "/page", [](appserver::ScriptContext& context) {
        context.Emit("<");
        Status status = context.CacheableBlock(
            bem::FragmentId("f"), [](appserver::ScriptContext& block) {
              block.Emit("fragment");
              return Status::Ok();
            });
        if (!status.ok()) return status;
        context.Emit(">");
        return Status::Ok();
      });

  bem::BemOptions bem_options;
  bem_options.capacity = 16;
  auto monitor = *bem::BackEndMonitor::Create(bem_options);
  appserver::OriginServer origin(&registry, &repository, monitor.get());

  net::EpollServer origin_server(origin.AsHandler(), 0, /*workers=*/2);
  ASSERT_TRUE(origin_server.Start().ok());

  net::TcpClientTransport to_origin("127.0.0.1", origin_server.port());
  dpc::ProxyOptions proxy_options;
  proxy_options.capacity = 16;
  dpc::DpcProxy proxy(&to_origin, proxy_options);
  net::EpollServer proxy_server(proxy.AsHandler(), 0, /*workers=*/2);
  ASSERT_TRUE(proxy_server.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      net::TcpClientTransport client("127.0.0.1", proxy_server.port());
      http::Request request;
      request.target = "/page";
      for (int i = 0; i < kPerThread; ++i) {
        Result<http::Response> response = client.RoundTrip(request);
        if (!response.ok() || response->body != "<fragment>") ++failures;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0);
  bem::DirectoryStats stats = monitor->stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(stats.hits, stats.misses);  // Overwhelmingly warm.

  proxy_server.Stop();
  origin_server.Stop();
}

}  // namespace
}  // namespace dynaprox
