// Deployment-claim bench: "order-of-magnitude reductions in ... end-to-end
// response times" (Sections 1/8). Prints the latency-model comparison of
// no-cache vs DPC response times across hit ratios, for both the
// server-side view (what the financial-institution deployment measured)
// and a WAN-inclusive end-user view.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analytical/model.h"
#include "bem/protocol.h"
#include "bem/tag_codec.h"
#include "bench_util.h"
#include "common/buffer_chain.h"
#include "dpc/proxy.h"
#include "net/connection_pool.h"
#include "net/tcp.h"
#include "sim/latency.h"

namespace {

void PrintSeries(const char* label, dynaprox::sim::LatencyParams latency,
                 dynaprox::analytical::ModelParams params) {
  std::printf("--- %s ---\n", label);
  std::printf("%10s %14s %14s %10s %12s %12s\n", "hitRatio", "noCache(ms)",
              "withDpc(ms)", "speedup", "p50 speedup", "p99 speedup");
  for (double h : {0.0, 0.5, 0.8, 0.9, 0.95, 0.98, 1.0}) {
    params.hit_ratio = h;
    double no_cache =
        dynaprox::sim::ExpectedResponseTimeNoCacheMs(latency, params);
    double with_cache =
        dynaprox::sim::ExpectedResponseTimeWithCacheMs(latency, params);
    // Percentiles come from the same bucketed histograms the servers
    // export at /_dynaprox/metrics, so a bench speedup and a PromQL
    // histogram_quantile() ratio are computed the same way.
    dynaprox::metrics::LatencyHistogram no_cache_hist(
        dynaprox::benchutil::LatencyMsBounds());
    dynaprox::metrics::LatencyHistogram with_cache_hist(
        dynaprox::benchutil::LatencyMsBounds());
    dynaprox::sim::SampleResponseTimesInto(latency, params, 20000, 42,
                                           &no_cache_hist, &with_cache_hist);
    auto no_cache_snap = no_cache_hist.snapshot();
    auto with_cache_snap = with_cache_hist.snapshot();
    std::printf("%10.2f %14.2f %14.2f %9.1fx %11.1fx %11.1fx\n", h,
                no_cache, with_cache, no_cache / with_cache,
                no_cache_snap.Percentile(0.5) /
                    with_cache_snap.Percentile(0.5),
                no_cache_snap.Percentile(0.99) /
                    with_cache_snap.Percentile(0.99));
  }
}

// --- Measured TTFB: buffered vs streaming scan-and-splice ----------------
//
// A paced origin emits a template in 16KB chunks, ~250us apart (a stand-in
// for generation time at the application server). The buffered DPC cannot
// answer until the last chunk lands, so its time-to-first-byte grows
// linearly with template size; the streaming DPC flushes assembled head
// bytes as they resolve, so TTFB stays at roughly one chunk regardless of
// size.

// Origin body stream: the template in paced chunks.
class PacedTemplateStream : public dynaprox::http::BodyStream {
 public:
  PacedTemplateStream(dynaprox::common::Buffer wire, size_t chunk_bytes,
                      dynaprox::MicroTime pace_micros)
      : wire_(std::move(wire)),
        chunk_bytes_(chunk_bytes),
        pace_micros_(pace_micros) {}

  dynaprox::Result<dynaprox::common::BufferChain> Next() override {
    if (at_ >= wire_->size()) return dynaprox::common::BufferChain();
    if (at_ > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(pace_micros_));
    }
    std::string_view bytes(*wire_);
    dynaprox::common::BufferChain out;
    out.Append(wire_, bytes.substr(at_, chunk_bytes_));
    at_ += std::min(chunk_bytes_, wire_->size() - at_);
    return out;
  }

 private:
  dynaprox::common::Buffer wire_;
  size_t chunk_bytes_;
  dynaprox::MicroTime pace_micros_;
  size_t at_ = 0;
};

// Client-measured time from sending the request to the first body byte,
// and to the last, via the streaming client (works against both proxies:
// a Content-Length response still yields its first chunk on arrival).
struct TtfbSample {
  double ttfb_ms = 0;
  double total_ms = 0;
  size_t body_bytes = 0;
};

TtfbSample MeasureOnce(dynaprox::net::Transport& client,
                       const dynaprox::http::Request& request) {
  using Clock = std::chrono::steady_clock;
  TtfbSample sample;
  auto start = Clock::now();
  auto streaming = client.RoundTripStreaming(request);
  if (!streaming.ok()) abort();
  bool first = true;
  for (;;) {
    auto chunk = streaming->body->Next();
    if (!chunk.ok()) abort();
    if (chunk->empty()) break;
    if (first) {
      sample.ttfb_ms = std::chrono::duration<double, std::milli>(
                           Clock::now() - start)
                           .count();
      first = false;
    }
    sample.body_bytes += chunk->size();
  }
  sample.total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  return sample;
}

constexpr size_t kChunkBytes = 16 * 1024;
constexpr dynaprox::MicroTime kPaceMicros = 250;

void PrintTtfbSweep() {
  std::printf(
      "--- measured TTFB: buffered vs streaming scan-and-splice ---\n"
      "(origin paces the template at 16KB per %lldus; loopback sockets)\n",
      static_cast<long long>(kPaceMicros));
  std::printf("%12s %14s %14s %14s %12s\n", "template", "buffered(ms)",
              "streaming(ms)", "stream total", "TTFB ratio");

  for (size_t size : {size_t{4} << 10, size_t{64} << 10, size_t{256} << 10,
                      size_t{1} << 20}) {
    // Template: literal head, one SET fragment, literal tail — the scan
    // and splice run for real, but the page is mostly literal bytes.
    std::string wire = "<html><head>ttfb sweep</head><body>";
    dynaprox::bem::TagCodec::AppendSet(1, std::string(512, 'f'), wire);
    while (wire.size() < size) {
      wire.append(std::string(std::min(size - wire.size(), size_t{1024}),
                              'p'));
    }
    wire += "</body></html>";
    dynaprox::common::Buffer shared_wire =
        dynaprox::common::MakeBuffer(std::move(wire));

    dynaprox::net::TcpServer origin([shared_wire](
                                        const dynaprox::http::Request&) {
      dynaprox::http::Response response;
      response.headers.Set(dynaprox::bem::kTemplateHeader, "1");
      response.body_stream = std::make_shared<PacedTemplateStream>(
          shared_wire, kChunkBytes, kPaceMicros);
      return response;
    });
    if (!origin.Start().ok()) abort();

    double ttfb_ms[2] = {0, 0};
    double total_ms[2] = {0, 0};
    for (int streaming = 0; streaming < 2; ++streaming) {
      dynaprox::net::PooledTransportOptions pool_options;
      pool_options.pool.max_connections = 2;
      dynaprox::net::PooledClientTransport upstream(
          "127.0.0.1", origin.port(), pool_options);
      dynaprox::dpc::ProxyOptions options;
      options.capacity = 64;
      options.streaming = streaming == 1;
      dynaprox::dpc::DpcProxy proxy(&upstream, options);
      dynaprox::net::TcpServer front(proxy.AsHandler());
      if (!front.Start().ok()) abort();
      dynaprox::net::TcpClientTransport client("127.0.0.1", front.port());
      dynaprox::http::Request request;
      request.target = "/ttfb";
      constexpr int kRounds = 5;
      double best_ttfb = 1e9, best_total = 1e9;
      for (int round = 0; round < kRounds; ++round) {
        TtfbSample sample = MeasureOnce(client, request);
        best_ttfb = std::min(best_ttfb, sample.ttfb_ms);
        best_total = std::min(best_total, sample.total_ms);
      }
      ttfb_ms[streaming] = best_ttfb;
      total_ms[streaming] = best_total;
      front.Stop();
    }
    origin.Stop();

    char label[32];
    std::snprintf(label, sizeof(label), "%zuKB", size >> 10);
    std::printf("%12s %14.2f %14.2f %14.2f %11.1fx\n", label, ttfb_ms[0],
                ttfb_ms[1], total_ms[1],
                ttfb_ms[1] > 0 ? ttfb_ms[0] / ttfb_ms[1] : 0.0);
  }
  std::printf(
      "expectation: buffered TTFB grows ~linearly with template size "
      "(it is the full transfer), streaming TTFB stays ~flat at one "
      "chunk's pacing\n");
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams params = ModelParams::Table2Baseline();
  params.cacheability = 1.0;  // The deployment tagged its whole page set.
  dynaprox::benchutil::PrintHeader(
      "Response-time claim",
      "End-to-end latency, no-cache vs DPC (latency model)", params);

  dynaprox::sim::LatencyParams server_side;
  server_side.wan_rtt_ms = 0;
  server_side.wan_bytes_per_ms = 0;
  PrintSeries("server-side latency (deployment metric)", server_side,
              params);

  dynaprox::sim::LatencyParams end_user;  // Defaults include the WAN leg.
  PrintSeries("end-user latency (reverse proxy: WAN leg unchanged)",
              end_user, params);

  std::printf(
      "expectation: server-side speedup exceeds 10x as h -> 1; end-user "
      "speedup is WAN-bounded (the paper's motivation for forward-proxy "
      "mode, Section 7)\n");

  PrintTtfbSweep();
  dynaprox::benchutil::PrintFooter();
  return 0;
}
