#include "net/transport.h"

#include <memory>

#include <gtest/gtest.h>

namespace dynaprox::net {
namespace {

http::Response Echo(const http::Request& request) {
  http::Response response = http::Response::MakeOk("echo:" + request.target);
  return response;
}

TEST(DirectTransportTest, InvokesHandler) {
  DirectTransport transport(Echo);
  http::Request request;
  request.target = "/abc";
  Result<http::Response> response = transport.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "echo:/abc");
}

TEST(MeteredTransportTest, CountsBothDirections) {
  ByteMeter request_meter{ProtocolModel::PayloadOnly()};
  ByteMeter response_meter{ProtocolModel::PayloadOnly()};
  MeteredTransport transport(std::make_unique<DirectTransport>(Echo),
                             &request_meter, &response_meter);
  http::Request request;
  request.target = "/x";
  Result<http::Response> response = transport.RoundTrip(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(request_meter.messages(), 1u);
  EXPECT_EQ(request_meter.payload_bytes(), request.SerializedSize());
  EXPECT_EQ(response_meter.messages(), 1u);
  EXPECT_EQ(response_meter.payload_bytes(), response->SerializedSize());
}

TEST(MeteredTransportTest, NullMetersAreSkipped) {
  MeteredTransport transport(std::make_unique<DirectTransport>(Echo),
                             nullptr, nullptr);
  http::Request request;
  EXPECT_TRUE(transport.RoundTrip(request).ok());
}

}  // namespace
}  // namespace dynaprox::net
