
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firewall/firewall.cc" "src/firewall/CMakeFiles/dynaprox_firewall.dir/firewall.cc.o" "gcc" "src/firewall/CMakeFiles/dynaprox_firewall.dir/firewall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dpc/CMakeFiles/dynaprox_dpc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
