#include "net/fault_injection.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bem/protocol.h"

namespace dynaprox::net {
namespace {

http::Response Echo(const http::Request& request) {
  return http::Response::MakeOk("echo:" + std::string(request.Path()));
}

TEST(FaultInjectionTest, PassesThroughWithNoFaultsConfigured) {
  DirectTransport inner(Echo);
  FaultInjectingTransport transport(&inner);
  for (int i = 0; i < 50; ++i) {
    Result<http::Response> r = transport.RoundTrip(http::Request{});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->body, "echo:/");
  }
  FaultInjectionStats stats = transport.stats();
  EXPECT_EQ(stats.passed, 50u);
  EXPECT_EQ(stats.injected_errors, 0u);
}

TEST(FaultInjectionTest, InjectsErrorsAtConfiguredRate) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.error_probability = 0.5;
  options.seed = 7;
  FaultInjectingTransport transport(&inner, options);
  int failures = 0;
  for (int i = 0; i < 400; ++i) {
    if (!transport.RoundTrip(http::Request{}).ok()) ++failures;
  }
  FaultInjectionStats stats = transport.stats();
  EXPECT_EQ(stats.injected_errors, static_cast<uint64_t>(failures));
  // Loose bounds: deterministic given the seed, but robust to reseeding.
  EXPECT_GT(failures, 120);
  EXPECT_LT(failures, 280);
}

TEST(FaultInjectionTest, SameSeedReplaysSameFaultSequence) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.error_probability = 0.3;
  options.seed = 99;
  auto run = [&] {
    FaultInjectingTransport transport(&inner, options);
    std::vector<bool> outcomes;
    for (int i = 0; i < 100; ++i) {
      outcomes.push_back(transport.RoundTrip(http::Request{}).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjectionTest, DownSwitchBlackHolesEverything) {
  DirectTransport inner(Echo);
  FaultInjectingTransport transport(&inner);
  ASSERT_TRUE(transport.RoundTrip(http::Request{}).ok());
  transport.set_down(true);
  for (int i = 0; i < 5; ++i) {
    Result<http::Response> r = transport.RoundTrip(http::Request{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  EXPECT_EQ(transport.stats().down_failures, 5u);
  transport.set_down(false);
  EXPECT_TRUE(transport.RoundTrip(http::Request{}).ok());
  // The inner transport never saw the 5 down-failures.
  EXPECT_EQ(transport.stats().passed, 2u);
}

TEST(FaultInjectionTest, GarbageResponsesCarryTemplateHeader) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.garbage_probability = 1.0;
  FaultInjectingTransport transport(&inner, options);
  Result<http::Response> r = transport.RoundTrip(http::Request{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status_code, 200);
  EXPECT_TRUE(r->headers.Has(bem::kTemplateHeader));
  EXPECT_NE(r->body, "echo:/");
  EXPECT_EQ(transport.stats().injected_garbage, 1u);
}

TEST(FaultInjectionTest, DelayForwardsToInner) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.delay_probability = 1.0;
  options.delay_micros = 1;  // Keep the test fast.
  FaultInjectingTransport transport(&inner, options);
  Result<http::Response> r = transport.RoundTrip(http::Request{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "echo:/");
  FaultInjectionStats stats = transport.stats();
  EXPECT_EQ(stats.injected_delays, 1u);
  EXPECT_EQ(stats.passed, 1u);
}

TEST(FaultInjectionTest, BlackHoleFailsAfterSimulatedTimeout) {
  DirectTransport inner(Echo);
  FaultInjectionOptions options;
  options.black_hole_probability = 1.0;
  options.black_hole_micros = 1;
  FaultInjectingTransport transport(&inner, options);
  Result<http::Response> r = transport.RoundTrip(http::Request{});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("timeout"), std::string::npos);
  EXPECT_EQ(transport.stats().injected_black_holes, 1u);
}

}  // namespace
}  // namespace dynaprox::net
