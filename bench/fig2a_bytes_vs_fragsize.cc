// Figure 2(a): analytical B_C / B_NC as fragment size varies 0..5KB.
// Paper shape: ratio > 1 near zero (tags dominate), steep drop below 1KB,
// flattening toward 1 - cacheability*h for large fragments.

#include <cstdio>

#include "analytical/model.h"
#include "bench_util.h"

namespace {

void PrintSeries(const char* label,
                 dynaprox::analytical::ModelParams params) {
  std::printf("--- series: %s (cacheability=%.2f) ---\n", label,
              params.cacheability);
  std::printf("%12s %16s %16s %12s\n", "fragKB", "B_NC", "B_C", "ratio");
  for (int step = 0; step <= 20; ++step) {
    params.fragment_size = 250.0 * step;
    double nc = dynaprox::analytical::ExpectedBytesNoCache(params);
    double c = dynaprox::analytical::ExpectedBytesWithCache(params);
    std::printf("%12.2f %16.0f %16.0f %12.4f\n",
                params.fragment_size / 1000.0, nc, c,
                dynaprox::analytical::BytesRatio(params));
  }
}

}  // namespace

int main() {
  using dynaprox::analytical::ModelParams;
  ModelParams table2 = ModelParams::Table2Baseline();
  dynaprox::benchutil::PrintHeader(
      "Figure 2(a)", "Bytes Served Cache/No-Cache vs Fragment Size",
      table2);
  // Table 2 lists cacheability 0.6; the published curve matches 0.8 (see
  // EXPERIMENTS.md). Print both.
  PrintSeries("table2-baseline", table2);
  PrintSeries("paper-figure-settings", ModelParams::PaperFigureSettings());
  dynaprox::benchutil::PrintFooter();
  return 0;
}
