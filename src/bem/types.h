#ifndef DYNAPROX_BEM_TYPES_H_
#define DYNAPROX_BEM_TYPES_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace dynaprox::bem {

// The dpcKey of the paper (4.3.3): a small integer shared between the BEM's
// cache directory and the DPC's slot array. Using the common integer key is
// what removes the need for explicit BEM->DPC control messages.
using DpcKey = uint32_t;

inline constexpr DpcKey kInvalidDpcKey = UINT32_MAX;

// Identifies a fragment: code-block name plus its parameter list
// (paper 4.3.3: "fragmentID: unique fragment identifier
// (name+parameterList)"). Parameters are kept sorted so the canonical form
// is order-insensitive.
struct FragmentId {
  std::string name;
  std::map<std::string, std::string> params;

  FragmentId() = default;
  explicit FragmentId(std::string name_in) : name(std::move(name_in)) {}
  FragmentId(std::string name_in, std::map<std::string, std::string> params_in)
      : name(std::move(name_in)), params(std::move(params_in)) {}

  // Canonical directory key: "name" or "name?k1=v1&k2=v2".
  std::string Canonical() const {
    std::string out = name;
    char sep = '?';
    for (const auto& [key, value] : params) {
      out += sep;
      out += key;
      out += '=';
      out += value;
      sep = '&';
    }
    return out;
  }

  friend bool operator==(const FragmentId& a, const FragmentId& b) {
    return a.name == b.name && a.params == b.params;
  }
  friend bool operator<(const FragmentId& a, const FragmentId& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.params < b.params;
  }
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_TYPES_H_
