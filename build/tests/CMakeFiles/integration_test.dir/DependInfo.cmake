
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/bem_restart_test.cc" "tests/CMakeFiles/integration_test.dir/integration/bem_restart_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/bem_restart_test.cc.o.d"
  "/root/repo/tests/integration/concurrency_test.cc" "tests/CMakeFiles/integration_test.dir/integration/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/concurrency_test.cc.o.d"
  "/root/repo/tests/integration/correctness_test.cc" "tests/CMakeFiles/integration_test.dir/integration/correctness_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/correctness_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/integration/epoll_product_test.cc" "tests/CMakeFiles/integration_test.dir/integration/epoll_product_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/epoll_product_test.cc.o.d"
  "/root/repo/tests/integration/firewall_sim_test.cc" "tests/CMakeFiles/integration_test.dir/integration/firewall_sim_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/firewall_sim_test.cc.o.d"
  "/root/repo/tests/integration/invalidation_test.cc" "tests/CMakeFiles/integration_test.dir/integration/invalidation_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/invalidation_test.cc.o.d"
  "/root/repo/tests/integration/latency_test.cc" "tests/CMakeFiles/integration_test.dir/integration/latency_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/latency_test.cc.o.d"
  "/root/repo/tests/integration/recovery_test.cc" "tests/CMakeFiles/integration_test.dir/integration/recovery_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/recovery_test.cc.o.d"
  "/root/repo/tests/integration/reproduction_test.cc" "tests/CMakeFiles/integration_test.dir/integration/reproduction_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/reproduction_test.cc.o.d"
  "/root/repo/tests/integration/sim_test.cc" "tests/CMakeFiles/integration_test.dir/integration/sim_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/sim_test.cc.o.d"
  "/root/repo/tests/integration/status_endpoint_test.cc" "tests/CMakeFiles/integration_test.dir/integration/status_endpoint_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/status_endpoint_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/dynaprox_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dynaprox_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaprox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/dynaprox_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/dpc/CMakeFiles/dynaprox_dpc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynaprox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/appserver/CMakeFiles/dynaprox_appserver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/dynaprox_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
