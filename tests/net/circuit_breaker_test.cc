#include "net/circuit_breaker.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace dynaprox::net {
namespace {

CircuitBreakerOptions FastBreaker(const Clock* clock) {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.error_threshold = 0.5;
  options.cooldown = {/*max_attempts=*/3,
                      /*initial_backoff_micros=*/100 * kMicrosPerMilli};
  options.half_open_probes = 1;
  options.close_after = 2;
  options.clock = clock;
  return options;
}

// Admits and records `n` outcomes; returns how many were admitted.
int Drive(CircuitBreaker& breaker, int n, bool success) {
  int admitted = 0;
  for (int i = 0; i < n; ++i) {
    if (!breaker.Allow()) continue;
    ++admitted;
    breaker.Record(success);
  }
  return admitted;
}

TEST(CircuitBreakerTest, StaysClosedUnderSuccess) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  EXPECT_EQ(Drive(breaker, 100, true), 100);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().rejections, 0u);
}

TEST(CircuitBreakerTest, DoesNotTripBelowMinSamples) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  Drive(breaker, 3, false);  // 100% errors but only 3 samples (< 4).
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, OpensAtErrorThresholdAndRejects) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  Drive(breaker, 4, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 1u);
  // Subsequent requests fast-fail without reaching the origin.
  EXPECT_EQ(Drive(breaker, 10, true), 0);
  EXPECT_EQ(breaker.stats().rejections, 10u);
}

TEST(CircuitBreakerTest, MixedWindowOpensOnlyAboveThreshold) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  // 8-slot window at 3/8 errors: below the 0.5 threshold.
  Drive(breaker, 5, true);
  Drive(breaker, 3, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // One more error makes it 4/8 as successes roll out of the window.
  Drive(breaker, 1, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenProbeAfterCooldownThenCloses) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  Drive(breaker, 4, false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  clock.AdvanceMicros(99 * kMicrosPerMilli);
  EXPECT_FALSE(breaker.Allow());  // Cooldown not over yet.
  clock.AdvanceMicros(2 * kMicrosPerMilli);

  ASSERT_TRUE(breaker.Allow());  // First probe admitted.
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // Only one probe slot: a concurrent request is rejected.
  EXPECT_FALSE(breaker.Allow());
  breaker.Record(true);

  ASSERT_TRUE(breaker.Allow());  // close_after=2: one more probe needed.
  breaker.Record(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_EQ(breaker.stats().probes, 2u);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithDoubledCooldown) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  Drive(breaker, 4, false);
  clock.AdvanceMicros(100 * kMicrosPerMilli);
  ASSERT_TRUE(breaker.Allow());
  breaker.Record(false);  // Probe fails: back to open.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.stats().opens, 2u);

  // The cooldown doubled: 100 ms is no longer enough, 200 ms is.
  clock.AdvanceMicros(150 * kMicrosPerMilli);
  EXPECT_FALSE(breaker.Allow());
  clock.AdvanceMicros(60 * kMicrosPerMilli);
  EXPECT_TRUE(breaker.Allow());
  breaker.Record(true);
}

TEST(CircuitBreakerTest, CooldownCapsAtConfiguredDoublings) {
  SimClock clock;
  CircuitBreakerOptions options = FastBreaker(&clock);
  options.cooldown.max_attempts = 2;  // Cap at 100 << 1 = 200 ms.
  CircuitBreaker breaker(options);
  Drive(breaker, 4, false);
  for (int reopen = 0; reopen < 4; ++reopen) {
    clock.AdvanceMicros(200 * kMicrosPerMilli);
    ASSERT_TRUE(breaker.Allow()) << "reopen " << reopen;
    breaker.Record(false);
  }
  // Even after several consecutive opens, 200 ms still reaches half-open.
  clock.AdvanceMicros(200 * kMicrosPerMilli);
  EXPECT_TRUE(breaker.Allow());
  breaker.Record(true);
}

TEST(CircuitBreakerTest, WindowResetsAfterClose) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  Drive(breaker, 4, false);
  clock.AdvanceMicros(100 * kMicrosPerMilli);
  ASSERT_TRUE(breaker.Allow());
  breaker.Record(true);
  ASSERT_TRUE(breaker.Allow());
  breaker.Record(true);
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  // The pre-outage errors were discarded: it takes min_samples fresh
  // errors to trip again, not one.
  Drive(breaker, 3, false);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  Drive(breaker, 1, false);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, StragglerResultWhileOpenIsIgnored) {
  SimClock clock;
  CircuitBreaker breaker(FastBreaker(&clock));
  Drive(breaker, 4, false);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.Record(true);  // In-flight success lands after the trip.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  CircuitBreakerStats stats = breaker.stats();
  EXPECT_EQ(stats.window_samples, 4);
  EXPECT_EQ(stats.window_error_rate, 1.0);
}

class FlippableTransport : public Transport {
 public:
  Result<http::Response> RoundTrip(const http::Request&) override {
    ++round_trips_;
    if (fail_) return Status::IoError("origin down");
    if (answer_500_) {
      return http::Response::MakeError(500, "Internal Server Error", "boom");
    }
    return http::Response::MakeOk("ok");
  }

  bool fail_ = false;
  bool answer_500_ = false;
  int round_trips_ = 0;
};

TEST(CircuitBreakerTransportTest, RejectionsNeverReachInnerTransport) {
  SimClock clock;
  FlippableTransport inner;
  CircuitBreakerTransportOptions options;
  options.breaker = FastBreaker(&clock);
  CircuitBreakerTransport transport(&inner, options);

  inner.fail_ = true;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(transport.RoundTrip(http::Request{}).ok());
  }
  ASSERT_EQ(transport.breaker().state(), BreakerState::kOpen);
  int dials_at_open = inner.round_trips_;

  Result<http::Response> rejected = transport.RoundTrip(http::Request{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(IsBreakerRejection(rejected.status()));
  EXPECT_EQ(inner.round_trips_, dials_at_open);  // Fast-failed, no dial.
}

TEST(CircuitBreakerTransportTest, RecoversThroughProbes) {
  SimClock clock;
  FlippableTransport inner;
  CircuitBreakerTransportOptions options;
  options.breaker = FastBreaker(&clock);
  CircuitBreakerTransport transport(&inner, options);

  inner.fail_ = true;
  for (int i = 0; i < 4; ++i) transport.RoundTrip(http::Request{});
  ASSERT_EQ(transport.breaker().state(), BreakerState::kOpen);

  inner.fail_ = false;
  clock.AdvanceMicros(100 * kMicrosPerMilli);
  EXPECT_TRUE(transport.RoundTrip(http::Request{}).ok());  // Probe 1.
  EXPECT_TRUE(transport.RoundTrip(http::Request{}).ok());  // Probe 2.
  EXPECT_EQ(transport.breaker().state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTransportTest, Http5xxCountsAsFailureWhenConfigured) {
  SimClock clock;
  FlippableTransport inner;
  CircuitBreakerTransportOptions options;
  options.breaker = FastBreaker(&clock);
  CircuitBreakerTransport transport(&inner, options);

  inner.answer_500_ = true;
  for (int i = 0; i < 4; ++i) {
    // The 500 is an answer, not a transport failure: it passes through.
    Result<http::Response> r = transport.RoundTrip(http::Request{});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status_code, 500);
  }
  EXPECT_EQ(transport.breaker().state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTransportTest, Http5xxIgnoredWhenDisabled) {
  SimClock clock;
  FlippableTransport inner;
  CircuitBreakerTransportOptions options;
  options.breaker = FastBreaker(&clock);
  options.count_http_5xx = false;
  CircuitBreakerTransport transport(&inner, options);

  inner.answer_500_ = true;
  for (int i = 0; i < 20; ++i) transport.RoundTrip(http::Request{});
  EXPECT_EQ(transport.breaker().state(), BreakerState::kClosed);
}

}  // namespace
}  // namespace dynaprox::net
