#include <gtest/gtest.h>

#include "http/parser.h"

namespace dynaprox::http {
namespace {

using Violation = RequestReader::LimitViolation;

TEST(ReaderLimitsTest, DefaultLimitsAreUnlimited) {
  RequestReader reader;
  std::string big_header(64 * 1024, 'h');
  reader.Feed("GET / HTTP/1.1\r\nX-Big: " + big_header + "\r\n\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok()) << next->status().ToString();
  EXPECT_EQ(reader.limit_violation(), Violation::kNone);
}

TEST(ReaderLimitsTest, UnderCapRequestParses) {
  RequestReader reader;
  reader.set_limits({1024, 1024});
  reader.Feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok()) << next->status().ToString();
  EXPECT_EQ(next->value().body, "hello");
}

TEST(ReaderLimitsTest, TerminatedOversizeHeaderFails) {
  RequestReader reader;
  reader.set_limits({128, 0});
  reader.Feed("GET / HTTP/1.1\r\nX-Big: " + std::string(256, 'h') +
              "\r\n\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_EQ(next->status().code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(reader.limit_violation(), Violation::kHeaderBytes);
  EXPECT_TRUE(reader.failed());
}

TEST(ReaderLimitsTest, StreamingHeaderFailsBeforeTerminator) {
  // A slowloris peer drips header bytes forever; the reader must fail
  // (and stop buffering) once the cap is passed, terminator or not.
  RequestReader reader;
  reader.set_limits({128, 0});
  reader.Feed("GET / HTTP/1.1\r\nX-Drip: ");
  EXPECT_FALSE(reader.Next().has_value());  // Under cap: keep waiting.
  reader.Feed(std::string(256, 'd'));       // No terminator in sight.
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_EQ(next->status().code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(reader.limit_violation(), Violation::kHeaderBytes);
  // The hostile bytes are released, not retained.
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ReaderLimitsTest, DeclaredContentLengthOverCapFailsBeforeBuffering) {
  // The headers alone must trip the body cap — the reader may never
  // commit to buffering a body the declaration already proves oversized.
  RequestReader reader;
  reader.set_limits({0, 1024});
  reader.Feed("POST / HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_EQ(next->status().code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ(reader.limit_violation(), Violation::kBodyBytes);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ReaderLimitsTest, ChunkedBodyOverCapFails) {
  RequestReader reader;
  reader.set_limits({0, 16});
  reader.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "20\r\n" +
      std::string(32, 'c') + "\r\n0\r\n\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_EQ(reader.limit_violation(), Violation::kBodyBytes);
}

TEST(ReaderLimitsTest, SmallChunkUnderCapBodyNotRejectedWhileIncomplete) {
  // 900 payload bytes sent as 1-byte chunks inflate the encoding ~6x.
  // The cap judges payload bytes, not framing: the incomplete body must
  // stay pending (not 413) and parse once the terminator arrives.
  RequestReader reader;
  reader.set_limits({0, 1024});
  std::string encoded;
  for (int i = 0; i < 900; ++i) encoded += "1\r\nc\r\n";
  reader.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
              encoded);
  EXPECT_FALSE(reader.Next().has_value());  // Incomplete, not rejected.
  EXPECT_FALSE(reader.failed());
  reader.Feed("0\r\n\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok()) << next->status().ToString();
  EXPECT_EQ(next->value().body.size(), 900u);
}

TEST(ReaderLimitsTest, DeclaredChunkOverCapFailsBeforeDelivery) {
  // Declaring one chunk bigger than the cap commits the stream to an
  // oversize body; the reader must fail before buffering its bytes.
  RequestReader reader;
  reader.set_limits({0, 16});
  reader.Feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffff\r\n");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_EQ(reader.limit_violation(), Violation::kBodyBytes);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ReaderLimitsTest, ChunkedFramingGarbageHitsBackstop) {
  // An endless chunk-size line decodes to zero payload bytes, so the
  // payload cap alone would never trip; the raw backstop must still
  // bound the buffer.
  RequestReader reader;
  reader.set_limits({0, 16});
  reader.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  reader.Feed(std::string(8 * 16 + 4096 + 64, 'a'));  // No CRLF ever.
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->ok());
  EXPECT_EQ(reader.limit_violation(), Violation::kBodyBytes);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(ReaderLimitsTest, FailedReaderStaysFailed) {
  RequestReader reader;
  reader.set_limits({64, 0});
  reader.Feed(std::string(128, 'x'));
  auto first = reader.Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->ok());
  // Feeding a well-formed request afterwards must not resurrect the
  // stream: framing after a violation is untrustworthy.
  reader.Feed("GET / HTTP/1.1\r\n\r\n");
  auto second = reader.Next();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->ok());
}

TEST(ReaderLimitsTest, BodyExactlyAtCapPasses) {
  RequestReader reader;
  reader.set_limits({0, 5});
  reader.Feed("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  auto next = reader.Next();
  ASSERT_TRUE(next.has_value());
  ASSERT_TRUE(next->ok()) << next->status().ToString();
  EXPECT_EQ(next->value().body, "hello");
}

}  // namespace
}  // namespace dynaprox::http
