file(REMOVE_RECURSE
  "CMakeFiles/edge_test.dir/edge/edge_fleet_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/edge_fleet_test.cc.o.d"
  "CMakeFiles/edge_test.dir/edge/edge_origin_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/edge_origin_test.cc.o.d"
  "CMakeFiles/edge_test.dir/edge/hash_ring_test.cc.o"
  "CMakeFiles/edge_test.dir/edge/hash_ring_test.cc.o.d"
  "edge_test"
  "edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
