// Reproduction regression tests: pins the headline numbers recorded in
// EXPERIMENTS.md (scaled-down request counts, wider tolerances) so
// refactors cannot silently drift the paper's results.

#include <gtest/gtest.h>

#include "analytical/model.h"
#include "sim/experiment.h"

namespace dynaprox::sim {
namespace {

ExperimentConfig SmallConfig(analytical::ModelParams params) {
  ExperimentConfig config;
  config.params = params;
  config.warmup_requests = 500;
  config.measured_requests = 4000;
  return config;
}

TEST(ReproductionTest, Figure2aShape) {
  // Ratio > 1 at tiny fragments, < 0.6 at 1KB, asymptote ~1 - X*h.
  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  params.fragment_size = 1;
  EXPECT_GT(analytical::BytesRatio(params), 1.0);
  params.fragment_size = 1000;
  EXPECT_NEAR(analytical::BytesRatio(params), 0.5797, 1e-3);
  params = analytical::ModelParams::PaperFigureSettings();
  params.fragment_size = 5000;
  EXPECT_NEAR(analytical::BytesRatio(params), 0.3775, 1e-3);
}

TEST(ReproductionTest, Figure2bBreakEvenAndCeiling) {
  analytical::ModelParams params =
      analytical::ModelParams::PaperFigureSettings();
  params.hit_ratio = 0.01;
  EXPECT_LT(analytical::SavingsPercent(params), 0.0);
  params.hit_ratio = 0.02;
  EXPECT_GT(analytical::SavingsPercent(params), 0.0);
  params.hit_ratio = 1.0;
  EXPECT_NEAR(analytical::SavingsPercent(params), 70.4, 0.1);
}

TEST(ReproductionTest, Figure3aCrossing) {
  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  params.cacheability = 0.70;
  EXPECT_LT(analytical::FirewallSavingsPercent(params), 0.0);
  params.cacheability = 0.75;
  EXPECT_GT(analytical::FirewallSavingsPercent(params), 0.0);
}

TEST(ReproductionTest, Figure3bExperimentalAboveAnalytical) {
  ExperimentConfig config =
      SmallConfig(analytical::ModelParams::Table2Baseline());
  Result<ExperimentResult> result = RunBytesExperiment(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // EXPERIMENTS.md: analytical 0.580, payload ~0.589, wire ~0.599 at 1KB.
  EXPECT_NEAR(result->analytic_ratio, 0.5797, 1e-3);
  EXPECT_NEAR(result->measured_payload_ratio, 0.589, 0.02);
  EXPECT_GT(result->measured_wire_ratio, result->analytic_ratio);
}

TEST(ReproductionTest, Figure5ExperimentalBelowAnalytical) {
  analytical::ModelParams params =
      analytical::ModelParams::Table2Baseline();
  params.hit_ratio = 0.8;
  ExperimentConfig config = SmallConfig(params);
  Result<ExperimentResult> result = RunBytesExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->analytic_savings_percent, 42.03, 0.1);
  EXPECT_LT(result->measured_wire_savings_percent,
            result->analytic_savings_percent);
  EXPECT_NEAR(result->measured_wire_savings_percent, 40.1, 2.0);
}

TEST(ReproductionTest, SeventyPercentClaim) {
  analytical::ModelParams params =
      analytical::ModelParams::PaperFigureSettings();
  params.hit_ratio = 1.0;
  ExperimentConfig config = SmallConfig(params);
  Result<ExperimentResult> result = RunBytesExperiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->analytic_savings_percent, 70.4, 0.1);
  EXPECT_GT(result->measured_payload_savings_percent, 68.0);
}

}  // namespace
}  // namespace dynaprox::sim
