file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_workload.dir/driver.cc.o"
  "CMakeFiles/dynaprox_workload.dir/driver.cc.o.d"
  "CMakeFiles/dynaprox_workload.dir/personalized_site.cc.o"
  "CMakeFiles/dynaprox_workload.dir/personalized_site.cc.o.d"
  "CMakeFiles/dynaprox_workload.dir/request_stream.cc.o"
  "CMakeFiles/dynaprox_workload.dir/request_stream.cc.o.d"
  "CMakeFiles/dynaprox_workload.dir/synthetic_site.cc.o"
  "CMakeFiles/dynaprox_workload.dir/synthetic_site.cc.o.d"
  "CMakeFiles/dynaprox_workload.dir/trace.cc.o"
  "CMakeFiles/dynaprox_workload.dir/trace.cc.o.d"
  "libdynaprox_workload.a"
  "libdynaprox_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
