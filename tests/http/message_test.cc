#include "http/message.h"

#include <gtest/gtest.h>

namespace dynaprox::http {
namespace {

TEST(RequestTest, PathAndQuerySplit) {
  Request request;
  request.target = "/catalog.jsp?categoryID=Fiction&page=2";
  EXPECT_EQ(request.Path(), "/catalog.jsp");
  EXPECT_EQ(request.QueryString(), "categoryID=Fiction&page=2");
  auto params = request.QueryParams();
  EXPECT_EQ(params["categoryID"], "Fiction");
  EXPECT_EQ(params["page"], "2");
}

TEST(RequestTest, NoQueryString) {
  Request request;
  request.target = "/index.html";
  EXPECT_EQ(request.Path(), "/index.html");
  EXPECT_EQ(request.QueryString(), "");
  EXPECT_TRUE(request.QueryParams().empty());
}

TEST(RequestTest, SerializeProducesWireFormat) {
  Request request;
  request.method = "GET";
  request.target = "/x";
  request.headers.Add("Host", "h");
  EXPECT_EQ(request.Serialize(),
            "GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n");
}

TEST(RequestTest, SerializedSizeMatchesSerialize) {
  Request request;
  request.method = "POST";
  request.target = "/submit?a=1";
  request.headers.Add("Host", "example.com");
  request.body = "hello=world";
  EXPECT_EQ(request.SerializedSize(), request.Serialize().size());
}

TEST(RequestTest, ExplicitContentLengthNotDuplicated) {
  Request request;
  request.body = "abc";
  request.headers.Add("Content-Length", "3");
  std::string wire = request.Serialize();
  EXPECT_EQ(wire.find("Content-Length"), wire.rfind("Content-Length"));
}

TEST(ResponseTest, SerializeProducesWireFormat) {
  Response response;
  response.body = "hi";
  EXPECT_EQ(response.Serialize(),
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi");
  EXPECT_EQ(response.SerializedSize(), response.Serialize().size());
}

TEST(ResponseTest, MakeOkSetsContentType) {
  Response response = Response::MakeOk("<p>x</p>");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(*response.headers.Get("Content-Type"), "text/html");
  EXPECT_EQ(response.body, "<p>x</p>");
}

TEST(ResponseTest, MakeErrorSetsCodeAndBody) {
  Response response = Response::MakeError(404, "Not Found", "nope");
  EXPECT_EQ(response.status_code, 404);
  EXPECT_EQ(response.reason, "Not Found");
  EXPECT_EQ(response.body, "nope");
}

TEST(CanonicalReasonTest, KnownAndUnknownCodes) {
  EXPECT_EQ(CanonicalReason(200), "OK");
  EXPECT_EQ(CanonicalReason(404), "Not Found");
  EXPECT_EQ(CanonicalReason(502), "Bad Gateway");
  EXPECT_EQ(CanonicalReason(299), "Unknown");
}

TEST(UrlCodecTest, DecodeHandlesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("a%20b+c"), "a b c");
  EXPECT_EQ(UrlDecode("%41%42"), "AB");
  EXPECT_EQ(UrlDecode("100%"), "100%");    // Trailing bare percent.
  EXPECT_EQ(UrlDecode("%zz"), "%zz");      // Invalid escape passes through.
}

TEST(UrlCodecTest, EncodeRoundTrips) {
  std::string original = "name=a value&x/y~z";
  EXPECT_EQ(UrlDecode(UrlEncode(original)), original);
  EXPECT_EQ(UrlEncode("a b"), "a%20b");
}

TEST(ParseQueryStringTest, DuplicatesLastWinsAndFlags) {
  auto params = ParseQueryString("a=1&a=2&flag&b=x%26y");
  EXPECT_EQ(params["a"], "2");
  EXPECT_EQ(params["flag"], "");
  EXPECT_EQ(params["b"], "x&y");
  EXPECT_TRUE(ParseQueryString("").empty());
}

}  // namespace
}  // namespace dynaprox::http
