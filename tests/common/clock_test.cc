#include "common/clock.h"

#include <gtest/gtest.h>

namespace dynaprox {
namespace {

TEST(SystemClockTest, IsMonotonicNonDecreasing) {
  SystemClock clock;
  MicroTime a = clock.NowMicros();
  MicroTime b = clock.NowMicros();
  EXPECT_LE(a, b);
}

TEST(SystemClockTest, DefaultReturnsSameInstance) {
  EXPECT_EQ(SystemClock::Default(), SystemClock::Default());
}

TEST(SimClockTest, StartsAtGivenTime) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(SimClockTest, AdvancesManually) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(5);
  EXPECT_EQ(clock.NowMicros(), 5);
  clock.AdvanceSeconds(2.5);
  EXPECT_EQ(clock.NowMicros(), 5 + 2'500'000);
  clock.SetMicros(42);
  EXPECT_EQ(clock.NowMicros(), 42);
}

}  // namespace
}  // namespace dynaprox
