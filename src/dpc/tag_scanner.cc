#include "dpc/tag_scanner.h"

#include <cstring>

#include "bem/tag_codec.h"
#include "common/strings.h"

namespace dynaprox::dpc {
namespace {

constexpr char kStx = bem::TagCodec::kStx;
constexpr char kEtx = bem::TagCodec::kEtx;

size_t FindMarker(std::string_view text, size_t from, ScanStrategy strategy) {
  if (from >= text.size()) return std::string_view::npos;
  switch (strategy) {
    case ScanStrategy::kMemchr: {
      const void* p =
          std::memchr(text.data() + from, kStx, text.size() - from);
      if (p == nullptr) return std::string_view::npos;
      return static_cast<size_t>(static_cast<const char*>(p) - text.data());
    }
    case ScanStrategy::kByteLoop: {
      for (size_t i = from; i < text.size(); ++i) {
        if (text[i] == kStx) return i;
      }
      return std::string_view::npos;
    }
  }
  return std::string_view::npos;
}

// Parses the hex key of an 'S'/'G' tag starting at `hex_begin`; on success
// sets `key`/`tag_end` (index one past the closing ETX).
Status ParseKeyTag(std::string_view wire, size_t hex_begin,
                   bem::DpcKey& key, size_t& tag_end) {
  size_t etx = wire.find(kEtx, hex_begin);
  if (etx == std::string_view::npos) {
    return Status::Corruption("unterminated tag (missing ETX)");
  }
  Result<uint64_t> parsed = ParseHex(wire.substr(hex_begin, etx - hex_begin));
  if (!parsed.ok() || *parsed > bem::kInvalidDpcKey) {
    return Status::Corruption("bad dpcKey in tag");
  }
  key = static_cast<bem::DpcKey>(*parsed);
  tag_end = etx + 1;
  return Status::Ok();
}

}  // namespace

Result<std::vector<TemplateSegment>> ParseTemplate(std::string_view wire,
                                                   ScanStrategy strategy) {
  std::vector<TemplateSegment> segments;
  // Views accumulating the current literal run or SET payload. Adjacent
  // wire ranges merge, so a template without escapes yields exactly one
  // piece per segment.
  std::vector<std::string_view> pieces;
  bool inside_set = false;
  bem::DpcKey set_key = bem::kInvalidDpcKey;

  auto add_piece = [&](std::string_view piece) {
    if (piece.empty()) return;
    if (!pieces.empty() &&
        pieces.back().data() + pieces.back().size() == piece.data()) {
      pieces.back() = std::string_view(pieces.back().data(),
                                       pieces.back().size() + piece.size());
      return;
    }
    pieces.push_back(piece);
  };

  auto flush_literal = [&]() {
    if (pieces.empty()) return;
    segments.push_back({TemplateSegment::Kind::kLiteral, bem::kInvalidDpcKey,
                        std::move(pieces)});
    pieces.clear();
  };

  size_t pos = 0;
  for (;;) {
    size_t stx = FindMarker(wire, pos, strategy);
    if (stx == std::string_view::npos) {
      add_piece(wire.substr(pos));
      break;
    }
    add_piece(wire.substr(pos, stx - pos));
    if (stx + 1 >= wire.size()) {
      return Status::Corruption("truncated tag at end of template");
    }
    char marker = wire[stx + 1];
    switch (marker) {
      case 'L': {
        if (stx + 2 >= wire.size() || wire[stx + 2] != kEtx) {
          return Status::Corruption("malformed literal-escape tag");
        }
        // The escape emits one STX byte — which is the tag's own leading
        // byte, so the emitted byte aliases the wire too.
        add_piece(wire.substr(stx, 1));
        pos = stx + 3;
        break;
      }
      case 'S': {
        if (inside_set) return Status::Corruption("nested SET tag");
        size_t tag_end = 0;
        DYNAPROX_RETURN_IF_ERROR(
            ParseKeyTag(wire, stx + 2, set_key, tag_end));
        flush_literal();
        inside_set = true;
        pos = tag_end;
        break;
      }
      case 'E': {
        if (!inside_set) return Status::Corruption("SET-end without SET");
        if (stx + 2 >= wire.size() || wire[stx + 2] != kEtx) {
          return Status::Corruption("malformed SET-end tag");
        }
        segments.push_back(
            {TemplateSegment::Kind::kSet, set_key, std::move(pieces)});
        pieces.clear();
        inside_set = false;
        set_key = bem::kInvalidDpcKey;
        pos = stx + 3;
        break;
      }
      case 'G': {
        if (inside_set) return Status::Corruption("GET tag inside SET");
        bem::DpcKey key = bem::kInvalidDpcKey;
        size_t tag_end = 0;
        DYNAPROX_RETURN_IF_ERROR(ParseKeyTag(wire, stx + 2, key, tag_end));
        flush_literal();
        segments.push_back({TemplateSegment::Kind::kGet, key, {}});
        pos = tag_end;
        break;
      }
      default:
        return Status::Corruption(std::string("unknown tag marker '") +
                                  marker + "'");
    }
  }

  if (inside_set) return Status::Corruption("unterminated SET block");
  flush_literal();
  return segments;
}

}  // namespace dynaprox::dpc
