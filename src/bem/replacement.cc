#include "bem/replacement.h"

namespace dynaprox::bem {

void LruPolicy::Touch(const std::string& fragment_id) {
  auto it = index_.find(fragment_id);
  if (it != index_.end()) order_.erase(it->second);
  order_.push_front(fragment_id);
  index_[fragment_id] = order_.begin();
}

void LruPolicy::OnInsert(const std::string& fragment_id) {
  Touch(fragment_id);
}

void LruPolicy::OnAccess(const std::string& fragment_id) {
  Touch(fragment_id);
}

void LruPolicy::OnRemove(const std::string& fragment_id) {
  auto it = index_.find(fragment_id);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

Result<std::string> LruPolicy::PickVictim() {
  if (order_.empty()) {
    return Status::FailedPrecondition("no replacement candidates");
  }
  return order_.back();
}

void FifoPolicy::OnInsert(const std::string& fragment_id) {
  if (index_.find(fragment_id) != index_.end()) return;  // Re-insert: keep age.
  order_.push_back(fragment_id);
  index_[fragment_id] = std::prev(order_.end());
}

void FifoPolicy::OnRemove(const std::string& fragment_id) {
  auto it = index_.find(fragment_id);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

Result<std::string> FifoPolicy::PickVictim() {
  if (order_.empty()) {
    return Status::FailedPrecondition("no replacement candidates");
  }
  return order_.front();
}

void ClockPolicy::OnInsert(const std::string& fragment_id) {
  auto it = index_.find(fragment_id);
  if (it != index_.end()) {
    ring_[it->second].referenced = true;
    return;
  }
  index_[fragment_id] = ring_.size();
  ring_.push_back({fragment_id, true});
}

void ClockPolicy::OnAccess(const std::string& fragment_id) {
  auto it = index_.find(fragment_id);
  if (it != index_.end()) ring_[it->second].referenced = true;
}

void ClockPolicy::OnRemove(const std::string& fragment_id) {
  auto it = index_.find(fragment_id);
  if (it == index_.end()) return;
  size_t slot = it->second;
  index_.erase(it);
  // Swap-remove to keep the ring dense.
  if (slot != ring_.size() - 1) {
    ring_[slot] = std::move(ring_.back());
    index_[ring_[slot].fragment_id] = slot;
  }
  ring_.pop_back();
  if (ring_.empty()) {
    hand_ = 0;
  } else {
    hand_ %= ring_.size();
  }
}

Result<std::string> ClockPolicy::PickVictim() {
  if (ring_.empty()) {
    return Status::FailedPrecondition("no replacement candidates");
  }
  // At most two sweeps: the first clears reference bits, the second must
  // find an unreferenced entry.
  for (size_t step = 0; step < 2 * ring_.size(); ++step) {
    Entry& entry = ring_[hand_];
    if (entry.referenced) {
      entry.referenced = false;
      hand_ = (hand_ + 1) % ring_.size();
    } else {
      return entry.fragment_id;
    }
  }
  return ring_[hand_].fragment_id;
}

Result<std::unique_ptr<ReplacementPolicy>> MakeReplacementPolicy(
    std::string_view name) {
  if (name == "lru") {
    return std::unique_ptr<ReplacementPolicy>(new LruPolicy());
  }
  if (name == "fifo") {
    return std::unique_ptr<ReplacementPolicy>(new FifoPolicy());
  }
  if (name == "clock") {
    return std::unique_ptr<ReplacementPolicy>(new ClockPolicy());
  }
  return Status::InvalidArgument("unknown replacement policy: " +
                                 std::string(name));
}

}  // namespace dynaprox::bem
