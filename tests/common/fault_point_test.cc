#include "common/fault_point.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dynaprox::chaos {
namespace {

// The registry is process-global and shared by every test in this
// binary, so each test uses its own point names and restores the
// disarmed state on the way out.
class FaultPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }
};

TEST_F(FaultPointTest, ParsesSingleClause) {
  Result<std::vector<FaultSpec>> specs =
      ParseChaosSpec("net.read=0.25:error");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 1u);
  EXPECT_EQ((*specs)[0].point, "net.read");
  EXPECT_DOUBLE_EQ((*specs)[0].probability, 0.25);
  EXPECT_EQ((*specs)[0].action, FaultAction::kError);
  EXPECT_EQ((*specs)[0].param, 0);
}

TEST_F(FaultPointTest, ParsesEveryActionAndParams) {
  Result<std::vector<FaultSpec>> specs = ParseChaosSpec(
      "a=1:error,b=0.5:delay-ms:20,c=0:garbage,d=1:truncate:64,"
      "e=0.125:drop-conn");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 5u);
  EXPECT_EQ((*specs)[1].action, FaultAction::kDelayMs);
  EXPECT_EQ((*specs)[1].param, 20);
  EXPECT_EQ((*specs)[3].action, FaultAction::kTruncate);
  EXPECT_EQ((*specs)[3].param, 64);
  EXPECT_EQ((*specs)[4].action, FaultAction::kDropConn);
}

TEST_F(FaultPointTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "noequals",            // Missing '='.
      "p=",                  // Missing probability.
      "p=x:error",           // Non-numeric probability.
      "p=1.5:error",         // Probability out of range.
      "p=-0.1:error",        // Negative probability.
      "p=0.5",               // Missing action.
      "p=0.5:explode",       // Unknown action.
      "p=0.5:delay-ms",      // delay-ms requires a param.
      "p=0.5:delay-ms:abc",  // Non-numeric param.
      "p=0.5:error:1:2",     // Too many parts.
      "=0.5:error",          // Empty point name.
      ",",                   // Empty clauses.
      "a=1:error,,b=1:error",
  };
  for (const char* spec : bad) {
    Result<std::vector<FaultSpec>> parsed = ParseChaosSpec(spec);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << spec;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << spec;
    }
  }
}

TEST_F(FaultPointTest, EmptySpecParsesToNothing) {
  Result<std::vector<FaultSpec>> specs = ParseChaosSpec("");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs->empty());
}

// S5: the parser must survive arbitrary input with a clean error — a
// malformed --chaos flag is a startup error, never UB. Deterministic
// fuzz loop over seeded random bytes drawn from the spec alphabet plus
// raw binary.
TEST_F(FaultPointTest, ParserSurvivesFuzzedInput) {
  Rng rng(0xC4A05u);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789.=:,-+eE \t\xff\x00";
  for (int iter = 0; iter < 5000; ++iter) {
    std::string spec;
    uint64_t len = rng.NextBounded(24);
    for (uint64_t i = 0; i < len; ++i) {
      spec.push_back(alphabet[rng.NextBounded(alphabet.size())]);
    }
    // Must return ok or InvalidArgument; crashing or hanging fails the
    // test at the harness level.
    Result<std::vector<FaultSpec>> parsed = ParseChaosSpec(spec);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST_F(FaultPointTest, DisarmedPointNeverFires) {
  FaultPoint* point = DYNAPROX_FAULT_POINT("test.disarmed");
  uint64_t fired_before = point->fired();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(point->Evaluate());
  }
  EXPECT_EQ(point->fired(), fired_before);
}

TEST_F(FaultPointTest, CertainProbabilityFiresEveryTime) {
  FaultRegistry& registry = FaultRegistry::Instance();
  ASSERT_TRUE(registry.Arm("test.certain=1:truncate:128", /*seed=*/42).ok());
  FaultPoint* point = registry.GetPoint("test.certain");
  uint64_t fired_before = point->fired();
  for (int i = 0; i < 10; ++i) {
    FaultDecision decision = point->Evaluate();
    ASSERT_TRUE(decision);
    EXPECT_EQ(decision.action, FaultAction::kTruncate);
    EXPECT_EQ(decision.param, 128);
  }
  EXPECT_EQ(point->fired(), fired_before + 10);
}

TEST_F(FaultPointTest, SameSeedReplaysSameDecisionSequence) {
  FaultRegistry& registry = FaultRegistry::Instance();
  auto run = [&] {
    EXPECT_TRUE(registry.Arm("test.replay=0.5:error", /*seed=*/7).ok());
    FaultPoint* point = registry.GetPoint("test.replay");
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(static_cast<bool>(point->Evaluate()));
    }
    return outcomes;
  };
  std::vector<bool> first = run();
  std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  // Not degenerate: the sequence mixes hits and misses.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
}

TEST_F(FaultPointTest, DifferentPointsDrawIndependentStreams) {
  FaultRegistry& registry = FaultRegistry::Instance();
  ASSERT_TRUE(
      registry.Arm("test.ind.a=0.5:error,test.ind.b=0.5:error", 7).ok());
  FaultPoint* a = registry.GetPoint("test.ind.a");
  FaultPoint* b = registry.GetPoint("test.ind.b");
  std::vector<bool> sa, sb;
  for (int i = 0; i < 200; ++i) {
    sa.push_back(static_cast<bool>(a->Evaluate()));
    sb.push_back(static_cast<bool>(b->Evaluate()));
  }
  // Same seed, different names: per-point streams must differ.
  EXPECT_NE(sa, sb);
}

TEST_F(FaultPointTest, ArmingAppliesToPointsRegisteredLater) {
  FaultRegistry& registry = FaultRegistry::Instance();
  ASSERT_TRUE(registry.Arm("test.late.point=1:error", /*seed=*/3).ok());
  // The seam registers after configuration — the startup order for
  // every real seam, whose DYNAPROX_FAULT_POINT runs on first request.
  FaultPoint* point = registry.GetPoint("test.late.point");
  EXPECT_TRUE(point->Evaluate());
}

TEST_F(FaultPointTest, ArmReplacesPreviousConfigurationWholesale) {
  FaultRegistry& registry = FaultRegistry::Instance();
  ASSERT_TRUE(registry.Arm("test.swap.a=1:error", 1).ok());
  FaultPoint* a = registry.GetPoint("test.swap.a");
  EXPECT_TRUE(a->Evaluate());
  ASSERT_TRUE(registry.Arm("test.swap.b=1:error", 1).ok());
  EXPECT_FALSE(a->Evaluate());  // Unlisted in the new spec: disarmed.
  EXPECT_TRUE(registry.GetPoint("test.swap.b")->Evaluate());
}

TEST_F(FaultPointTest, MalformedSpecLeavesRegistryDisarmed) {
  FaultRegistry& registry = FaultRegistry::Instance();
  Status armed = registry.Arm("test.bogus=2:error", 1);
  EXPECT_FALSE(armed.ok());
  EXPECT_FALSE(registry.GetPoint("test.bogus")->Evaluate());
}

TEST_F(FaultPointTest, InjectionLogIsSequencedAndClearsOnDisarm) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.DisarmAll();
  ASSERT_TRUE(registry.Arm("test.log=1:drop-conn", 11).ok());
  FaultPoint* point = registry.GetPoint("test.log");
  point->Evaluate();
  point->Evaluate();
  std::vector<std::string> log = registry.InjectionLog();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log[0].find("test.log drop-conn"), std::string::npos);
  EXPECT_NE(log[0], log[1]);  // Sequence numbers differ.
  registry.DisarmAll();
  EXPECT_TRUE(registry.InjectionLog().empty());
  // Fired counters are monotonic and survive the disarm.
  EXPECT_GE(point->fired(), 2u);
}

TEST_F(FaultPointTest, FiredCountsAreSortedByName) {
  FaultRegistry& registry = FaultRegistry::Instance();
  registry.GetPoint("test.sort.b");
  registry.GetPoint("test.sort.a");
  std::vector<std::pair<std::string, uint64_t>> counts =
      registry.FiredCounts();
  ASSERT_GE(counts.size(), 2u);
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LT(counts[i - 1].first, counts[i].first);
  }
}

TEST_F(FaultPointTest, InjectStatusTagsChaosErrors) {
  FaultRegistry& registry = FaultRegistry::Instance();
  ASSERT_TRUE(registry.Arm("test.status=1:error", 5).ok());
  Status injected = InjectStatus(registry.GetPoint("test.status"));
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.code(), StatusCode::kUnavailable);
  EXPECT_NE(injected.message().find("chaos:test.status"),
            std::string::npos);
  // Disarmed point: clean Ok, no allocation-observable side effects.
  registry.DisarmAll();
  EXPECT_TRUE(InjectStatus(registry.GetPoint("test.status")).ok());
}

TEST_F(FaultPointTest, DelayDecisionProceedsAfterSleeping) {
  FaultRegistry& registry = FaultRegistry::Instance();
  ASSERT_TRUE(registry.Arm("test.delay=1:delay-ms:1", 5).ok());
  // InjectStatus treats delay as "proceed": Ok after the stall.
  EXPECT_TRUE(InjectStatus(registry.GetPoint("test.delay")).ok());
  EXPECT_GE(registry.GetPoint("test.delay")->fired(), 1u);
}

}  // namespace
}  // namespace dynaprox::chaos
