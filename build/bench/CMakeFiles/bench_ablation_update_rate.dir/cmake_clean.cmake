file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_update_rate.dir/ablation_update_rate.cc.o"
  "CMakeFiles/bench_ablation_update_rate.dir/ablation_update_rate.cc.o.d"
  "bench_ablation_update_rate"
  "bench_ablation_update_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_update_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
