#include "net/connection_pool.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/tcp.h"

namespace dynaprox::net {
namespace {

http::Response EchoHandler(const http::Request& request) {
  return http::Response::MakeOk("path=" + std::string(request.Path()) +
                                ";body=" + request.body);
}

TEST(ConnectionPoolTest, SequentialRoundTripsReuseOneConnection) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  PooledClientTransport transport("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    http::Request request;
    request.target = "/r" + std::to_string(i);
    Result<http::Response> response = transport.RoundTrip(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body, "path=/r" + std::to_string(i) + ";body=");
  }
  PoolStats stats = transport.pool().stats();
  EXPECT_EQ(stats.checkouts, 5u);
  EXPECT_EQ(stats.connects, 1u);
  EXPECT_EQ(stats.open_connections, 1);
  EXPECT_EQ(stats.idle_connections, 1);
  EXPECT_EQ(stats.wait_queue_depth, 0);
  server.Stop();
}

TEST(ConnectionPoolTest, ConcurrentCheckoutsFanOutUnderSlowOrigin) {
  TcpServer server([](const http::Request& request) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return EchoHandler(request);
  });
  ASSERT_TRUE(server.Start().ok());
  PooledTransportOptions options;
  options.pool.max_connections = 8;
  PooledClientTransport transport("127.0.0.1", server.port(), options);

  constexpr int kClients = 8;
  constexpr int kPerClient = 3;
  std::atomic<int> failures{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&transport, &failures, c] {
      for (int i = 0; i < kPerClient; ++i) {
        http::Request request;
        request.target = "/c" + std::to_string(c);
        Result<http::Response> response = transport.RoundTrip(request);
        if (!response.ok() ||
            response->body != "path=/c" + std::to_string(c) + ";body=") {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(failures.load(), 0);

  PoolStats stats = transport.pool().stats();
  EXPECT_EQ(stats.checkouts,
            static_cast<uint64_t>(kClients * kPerClient));
  EXPECT_GT(stats.connects, 1u);  // The load fanned out over connections.
  EXPECT_LE(stats.open_connections, 8);
  // Serialized, 24 requests at 20 ms each would take >= 480 ms. The pool
  // must do clearly better; allow generous slack for slow machines.
  double elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  EXPECT_LT(elapsed_ms, 400.0);
  server.Stop();
}

// Accepts one connection at a time, reads one request off it, optionally
// answers, then closes the connection. Counts connections.
class OneShotServer {
 public:
  // `respond_from`: the 0-based connection index from which the server
  // starts answering; earlier connections are closed without a response.
  explicit OneShotServer(int respond_from) : respond_from_(respond_from) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~OneShotServer() {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }
  int connections() const { return connections_.load(); }

 private:
  void Serve() {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;  // Listener closed by the destructor.
      int index = connections_.fetch_add(1);
      char buf[4096];
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // Drain the request.
      if (n > 0 && index >= respond_from_) {
        const char kResponse[] =
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        (void)!::send(fd, kResponse, sizeof(kResponse) - 1, MSG_NOSIGNAL);
      }
      ::close(fd);
    }
  }

  int respond_from_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<int> connections_{0};
  std::thread thread_;
};

TEST(ConnectionPoolTest, StaleIdleConnectionIsReplacedTransparently) {
  // Every connection serves exactly one response then closes, so the
  // checked-in connection is dead by the next checkout.
  OneShotServer server(/*respond_from=*/0);
  PooledClientTransport transport("127.0.0.1", server.port());
  for (int i = 0; i < 3; ++i) {
    http::Request request;
    request.target = "/r" + std::to_string(i);
    Result<http::Response> response = transport.RoundTrip(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->body, "ok");
    // Let the server's close (FIN) land before the next checkout peeks.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  PoolStats stats = transport.pool().stats();
  EXPECT_EQ(stats.connects, 3u);
  EXPECT_GE(stats.stale_closed, 2u);
  EXPECT_GE(stats.reconnects, 2u);
}

TEST(ConnectionPoolTest, WaiterTimesOutWhenPoolIsHeld) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ConnectionPoolOptions options;
  options.max_connections = 1;
  options.checkout_timeout_micros = 50 * kMicrosPerMilli;
  ConnectionPool pool("127.0.0.1", server.port(), options);

  Result<ConnectionPool::Connection> held = pool.Checkout();
  ASSERT_TRUE(held.ok());
  Result<ConnectionPool::Connection> waiter = pool.Checkout();
  EXPECT_FALSE(waiter.ok());

  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.waiter_timeouts, 1u);
  EXPECT_EQ(stats.wait_queue_depth, 0);
  EXPECT_GE(stats.wait_micros.count(), 1u);
  EXPECT_GE(stats.wait_micros.max(), 40.0 * kMicrosPerMilli);

  // Returning the held connection makes the pool usable again.
  pool.Checkin(*held, /*reusable=*/true);
  Result<ConnectionPool::Connection> again = pool.Checkout();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->fresh);  // Reused the checked-in connection.
  pool.Checkin(*again, /*reusable=*/true);
  server.Stop();
}

TEST(ConnectionPoolTest, WaiterQueueBoundRejectsImmediately) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ConnectionPoolOptions options;
  options.max_connections = 1;
  options.max_waiters = 0;
  options.checkout_timeout_micros = kMicrosPerSecond;
  ConnectionPool pool("127.0.0.1", server.port(), options);

  Result<ConnectionPool::Connection> held = pool.Checkout();
  ASSERT_TRUE(held.ok());
  auto start = std::chrono::steady_clock::now();
  Result<ConnectionPool::Connection> rejected = pool.Checkout();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(rejected.ok());
  // Rejected by the bound, not by waiting out the checkout deadline.
  double elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count();
  EXPECT_LT(elapsed_ms, 500.0);
  EXPECT_EQ(pool.stats().waiter_rejections, 1u);
  pool.Checkin(*held, /*reusable=*/false);
  server.Stop();
}

TEST(ConnectionPoolTest, WaiterIsReleasedByCheckin) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ConnectionPoolOptions options;
  options.max_connections = 1;
  options.checkout_timeout_micros = 2 * kMicrosPerSecond;
  ConnectionPool pool("127.0.0.1", server.port(), options);

  Result<ConnectionPool::Connection> held = pool.Checkout();
  ASSERT_TRUE(held.ok());
  std::thread releaser([&pool, &held] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pool.Checkin(*held, /*reusable=*/true);
  });
  Result<ConnectionPool::Connection> waited = pool.Checkout();
  releaser.join();
  ASSERT_TRUE(waited.ok()) << waited.status().ToString();
  EXPECT_FALSE(waited->fresh);
  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.waiter_timeouts, 0u);
  EXPECT_GE(stats.wait_micros.count(), 1u);
  pool.Checkin(*waited, /*reusable=*/true);
  server.Stop();
}

TEST(ConnectionPoolTest, IdleConnectionsAreReaped) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ConnectionPoolOptions options;
  options.idle_timeout_micros = 5 * kMicrosPerMilli;
  ConnectionPool pool("127.0.0.1", server.port(), options);

  Result<ConnectionPool::Connection> conn = pool.Checkout();
  ASSERT_TRUE(conn.ok());
  pool.Checkin(*conn, /*reusable=*/true);
  EXPECT_EQ(pool.stats().idle_connections, 1);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pool.ReapIdle(), 1);
  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.idle_connections, 0);
  EXPECT_EQ(stats.open_connections, 0);
  EXPECT_EQ(stats.idle_reaped, 1u);
  server.Stop();
}

TEST(ConnectionPoolTest, ConnectFailureSurfacesAndFreesTheSlot) {
  ConnectionPoolOptions options;
  options.max_connections = 1;
  options.connect_retry = {/*max_attempts=*/1, /*initial_backoff=*/0};
  // Port 1 on loopback: nothing listening.
  ConnectionPool pool("127.0.0.1", 1, options);
  EXPECT_FALSE(pool.Checkout().ok());
  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.connect_failures, 1u);
  EXPECT_EQ(stats.open_connections, 0);  // The reserved slot was released.
}

TEST(ConnectionPoolTest, NonReusableCheckinClosesTheConnection) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ConnectionPool pool("127.0.0.1", server.port());
  Result<ConnectionPool::Connection> conn = pool.Checkout();
  ASSERT_TRUE(conn.ok());
  pool.Checkin(*conn, /*reusable=*/false);
  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.open_connections, 0);
  EXPECT_EQ(stats.idle_connections, 0);
  server.Stop();
}

TEST(ConnectionPoolTest, AllConnectionsStaleAfterOriginRestart) {
  // An origin crash kills every pooled keep-alive connection at once.
  // After a restart on the same port, the pool must notice each dead
  // idle connection at checkout and redial transparently.
  auto server = std::make_unique<TcpServer>(EchoHandler);
  ASSERT_TRUE(server->Start().ok());
  uint16_t port = server->port();

  PooledTransportOptions options;
  options.pool.max_connections = 4;
  PooledClientTransport transport("127.0.0.1", port, options);

  // Open several connections by fanning out concurrent requests.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&transport, &failures] {
      http::Request request;
      request.target = "/warm";
      if (!transport.RoundTrip(request).ok()) ++failures;
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(failures.load(), 0);
  uint64_t connects_before = transport.pool().stats().connects;
  ASSERT_GE(connects_before, 1u);

  // Crash and restart the origin on the same port.
  server->Stop();
  server = std::make_unique<TcpServer>(EchoHandler, port);
  ASSERT_TRUE(server->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Every request after the restart succeeds; each one that picked up a
  // dead idle connection replaced it with a fresh dial.
  for (int i = 0; i < 4; ++i) {
    http::Request request;
    request.target = "/after-restart";
    Result<http::Response> response = transport.RoundTrip(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  PoolStats stats = transport.pool().stats();
  EXPECT_GE(stats.stale_closed, connects_before);
  EXPECT_GT(stats.connects, connects_before);
  server->Stop();
}

TEST(ConnectionPoolTest, CheckoutDuringDialBackoffWaitsForTheSlot) {
  // One slot, dead origin, dial policy with a real backoff: while the
  // first checkout sits in its connect backoff it holds the only slot.
  // A second checkout must queue behind it, get the slot once the dial
  // fails, and fail its own dial — no deadlock, no leaked slot.
  ConnectionPoolOptions options;
  options.max_connections = 1;
  options.connect_retry = {/*max_attempts=*/2,
                           /*initial_backoff_micros=*/50 * kMicrosPerMilli};
  options.checkout_timeout_micros = 2 * kMicrosPerSecond;
  // Port 1 on loopback: nothing listening.
  ConnectionPool pool("127.0.0.1", 1, options);

  std::thread first([&pool] { EXPECT_FALSE(pool.Checkout().ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Lands while the first dial is mid-backoff.
  Result<ConnectionPool::Connection> second = pool.Checkout();
  first.join();
  EXPECT_FALSE(second.ok());

  PoolStats stats = pool.stats();
  EXPECT_EQ(stats.connect_failures, 2u);
  EXPECT_EQ(stats.open_connections, 0);  // Both reserved slots released.
  EXPECT_EQ(stats.wait_queue_depth, 0);

  // The pool still works once an origin appears.
  TcpServer late_origin(EchoHandler);
  ASSERT_TRUE(late_origin.Start().ok());
  ConnectionPool live("127.0.0.1", late_origin.port(), options);
  Result<ConnectionPool::Connection> conn = live.Checkout();
  ASSERT_TRUE(conn.ok());
  live.Checkin(*conn, /*reusable=*/false);
  late_origin.Stop();
}

TEST(ConnectionPoolTest, WaiterTimeoutAccountingUnderManyWaiters) {
  TcpServer server(EchoHandler);
  ASSERT_TRUE(server.Start().ok());
  ConnectionPoolOptions options;
  options.max_connections = 1;
  options.checkout_timeout_micros = 50 * kMicrosPerMilli;
  ConnectionPool pool("127.0.0.1", server.port(), options);

  Result<ConnectionPool::Connection> held = pool.Checkout();
  ASSERT_TRUE(held.ok());

  constexpr int kWaiters = 3;
  std::atomic<int> timed_out{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&pool, &timed_out] {
      if (!pool.Checkout().ok()) ++timed_out;
    });
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(timed_out.load(), kWaiters);

  PoolStats stats = pool.stats();
  // Every waiter is accounted exactly once: a timeout counter bump and
  // a wait-duration sample, and the queue gauge drains back to zero.
  EXPECT_EQ(stats.waiter_timeouts, static_cast<uint64_t>(kWaiters));
  EXPECT_EQ(stats.wait_micros.count(), static_cast<size_t>(kWaiters));
  EXPECT_EQ(stats.wait_queue_depth, 0);
  EXPECT_EQ(stats.waiter_rejections, 0u);

  pool.Checkin(*held, /*reusable=*/false);
  server.Stop();
}

TEST(PooledClientTransportTest, RetriesIdempotentRequestAfterServerClose) {
  // Connection 0 is dropped after the request; connection 1 answers. A
  // GET is safe to re-send, so the round trip succeeds transparently.
  OneShotServer server(/*respond_from=*/0);
  PooledClientTransport transport("127.0.0.1", server.port());
  http::Request first;
  first.target = "/warm";
  ASSERT_TRUE(transport.RoundTrip(first).ok());
  // The checked-in connection is now dead (server closed it); the next
  // round trip must recover without surfacing an error.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  http::Request second;
  second.target = "/after-close";
  Result<http::Response> response = transport.RoundTrip(second);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "ok");
}

TEST(PooledClientTransportTest, DoesNotResendNonIdempotentRequest) {
  OneShotServer server(/*respond_from=*/1);
  PooledTransportOptions options;
  options.pool.idle_timeout_micros = 0;
  PooledClientTransport transport("127.0.0.1", server.port(), options);
  http::Request post;
  post.method = "POST";
  post.target = "/charge";
  post.body = "amount=1";
  Result<http::Response> response = transport.RoundTrip(post);
  EXPECT_FALSE(response.ok());
  // One connection, one delivery: the POST was not re-sent even though a
  // second attempt would have succeeded.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(server.connections(), 1);
}

}  // namespace
}  // namespace dynaprox::net
