#include "baseline/page_cache.h"

namespace dynaprox::baseline {

UrlPageCache::UrlPageCache(net::Transport* upstream,
                           PageCacheOptions options)
    : upstream_(upstream), options_(options) {
  if (options_.clock == nullptr) options_.clock = SystemClock::Default();
}

net::Handler UrlPageCache::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

bool UrlPageCache::Expired(const Entry& entry) const {
  return options_.ttl_micros > 0 &&
         options_.clock->NowMicros() - entry.cached_at >=
             options_.ttl_micros;
}

void UrlPageCache::Touch(const std::string& url, Entry& entry) {
  lru_.erase(entry.lru_position);
  lru_.push_front(url);
  entry.lru_position = lru_.begin();
}

void UrlPageCache::EvictIfNeeded() {
  while (entries_.size() > options_.capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

http::Response UrlPageCache::Handle(const http::Request& request) {
  // URL-keyed: headers (cookies!) deliberately ignored, like the strawman.
  const std::string& url = request.target;
  auto it = entries_.find(url);
  if (it != entries_.end() && !Expired(it->second)) {
    ++stats_.hits;
    Touch(url, it->second);
    return it->second.response;
  }

  ++stats_.misses;
  Result<http::Response> response = upstream_->RoundTrip(request);
  if (!response.ok()) {
    return http::Response::MakeError(502, "Bad Gateway",
                                     response.status().ToString());
  }
  stats_.bytes_from_upstream += response->body.size();
  if (response->status_code == 200 && request.method == "GET") {
    if (it != entries_.end()) {
      lru_.erase(it->second.lru_position);
      entries_.erase(it);
    }
    lru_.push_front(url);
    entries_[url] =
        Entry{*response, options_.clock->NowMicros(), lru_.begin()};
    EvictIfNeeded();
  }
  return std::move(*response);
}

bool UrlPageCache::InvalidateUrl(const std::string& url) {
  auto it = entries_.find(url);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

size_t UrlPageCache::InvalidateAll() {
  size_t count = entries_.size();
  stats_.invalidations += count;
  entries_.clear();
  lru_.clear();
  return count;
}

}  // namespace dynaprox::baseline
