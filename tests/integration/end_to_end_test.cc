#include <memory>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "common/clock.h"
#include "dpc/proxy.h"
#include "net/transport.h"
#include "storage/table.h"
#include "storage/value.h"

namespace dynaprox {
namespace {

// Full-stack fixture: client -> DpcProxy -> metered link -> Origin(+BEM).
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* news = repository_.GetOrCreateTable("news");
    news->Upsert("n1", {{"text", storage::Value(std::string(
                                     "Markets rally on cache news"))}});

    registry_.RegisterOrReplace(
        "/home", [](appserver::ScriptContext& context) {
          context.Emit("<html><h1>Home</h1>");
          Status status = context.CacheableBlock(
              bem::FragmentId("headlines"),
              [](appserver::ScriptContext& ctx) {
                auto news_table = ctx.repository()->GetTable("news");
                storage::Row row = *(*news_table)->Get("n1");
                ctx.DeclareDependency("news");
                ctx.Emit("<ul><li>" + storage::GetString(row, "text") +
                         "</li></ul>");
                return Status::Ok();
              });
          if (!status.ok()) return status;
          context.Emit("<footer>fin</footer></html>");
          return Status::Ok();
        });

    bem::BemOptions bem_options;
    bem_options.capacity = 16;
    bem_options.clock = &clock_;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    monitor_->AttachRepository(&repository_);

    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get());
    link_ = std::make_unique<net::MeteredTransport>(
        std::make_unique<net::DirectTransport>(origin_->AsHandler()),
        nullptr, &response_meter_);
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 16;
    proxy_ = std::make_unique<dpc::DpcProxy>(link_.get(), proxy_options);
  }

  http::Response FetchHome() {
    http::Request request;
    request.target = "/home";
    return proxy_->Handle(request);
  }

  SimClock clock_;
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  net::ByteMeter response_meter_{net::ProtocolModel::PayloadOnly()};
  std::unique_ptr<net::MeteredTransport> link_;
  std::unique_ptr<dpc::DpcProxy> proxy_;

  const std::string kExpectedPage =
      "<html><h1>Home</h1><ul><li>Markets rally on cache news</li></ul>"
      "<footer>fin</footer></html>";
};

TEST_F(EndToEndTest, FirstAndSecondRequestsProduceIdenticalPages) {
  http::Response first = FetchHome();
  ASSERT_EQ(first.status_code, 200);
  EXPECT_EQ(first.BodyText(), kExpectedPage);

  http::Response second = FetchHome();
  EXPECT_EQ(second.BodyText(), kExpectedPage);
  EXPECT_EQ(monitor_->stats().hits, 1u);
  EXPECT_EQ(monitor_->stats().misses, 1u);
}

TEST_F(EndToEndTest, CachedRequestMovesFewerBytesOverOriginLink) {
  FetchHome();
  uint64_t first_bytes = response_meter_.payload_bytes();
  FetchHome();
  uint64_t second_bytes = response_meter_.payload_bytes() - first_bytes;
  EXPECT_LT(second_bytes, first_bytes);
  // The cached template omits the fragment body entirely.
  EXPECT_LT(second_bytes, first_bytes - 20);
}

TEST_F(EndToEndTest, DataUpdatePropagatesThroughWholeStack) {
  FetchHome();
  FetchHome();
  (*repository_.GetTable("news"))
      ->Upsert("n1",
               {{"text", storage::Value(std::string("Flash crash!"))}});
  http::Response updated = FetchHome();
  EXPECT_NE(updated.BodyText().find("Flash crash!"), std::string::npos);
  EXPECT_EQ(updated.BodyText().find("Markets rally"), std::string::npos);
}

TEST_F(EndToEndTest, TtlExpiryForcesRegeneration) {
  registry_.RegisterOrReplace(
      "/ttl", [this](appserver::ScriptContext& context) {
        return context.CacheableBlock(
            bem::FragmentId("clock"), 5 * kMicrosPerSecond,
            [this](appserver::ScriptContext& ctx) {
              ctx.Emit("t=" + std::to_string(clock_.NowMicros()));
              return Status::Ok();
            });
      });
  http::Request request;
  request.target = "/ttl";
  std::string first = proxy_->Handle(request).BodyText();
  clock_.AdvanceSeconds(1);
  EXPECT_EQ(proxy_->Handle(request).BodyText(), first);  // Still cached.
  clock_.AdvanceSeconds(10);
  EXPECT_NE(proxy_->Handle(request).BodyText(), first);  // Expired, regenerated.
}

TEST_F(EndToEndTest, ManyRequestsKeepDirectoryAndStoreConsistent) {
  for (int i = 0; i < 200; ++i) {
    http::Response response = FetchHome();
    ASSERT_EQ(response.status_code, 200);
    ASSERT_EQ(response.BodyText(), kExpectedPage);
    if (i % 17 == 0) {
      (*repository_.GetTable("news"))
          ->Upsert("n1", {{"text", storage::Value(std::string(
                                       "Markets rally on cache news"))}});
    }
  }
  EXPECT_EQ(proxy_->stats().assembled, 200u);
  EXPECT_EQ(proxy_->stats().template_errors, 0u);
  EXPECT_LE(monitor_->directory().entry_count(),
            monitor_->directory().capacity());
}

}  // namespace
}  // namespace dynaprox
