# Empty dependencies file for bench_fig3b_exp_bytes_vs_fragsize.
# This may be replaced when dependencies are built.
