#include <gtest/gtest.h>

#include "http/message.h"

namespace dynaprox::http {
namespace {

TEST(NormalizePathTest, IdentityOnCleanPaths) {
  EXPECT_EQ(NormalizePath("/"), "/");
  EXPECT_EQ(NormalizePath("/a"), "/a");
  EXPECT_EQ(NormalizePath("/a/b/c"), "/a/b/c");
}

TEST(NormalizePathTest, DotSegments) {
  EXPECT_EQ(NormalizePath("/a/./b"), "/a/b");
  EXPECT_EQ(NormalizePath("/./a/."), "/a");
  EXPECT_EQ(NormalizePath("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizePath("/a/b/.."), "/a");
}

TEST(NormalizePathTest, CannotEscapeRoot) {
  EXPECT_EQ(NormalizePath("/../../etc/passwd"), "/etc/passwd");
  EXPECT_EQ(NormalizePath("/.."), "/");
  EXPECT_EQ(NormalizePath("/a/../../.."), "/");
}

TEST(NormalizePathTest, CollapsesSlashes) {
  EXPECT_EQ(NormalizePath("//a///b//"), "/a/b");
  EXPECT_EQ(NormalizePath(""), "/");
  EXPECT_EQ(NormalizePath("a/b"), "/a/b");  // Leading slash enforced.
}

TEST(NormalizePathTest, TrailingSlashDropped) {
  EXPECT_EQ(NormalizePath("/a/"), "/a");
}

}  // namespace
}  // namespace dynaprox::http
