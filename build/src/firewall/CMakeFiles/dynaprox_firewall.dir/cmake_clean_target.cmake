file(REMOVE_RECURSE
  "libdynaprox_firewall.a"
)
