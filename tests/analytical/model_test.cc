#include "analytical/model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dynaprox::analytical {
namespace {

TEST(ModelTest, NoCacheResponseSizeIsContentPlusHeader) {
  ModelParams params = ModelParams::Table2Baseline();
  // 4 fragments * 1000 bytes + 500 header.
  EXPECT_DOUBLE_EQ(ResponseSizeNoCache(params), 4500.0);
}

TEST(ModelTest, WithCacheBaselineMatchesHandComputation) {
  ModelParams params = ModelParams::Table2Baseline();
  // Cacheable fragment: 0.8*10 + 0.2*(1000+20) = 212.
  // Per fragment: 0.6*212 + 0.4*1000 = 527.2. Page: 4*527.2 + 500 = 2608.8.
  EXPECT_NEAR(ResponseSizeWithCache(params), 2608.8, 1e-9);
}

TEST(ModelTest, ExpectedBytesScaleWithRequests) {
  ModelParams params = ModelParams::Table2Baseline();
  EXPECT_DOUBLE_EQ(ExpectedBytesNoCache(params), 4500.0 * 1e6);
  params.requests = 10;
  EXPECT_DOUBLE_EQ(ExpectedBytesNoCache(params), 45000.0);
}

TEST(ModelTest, RatioBelowOneAtBaseline) {
  ModelParams params = ModelParams::Table2Baseline();
  EXPECT_NEAR(BytesRatio(params), 2608.8 / 4500.0, 1e-12);
  EXPECT_NEAR(SavingsPercent(params), (1.0 - 2608.8 / 4500.0) * 100, 1e-9);
}

TEST(ModelTest, RatioExceedsOneForTinyFragments) {
  // Figure 2(a): as fragment size approaches 0 the tags dominate and the
  // DPC *adds* bytes.
  ModelParams params = ModelParams::Table2Baseline();
  params.fragment_size = 0;
  EXPECT_GT(BytesRatio(params), 1.0);
}

TEST(ModelTest, RatioDecreasesMonotonicallyInFragmentSize) {
  ModelParams params = ModelParams::Table2Baseline();
  double previous = 10.0;
  for (double size = 0; size <= 5000; size += 250) {
    params.fragment_size = size;
    double ratio = BytesRatio(params);
    EXPECT_LT(ratio, previous);
    previous = ratio;
  }
}

TEST(ModelTest, RatioApproachesAsymptote) {
  // As s_e -> inf, ratio -> 1 - cacheability * hit_ratio.
  ModelParams params = ModelParams::PaperFigureSettings();
  params.fragment_size = 1e9;
  EXPECT_NEAR(BytesRatio(params),
              1.0 - params.cacheability * params.hit_ratio, 1e-3);
}

TEST(ModelTest, SavingsNegativeAtZeroHitRatio) {
  // Figure 2(b): at h=0 the tags are pure overhead.
  ModelParams params = ModelParams::Table2Baseline();
  params.hit_ratio = 0;
  EXPECT_LT(SavingsPercent(params), 0.0);
}

TEST(ModelTest, BreakEvenHitRatioNearOnePercent) {
  // The paper: "as long as 1% or more fragments are served from cache,
  // using the dynamic proxy cache will reduce the expected bytes served."
  ModelParams params = ModelParams::Table2Baseline();
  params.hit_ratio = 0.02;
  EXPECT_GT(SavingsPercent(params), 0.0);
  params.hit_ratio = 0.015;
  EXPECT_LT(std::abs(SavingsPercent(params)), 1.0);  // Near break-even.
}

TEST(ModelTest, MaxSavingsAtFullHitRatioMatchesPaper) {
  // With the paper-figure settings the h=1 savings is ~70% (Figure 2(b)).
  ModelParams params = ModelParams::PaperFigureSettings();
  params.hit_ratio = 1.0;
  EXPECT_NEAR(SavingsPercent(params), 70.4, 0.5);
}

TEST(ModelTest, SavingsMonotoneInHitRatio) {
  ModelParams params = ModelParams::Table2Baseline();
  double previous = -1e9;
  for (double h = 0; h <= 1.0; h += 0.05) {
    params.hit_ratio = h;
    double savings = SavingsPercent(params);
    EXPECT_GT(savings, previous);
    previous = savings;
  }
}

TEST(ModelTest, NetworkSavingsPositiveAcrossCacheabilityRange) {
  // Figure 3(a), upper curve: bytes savings positive for all cacheability.
  ModelParams params = ModelParams::Table2Baseline();
  for (double x = 0.2; x <= 1.0; x += 0.1) {
    params.cacheability = x;
    EXPECT_GT(SavingsPercent(params), 0.0) << x;
  }
}

TEST(ModelTest, FirewallSavingsCrossesZero) {
  // Figure 3(a), lower curve: scan-cost savings negative at low
  // cacheability, positive at high.
  ModelParams params = ModelParams::Table2Baseline();
  params.cacheability = 0.2;
  EXPECT_LT(FirewallSavingsPercent(params), 0.0);
  params.cacheability = 1.0;
  EXPECT_GT(FirewallSavingsPercent(params), 0.0);
}

TEST(ModelTest, FirewallSavingsIsResultOneCondition) {
  // Result 1: caching preferable iff B_NC > 2 B_C, i.e. savings > 0 iff
  // ratio < 0.5.
  ModelParams params = ModelParams::Table2Baseline();
  for (double x = 0.2; x <= 1.0; x += 0.05) {
    params.cacheability = x;
    EXPECT_EQ(FirewallSavingsPercent(params) > 0, BytesRatio(params) < 0.5);
  }
}

TEST(ModelTest, UniformSiteMatchesClosedFormWhenExact) {
  // cacheability 0.5 with 4 fragments/page is exactly 2 per page.
  ModelParams params = ModelParams::Table2Baseline();
  params.cacheability = 0.5;
  SiteSpec site = SiteSpec::Uniform(params);
  ASSERT_EQ(site.pages.size(), 10u);
  std::vector<double> probs =
      ZipfProbabilities(params.num_pages, params.zipf_alpha);
  double general =
      ExpectedBytes(site, probs, params.requests, params.hit_ratio, true);
  EXPECT_NEAR(general, ExpectedBytesWithCache(params), 1e-6);
  double general_nc =
      ExpectedBytes(site, probs, params.requests, params.hit_ratio, false);
  EXPECT_NEAR(general_nc, ExpectedBytesNoCache(params), 1e-6);
}

TEST(ModelTest, UniformSiteTracksFractionalCacheability) {
  // cacheability 0.6 -> 24 of 40 fragments cacheable site-wide.
  ModelParams params = ModelParams::Table2Baseline();
  SiteSpec site = SiteSpec::Uniform(params);
  int cacheable = 0;
  int total = 0;
  for (const PageSpec& page : site.pages) {
    for (const FragmentSpec& fragment : page.fragments) {
      ++total;
      if (fragment.cacheable) ++cacheable;
    }
  }
  EXPECT_EQ(total, 40);
  EXPECT_EQ(cacheable, 24);
}

TEST(ModelTest, ZipfProbabilitiesNormalizedAndSkewed) {
  std::vector<double> probs = ZipfProbabilities(10, 1.0);
  double total = 0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(probs[0] / probs[1], 2.0, 1e-12);
}

TEST(ModelTest, PageSizeHelpers) {
  ModelParams params = ModelParams::Table2Baseline();
  SiteSpec site = SiteSpec::Uniform(params);
  const PageSpec& page = site.pages[0];
  EXPECT_DOUBLE_EQ(PageSizeNoCache(page, site), 4500.0);
  // Full hit ratio: every cacheable fragment costs one tag.
  double with_cache = PageSizeWithCache(page, site, 1.0);
  EXPECT_LT(with_cache, 4500.0);
}

// Property sweep: analytical savings formula and direct subtraction agree
// across a parameter grid.
struct GridPoint {
  double h;
  double x;
  double s;
};

class ModelGridTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelGridTest, SavingsConsistentWithBytes) {
  ModelParams params = ModelParams::Table2Baseline();
  params.hit_ratio = GetParam().h;
  params.cacheability = GetParam().x;
  params.fragment_size = GetParam().s;
  double nc = ExpectedBytesNoCache(params);
  double c = ExpectedBytesWithCache(params);
  EXPECT_NEAR(SavingsPercent(params), (nc - c) / nc * 100.0, 1e-9);
  EXPECT_NEAR(BytesRatio(params), c / nc, 1e-12);
  EXPECT_GT(c, 0);
  EXPECT_GT(nc, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGridTest,
    ::testing::Values(GridPoint{0.0, 0.6, 1000}, GridPoint{0.5, 0.2, 100},
                      GridPoint{0.8, 0.6, 1000}, GridPoint{1.0, 1.0, 5000},
                      GridPoint{0.9, 0.8, 250}, GridPoint{0.1, 0.4, 2000}));

}  // namespace
}  // namespace dynaprox::analytical
