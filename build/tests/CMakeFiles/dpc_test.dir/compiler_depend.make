# Empty compiler generated dependencies file for dpc_test.
# This may be replaced when dependencies are built.
