#ifndef DYNAPROX_COMMON_STATUS_H_
#define DYNAPROX_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace dynaprox {

// Error category for a Status. Kept deliberately small; the message string
// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCapacityExceeded,
  kCorruption,
  kFailedPrecondition,
  kIoError,
  kUnimplemented,
  kUnavailable,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

// Status is the library-wide error type. No exceptions are thrown anywhere
// in dynaprox; every fallible operation returns Status (or Result<T>).
//
// Usage:
//   Status s = directory.Insert(id);
//   if (!s.ok()) return s;
class Status {
 public:
  // Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  // Renders "Code: message" ("OK" for success); for logs and test output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace dynaprox

// Propagates a non-OK Status from an expression to the caller.
#define DYNAPROX_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::dynaprox::Status _dp_status = (expr);            \
    if (!_dp_status.ok()) return _dp_status;           \
  } while (false)

#endif  // DYNAPROX_COMMON_STATUS_H_
