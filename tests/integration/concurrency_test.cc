// Concurrency integration: the full TCP deployment (clients -> DPC proxy
// server -> TCP upstream -> origin+BEM) hammered from several client
// threads while a writer mutates the data source. Checks that every
// response is well-formed and every page reflects a value the data source
// actually held (no torn or stale-past-invalidation content).

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "appserver/origin_server.h"
#include "appserver/script_registry.h"
#include "bem/monitor.h"
#include "dpc/proxy.h"
#include "net/tcp.h"
#include "storage/table.h"
#include "storage/value.h"

namespace dynaprox {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* counters = repository_.GetOrCreateTable("counters");
    counters->Upsert("value", {{"v", storage::Value(int64_t{0})}});

    registry_.RegisterOrReplace(
        "/counter", [](appserver::ScriptContext& context) {
          return context.CacheableBlock(
              bem::FragmentId("counter"),
              [](appserver::ScriptContext& block) {
                auto row =
                    (*block.repository()->GetTable("counters"))->Get("value");
                if (!row.ok()) return row.status();
                block.DeclareDependency("counters", "value");
                int64_t v = storage::GetInt(*row, "v");
                block.Emit("[v=" + std::to_string(v) + "][v2=" +
                           std::to_string(v) + "]");
                return Status::Ok();
              });
        });

    // A four-block page with layout text between the blocks: exercises
    // page-order splicing when the origin runs miss generators on the
    // block pool (ParallelOriginConcurrencyTest sets block_workers_).
    registry_.RegisterOrReplace(
        "/multi", [](appserver::ScriptContext& context) {
          context.Emit("H0");
          for (int b = 0; b < 4; ++b) {
            if (b > 0) context.Emit("|");
            Status status = context.CacheableBlock(
                bem::FragmentId("multi_b" + std::to_string(b)),
                [b](appserver::ScriptContext& block) {
                  auto row = (*block.repository()->GetTable("counters"))
                                 ->Get("value");
                  if (!row.ok()) return row.status();
                  block.DeclareDependency("counters", "value");
                  block.Emit("[b" + std::to_string(b) + " v=" +
                             std::to_string(storage::GetInt(*row, "v")) +
                             "]");
                  return Status::Ok();
                });
            if (!status.ok()) return status;
          }
          context.Emit("T");
          return Status::Ok();
        });

    bem::BemOptions bem_options;
    bem_options.capacity = 64;
    monitor_ = *bem::BackEndMonitor::Create(bem_options);
    monitor_->AttachRepository(&repository_);
    appserver::OriginOptions origin_options;
    origin_options.block_workers = block_workers_;
    origin_ = std::make_unique<appserver::OriginServer>(
        &registry_, &repository_, monitor_.get(), origin_options);
    origin_server_ = std::make_unique<net::TcpServer>(origin_->AsHandler());
    ASSERT_TRUE(origin_server_->Start().ok());

    to_origin_ = std::make_unique<net::TcpClientTransport>(
        "127.0.0.1", origin_server_->port());
    dpc::ProxyOptions proxy_options;
    proxy_options.capacity = 64;
    proxy_ = std::make_unique<dpc::DpcProxy>(to_origin_.get(), proxy_options);
    proxy_server_ = std::make_unique<net::TcpServer>(proxy_->AsHandler());
    ASSERT_TRUE(proxy_server_->Start().ok());
  }

  void TearDown() override {
    proxy_server_->Stop();
    origin_server_->Stop();
  }

  int block_workers_ = 0;  // Set by derived fixtures before SetUp runs.
  storage::ContentRepository repository_;
  appserver::ScriptRegistry registry_;
  std::unique_ptr<bem::BackEndMonitor> monitor_;
  std::unique_ptr<appserver::OriginServer> origin_;
  std::unique_ptr<net::TcpServer> origin_server_;
  std::unique_ptr<net::TcpClientTransport> to_origin_;
  std::unique_ptr<dpc::DpcProxy> proxy_;
  std::unique_ptr<net::TcpServer> proxy_server_;
};

TEST_F(ConcurrencyTest, ParallelReadersWithWriterSeeConsistentPages) {
  constexpr int kReaderThreads = 6;
  constexpr int kRequestsPerReader = 120;
  constexpr int kWrites = 40;

  std::atomic<bool> writer_done{false};
  std::atomic<int> malformed{0};
  std::atomic<int> transport_errors{0};
  std::atomic<int> http_errors{0};

  std::thread writer([&] {
    storage::Table* counters = *repository_.GetTable("counters");
    for (int64_t i = 1; i <= kWrites; ++i) {
      counters->Upsert("value", {{"v", storage::Value(i)}});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&] {
      net::TcpClientTransport client("127.0.0.1", proxy_server_->port());
      http::Request request;
      request.target = "/counter";
      for (int i = 0; i < kRequestsPerReader; ++i) {
        Result<http::Response> response = client.RoundTrip(request);
        if (!response.ok()) {
          ++transport_errors;
          continue;
        }
        if (response->status_code != 200) {
          ++http_errors;
          continue;
        }
        // The fragment writes the same value twice; a torn page would
        // disagree with itself.
        const std::string& body = response->body;
        size_t v1_begin = body.find("[v=");
        size_t v1_end = body.find(']', v1_begin);
        size_t v2_begin = body.find("[v2=", v1_end);
        size_t v2_end = body.find(']', v2_begin);
        if (v1_begin == std::string::npos || v2_begin == std::string::npos) {
          ++malformed;
          continue;
        }
        std::string v1 = body.substr(v1_begin + 3, v1_end - v1_begin - 3);
        std::string v2 = body.substr(v2_begin + 4, v2_end - v2_begin - 4);
        if (v1 != v2) ++malformed;
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();

  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(http_errors.load(), 0);
  EXPECT_EQ(malformed.load(), 0);

  // After all writes settle, a fresh request must see the final value.
  net::TcpClientTransport client("127.0.0.1", proxy_server_->port());
  http::Request request;
  request.target = "/counter";
  Result<http::Response> final_response = client.RoundTrip(request);
  ASSERT_TRUE(final_response.ok());
  EXPECT_NE(final_response->body.find("[v=" + std::to_string(kWrites) + "]"),
            std::string::npos)
      << final_response->body;
}

TEST_F(ConcurrencyTest, ParallelColdStartAgreesOnOnePage) {
  // Many threads racing the very first request: all must get the same
  // correct page even though SET/GET interleave at the store.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> bodies(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      net::TcpClientTransport client("127.0.0.1", proxy_server_->port());
      http::Request request;
      request.target = "/counter";
      Result<http::Response> response = client.RoundTrip(request);
      bodies[t] = response.ok() ? response->body : "ERROR";
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<std::string> unique(bodies.begin(), bodies.end());
  EXPECT_EQ(unique.size(), 1u) << "divergent pages under cold-start race";
  EXPECT_EQ(*unique.begin(), "[v=0][v2=0]");
}

// The same deployment with the origin's block-execution pool enabled:
// miss generators of one page run on 4 workers (--block-workers=4).
class ParallelOriginConcurrencyTest : public ConcurrencyTest {
 protected:
  ParallelOriginConcurrencyTest() { block_workers_ = 4; }
};

TEST_F(ParallelOriginConcurrencyTest, ColdMultiBlockPageIsPageOrdered) {
  // Threads race the very first render of a page whose four miss
  // generators all run on the pool. Every client must get the one
  // correct, page-ordered assembly.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> bodies(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      net::TcpClientTransport client("127.0.0.1", proxy_server_->port());
      http::Request request;
      request.target = "/multi";
      Result<http::Response> response = client.RoundTrip(request);
      bodies[t] = response.ok() ? response->body : "ERROR";
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<std::string> unique(bodies.begin(), bodies.end());
  EXPECT_EQ(unique.size(), 1u) << "divergent pages under cold-start race";
  EXPECT_EQ(*unique.begin(), "H0[b0 v=0]|[b1 v=0]|[b2 v=0]|[b3 v=0]T");
  // The generators really went through the pool.
  EXPECT_GT(origin_->stats().parallel_blocks, 0u);
}

TEST_F(ParallelOriginConcurrencyTest, HammerKeepsPagesWellFormed) {
  constexpr int kReaderThreads = 6;
  constexpr int kRequestsPerReader = 80;
  constexpr int kWrites = 30;

  std::atomic<int> malformed{0};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    storage::Table* counters = *repository_.GetTable("counters");
    for (int64_t i = 1; i <= kWrites; ++i) {
      counters->Upsert("value", {{"v", storage::Value(i)}});
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaderThreads);
  for (int t = 0; t < kReaderThreads; ++t) {
    readers.emplace_back([&] {
      net::TcpClientTransport client("127.0.0.1", proxy_server_->port());
      http::Request request;
      request.target = "/multi";
      for (int i = 0; i < kRequestsPerReader; ++i) {
        Result<http::Response> response = client.RoundTrip(request);
        if (!response.ok() || response->status_code != 200) {
          ++failures;
          continue;
        }
        // Blocks may legitimately see different values mid-write (an
        // update between two generators re-renders only the later
        // blocks), but the page structure must always be complete and
        // in page order.
        const std::string& body = response->body;
        size_t at = 0;
        bool ok = body.compare(0, 2, "H0") == 0;
        at = 2;
        for (int b = 0; ok && b < 4; ++b) {
          std::string prefix = (b > 0 ? std::string("|") : std::string()) +
                               "[b" + std::to_string(b) + " v=";
          ok = body.compare(at, prefix.size(), prefix) == 0;
          if (!ok) break;
          size_t close = body.find(']', at + prefix.size());
          ok = close != std::string::npos;
          at = close + 1;
        }
        ok = ok && body.compare(at, std::string::npos, "T") == 0;
        if (!ok) ++malformed;
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  writer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(malformed.load(), 0);

  // After the writes settle every block re-renders to the final value.
  net::TcpClientTransport client("127.0.0.1", proxy_server_->port());
  http::Request request;
  request.target = "/multi";
  Result<http::Response> final_response = client.RoundTrip(request);
  ASSERT_TRUE(final_response.ok());
  std::string want = "H0";
  for (int b = 0; b < 4; ++b) {
    want += (b > 0 ? "|" : "");
    want += "[b" + std::to_string(b) + " v=" + std::to_string(kWrites) + "]";
  }
  want += "T";
  EXPECT_EQ(final_response->body, want);
}

}  // namespace
}  // namespace dynaprox
