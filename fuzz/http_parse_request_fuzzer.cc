// libFuzzer entry point for the HTTP request parser: the bytes a hostile
// client can put on the wire. Exercises both the one-shot ParseRequest and
// the incremental MessageReader (with byte caps armed), feeding the latter
// in two chunks so partial-message states are reached.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "http/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view wire(reinterpret_cast<const char*>(data), size);

  // One-shot parse: must return ok or a clean error, never crash.
  (void)dynaprox::http::ParseRequest(wire);

  // Incremental parse with hostile-input caps, split mid-stream.
  dynaprox::http::RequestReader reader;
  reader.set_limits({/*max_header_bytes=*/4096, /*max_body_bytes=*/16384});
  size_t split = size / 2;
  reader.Feed(wire.substr(0, split));
  while (auto next = reader.Next()) {
    if (!next->ok()) break;
  }
  reader.Feed(wire.substr(split));
  while (auto next = reader.Next()) {
    if (!next->ok()) break;
  }
  return 0;
}
