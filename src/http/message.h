#ifndef DYNAPROX_HTTP_MESSAGE_H_
#define DYNAPROX_HTTP_MESSAGE_H_

#include <map>
#include <string>
#include <string_view>

#include "http/header_map.h"

namespace dynaprox::http {

// An HTTP/1.1 request. `target` is the request-target as it appears on the
// request line (path plus optional "?query").
struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  // Path component of the target (before '?').
  std::string_view Path() const;

  // Raw query string (after '?', empty if none).
  std::string_view QueryString() const;

  // Decoded query parameters in target order; later duplicates win.
  std::map<std::string, std::string> QueryParams() const;

  // Serializes to wire form, adding Content-Length when a body is present
  // and none is set.
  std::string Serialize() const;

  // Bytes Serialize() would produce.
  size_t SerializedSize() const;
};

// An HTTP/1.1 response.
struct Response {
  int status_code = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::string Serialize() const;
  size_t SerializedSize() const;

  static Response MakeOk(std::string body,
                         std::string content_type = "text/html");
  static Response MakeError(int code, std::string reason, std::string body);
};

// Returns the canonical reason phrase for common status codes ("OK",
// "Not Found", ...), or "Unknown" otherwise.
std::string_view CanonicalReason(int status_code);

// Percent-decodes `s` ('+' becomes space). Invalid escapes pass through.
std::string UrlDecode(std::string_view s);

// Percent-encodes characters outside the URL-safe set.
std::string UrlEncode(std::string_view s);

// Parses "a=1&b=2" into a map (decoded); later duplicates win.
std::map<std::string, std::string> ParseQueryString(std::string_view query);

// Normalizes a request path: resolves "." and ".." segments (never above
// the root), collapses duplicate slashes, and ensures a leading '/'.
// "/a/./b/../c//d" -> "/a/c/d". Query strings are not part of the input.
std::string NormalizePath(std::string_view path);

}  // namespace dynaprox::http

#endif  // DYNAPROX_HTTP_MESSAGE_H_
