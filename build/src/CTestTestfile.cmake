# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("http")
subdirs("net")
subdirs("storage")
subdirs("appserver")
subdirs("bem")
subdirs("dpc")
subdirs("firewall")
subdirs("baseline")
subdirs("analytical")
subdirs("workload")
subdirs("edge")
subdirs("sim")
