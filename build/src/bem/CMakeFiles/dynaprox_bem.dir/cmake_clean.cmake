file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_bem.dir/cache_directory.cc.o"
  "CMakeFiles/dynaprox_bem.dir/cache_directory.cc.o.d"
  "CMakeFiles/dynaprox_bem.dir/dependency_registry.cc.o"
  "CMakeFiles/dynaprox_bem.dir/dependency_registry.cc.o.d"
  "CMakeFiles/dynaprox_bem.dir/free_list.cc.o"
  "CMakeFiles/dynaprox_bem.dir/free_list.cc.o.d"
  "CMakeFiles/dynaprox_bem.dir/monitor.cc.o"
  "CMakeFiles/dynaprox_bem.dir/monitor.cc.o.d"
  "CMakeFiles/dynaprox_bem.dir/replacement.cc.o"
  "CMakeFiles/dynaprox_bem.dir/replacement.cc.o.d"
  "CMakeFiles/dynaprox_bem.dir/sweeper.cc.o"
  "CMakeFiles/dynaprox_bem.dir/sweeper.cc.o.d"
  "CMakeFiles/dynaprox_bem.dir/tag_codec.cc.o"
  "CMakeFiles/dynaprox_bem.dir/tag_codec.cc.o.d"
  "libdynaprox_bem.a"
  "libdynaprox_bem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_bem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
