#include "appserver/session.h"

#include <gtest/gtest.h>

namespace dynaprox::appserver {
namespace {

TEST(SessionManagerTest, LoginResolvesViaQueryParam) {
  SessionManager sessions;
  std::string token = sessions.Login("bob");
  http::Request request;
  request.target = "/page?sid=" + token;
  auto user = sessions.ResolveUser(request);
  ASSERT_TRUE(user.has_value());
  EXPECT_EQ(*user, "bob");
}

TEST(SessionManagerTest, ResolvesViaCookie) {
  SessionManager sessions;
  std::string token = sessions.Login("alice");
  http::Request request;
  request.headers.Add("Cookie", "theme=dark; sid=" + token + "; x=1");
  auto user = sessions.ResolveUser(request);
  ASSERT_TRUE(user.has_value());
  EXPECT_EQ(*user, "alice");
}

TEST(SessionManagerTest, AnonymousWithoutToken) {
  SessionManager sessions;
  http::Request request;
  request.target = "/page";
  EXPECT_FALSE(sessions.ResolveUser(request).has_value());
}

TEST(SessionManagerTest, UnknownTokenIsAnonymous) {
  SessionManager sessions;
  http::Request request;
  request.target = "/page?sid=bogus";
  EXPECT_FALSE(sessions.ResolveUser(request).has_value());
}

TEST(SessionManagerTest, LogoutInvalidatesToken) {
  SessionManager sessions;
  std::string token = sessions.Login("bob");
  sessions.Logout(token);
  http::Request request;
  request.target = "/page?sid=" + token;
  EXPECT_FALSE(sessions.ResolveUser(request).has_value());
  EXPECT_EQ(sessions.active_sessions(), 0u);
}

TEST(SessionManagerTest, DistinctTokensPerLogin) {
  SessionManager sessions;
  EXPECT_NE(sessions.Login("bob"), sessions.Login("bob"));
  EXPECT_EQ(sessions.active_sessions(), 2u);
}

}  // namespace
}  // namespace dynaprox::appserver
