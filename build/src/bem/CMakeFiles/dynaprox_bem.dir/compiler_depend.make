# Empty compiler generated dependencies file for dynaprox_bem.
# This may be replaced when dependencies are built.
