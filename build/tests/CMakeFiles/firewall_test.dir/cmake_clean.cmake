file(REMOVE_RECURSE
  "CMakeFiles/firewall_test.dir/firewall/firewall_test.cc.o"
  "CMakeFiles/firewall_test.dir/firewall/firewall_test.cc.o.d"
  "firewall_test"
  "firewall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
