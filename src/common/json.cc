#include "common/json.h"

#include <cmath>
#include <cstdio>

namespace dynaprox {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // Comma was handled when the key was written.
  }
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) out_ += ',';
    scope_has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  scope_has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scope_has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  scope_has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!scope_has_value_.empty()) {
    if (scope_has_value_.back()) out_ += ',';
    scope_has_value_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf.
  }
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::TakeString() {
  std::string result = std::move(out_);
  out_.clear();
  scope_has_value_.clear();
  pending_key_ = false;
  return result;
}

}  // namespace dynaprox
