#ifndef DYNAPROX_COMMON_RNG_H_
#define DYNAPROX_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynaprox {

// Deterministic pseudo-random number generator (xorshift64*). All randomness
// in dynaprox flows through Rng so workloads and simulations replay exactly
// given the same seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Returns the next raw 64-bit value.
  uint64_t Next();

  // Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Returns a uniform double in [0, 1).
  double NextDouble();

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBool(double p);

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  uint64_t state_;
};

// Samples from a Zipf distribution over ranks {0, ..., n-1}:
// P(rank i) proportional to 1 / (i+1)^alpha. The paper's analysis assumes
// Zipfian page popularity (citing Almeida et al. and Cunha et al.); the
// classic web-trace fit is alpha = 1.
class ZipfSampler {
 public:
  // Precomputes the CDF for `n` ranks with exponent `alpha`.
  ZipfSampler(size_t n, double alpha);

  // Draws a rank in [0, n). Cost: O(log n) binary search over the CDF.
  size_t Sample(Rng& rng) const;

  // Probability mass of rank `i`.
  double Pmf(size_t i) const;

  size_t n() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_.back() == 1.
};

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_RNG_H_
