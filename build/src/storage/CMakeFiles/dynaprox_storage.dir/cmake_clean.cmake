file(REMOVE_RECURSE
  "CMakeFiles/dynaprox_storage.dir/table.cc.o"
  "CMakeFiles/dynaprox_storage.dir/table.cc.o.d"
  "CMakeFiles/dynaprox_storage.dir/update_bus.cc.o"
  "CMakeFiles/dynaprox_storage.dir/update_bus.cc.o.d"
  "CMakeFiles/dynaprox_storage.dir/value.cc.o"
  "CMakeFiles/dynaprox_storage.dir/value.cc.o.d"
  "libdynaprox_storage.a"
  "libdynaprox_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynaprox_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
