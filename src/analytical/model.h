#ifndef DYNAPROX_ANALYTICAL_MODEL_H_
#define DYNAPROX_ANALYTICAL_MODEL_H_

#include <vector>

namespace dynaprox::analytical {

// Parameters of the Section 5 analysis, defaulted to Table 2's baseline.
//
// Note on reproducing the published curves: Table 2 lists cacheability 0.6,
// but the paper's Figures 2(a)/2(b) are only consistent with cacheability
// ~0.8 (e.g. the 2(a) asymptote 1 - X*h = 0.36 and the 2(b) maximum ~70%).
// The benches print both settings; EXPERIMENTS.md discusses the mismatch.
struct ModelParams {
  double hit_ratio = 0.8;        // h: fraction of cacheable fragment uses
                                 // served from the DPC.
  double fragment_size = 1000;   // s_e bytes (Table 2: "1K bytes").
  int fragments_per_page = 4;
  int num_pages = 10;
  double header_size = 500;      // f bytes of response header.
  double tag_size = 10;          // g bytes per tag.
  double cacheability = 0.6;     // X: fraction of fragments cacheable.
  double requests = 1e6;         // R requests in the observation interval.
  double zipf_alpha = 1.0;       // Page-popularity skew.

  static ModelParams Table2Baseline() { return ModelParams{}; }

  // The settings that actually regenerate the published Figure 2 curves.
  static ModelParams PaperFigureSettings() {
    ModelParams params;
    params.cacheability = 0.8;
    return params;
  }
};

// --- Closed forms over the uniform site of ModelParams ---

// Response size for one page without the DPC: S_NC = sum(s_e) + f.
double ResponseSizeNoCache(const ModelParams& params);

// Response size with the DPC:
// S_C = sum_j [ X_j (h g + (1-h)(s_e + 2g)) + (1-X_j) s_e ] + f.
// A hit replaces the fragment with one GET tag (g bytes); a miss ships the
// fragment wrapped in SET framing (s_e + 2g).
double ResponseSizeWithCache(const ModelParams& params);

// Expected bytes served over the interval, B = sum_i S_{c_i} * n_i(t).
// With the uniform site the Zipf weights sum out: B = R * S.
double ExpectedBytesNoCache(const ModelParams& params);
double ExpectedBytesWithCache(const ModelParams& params);

// B_C / B_NC (Figure 2(a) / 3(b) y-axis).
double BytesRatio(const ModelParams& params);

// 100 * (B_NC - B_C) / B_NC (Figure 2(b) / 5 y-axis).
double SavingsPercent(const ModelParams& params);

// Scan-cost savings, 100 * (1 - 2 B_C / B_NC) (Figure 3(a) lower curve;
// scanCost_NC = y B_NC, scanCost_C = 2 y B_C with z ~= y).
double FirewallSavingsPercent(const ModelParams& params);

// --- General form over heterogeneous sites ---

struct FragmentSpec {
  double size;     // Average bytes.
  bool cacheable;  // X_j, fixed at design time.
};

struct PageSpec {
  std::vector<FragmentSpec> fragments;
};

struct SiteSpec {
  std::vector<PageSpec> pages;
  double header_size = 500;
  double tag_size = 10;

  // The uniform site the closed forms assume: every page has
  // fragments_per_page fragments of fragment_size bytes, the first
  // round(cacheability * fragments_per_page) of which are cacheable.
  static SiteSpec Uniform(const ModelParams& params);
};

// Per-page response sizes.
double PageSizeNoCache(const PageSpec& page, const SiteSpec& site);
double PageSizeWithCache(const PageSpec& page, const SiteSpec& site,
                         double hit_ratio);

// Zipf access probabilities P(i) for `n` pages with exponent `alpha`.
std::vector<double> ZipfProbabilities(int n, double alpha);

// Expected bytes served with arbitrary per-page popularity.
double ExpectedBytes(const SiteSpec& site,
                     const std::vector<double>& page_probabilities,
                     double requests, double hit_ratio, bool with_cache);

}  // namespace dynaprox::analytical

#endif  // DYNAPROX_ANALYTICAL_MODEL_H_
