#ifndef DYNAPROX_BEM_CACHE_DIRECTORY_H_
#define DYNAPROX_BEM_CACHE_DIRECTORY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bem/free_list.h"
#include "bem/replacement.h"
#include "bem/types.h"
#include "common/clock.h"
#include "common/contended_mutex.h"
#include "common/result.h"

namespace dynaprox::bem {

// Outcome of a directory lookup.
enum class LookupOutcome {
  kHit,         // Present, valid, not expired: serve via GET.
  kMissAbsent,  // Never seen (or entry reclaimed).
  kMissInvalid, // Present but invalidated (data-source or explicit).
  kMissExpired, // Present but TTL elapsed (invalidated as a side effect).
};

struct LookupResult {
  LookupOutcome outcome;
  // Valid only for kHit.
  DpcKey key = kInvalidDpcKey;

  bool hit() const { return outcome == LookupOutcome::kHit; }
};

// Aggregate counters exposed for tests, benches and EXPERIMENTS.md.
struct DirectoryStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t ttl_invalidations = 0;
  uint64_t explicit_invalidations = 0;
  uint64_t evictions = 0;

  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// The cache directory (paper 4.3.3): the BEM's single source of truth about
// what the DPC holds. Maps fragmentID -> {dpcKey, isValid, ttl}.
//
// Lifecycle invariants (tested in cache_directory_test.cc):
//  * Every key in [0, capacity) is either on the free list or owned by
//    exactly one VALID entry... with one paper-faithful subtlety: an
//    INVALID entry keeps referencing its released key until that key is
//    reassigned, at which point the stale entry is reclaimed. ("invalid
//    fragments are not explicitly removed from the DPC; the slots simply
//    remain unused until they are subsequently assigned to a new fragment")
//  * Invalidation never communicates with the DPC.
//  * Directory size never exceeds capacity (quiescent; a burst of
//    concurrent inserts can transiently overshoot by the number of
//    in-flight inserts while stale entries are being reclaimed).
//
// Thread-safe. The entry map is lock-striped kStripes ways by fragment id
// (mirroring dpc::FragmentStore), so parallel block executions of one page
// — and parallel pages on different ingress workers — don't serialize on
// one directory mutex. Counters are relaxed atomics.
//
// Lock hierarchy (deadlock discipline): a stripe mutex may be held while
// taking the policy mutex, the key-owner mutex, or the free list's
// internal mutex — all leaves. No operation ever holds two stripe mutexes,
// and cross-stripe work (eviction of a victim in another stripe, reclaim
// of a stale key owner) runs with no stripe mutex held, re-validating
// under the target stripe's lock. The replacement policy stays one global
// instance behind its own mutex so victim selection keeps the exact
// sequential LRU/FIFO/CLOCK semantics the model tests and
// bench/ablation_replacement pin down.
class CacheDirectory {
 public:
  static constexpr size_t kStripes = 16;

  // `ttl_micros` <= 0 in Insert means "no TTL". `clock` must outlive the
  // directory. `policy` selects eviction victims when the key space is
  // exhausted.
  CacheDirectory(DpcKey capacity, const Clock* clock,
                 std::unique_ptr<ReplacementPolicy> policy);

  // Looks up `id`; on a hit the replacement policy sees an access. Expired
  // entries are invalidated lazily here.
  LookupResult Lookup(const FragmentId& id);

  // Registers `id` as cached and returns its new dpcKey. If the key space
  // is full, evicts a victim chosen by the replacement policy. Re-inserting
  // a currently-valid fragment first invalidates it (fresh key), matching
  // the paper's miss-path ("an entry is inserted into the cache directory").
  Result<DpcKey> Insert(const FragmentId& id, MicroTime ttl_micros);

  // Marks `id` invalid and pushes its key on the free list. NotFound if the
  // fragment is unknown or already invalid.
  Status Invalidate(const FragmentId& id);
  Status InvalidateCanonical(const std::string& canonical);

  // Invalidates whichever valid fragment currently owns `key` (used by the
  // DPC cold-cache recovery protocol, which only knows dpcKeys). Returns
  // the canonical id invalidated; NotFound if no valid owner. With
  // `pin_key` the key is released to the FRONT of the free list so the
  // next Insert — normally the refresh re-render of this very fragment —
  // gets the same key back. The DPC's streamed recovery depends on that:
  // it has already committed `GET key` to the client and can only fill
  // the slot if the refreshed template SETs the same key.
  Result<std::string> InvalidateKey(DpcKey key, bool pin_key = false);

  // Invalidates every valid entry; returns how many.
  size_t InvalidateAll();

  // Proactively invalidates expired entries; returns how many.
  size_t SweepExpired();

  // Introspection.
  DpcKey capacity() const { return free_list_.capacity(); }
  size_t entry_count() const;
  size_t valid_count() const {
    return valid_count_.load(std::memory_order_relaxed);
  }
  size_t free_key_count() const { return free_list_.free_count(); }
  DirectoryStats stats() const;
  const ReplacementPolicy& policy() const { return *policy_; }

  // Parallelism counters: evidence that concurrent callers really hit
  // different stripes (and how often the shared structures still collide).
  struct ConcurrencyStats {
    uint64_t stripe_contentions = 0;     // Contended stripe-mutex locks.
    uint64_t policy_contentions = 0;     // Contended policy-mutex locks.
    uint64_t free_list_contentions = 0;  // Contended free-list locks.
    uint64_t insert_races = 0;  // Insert rounds retried under concurrency.
  };
  ConcurrencyStats concurrency_stats() const;

  // Returns the valid entry's key for tests; NotFound otherwise.
  Result<DpcKey> KeyOf(const FragmentId& id) const;

  // A read-only view of one directory entry (introspection/status).
  struct EntryView {
    std::string fragment_id;  // Canonical form.
    DpcKey key;
    bool is_valid;
    MicroTime age_micros;     // Since insertion.
    MicroTime ttl_micros;     // <= 0: no expiry.
  };

  // Snapshots up to `limit` entries in canonical order (0 = all).
  std::vector<EntryView> SnapshotEntries(size_t limit = 0) const;

 private:
  struct Entry {
    DpcKey key;
    bool is_valid;
    MicroTime ttl_micros;    // <= 0: no expiry.
    MicroTime inserted_at;
  };

  struct Stripe {
    mutable common::ContendedMutex mu;
    std::map<std::string, Entry> entries;  // Guarded by mu.
  };

  Stripe& StripeFor(const std::string& canonical) const {
    return stripes_[std::hash<std::string>{}(canonical) % kStripes];
  }

  bool Expired(const Entry& entry) const;
  // Shared invalidation: flips the flag, releases the key, updates policy.
  // Caller holds the entry's stripe mutex. `pin_key` releases to the front
  // of the free list (refresh reuse).
  void InvalidateEntryLocked(const std::string& canonical, Entry& entry,
                             bool pin_key = false);
  // Reclaims the stale invalid entry (if any) that still references `key`.
  // Takes the owner's stripe lock itself; caller must hold NO stripe lock.
  void ReclaimKeyOwner(DpcKey key);
  // Frees one key by evicting a policy victim. CapacityExceeded when the
  // policy has no candidates. Caller must hold NO stripe lock.
  Status EvictOne();

  const Clock* clock_;
  std::unique_ptr<ReplacementPolicy> policy_;  // Guarded by policy_mu_.
  mutable common::ContendedMutex policy_mu_;
  FreeList free_list_;  // Internally synchronized.
  mutable std::array<Stripe, kStripes> stripes_;
  // key -> canonical fragment id of the entry referencing it ("" if none).
  // Guarded by owner_mu_ (leaf lock; element k is only rewritten by the
  // thread that currently holds key k out of the free list).
  mutable std::mutex owner_mu_;
  std::vector<std::string> key_owner_;

  std::atomic<size_t> valid_count_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> ttl_invalidations_{0};
  std::atomic<uint64_t> explicit_invalidations_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insert_races_{0};
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_CACHE_DIRECTORY_H_
