#include "appserver/origin_server.h"

#include "appserver/script_context.h"
#include "bem/protocol.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"

namespace dynaprox::appserver {

OriginServer::OriginServer(const ScriptRegistry* registry,
                           storage::ContentRepository* repository,
                           bem::BackEndMonitor* monitor,
                           OriginOptions options)
    : registry_(registry),
      repository_(repository),
      monitor_(monitor),
      options_(options) {}

net::Handler OriginServer::AsHandler() {
  return [this](const http::Request& request) { return Handle(request); };
}

void OriginServer::HandleRefreshHeader(const http::Request& request) {
  if (monitor_ == nullptr) return;
  auto refresh = request.headers.Get(bem::kRefreshHeader);
  if (!refresh.has_value()) return;
  for (std::string_view key_hex : StrSplit(*refresh, ',')) {
    Result<uint64_t> key = ParseHex(StripWhitespace(key_hex));
    if (!key.ok() || *key > bem::kInvalidDpcKey) {
      DYNAPROX_LOG(kWarning, "origin")
          << "bad refresh key '" << std::string(key_hex) << "'";
      continue;
    }
    // NotFound is fine: the key may already have been invalidated (or even
    // reassigned) between the DPC's miss and this request.
    Status status = monitor_->InvalidateKey(static_cast<bem::DpcKey>(*key));
    if (status.ok()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.refresh_invalidations;
    }
  }
}

OriginStats OriginServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void OriginServer::ApplyHeaderPadding(http::Response& response) const {
  if (options_.pad_headers_to_bytes == 0) return;
  // Head bytes as the response will serialize (incl. the implicit
  // Content-Length field).
  size_t head_size = response.SerializedSize() - response.body.size();
  // "X-Pad: " + value + CRLF costs 9 bytes of framing.
  constexpr size_t kPadFraming = 9;
  if (head_size + kPadFraming < options_.pad_headers_to_bytes) {
    size_t pad = options_.pad_headers_to_bytes - head_size - kPadFraming;
    response.headers.Add("X-Pad", std::string(pad, 'x'));
  }
}

http::Response OriginServer::RenderStatus() const {
  OriginStats snapshot = stats();
  JsonWriter json;
  json.BeginObject();
  json.Key("component").String("origin");
  json.Key("caching_enabled").Bool(monitor_ != nullptr);
  json.Key("requests").Uint(snapshot.requests);
  json.Key("not_found").Uint(snapshot.not_found);
  json.Key("script_errors").Uint(snapshot.script_errors);
  json.Key("refresh_invalidations").Uint(snapshot.refresh_invalidations);
  json.Key("body_bytes_sent").Uint(snapshot.body_bytes_sent);
  json.Key("fragments").BeginObject();
  json.Key("hits").Uint(snapshot.fragment_hits);
  json.Key("misses").Uint(snapshot.fragment_misses);
  json.Key("uncacheable").Uint(snapshot.fragment_uncacheable);
  json.EndObject();
  if (monitor_ != nullptr) {
    bem::DirectoryStats directory = monitor_->stats();
    json.Key("directory").BeginObject();
    json.Key("capacity").Uint(monitor_->capacity());
    json.Key("hits").Uint(directory.hits);
    json.Key("misses").Uint(directory.misses);
    json.Key("hit_ratio").Double(directory.HitRatio());
    json.Key("inserts").Uint(directory.inserts);
    json.Key("ttl_invalidations").Uint(directory.ttl_invalidations);
    json.Key("explicit_invalidations")
        .Uint(directory.explicit_invalidations);
    json.Key("evictions").Uint(directory.evictions);
    json.Key("sample_entries").BeginArray();
    for (const auto& entry : monitor_->SnapshotEntries(20)) {
      json.BeginObject();
      json.Key("fragment").String(entry.fragment_id);
      json.Key("key").Uint(entry.key);
      json.Key("valid").Bool(entry.is_valid);
      json.Key("age_s").Double(static_cast<double>(entry.age_micros) /
                               kMicrosPerSecond);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  return http::Response::MakeOk(json.TakeString(), "application/json");
}

http::Response OriginServer::Handle(const http::Request& request) {
  if (options_.enable_status && request.Path() == options_.status_path) {
    return RenderStatus();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
  }
  HandleRefreshHeader(request);

  // Normalized dispatch: "/a/../hello" and "/hello//" reach the same
  // script, and dot-segments can never escape the root.
  Result<const ScriptFn*> script =
      registry_->Find(http::NormalizePath(request.Path()));
  if (!script.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.not_found;
    return http::Response::MakeError(404, "Not Found",
                                     script.status().ToString());
  }

  ScriptContext context(request, repository_, monitor_);
  Status run_status = (**script)(context);
  if (!run_status.ok()) {
    DYNAPROX_LOG(kError, "origin")
        << "script failure on " << request.target << ": "
        << run_status.ToString();
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.script_errors;
    return http::Response::MakeError(500, "Internal Server Error",
                                     run_status.ToString());
  }

  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  ApplyHeaderPadding(response);

  const RequestFragmentStats& frag = context.fragment_stats();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.fragment_hits += frag.hits;
    stats_.fragment_misses += frag.misses;
    stats_.fragment_uncacheable += frag.uncacheable;
    stats_.body_bytes_sent += response.body.size();
  }
  return response;
}

}  // namespace dynaprox::appserver
