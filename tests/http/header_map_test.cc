#include "http/header_map.h"

#include <gtest/gtest.h>

namespace dynaprox::http {
namespace {

TEST(HeaderMapTest, AddAndGetCaseInsensitive) {
  HeaderMap headers;
  headers.Add("Content-Type", "text/html");
  ASSERT_TRUE(headers.Get("content-type").has_value());
  EXPECT_EQ(*headers.Get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(headers.Get("Content-Length").has_value());
}

TEST(HeaderMapTest, GetReturnsFirstOfDuplicates) {
  HeaderMap headers;
  headers.Add("Set-Cookie", "a=1");
  headers.Add("Set-Cookie", "b=2");
  EXPECT_EQ(*headers.Get("set-cookie"), "a=1");
  auto all = headers.GetAll("Set-Cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[1], "b=2");
}

TEST(HeaderMapTest, SetReplacesAllDuplicates) {
  HeaderMap headers;
  headers.Add("X", "1");
  headers.Add("x", "2");
  headers.Set("X", "3");
  EXPECT_EQ(headers.GetAll("x").size(), 1u);
  EXPECT_EQ(*headers.Get("X"), "3");
}

TEST(HeaderMapTest, RemoveReturnsCount) {
  HeaderMap headers;
  headers.Add("A", "1");
  headers.Add("a", "2");
  headers.Add("B", "3");
  EXPECT_EQ(headers.Remove("a"), 2u);
  EXPECT_EQ(headers.Remove("a"), 0u);
  EXPECT_EQ(headers.size(), 1u);
  EXPECT_TRUE(headers.Has("B"));
}

TEST(HeaderMapTest, PreservesInsertionOrder) {
  HeaderMap headers;
  headers.Add("First", "1");
  headers.Add("Second", "2");
  headers.Add("Third", "3");
  EXPECT_EQ(headers.fields()[0].first, "First");
  EXPECT_EQ(headers.fields()[2].first, "Third");
}

TEST(HeaderMapTest, SerializedSizeMatchesWireFormat) {
  HeaderMap headers;
  headers.Add("Host", "example.com");  // "Host: example.com\r\n" = 19.
  EXPECT_EQ(headers.SerializedSize(), 19u);
  headers.Add("A", "b");  // "A: b\r\n" = 6.
  EXPECT_EQ(headers.SerializedSize(), 25u);
}

TEST(HeaderMapTest, EmptyMap) {
  HeaderMap headers;
  EXPECT_TRUE(headers.empty());
  EXPECT_EQ(headers.SerializedSize(), 0u);
  EXPECT_TRUE(headers.GetAll("x").empty());
}

}  // namespace
}  // namespace dynaprox::http
