#include "common/fault_point.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "common/strings.h"

namespace dynaprox::chaos {
namespace {

// The log exists to compare seeded runs; cap it so a long chaos soak
// cannot grow memory without bound.
constexpr size_t kInjectionLogCap = 65536;

uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Result<double> ParseProbability(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty probability");
  // Hand-rolled so arbitrary fuzz input can't hit locale/errno quirks:
  // accept only [0-9]*.?[0-9]* with at least one digit.
  double value = 0;
  size_t i = 0;
  bool digits = false;
  for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
    value = value * 10 + (text[i] - '0');
    digits = true;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    double scale = 0.1;
    for (; i < text.size() && text[i] >= '0' && text[i] <= '9'; ++i) {
      value += (text[i] - '0') * scale;
      scale *= 0.1;
      digits = true;
    }
  }
  if (!digits || i != text.size()) {
    return Status::InvalidArgument("bad probability: " + text);
  }
  if (value < 0 || value > 1) {
    return Status::InvalidArgument("probability out of [0,1]: " + text);
  }
  return value;
}

Result<FaultAction> ParseAction(const std::string& text) {
  if (text == "error") return FaultAction::kError;
  if (text == "delay-ms") return FaultAction::kDelayMs;
  if (text == "garbage") return FaultAction::kGarbage;
  if (text == "truncate") return FaultAction::kTruncate;
  if (text == "drop-conn") return FaultAction::kDropConn;
  return Status::InvalidArgument("unknown fault action: " + text);
}

}  // namespace

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kError: return "error";
    case FaultAction::kDelayMs: return "delay-ms";
    case FaultAction::kGarbage: return "garbage";
    case FaultAction::kTruncate: return "truncate";
    case FaultAction::kDropConn: return "drop-conn";
  }
  return "none";
}

FaultDecision FaultPoint::EvaluateSlow() {
  FaultDecision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (action_ == FaultAction::kNone) return decision;
    if (!rng_.NextBool(probability_)) return decision;
    decision.action = action_;
    decision.param = param_;
    fired_.fetch_add(1, std::memory_order_relaxed);
  }
  FaultRegistry::Instance().RecordInjection(name_, decision.action);
  return decision;
}

void FaultPoint::Arm(double probability, FaultAction action, int64_t param,
                     uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  probability_ = probability;
  action_ = action;
  param_ = param;
  rng_ = Rng(seed ^ Fnv1a(name_));
  armed_.store(action != FaultAction::kNone && probability > 0,
               std::memory_order_relaxed);
}

void FaultPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  probability_ = 0;
  action_ = FaultAction::kNone;
  param_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

Result<std::vector<FaultSpec>> ParseChaosSpec(const std::string& spec) {
  std::vector<FaultSpec> parsed;
  if (StripWhitespace(spec).empty()) return parsed;
  for (std::string_view clause_view : StrSplit(spec, ',')) {
    std::string clause(StripWhitespace(clause_view));
    if (clause.empty()) {
      return Status::InvalidArgument("empty chaos clause in: " + spec);
    }
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("chaos clause missing point=: " +
                                     clause);
    }
    FaultSpec out;
    out.point = clause.substr(0, eq);
    std::vector<std::string> parts;
    const std::string config = clause.substr(eq + 1);
    for (std::string_view part : StrSplit(config, ':')) {
      parts.emplace_back(part);
    }
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument(
          "chaos clause needs prob:action[:param]: " + clause);
    }
    Result<double> probability = ParseProbability(parts[0]);
    if (!probability.ok()) return probability.status();
    out.probability = *probability;
    Result<FaultAction> action = ParseAction(parts[1]);
    if (!action.ok()) return action.status();
    out.action = *action;
    if (parts.size() == 3) {
      Result<uint64_t> param = ParseUint64(parts[2]);
      if (!param.ok() || *param > (1ULL << 40)) {
        return Status::InvalidArgument("bad fault param: " + clause);
      }
      out.param = static_cast<int64_t>(*param);
    } else if (out.action == FaultAction::kDelayMs) {
      return Status::InvalidArgument("delay-ms needs a :ms param: " +
                                     clause);
    }
    parsed.push_back(std::move(out));
  }
  return parsed;
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

FaultPoint* FaultRegistry::GetPoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FaultPoint>(name)).first;
    // Seams register lazily; a spec armed before first use still applies.
    auto armed = armed_.find(name);
    if (armed != armed_.end()) {
      const FaultSpec& spec = armed->second;
      it->second->Arm(spec.probability, spec.action, spec.param, seed_);
    }
  }
  return it->second.get();
}

Status FaultRegistry::Arm(const std::string& spec, uint64_t seed) {
  Result<std::vector<FaultSpec>> parsed = ParseChaosSpec(spec);
  if (!parsed.ok()) return parsed.status();
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  seed_ = seed;
  for (const FaultSpec& clause : *parsed) {
    armed_[clause.point] = clause;
  }
  for (auto& [name, point] : points_) {
    auto it = armed_.find(name);
    if (it == armed_.end()) {
      point->Disarm();
    } else {
      point->Arm(it->second.probability, it->second.action,
                 it->second.param, seed);
    }
  }
  return Status::Ok();
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  injection_log_.clear();
  injection_seq_ = 0;
  for (auto& [name, point] : points_) point->Disarm();
}

std::vector<std::pair<std::string, uint64_t>> FaultRegistry::FiredCounts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> counts;
  counts.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    counts.emplace_back(name, point->fired());
  }
  return counts;
}

std::vector<std::string> FaultRegistry::InjectionLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injection_log_;
}

void FaultRegistry::RecordInjection(const std::string& point,
                                    FaultAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  ++injection_seq_;
  if (injection_log_.size() < kInjectionLogCap) {
    injection_log_.push_back(std::to_string(injection_seq_) + " " + point +
                             " " + FaultActionName(action));
  }
}

void FaultRegistry::RegisterMetrics(metrics::Registry* registry) {
  registry->RegisterCallbackCounterVec(
      "dynaprox_fault_injections_total",
      "Chaos faults injected, by fault point.", "point",
      [] { return FaultRegistry::Instance().FiredCounts(); });
}

FaultDecision ApplyDelay(FaultDecision decision) {
  if (decision.action == FaultAction::kDelayMs && decision.param > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(decision.param));
  }
  return decision;
}

Status InjectStatus(FaultPoint* point) {
  FaultDecision decision = ApplyDelay(point->Evaluate());
  switch (decision.action) {
    case FaultAction::kNone:
    case FaultAction::kDelayMs:
      return Status::Ok();
    default:
      return Status::Unavailable("chaos:" + point->name() + " injected " +
                                 FaultActionName(decision.action));
  }
}

}  // namespace dynaprox::chaos
