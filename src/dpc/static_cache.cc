#include "dpc/static_cache.h"

namespace dynaprox::dpc {

StaticCache::StaticCache(StaticCacheOptions options) : options_(options) {
  if (options_.clock == nullptr) options_.clock = SystemClock::Default();
}

bool StaticCache::IsFresh(const Entry& entry) const {
  return options_.clock->NowMicros() - entry.stored_at <
         entry.freshness_micros;
}

std::optional<http::Response> StaticCache::Lookup(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = it->second;
  if (!IsFresh(entry)) {
    // Stale: not servable here, but retained — revalidatable entries wait
    // for a conditional GET, the rest remain available to LookupStale when
    // the origin fails (RFC 9111 §4.2.4). LRU capacity bounds them.
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.erase(entry.lru_position);
  lru_.push_front(url);
  entry.lru_position = lru_.begin();
  http::Response response = entry.response;
  MicroTime age = options_.clock->NowMicros() - entry.stored_at;
  response.headers.Set("Age", std::to_string(age / kMicrosPerSecond));
  return response;
}

std::optional<http::Response> StaticCache::LookupStale(
    const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  ++stats_.stale_served;
  lru_.erase(entry.lru_position);
  lru_.push_front(url);
  entry.lru_position = lru_.begin();
  http::Response response = entry.response;
  MicroTime age = options_.clock->NowMicros() - entry.stored_at;
  response.headers.Set("Age", std::to_string(age / kMicrosPerSecond));
  return response;
}

std::optional<std::string> StaticCache::StaleEtag(const std::string& url) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it == entries_.end() || IsFresh(it->second) ||
      it->second.etag.empty()) {
    return std::nullopt;
  }
  return it->second.etag;
}

std::optional<http::Response> StaticCache::Revalidate(
    const std::string& url, const http::Response& not_modified) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it == entries_.end()) return std::nullopt;
  Entry& entry = it->second;
  // A 304 may carry updated Cache-Control; otherwise keep the original
  // freshness lifetime.
  http::CacheControl control = http::ResponseCacheControl(not_modified);
  if (auto age = control.SharedMaxAgeSeconds();
      age.has_value() && *age > 0) {
    entry.freshness_micros = *age * kMicrosPerSecond;
  }
  entry.stored_at = options_.clock->NowMicros();
  ++stats_.revalidations;
  lru_.erase(entry.lru_position);
  lru_.push_front(url);
  entry.lru_position = lru_.begin();
  http::Response response = entry.response;
  response.headers.Set("Age", "0");
  return response;
}

bool StaticCache::Store(const std::string& url,
                        const http::Response& response) {
  if (response.status_code != 200) return false;
  http::CacheControl control = http::ResponseCacheControl(response);
  if (!control.StorableByProxy()) return false;
  MicroTime freshness = *control.SharedMaxAgeSeconds() * kMicrosPerSecond;
  std::string etag;
  if (auto header = response.headers.Get("ETag"); header.has_value()) {
    etag = std::string(*header);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(url);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
  }
  lru_.push_front(url);
  Entry& entry = entries_[url] =
      Entry{response, options_.clock->NowMicros(), freshness,
            std::move(etag), lru_.begin()};
  // Retained entries must not pin shared assembly buffers: flatten once
  // on insert (no-op for the usual string-bodied passthrough response).
  entry.response.FlattenBody();
  ++stats_.stores;
  while (entries_.size() > options_.capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  return true;
}

void StaticCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

StaticCacheStats StaticCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t StaticCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace dynaprox::dpc
