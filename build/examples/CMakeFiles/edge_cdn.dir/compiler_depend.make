# Empty compiler generated dependencies file for edge_cdn.
# This may be replaced when dependencies are built.
