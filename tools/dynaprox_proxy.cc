// dynaprox_proxy: runs a Dynamic Proxy Cache (reverse proxy) on a TCP
// port, assembling templates from an upstream dynaprox_origin.
//
//   ./dynaprox_proxy --port=8080 --origin-host=127.0.0.1
//       --origin-port=8081 [--capacity=4096] [--static-cache] [--debug]
//
// Runs until EOF on stdin.

#include <cstdio>
#include <unistd.h>

#include "common/flags.h"
#include "dpc/proxy.h"
#include "net/tcp.h"

using namespace dynaprox;

int main(int argc, char** argv) {
  Result<Flags> flags = Flags::Parse(argc - 1, argv + 1);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  Result<int64_t> port = flags->GetInt("port", 8080);
  Result<int64_t> origin_port = flags->GetInt("origin-port", 8081);
  Result<int64_t> capacity = flags->GetInt("capacity", 4096);
  for (const auto* r : {&port, &origin_port, &capacity}) {
    if (!r->ok()) {
      std::fprintf(stderr, "%s\n", r->status().ToString().c_str());
      return 2;
    }
  }
  std::string origin_host = flags->GetString("origin-host", "127.0.0.1");

  net::TcpClientTransport upstream(origin_host,
                                   static_cast<uint16_t>(*origin_port));
  dpc::ProxyOptions options;
  options.capacity = static_cast<bem::DpcKey>(*capacity);
  options.add_debug_header = flags->GetBool("debug");
  options.enable_static_cache = flags->GetBool("static-cache");
  options.enable_status = true;
  dpc::DpcProxy proxy(&upstream, options);

  net::TcpServer server(proxy.AsHandler(), static_cast<uint16_t>(*port));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("DPC listening on 127.0.0.1:%u -> upstream %s:%lld "
              "(capacity %lld%s)\n",
              server.port(), origin_host.c_str(),
              static_cast<long long>(*origin_port),
              static_cast<long long>(*capacity),
              options.enable_static_cache ? ", static cache on" : "");
  std::fflush(stdout);

  char buf[256];
  while (::read(STDIN_FILENO, buf, sizeof(buf)) > 0) {
  }
  server.Stop();
  dpc::ProxyStats stats = proxy.stats();
  std::printf(
      "served %llu requests: %llu assembled, %llu passthrough, %llu "
      "recoveries, %llu static hits; %llu B from origin, %llu B to "
      "clients (%.1f%% origin-link savings)\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.assembled),
      static_cast<unsigned long long>(stats.passthrough),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.static_hits),
      static_cast<unsigned long long>(stats.bytes_from_upstream),
      static_cast<unsigned long long>(stats.bytes_to_clients),
      stats.bytes_to_clients == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(stats.bytes_from_upstream) /
                               static_cast<double>(stats.bytes_to_clients)));
  return 0;
}
