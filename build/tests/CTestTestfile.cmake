# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(http_test "/root/repo/build/tests/http_test")
set_tests_properties(http_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;28;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;35;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bem_test "/root/repo/build/tests/bem_test")
set_tests_properties(bem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;41;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dpc_test "/root/repo/build/tests/dpc_test")
set_tests_properties(dpc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;52;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(appserver_test "/root/repo/build/tests/appserver_test")
set_tests_properties(appserver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;63;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analytical_test "/root/repo/build/tests/analytical_test")
set_tests_properties(analytical_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;70;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;74;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(firewall_test "/root/repo/build/tests/firewall_test")
set_tests_properties(firewall_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;78;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;81;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(edge_test "/root/repo/build/tests/edge_test")
set_tests_properties(edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;88;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;93;dynaprox_test;/root/repo/tests/CMakeLists.txt;0;")
