file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_exp_savings_vs_hitratio.dir/fig5_exp_savings_vs_hitratio.cc.o"
  "CMakeFiles/bench_fig5_exp_savings_vs_hitratio.dir/fig5_exp_savings_vs_hitratio.cc.o.d"
  "bench_fig5_exp_savings_vs_hitratio"
  "bench_fig5_exp_savings_vs_hitratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_exp_savings_vs_hitratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
