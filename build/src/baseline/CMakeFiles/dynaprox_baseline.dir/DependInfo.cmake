
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/esi.cc" "src/baseline/CMakeFiles/dynaprox_baseline.dir/esi.cc.o" "gcc" "src/baseline/CMakeFiles/dynaprox_baseline.dir/esi.cc.o.d"
  "/root/repo/src/baseline/page_cache.cc" "src/baseline/CMakeFiles/dynaprox_baseline.dir/page_cache.cc.o" "gcc" "src/baseline/CMakeFiles/dynaprox_baseline.dir/page_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
