# Empty dependencies file for bench_fig2a_bytes_vs_fragsize.
# This may be replaced when dependencies are built.
