// Equivalence tests for parallel block execution: the same script rendered
// through a block pool (0, 1, or 4 workers) must produce a template
// byte-identical to sequential execution — same SET/GET choices, same
// dpcKey assignment — regardless of the order generators finish in.
#include "appserver/script_context.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "bem/protocol.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "dpc/assembler.h"
#include "dpc/fragment_store.h"

namespace dynaprox::appserver {
namespace {

std::unique_ptr<bem::BackEndMonitor> MakeMonitor(const Clock* clock) {
  bem::BemOptions options;
  options.capacity = 16;
  options.clock = clock;
  return *bem::BackEndMonitor::Create(options);
}

using ScriptFn = std::function<Status(ScriptContext&)>;

// Runs `script` against a fresh context and returns the finished template.
std::string Render(bem::BackEndMonitor* monitor, common::ThreadPool* pool,
                   const ScriptFn& script,
                   RequestFragmentStats* stats_out = nullptr) {
  http::Request request;
  request.target = "/page";
  ScriptContext context(request, nullptr, monitor, nullptr, pool);
  EXPECT_TRUE(script(context).ok());
  EXPECT_TRUE(context.FinishBlocks().ok());
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  if (stats_out != nullptr) *stats_out = context.fragment_stats();
  return response.body;
}

// A four-block page with one pre-seeded hit and deliberately inverted
// generator latencies, so pool workers finish out of page order.
Status MixedPage(ScriptContext& ctx) {
  ctx.Emit("<header>");
  Status status =
      ctx.CacheableBlock(bem::FragmentId("slow"), [](ScriptContext& c) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        c.Emit("slow-content");
        c.DeclareDependency("t", "r1");
        return Status::Ok();
      });
  if (!status.ok()) return status;
  ctx.Emit("<mid1>");
  status = ctx.CacheableBlock(bem::FragmentId("hot"), [](ScriptContext& c) {
    c.Emit("hot-content");
    return Status::Ok();
  });
  if (!status.ok()) return status;
  ctx.Emit("<mid2>");
  status = ctx.CacheableBlock(bem::FragmentId("fast"), [](ScriptContext& c) {
    c.Emit("fast-content");
    return Status::Ok();
  });
  if (!status.ok()) return status;
  ctx.Emit("<mid3>");
  status = ctx.CacheableBlock(bem::FragmentId("tail"), [](ScriptContext& c) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    c.Emit("tail-content");
    return Status::Ok();
  });
  if (!status.ok()) return status;
  ctx.Emit("<footer>");
  return Status::Ok();
}

TEST(ParallelBlocksTest, ByteIdenticalToSequentialAcrossPoolSizes) {
  SimClock clock;
  // Sequential reference: no pool attached.
  auto sequential_monitor = MakeMonitor(&clock);
  ASSERT_TRUE(
      sequential_monitor->InsertFragment(bem::FragmentId("hot")).ok());
  RequestFragmentStats sequential_stats;
  std::string sequential =
      Render(sequential_monitor.get(), nullptr, MixedPage,
             &sequential_stats);
  EXPECT_EQ(sequential_stats.hits, 1u);
  EXPECT_EQ(sequential_stats.misses, 3u);

  for (int workers : {0, 1, 4}) {
    // Fresh monitor per run with the identical pre-seed, so dpcKey
    // assignment starts from the same state as the reference.
    auto monitor = MakeMonitor(&clock);
    ASSERT_TRUE(monitor->InsertFragment(bem::FragmentId("hot")).ok());
    common::ThreadPool pool(
        {.num_threads = workers, .queue_capacity = 8});
    RequestFragmentStats stats;
    std::string parallel = Render(monitor.get(), &pool, MixedPage, &stats);
    EXPECT_EQ(parallel, sequential) << "workers=" << workers;
    EXPECT_EQ(stats.hits, 1u) << "workers=" << workers;
    EXPECT_EQ(stats.misses, 3u) << "workers=" << workers;
    EXPECT_EQ(stats.parallel_blocks, 3u) << "workers=" << workers;
  }
}

TEST(ParallelBlocksTest, AssembledPagePreservesTagOrder) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  ASSERT_TRUE(monitor->InsertFragment(bem::FragmentId("hot")).ok());
  common::ThreadPool pool({.num_threads = 4, .queue_capacity = 8});
  std::string body = Render(monitor.get(), &pool, MixedPage);

  // The slow first block must still land first: splice order is page
  // order, not completion order.
  dpc::FragmentStore store(16);
  ASSERT_TRUE(store
                  .Set(*monitor->directory().KeyOf(bem::FragmentId("hot")),
                       "hot-content")
                  .ok());
  Result<dpc::AssembledPage> page = dpc::AssemblePage(body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(),
            "<header>slow-content<mid1>hot-content<mid2>fast-content"
            "<mid3>tail-content<footer>");
  EXPECT_EQ(page->set_count, 3u);
  EXPECT_EQ(page->get_count, 1u);
}

TEST(ParallelBlocksTest, DuplicateFragmentRunsGeneratorOnceAndEmitsGet) {
  std::atomic<int> runs{0};
  auto page = [&runs](ScriptContext& ctx) {
    Status status =
        ctx.CacheableBlock(bem::FragmentId("dup"), [&runs](ScriptContext& c) {
          runs.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          c.Emit("dup-content");
          return Status::Ok();
        });
    if (!status.ok()) return status;
    ctx.Emit("<between>");
    return ctx.CacheableBlock(bem::FragmentId("dup"),
                              [&runs](ScriptContext& c) {
                                runs.fetch_add(1);
                                c.Emit("dup-content");
                                return Status::Ok();
                              });
  };

  SimClock clock;
  auto sequential_monitor = MakeMonitor(&clock);
  std::string sequential = Render(sequential_monitor.get(), nullptr, page);
  ASSERT_EQ(runs.load(), 1);  // Sequential: second occurrence hits.

  runs.store(0);
  auto monitor = MakeMonitor(&clock);
  common::ThreadPool pool({.num_threads = 4, .queue_capacity = 8});
  RequestFragmentStats stats;
  std::string parallel = Render(monitor.get(), &pool, page, &stats);
  // The duplicate must not dispatch a second generator, and the template
  // must match sequential: one SET, then a GET for the same key.
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(parallel, sequential);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.parallel_blocks, 1u);

  dpc::FragmentStore store(16);
  Result<dpc::AssembledPage> assembled = dpc::AssemblePage(parallel, store);
  ASSERT_TRUE(assembled.ok());
  EXPECT_EQ(assembled->Text(), "dup-content<between>dup-content");
  EXPECT_EQ(assembled->set_count, 1u);
  EXPECT_EQ(assembled->get_count, 1u);
}

TEST(ParallelBlocksTest, FailingGeneratorSurfacesFromFinishBlocks) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  common::ThreadPool pool({.num_threads = 4, .queue_capacity = 8});
  http::Request request;
  request.target = "/page";
  ScriptContext context(request, nullptr, monitor.get(), nullptr, &pool);

  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("ok1"),
                                  [](ScriptContext& c) {
                                    c.Emit("one");
                                    return Status::Ok();
                                  })
                  .ok());
  // The miss path defers execution, so the failure cannot surface here.
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("bad"),
                                  [](ScriptContext& c) {
                                    std::this_thread::sleep_for(
                                        std::chrono::milliseconds(5));
                                    c.Emit("partial");
                                    return Status::IoError("db down");
                                  })
                  .ok());
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("ok2"),
                                  [](ScriptContext& c) {
                                    c.Emit("two");
                                    return Status::Ok();
                                  })
                  .ok());

  Status finish = context.FinishBlocks();
  EXPECT_EQ(finish.code(), StatusCode::kIoError);
  EXPECT_EQ(context.FinishBlocks().code(), StatusCode::kIoError);  // Sticky.
  // The failed block cached nothing and leaked no partial content; the
  // healthy blocks still registered.
  EXPECT_FALSE(monitor->LookupFragment(bem::FragmentId("bad")).hit());
  EXPECT_TRUE(monitor->LookupFragment(bem::FragmentId("ok1")).hit());
  EXPECT_TRUE(monitor->LookupFragment(bem::FragmentId("ok2")).hit());
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  dpc::FragmentStore store(16);
  Result<dpc::AssembledPage> page = dpc::AssemblePage(response.body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "onetwo");
}

TEST(ParallelBlocksTest, ForcedMissRunsGeneratorInParallelMode) {
  SimClock clock;
  auto monitor = MakeMonitor(&clock);
  ASSERT_TRUE(monitor->InsertFragment(bem::FragmentId("f")).ok());
  common::ThreadPool pool({.num_threads = 2, .queue_capacity = 8});
  http::Request request;
  request.target = "/page";
  ScriptContext context(request, nullptr, monitor.get(), nullptr, &pool);
  context.ForceMiss(bem::FragmentId("f").Canonical());
  bool ran = false;
  ASSERT_TRUE(context
                  .CacheableBlock(bem::FragmentId("f"),
                                  [&ran](ScriptContext& c) {
                                    ran = true;
                                    c.Emit("fresh");
                                    return Status::Ok();
                                  })
                  .ok());
  ASSERT_TRUE(context.FinishBlocks().ok());
  EXPECT_TRUE(ran);
  RequestFragmentStats stats = context.fragment_stats();
  EXPECT_EQ(stats.forced_misses, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  // The refresh response must carry the content inline (SET, not GET).
  http::Response response = context.TakeResponse(bem::kTemplateHeader);
  dpc::FragmentStore store(16);
  Result<dpc::AssembledPage> page = dpc::AssemblePage(response.body, store);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->Text(), "fresh");
  EXPECT_EQ(page->set_count, 1u);
}

}  // namespace
}  // namespace dynaprox::appserver
