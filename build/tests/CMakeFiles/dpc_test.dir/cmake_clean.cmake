file(REMOVE_RECURSE
  "CMakeFiles/dpc_test.dir/dpc/assembler_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/assembler_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/fragment_store_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/fragment_store_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/kmp_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/kmp_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/proxy_headers_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/proxy_headers_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/proxy_static_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/proxy_static_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/proxy_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/proxy_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/static_cache_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/static_cache_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/tag_scanner_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/tag_scanner_test.cc.o.d"
  "CMakeFiles/dpc_test.dir/dpc/template_fuzz_test.cc.o"
  "CMakeFiles/dpc_test.dir/dpc/template_fuzz_test.cc.o.d"
  "dpc_test"
  "dpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
