#include "workload/request_stream.h"

namespace dynaprox::workload {

RequestStream::RequestStream(int num_pages, double alpha, uint64_t seed,
                             std::string path)
    : path_(std::move(path)),
      sampler_(static_cast<size_t>(num_pages), alpha),
      rng_(seed) {}

http::Request RequestStream::Next() {
  ++generated_;
  return ForPage(static_cast<int>(sampler_.Sample(rng_)));
}

http::Request RequestStream::ForPage(int page) const {
  http::Request request;
  request.method = "GET";
  request.target = path_ + "?id=" + std::to_string(page);
  request.headers.Add("Host", "www.booksonline.example");
  return request;
}

}  // namespace dynaprox::workload
