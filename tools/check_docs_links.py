#!/usr/bin/env python3
"""Docs lint: intra-repo markdown links and documented CLI flags.

Checks, over README.md, DESIGN.md, ROADMAP.md, and docs/*.md:

1. Every relative markdown link `[text](path)` resolves to a file or
   directory in the repo (anchors and external http/mailto links are
   skipped).
2. Every `--flag` a doc mentions exists in some tools/*.cc — i.e. is
   parsed via Flags::Get{Int,Double,Bool,String}("flag", ...) — so the
   operator docs can't drift from the binaries. Flags that belong to
   other ecosystems (ctest, cmake, git) live in ALLOWED_FOREIGN_FLAGS.
3. Every `dynaprox_*` metric name a doc mentions appears in the sources
   (src/ or tools/). Names built at runtime from a prefix (e.g.
   `dynaprox_<component>_ingress_...`) are matched by progressively
   stripping leading segments until the literal tail is found. Mentions
   ending in `_` (prefix families like `dynaprox_edge_*`) are skipped.

Run from anywhere: paths are resolved relative to the repo root (the
parent of this script's directory). Exits non-zero listing every
violation; wired into CTest as `docs_link_check`.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [
        *(REPO_ROOT / "docs").glob("*.md"),
        REPO_ROOT / "README.md",
        REPO_ROOT / "DESIGN.md",
        REPO_ROOT / "ROADMAP.md",
    ]
)

# Flags that docs legitimately mention but that are not dynaprox tool
# flags (build/test tooling examples in README etc.).
ALLOWED_FOREIGN_FLAGS = {
    "output-on-failure",  # ctest
    "test-dir",           # ctest
    "build",              # cmake --build
    "target",             # cmake --target
    "parallel",           # cmake --parallel
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--([a-z][a-z0-9-]*)")
# Flags::GetInt("name", ...) / GetDouble / GetBool / GetString.
FLAG_DEF_RE = re.compile(r'Get(?:Int|Double|Bool|String)\("([a-z0-9-]+)"')
METRIC_RE = re.compile(r"\bdynaprox_[a-z0-9_]+")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")

# The three shipped binaries share the metric name prefix; they are not
# metrics.
TOOL_BINARY_NAMES = {"dynaprox_origin", "dynaprox_proxy",
                     "dynaprox_loadgen"}


def known_tool_flags() -> set:
    flags = set()
    for source in (REPO_ROOT / "tools").glob("*.cc"):
        flags.update(FLAG_DEF_RE.findall(source.read_text()))
    return flags


def source_corpus() -> str:
    """All C++ source text that can register a metric name."""
    chunks = []
    for directory in ("src", "tools"):
        for pattern in ("**/*.cc", "**/*.h"):
            for source in sorted((REPO_ROOT / directory).glob(pattern)):
                chunks.append(source.read_text())
    return "\n".join(chunks)


def metric_in_sources(name: str, corpus: str) -> bool:
    # Histogram exposition series (_bucket/_sum/_count) are synthesized
    # from the base name at scrape time.
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
            break
    if name in corpus:
        return True
    # Runtime-prefixed names: strip up to three leading segments past
    # "dynaprox" and look for the remaining literal tail (long enough to
    # not match by accident).
    parts = name.split("_")
    for strip in range(2, 5):
        tail = "_".join(parts[strip:])
        if len(tail) >= 8 and tail in corpus:
            return True
    return False


def check_file(doc: Path, tool_flags: set, corpus: str) -> list:
    errors = []
    text = doc.read_text()

    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{doc.relative_to(REPO_ROOT)}: broken link "
                          f"'{target}' -> {resolved}")

    for flag in sorted(set(FLAG_RE.findall(text))):
        if flag in tool_flags or flag in ALLOWED_FOREIGN_FLAGS:
            continue
        errors.append(f"{doc.relative_to(REPO_ROOT)}: documented flag "
                      f"'--{flag}' is parsed by no tools/*.cc")

    for name in sorted(set(METRIC_RE.findall(text))):
        if name.endswith("_") or name in TOOL_BINARY_NAMES:
            continue
        if not metric_in_sources(name, corpus):
            errors.append(f"{doc.relative_to(REPO_ROOT)}: documented "
                          f"metric '{name}' appears nowhere in "
                          f"src/ or tools/")
    return errors


def main() -> int:
    tool_flags = known_tool_flags()
    if not tool_flags:
        print("check_docs_links: found no flags in tools/*.cc "
              "(wrong repo root?)", file=sys.stderr)
        return 2

    corpus = source_corpus()
    errors = []
    checked = 0
    for doc in DOC_FILES:
        if not doc.exists():
            errors.append(f"expected doc missing: "
                          f"{doc.relative_to(REPO_ROOT)}")
            continue
        checked += 1
        errors.extend(check_file(doc, tool_flags, corpus))

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"check_docs_links: {len(errors)} problem(s) in {checked} "
              f"file(s)", file=sys.stderr)
        return 1
    print(f"check_docs_links: {checked} files OK "
          f"({len(tool_flags)} tool flags known)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
