# Empty dependencies file for bench_claim_70pct_savings.
# This may be replaced when dependencies are built.
