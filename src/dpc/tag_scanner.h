#ifndef DYNAPROX_DPC_TAG_SCANNER_H_
#define DYNAPROX_DPC_TAG_SCANNER_H_

#include <string>
#include <string_view>
#include <vector>

#include "bem/types.h"
#include "common/result.h"

namespace dynaprox::dpc {

// How the scanner locates the next tag marker in the template. kMemchr is
// the production choice; kByteLoop exists for the scanning-cost ablation
// (bench_ablation_scanner).
enum class ScanStrategy {
  kMemchr,
  kByteLoop,
};

// One parsed piece of a response template.
struct TemplateSegment {
  enum class Kind {
    kLiteral,  // Page text to emit verbatim (already unescaped).
    kSet,      // Store `text` under `key`, then emit it.
    kGet,      // Emit the cached fragment stored under `key`.
  };

  Kind kind;
  bem::DpcKey key = bem::kInvalidDpcKey;
  std::string text;
};

// Parses a BEM-encoded response template (see bem::TagCodec for the wire
// grammar) into segments. Fails with Corruption on malformed input:
// truncated tags, unknown markers, bad hex keys, SET without matching end,
// nested SET, or GET inside SET.
Result<std::vector<TemplateSegment>> ParseTemplate(
    std::string_view wire, ScanStrategy strategy = ScanStrategy::kMemchr);

}  // namespace dynaprox::dpc

#endif  // DYNAPROX_DPC_TAG_SCANNER_H_
