file(REMOVE_RECURSE
  "libdynaprox_bem.a"
)
