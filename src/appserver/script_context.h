#ifndef DYNAPROX_APPSERVER_SCRIPT_CONTEXT_H_
#define DYNAPROX_APPSERVER_SCRIPT_CONTEXT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bem/monitor.h"
#include "bem/types.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "http/message.h"
#include "storage/table.h"

namespace dynaprox::appserver {

// One fragment registered during a render, with the body that went into
// its SET instruction. The push engine re-renders a producer request with
// a capture attached and forwards these bodies over the control channel
// (docs/edge-tier.md) instead of re-parsing the template.
struct CapturedFragment {
  std::string canonical;
  bem::DpcKey key = bem::kInvalidDpcKey;
  std::string body;
};

// Per-request fragment accounting, mirrored into OriginStats.
struct RequestFragmentStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t uncacheable = 0;  // Blocks run without BEM involvement.
  uint64_t parallel_blocks = 0;  // Miss generators dispatched to the pool.
  uint64_t forced_misses = 0;  // Refresh-forced misses (ForceMiss hits).
};

// BEM-stage latency hooks, shared by every context the origin creates.
// Timing happens only when `clock` and the target histogram are both
// non-null, so the baseline path costs nothing. The histograms are
// relaxed-atomic, so contexts on different threads may share one struct —
// including the block-execution pool threads.
struct ScriptMetrics {
  const Clock* clock = nullptr;
  // One observation per CacheableBlock: the directory LookupFragment call.
  metrics::LatencyHistogram* directory_lookup = nullptr;
  // One observation per executed generator (miss path, or every block in
  // baseline mode). Hits skip the generator and observe nothing.
  metrics::LatencyHistogram* block_execution = nullptr;
  // One observation per SET/GET tag written into the template.
  metrics::LatencyHistogram* tag_emission = nullptr;
};

// The environment a dynamic script runs in. This is the reproduction of the
// paper's tagging API (4.3.1): a script emits page text with Emit() and
// wraps cacheable code blocks in CacheableBlock().
//
// With a BEM attached the context produces a *template*: literal text plus
// SET/GET instructions. Without a BEM (the no-cache baseline) the exact
// same script produces the full page — CacheableBlock simply runs the
// generator inline. This symmetry is what lets the benches compare B_C and
// B_NC on identical workloads.
//
// Parallel block execution: with a `block_pool` attached (and a BEM), miss
// generators run concurrently on pool workers while the script keeps
// walking the page. Because the tagging API makes blocks independent by
// construction — a generator sees only its own fragment buffer — this
// needs no script changes. Execution is two-phase:
//   1. CacheableBlock resolves the directory lookup inline (page order).
//      Hits emit their GET tag immediately; misses capture the generator
//      and dispatch it to the pool, leaving an ordered hole in the page.
//   2. FinishBlocks() waits for the generators, then walks the holes in
//      page order: insert into the directory, register dependencies, and
//      splice the SET tag. Inserting in page order keeps dpcKey assignment
//      identical to sequential execution (refresh-pinned keys land on the
//      right fragment), so the assembled template is byte-identical.
// Generators must be safe to run off-thread: they may Emit and
// DeclareDependency on the context they are handed, but must not touch
// the parent context or non-thread-safe script state. A failing generator
// surfaces from FinishBlocks (first failure in page order), not from
// CacheableBlock.
//
// One context serves one request. The request thread drives Emit /
// CacheableBlock / FinishBlocks; only generator bodies run on the pool.
class ScriptContext {
 public:
  // `repository` may be null for scripts that don't touch the data layer;
  // `monitor` null selects the no-cache baseline behaviour. `metrics` may
  // be null (no stage timing); when set it must outlive the context.
  // `block_pool` non-null enables parallel block execution (ignored
  // without a monitor); it must outlive the context.
  ScriptContext(const http::Request& request,
                storage::ContentRepository* repository,
                bem::BackEndMonitor* monitor,
                const ScriptMetrics* metrics = nullptr,
                common::ThreadPool* block_pool = nullptr);
  ~ScriptContext();

  ScriptContext(const ScriptContext&) = delete;
  ScriptContext& operator=(const ScriptContext&) = delete;

  const http::Request& request() const { return request_; }
  storage::ContentRepository* repository() { return repository_; }
  bool caching_enabled() const { return monitor_ != nullptr; }
  bool parallel_blocks_enabled() const {
    return monitor_ != nullptr && block_pool_ != nullptr;
  }

  // Appends literal page text (escaped into the template as needed).
  void Emit(std::string_view text);

  // A cacheable code block (paper 4.3.1: "inserting APIs around the code
  // block"). On a directory hit the generator is *not executed* and a GET
  // tag is emitted; on a miss the generator runs, its output is wrapped in
  // a SET tag, and the fragment is registered with the BEM.
  //
  // `ttl_micros` < 0 uses the BEM default. Nested cacheable blocks are
  // rejected with FailedPrecondition (the paper's fragments are flat).
  // If the directory cannot accept the fragment the content is emitted
  // uncached — correctness degrades gracefully to no-cache behaviour.
  //
  // In parallel mode a miss returns Ok immediately and the generator's
  // status surfaces from FinishBlocks().
  using BlockFn = std::function<Status(ScriptContext&)>;
  Status CacheableBlock(const bem::FragmentId& id, MicroTime ttl_micros,
                        const BlockFn& generate);
  Status CacheableBlock(const bem::FragmentId& id, const BlockFn& generate) {
    return CacheableBlock(id, -1, generate);
  }

  // Waits for outstanding pool-dispatched generators and splices their
  // fragments into the template in page order. Returns the first generator
  // failure (page order) or Ok. Idempotent; a no-op in sequential mode.
  // Must be called after the script returns and before TakeResponse.
  Status FinishBlocks();

  // Forces the next CacheableBlock for `canonical` (FragmentId::Canonical
  // form) to take the miss path even if the directory lookup would hit.
  // One-shot: the first matching block consumes the entry.
  //
  // This closes the refresh race: X-DPC-Refresh recovery invalidates the
  // missing keys and re-renders, relying on the re-render to miss and emit
  // fresh SETs. But a concurrent request can re-insert the fragment
  // between the invalidation and this request's lookup — the lookup then
  // hits and emits GET for content whose SET is still in flight in the
  // *other* response, so the DPC's retry fails again. Forcing the miss
  // guarantees the refresh response carries the content inline.
  // Call before the script runs (request thread only).
  void ForceMiss(std::string canonical);

  // Declares that the fragment currently being generated depends on a
  // repository table (or row). Only meaningful inside a generating block;
  // outside one it is ignored (the page itself is not cached).
  void DeclareDependency(const std::string& table,
                         const std::string& row_key = "");

  // Response metadata.
  void SetStatus(int code);
  void SetHeader(std::string name, std::string value);

  const RequestFragmentStats& fragment_stats() const { return stats_; }

  // Every (canonical, dpcKey) this render successfully registered, in page
  // order. Parallel renders record during the FinishBlocks splice, so the
  // list is complete once FinishBlocks returns. The origin uses it to map
  // fragments back to the request that produces them.
  const std::vector<std::pair<std::string, bem::DpcKey>>& inserted() const {
    return inserted_;
  }

  // Attaches a sink that additionally receives each registered fragment's
  // body (see CapturedFragment). Call before the script runs; the sink
  // must outlive the context. Used by the push engine's re-renders.
  void SetFragmentCapture(std::vector<CapturedFragment>* sink) {
    capture_ = sink;
  }

  // Finalizes the response. When a BEM is attached and at least one
  // cacheable block executed, the body is a template and the response is
  // marked with dpc::kTemplateHeader (via `template_header_name`).
  // Calls FinishBlocks() if the caller hasn't (dropping its status).
  http::Response TakeResponse(const std::string& template_header_name);

 private:
  // One pool-dispatched miss generator and everything harvested from it.
  struct PendingBlock {
    bem::FragmentId id;
    MicroTime ttl_micros;
    BlockFn generate;
    // Filled by the pool task, read after the done handshake.
    std::string output;
    std::vector<std::pair<std::string, std::string>> deps;
    Status status = Status::Ok();
    // A later occurrence of the same canonical references this block; keep
    // `output` intact through the splice so the duplicate can fall back to
    // a literal copy if the insert degraded to uncached.
    bool has_duplicate = false;
  };

  // The template is assembled from ordered segments: literal text emitted
  // before each pending block, then the block's splice point.
  struct Segment {
    std::string text;
    PendingBlock* block;
    // Duplicate occurrence of a pending canonical: splice a GET for the
    // key the first occurrence registered instead of a second SET. This
    // mirrors sequential execution, where the second lookup hits.
    bool emit_get = false;
  };

  // Where Emit() currently writes: the top-level template or a fragment
  // buffer inside a generating block.
  std::string* sink();

  // Sequential miss path (also the parallel splice step, with the
  // generator already run). Caller has populated block_buffer_ /
  // pending_deps_. Appends SET (or uncached literal) to `out`.
  void RegisterAndEmit(const bem::FragmentId& id, MicroTime ttl_micros,
                       std::string&& output,
                       std::vector<std::pair<std::string, std::string>>&& deps,
                       std::string& out);

  // Blocks until every dispatched generator has finished.
  void WaitForBlocks();

  // Observes `micros` into `histogram` when this context is instrumented.
  void ObserveStage(metrics::LatencyHistogram* histogram,
                    MicroTime micros) const;
  bool timed() const {
    return metrics_ != nullptr && metrics_->clock != nullptr;
  }

  const http::Request& request_;
  storage::ContentRepository* repository_;
  bem::BackEndMonitor* monitor_;
  const ScriptMetrics* metrics_;
  common::ThreadPool* block_pool_;

  std::string body_;            // Template (or plain page without BEM).
  // Canonicals whose next CacheableBlock must miss (refresh recovery);
  // request thread only — lookups stay inline even in parallel mode.
  std::vector<std::string> force_miss_;
  bool used_tagging_ = false;   // Any SET/GET emitted.
  bool in_block_ = false;
  std::string block_buffer_;    // Raw content of the generating block.
  std::vector<std::pair<std::string, std::string>> pending_deps_;

  // Parallel-mode state (request thread only, except the counter).
  std::deque<PendingBlock> pending_blocks_;  // Deque: pointer-stable.
  std::vector<Segment> segments_;
  bool finished_blocks_ = false;
  Status finish_status_ = Status::Ok();
  std::mutex block_mu_;
  std::condition_variable block_cv_;
  size_t outstanding_blocks_ = 0;  // Guarded by block_mu_.

  int status_code_ = 200;
  http::HeaderMap headers_;
  RequestFragmentStats stats_;
  std::vector<std::pair<std::string, bem::DpcKey>> inserted_;
  std::vector<CapturedFragment>* capture_ = nullptr;
};

}  // namespace dynaprox::appserver

#endif  // DYNAPROX_APPSERVER_SCRIPT_CONTEXT_H_
