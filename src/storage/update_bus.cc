#include "storage/update_bus.h"

#include <algorithm>
#include <memory>

namespace dynaprox::storage {

UpdateBus::SubscriptionId UpdateBus::Subscribe(Callback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  SubscriptionId id = next_id_++;
  subscribers_.push_back(
      {id, std::make_shared<Callback>(std::move(callback))});
  return id;
}

void UpdateBus::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [id](const Subscriber& s) { return s.id == id; }),
      subscribers_.end());
}

void UpdateBus::Publish(const UpdateEvent& event) const {
  std::vector<std::shared_ptr<Callback>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    callbacks.reserve(subscribers_.size());
    for (const Subscriber& subscriber : subscribers_) {
      callbacks.push_back(subscriber.callback);
    }
  }
  for (const auto& callback : callbacks) {
    (*callback)(event);
  }
}

size_t UpdateBus::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscribers_.size();
}

}  // namespace dynaprox::storage
