
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/dynaprox_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/edge/CMakeFiles/dynaprox_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dynaprox_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/firewall/CMakeFiles/dynaprox_firewall.dir/DependInfo.cmake"
  "/root/repo/build/src/dpc/CMakeFiles/dynaprox_dpc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dynaprox_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/appserver/CMakeFiles/dynaprox_appserver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dynaprox_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/dynaprox_http.dir/DependInfo.cmake"
  "/root/repo/build/src/bem/CMakeFiles/dynaprox_bem.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dynaprox_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/analytical/CMakeFiles/dynaprox_analytical.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dynaprox_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
