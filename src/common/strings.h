#ifndef DYNAPROX_COMMON_STRINGS_H_
#define DYNAPROX_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dynaprox {

// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string_view> StrSplit(std::string_view input, char sep);

// Case-insensitive ASCII comparison (HTTP header names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Lowercases ASCII letters in place semantics (returns a copy).
std::string AsciiToLower(std::string_view s);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// Encodes `value` as minimal lowercase hex (no leading zeros; "0" for 0).
std::string ToHex(uint64_t value);

// Parses minimal hex produced by ToHex. Fails on empty or non-hex input.
Result<uint64_t> ParseHex(std::string_view s);

// Parses a non-negative decimal integer; fails on empty/overflow/junk.
Result<uint64_t> ParseUint64(std::string_view s);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace dynaprox

#endif  // DYNAPROX_COMMON_STRINGS_H_
