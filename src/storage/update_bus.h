#ifndef DYNAPROX_STORAGE_UPDATE_BUS_H_
#define DYNAPROX_STORAGE_UPDATE_BUS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dynaprox::storage {

// Kind of mutation applied to a row.
enum class UpdateKind {
  kInsert,
  kUpdate,
  kDelete,
};

// Describes one committed mutation. The BEM subscribes to these to perform
// data-source invalidation (paper 4.3.3: "Fragments may become invalid due
// to ... updates to the underlying data sources").
struct UpdateEvent {
  std::string table;
  std::string key;
  UpdateKind kind;
};

// Synchronous publish/subscribe bus for repository mutations. Subscribers
// run inline on the mutating call; a subscription handle allows removal.
//
// Thread-safe. Callbacks are invoked *without* the bus lock held, so a
// callback may freely subscribe/unsubscribe or publish.
class UpdateBus {
 public:
  using Callback = std::function<void(const UpdateEvent&)>;
  using SubscriptionId = uint64_t;

  // Registers `callback`; returns a handle for Unsubscribe.
  SubscriptionId Subscribe(Callback callback);

  // Removes a subscription; unknown ids are ignored. Does not wait for
  // in-flight callbacks on other threads.
  void Unsubscribe(SubscriptionId id);

  // Delivers `event` to all current subscribers, in subscription order.
  void Publish(const UpdateEvent& event) const;

  size_t subscriber_count() const;

 private:
  struct Subscriber {
    SubscriptionId id;
    // Shared so Publish can run callbacks after releasing the lock while
    // Unsubscribe concurrently edits the list.
    std::shared_ptr<Callback> callback;
  };
  mutable std::mutex mu_;
  SubscriptionId next_id_ = 1;
  std::vector<Subscriber> subscribers_;
};

}  // namespace dynaprox::storage

#endif  // DYNAPROX_STORAGE_UPDATE_BUS_H_
