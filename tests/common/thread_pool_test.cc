#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dynaprox::common {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool({.num_threads = 2, .queue_capacity = 16});
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 32);
  ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 32u);
  EXPECT_EQ(stats.executed + stats.caller_runs, 32u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ThreadPoolTest, ZeroWorkersRunsEverythingInline) {
  ThreadPool pool({.num_threads = 0, .queue_capacity = 16});
  EXPECT_EQ(pool.num_threads(), 0);
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
  ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.caller_runs, 1u);
  EXPECT_EQ(stats.executed, 0u);
}

TEST(ThreadPoolTest, FullQueueFallsBackToCallerRuns) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 1});
  // Plug the single worker so the queue backs up deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> entered{false};
  pool.Submit([&] {
    entered.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (!entered.load()) std::this_thread::yield();
  // Worker busy, queue empty; this one waits in the queue.
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  // Queue full: must run inline, not block.
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&ran_on, &ran] {
    ran_on = std::this_thread::get_id();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran_on, caller);
  EXPECT_GE(pool.stats().caller_runs, 1u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool({.num_threads = 2, .queue_capacity = 64});
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor shuts down: every submitted task must still run.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownRunsInline) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 4});
  pool.Shutdown();
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 1);
  pool.Shutdown();  // Idempotent.
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllComplete) {
  ThreadPool pool({.num_threads = 4, .queue_capacity = 8});
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &ran] {
      for (int i = 0; i < 200; ++i) {
        pool.Submit([&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 800);
  ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.submitted, 800u);
  EXPECT_EQ(stats.executed + stats.caller_runs, 800u);
}

TEST(ThreadPoolTest, TracksPeakQueueDepth) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 8});
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> entered{false};
  pool.Submit([&] {
    entered.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (!entered.load()) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] {});
  }
  EXPECT_GE(pool.stats().peak_queue_depth, 5u);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
}

}  // namespace
}  // namespace dynaprox::common
