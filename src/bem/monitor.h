#ifndef DYNAPROX_BEM_MONITOR_H_
#define DYNAPROX_BEM_MONITOR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "bem/cache_directory.h"
#include "bem/dependency_registry.h"
#include "bem/tag_codec.h"
#include "bem/types.h"
#include "common/clock.h"
#include "common/result.h"
#include "storage/table.h"

namespace dynaprox::bem {

// Configuration of a Back End Monitor instance.
struct BemOptions {
  // Number of dpcKeys == number of DPC slots.
  DpcKey capacity = 4096;
  // Default fragment TTL when the tagging call doesn't specify one.
  // <= 0 means "no TTL".
  MicroTime default_ttl_micros = 0;
  // Victim selection when the key space is exhausted: lru|fifo|clock.
  std::string replacement_policy = "lru";
  // Time source for TTLs; defaults to SystemClock.
  const Clock* clock = nullptr;
};

// Observes directory traffic for policy layers built on top of the BEM —
// the push scheduler (bem/push_scheduler.h) scores fragments from these
// events. Callbacks run inline on the mutating thread, outside the
// directory's stripe locks: implementations must be internally
// synchronized, cheap, and must not call back into the monitor.
class FragmentEventObserver {
 public:
  virtual ~FragmentEventObserver() = default;
  // A tagging-API lookup resolved (`hit` = directory hit).
  virtual void OnLookup(const std::string& canonical, bool hit) {
    (void)canonical;
    (void)hit;
  }
  // A fragment was (re)registered under `key` — its body has just been
  // regenerated.
  virtual void OnInsert(const std::string& canonical, DpcKey key) {
    (void)canonical;
    (void)key;
  }
  // A fragment was invalidated by a data-source update or explicit call.
  // Refresh-protocol invalidations (RefreshKey) are NOT reported: they are
  // DPC pull recovery, not content updates, and would skew update-rate
  // scoring.
  virtual void OnInvalidate(const std::string& canonical) { (void)canonical; }
};

// The Back End Monitor (paper 4.3.3): owns the cache directory and all
// cache-management policy — TTL expiry, data-source invalidation, and
// replacement. Dynamic scripts call LookupFragment/InsertFragment through
// the tagging API (appserver::ScriptContext); the DPC is never contacted.
//
// Thread-safe without a monitor-level lock: the origin application server
// handles one request per thread, block generators run on a pool, and
// data-source updates arrive on writer threads. The directory is lock-
// striped internally (CacheDirectory::kStripes ways) and the dependency
// registry has its own mutex, so parallel block executions of one page
// proceed without serializing here. See docs/threading-model.md and
// concurrency_stats() for the contention evidence.
//
// Cross-structure ordering note: InsertFragment removes the fragment's old
// dependencies before inserting; the generator re-declares them after. A
// data-source update that races with regeneration can therefore miss the
// in-flight incarnation — the same window the sequential big-lock version
// had (lookup/insert/add-dependency were always three separate critical
// sections), and the DPC recovery protocol covers it.
class BackEndMonitor {
 public:
  // Builds a monitor; fails on an unknown replacement policy name.
  static Result<std::unique_ptr<BackEndMonitor>> Create(BemOptions options);

  // --- Tagging-API entry points (run-time operation, paper 4.3.2) ---

  // Directory lookup for a tagged code block.
  LookupResult LookupFragment(const FragmentId& id);

  // Miss path: registers the fragment and returns the dpcKey for the SET
  // instruction. `ttl_micros` < 0 uses the configured default.
  Result<DpcKey> InsertFragment(const FragmentId& id,
                                MicroTime ttl_micros = -1);

  // Declares that `id` (which must have been inserted) depends on a
  // repository table/row; future updates invalidate it.
  void AddDependency(const FragmentId& id, const std::string& table,
                     const std::string& row_key = "");

  // --- Invalidation-manager entry points ---

  // Explicit invalidation (e.g. operator action, DPC cold-start recovery).
  Status Invalidate(const FragmentId& id);
  Status InvalidateKey(DpcKey key);
  // Refresh-protocol invalidation (X-DPC-Refresh): like InvalidateKey, but
  // pins the key for immediate reuse so the re-rendered fragment keeps the
  // same dpcKey. The DPC's streamed recovery has already committed
  // `GET key` to the client and needs the refreshed SET under that key.
  // Returns the canonical fragment id the key belonged to: the caller must
  // force the re-render to treat that fragment as a miss, because a
  // concurrent request can re-insert it between this invalidation and the
  // re-render's lookup — the lookup would then hit and emit GET for
  // content the DPC still does not have (see ScriptContext::ForceMiss).
  Result<std::string> RefreshKey(DpcKey key);
  size_t InvalidateAll();

  // Proactive TTL sweep; returns the number invalidated.
  size_t SweepExpired();

  // Subscribes to `repository`'s update bus so data-source mutations
  // invalidate dependent fragments automatically. The monitor must be
  // detached (or destroyed) before the repository.
  void AttachRepository(storage::ContentRepository* repository);
  void DetachRepository();

  // Handles one data-source event (also called by the bus subscription);
  // returns how many fragments were invalidated.
  size_t OnDataSourceUpdate(const storage::UpdateEvent& event);

  // Attaches (or clears, with nullptr) the single event observer. The
  // pointer is read with acquire semantics on every event, so attaching
  // before traffic starts is race-free; the observer must outlive the
  // monitor or be cleared first.
  void SetObserver(FragmentEventObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

  // --- Introspection ---
  // Snapshot of the directory counters (safe under concurrency).
  DirectoryStats stats() const;
  // Snapshot of up to `limit` directory entries (safe under concurrency).
  std::vector<CacheDirectory::EntryView> SnapshotEntries(
      size_t limit = 0) const;
  // Lock/parallelism counters aggregated from the directory and registry.
  struct ConcurrencyStats {
    uint64_t stripe_contentions = 0;
    uint64_t policy_contentions = 0;
    uint64_t free_list_contentions = 0;
    uint64_t registry_contentions = 0;
    uint64_t insert_races = 0;
  };
  ConcurrencyStats concurrency_stats() const;
  // Direct views for tests/benches. Both structures are internally
  // synchronized; multi-step read sequences still race with writers.
  const CacheDirectory& directory() const { return directory_; }
  const DependencyRegistry& dependencies() const { return registry_; }
  DpcKey capacity() const { return directory_.capacity(); }
  MicroTime default_ttl_micros() const { return default_ttl_micros_; }

  ~BackEndMonitor();
  BackEndMonitor(const BackEndMonitor&) = delete;
  BackEndMonitor& operator=(const BackEndMonitor&) = delete;

 private:
  BackEndMonitor(DpcKey capacity, const Clock* clock,
                 std::unique_ptr<ReplacementPolicy> policy,
                 MicroTime default_ttl_micros);

  FragmentEventObserver* observer() const {
    return observer_.load(std::memory_order_acquire);
  }

  CacheDirectory directory_;    // Internally striped.
  DependencyRegistry registry_; // Internally synchronized.
  std::atomic<FragmentEventObserver*> observer_{nullptr};
  MicroTime default_ttl_micros_;
  // Guards only the repository attachment state below.
  mutable std::mutex attach_mu_;
  storage::ContentRepository* repository_ = nullptr;
  storage::UpdateBus::SubscriptionId subscription_ = 0;
};

}  // namespace dynaprox::bem

#endif  // DYNAPROX_BEM_MONITOR_H_
