#include "edge/hash_ring.h"

namespace dynaprox::edge {

uint64_t Fnv1a(std::string_view data) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

uint64_t RingPoint(std::string_view data) {
  // splitmix64 finalizer for full avalanche.
  uint64_t x = Fnv1a(data);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

Status HashRing::AddNode(const std::string& node, int vnodes) {
  if (vnodes <= 0) return Status::InvalidArgument("vnodes must be > 0");
  if (!nodes_.insert(node).second) {
    return Status::AlreadyExists("node exists: " + node);
  }
  for (int i = 0; i < vnodes; ++i) {
    ring_[RingPoint(node + "#" + std::to_string(i))] = node;
  }
  return Status::Ok();
}

Status HashRing::RemoveNode(const std::string& node) {
  if (nodes_.erase(node) == 0) {
    return Status::NotFound("node not found: " + node);
  }
  down_.erase(node);
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Status HashRing::MarkDown(const std::string& node) {
  if (nodes_.count(node) == 0) {
    return Status::NotFound("node not found: " + node);
  }
  down_.insert(node);
  return Status::Ok();
}

Status HashRing::MarkUp(const std::string& node) {
  if (nodes_.count(node) == 0) {
    return Status::NotFound("node not found: " + node);
  }
  down_.erase(node);
  return Status::Ok();
}

Result<std::string> HashRing::Route(std::string_view key) const {
  if (ring_.empty()) {
    return Status::FailedPrecondition("ring has no nodes");
  }
  if (down_.size() >= nodes_.size()) {
    // Distinct from the empty ring: the topology is configured but every
    // member is marked down, so the condition is transient — callers may
    // retry after a MarkUp instead of treating it as a setup error.
    return Status::Unavailable("all ring nodes are down");
  }
  uint64_t hash = RingPoint(key);
  auto it = ring_.lower_bound(hash);
  // Walk clockwise (wrapping) until a live node appears; guaranteed to
  // terminate within one lap since at least one node is live.
  for (;;) {
    if (it == ring_.end()) it = ring_.begin();
    if (down_.count(it->second) == 0) return it->second;
    ++it;
  }
}

size_t HashRing::live_node_count() const {
  return nodes_.size() - down_.size();
}

std::vector<std::string> HashRing::Nodes() const {
  return std::vector<std::string>(nodes_.begin(), nodes_.end());
}

}  // namespace dynaprox::edge
